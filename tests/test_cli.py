"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["market"])
        assert args.seed == 42
        assert args.scale == "small"

    def test_advise_positionals(self):
        args = build_parser().parse_args(["advise", "22", "5"])
        assert args.prefix_length == 22
        assert args.horizon_years == 5.0

    def test_runner_flags(self):
        args = build_parser().parse_args(
            ["infer", "--jobs", "4", "--cache-dir", "/tmp/c"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        args = build_parser().parse_args(["figures", "out"])
        assert args.jobs is None
        assert args.cache_dir is None


class TestCommands:
    def test_market(self, capsys):
        assert main(["market"]) == 0
        out = capsys.readouterr().out
        assert "Market report" in out
        assert "mean 2020 price" in out
        assert "leasing range" in out

    def test_advise(self, capsys):
        assert main(["advise", "24", "3"]) == 0
        out = capsys.readouterr().out
        assert "/24" in out
        assert "break-even" in out
        assert "buy" in out and "lease" in out

    def test_infer_tail(self, capsys):
        assert main(["infer", "--step-days", "7", "--tail", "3"]) == 0
        out = capsys.readouterr().out
        assert "extended algorithm" in out
        # Title + header + separator + 3 rows.
        assert len(out.strip().splitlines()) == 6

    def test_infer_with_cache_dir(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = [
            "infer", "--step-days", "7", "--tail", "2",
            "--jobs", "1", "--cache-dir", str(cache),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert list(cache.rglob("*.bin"))  # cache got populated
        assert main(argv) == 0  # warm re-run: identical table
        assert capsys.readouterr().out == cold

    def test_infer_baseline(self, capsys):
        assert main([
            "infer", "--baseline", "--step-days", "14", "--tail", "2"
        ]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_generate(self, tmp_path, capsys):
        assert main([
            "generate", str(tmp_path / "data"), "--no-rpki",
            "--collector-days", "1",
        ]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["collector_days"]
        assert (tmp_path / "data" / "manifest.json").exists()

    def test_figures(self, tmp_path, capsys):
        assert main(["figures", str(tmp_path / "figs")]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig2", "fig4", "fig5", "fig6"):
            assert name in out
            assert (tmp_path / "figs" / f"{name}.csv").exists()

    def test_figures_skip_fig6(self, tmp_path, capsys):
        assert main([
            "figures", str(tmp_path / "figs"), "--skip-fig6",
        ]) == 0
        assert not (tmp_path / "figs" / "fig6.csv").exists()

    def test_seed_changes_output(self, capsys):
        main(["--seed", "1", "market"])
        first = capsys.readouterr().out
        main(["--seed", "2", "market"])
        second = capsys.readouterr().out
        assert first != second

    def test_module_invocation(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "advise"],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert completed.returncode == 0, completed.stderr
        assert "break-even" in completed.stdout


class TestErrorPaths:
    """Bad flags exit non-zero with a one-line message, no traceback."""

    def _assert_clean_failure(self, argv, capsys, match):
        assert main(argv) == 2
        captured = capsys.readouterr()
        err_lines = captured.err.strip().splitlines()
        assert len(err_lines) == 1
        assert err_lines[0].startswith("repro: error:")
        assert match in err_lines[0]
        assert "Traceback" not in captured.err

    def test_unknown_scale(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--scale", "galactic", "market"])
        assert excinfo.value.code != 0
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "Traceback" not in err

    def test_jobs_zero(self, capsys):
        self._assert_clean_failure(
            ["infer", "--jobs", "0"], capsys, "--jobs"
        )

    def test_jobs_negative(self, capsys):
        self._assert_clean_failure(
            ["figures", "out", "--jobs", "-3"], capsys, "--jobs"
        )

    def test_cache_dir_not_creatable(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        self._assert_clean_failure(
            ["infer", "--cache-dir", str(blocker / "cache")],
            capsys, "--cache-dir",
        )

    @pytest.mark.skipif(
        os.geteuid() == 0, reason="root ignores directory permissions"
    )
    def test_cache_dir_unwritable(self, tmp_path, capsys):
        read_only = tmp_path / "ro"
        read_only.mkdir(mode=0o500)
        try:
            self._assert_clean_failure(
                ["infer", "--cache-dir", str(read_only)],
                capsys, "not writable",
            )
        finally:
            read_only.chmod(0o700)

    def test_metrics_out_is_directory(self, tmp_path, capsys):
        self._assert_clean_failure(
            ["infer", "--metrics-out", str(tmp_path)],
            capsys, "is a directory",
        )

    def test_metrics_out_missing_parent(self, tmp_path, capsys):
        self._assert_clean_failure(
            ["market", "--metrics-out", str(tmp_path / "no" / "m.json")],
            capsys, "does not exist",
        )

    def test_metrics_out_unwritable_parent(self, tmp_path, capsys):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        read_only = tmp_path / "ro"
        read_only.mkdir(mode=0o500)
        try:
            self._assert_clean_failure(
                ["market", "--metrics-out", str(read_only / "m.json")],
                capsys, "not writable",
            )
        finally:
            read_only.chmod(0o700)

    def test_trace_out_is_directory(self, tmp_path, capsys):
        self._assert_clean_failure(
            ["infer", "--trace-out", str(tmp_path)],
            capsys, "is a directory",
        )

    def test_trace_out_missing_parent(self, tmp_path, capsys):
        self._assert_clean_failure(
            ["market", "--trace-out", str(tmp_path / "no" / "t.json")],
            capsys, "does not exist",
        )

    def test_trace_out_unwritable_parent(self, tmp_path, capsys):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        read_only = tmp_path / "ro"
        read_only.mkdir(mode=0o500)
        try:
            self._assert_clean_failure(
                ["infer", "--trace-out", str(read_only / "t.json")],
                capsys, "not writable",
            )
        finally:
            read_only.chmod(0o700)

    def test_manifest_missing_file(self, tmp_path, capsys):
        self._assert_clean_failure(
            ["manifest", str(tmp_path / "absent.json")],
            capsys, "no manifest",
        )

    def test_trace_summarize_missing_file(self, tmp_path, capsys):
        self._assert_clean_failure(
            ["trace", "summarize", str(tmp_path / "absent.json")],
            capsys, "no trace file",
        )

    def test_history_check_bad_percentage(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        self._assert_clean_failure(
            ["history", "--history", str(history),
             "check", "--baseline", "1", "--max-regress", "soonish"],
            capsys, "not a percentage",
        )

    def test_broken_pipe_is_silent(self):
        import subprocess
        import sys

        completed = subprocess.run(
            f"{sys.executable} -m repro advise | head -1",
            shell=True,
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert completed.returncode == 0  # head's status, not repro's
        assert "repro: error" not in completed.stderr
        assert "Traceback" not in completed.stderr



class TestKernelFlag:
    def test_kernel_flag_parses(self):
        args = build_parser().parse_args(["infer", "--kernel", "object"])
        assert args.kernel == "object"
        assert build_parser().parse_args(["infer"]).kernel == "columnar"
        assert build_parser().parse_args(["figures", "o"]).kernel == "columnar"

    def test_bad_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["infer", "--kernel", "simd"])

    def test_object_kernel_matches_columnar(self, capsys):
        argv = ["infer", "--step-days", "7", "--tail", "3"]
        assert main(argv + ["--kernel", "columnar"]) == 0
        columnar = capsys.readouterr().out
        assert main(argv + ["--kernel", "object"]) == 0
        assert capsys.readouterr().out == columnar

    def test_manifest_records_kernel(self, tmp_path, capsys):
        manifest_path = tmp_path / "manifest.json"
        assert main([
            "infer", "--step-days", "14", "--tail", "1",
            "--kernel", "object", "--metrics-out", str(manifest_path),
        ]) == 0
        capsys.readouterr()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["extra"]["kernel"] == "object"


class TestServeCommand:
    """The `repro serve` subcommand: flags, validation, smoke run."""

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.whois_port == 4343
        assert args.http_port == 8080
        assert args.rate_limit == 50.0
        assert args.burst == 100
        assert args.max_clients == 4096
        assert args.serve_seconds is None
        assert args.drain_grace == 5.0
        assert args.ready_file is None
        assert not args.no_infer

    def _fail(self, argv, capsys, match):
        assert main(argv) == 2
        captured = capsys.readouterr()
        err_lines = captured.err.strip().splitlines()
        assert len(err_lines) == 1
        assert err_lines[0].startswith("repro: error:")
        assert match in err_lines[0]

    def test_bad_port(self, capsys):
        self._fail(
            ["serve", "--whois-port", "99999"], capsys, "--whois-port"
        )
        self._fail(
            ["serve", "--http-port", "-1"], capsys, "--http-port"
        )

    def test_bad_limiter_flags(self, capsys):
        self._fail(["serve", "--rate-limit", "0"], capsys, "--rate-limit")
        self._fail(["serve", "--burst", "0"], capsys, "--burst")
        self._fail(
            ["serve", "--max-clients", "0"], capsys, "--max-clients"
        )

    def test_bad_durations(self, capsys):
        self._fail(
            ["serve", "--serve-seconds", "-1"], capsys, "--serve-seconds"
        )
        self._fail(
            ["serve", "--drain-grace", "-0.5"], capsys, "--drain-grace"
        )

    def test_ready_file_missing_parent(self, tmp_path, capsys):
        self._fail(
            ["serve", "--ready-file", str(tmp_path / "no" / "r.txt")],
            capsys, "--ready-file",
        )

    def test_history_record_missing_parent(self, tmp_path, capsys):
        self._fail(
            [
                "history", "--history", str(tmp_path / "no" / "h.jsonl"),
                "record", str(tmp_path / "m.json"),
            ],
            capsys, "--history",
        )

    def test_smoke_run_with_artifacts(self, tmp_path, capsys):
        ready = tmp_path / "ready.txt"
        manifest = tmp_path / "manifest.json"
        assert main([
            "serve", "--no-infer",
            "--whois-port", "0", "--http-port", "0",
            "--serve-seconds", "0.2",
            "--ready-file", str(ready),
            "--metrics-out", str(manifest),
        ]) == 0
        host, whois_port, http_port = ready.read_text().split()
        assert host == "127.0.0.1"
        assert int(whois_port) > 0 and int(http_port) > 0
        out = capsys.readouterr().out
        assert "repro serve" in out
        assert "Serving session summary" in out
        payload = json.loads(manifest.read_text())
        assert payload["command"] == "serve"
        assert payload["extra"]["serve"]["status"] == "draining"
