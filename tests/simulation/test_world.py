"""Tests for the world generator (small scenario)."""

import datetime

import pytest

from repro.registry.rir import RIR
from repro.registry.transfers import TransferType
from repro.simulation import World, paper_scenario, small_scenario
from repro.simulation.scenario import ScenarioConfig
from repro.errors import ScenarioError

D = datetime.date


@pytest.fixture(scope="module")
def world():
    return World(small_scenario())


class TestScenario:
    def test_presets_validate(self):
        small_scenario().validate()
        paper_scenario().validate()

    def test_validation_catches_bad_config(self):
        with pytest.raises(ScenarioError):
            ScenarioConfig(lir_count=0).validate()
        with pytest.raises(ScenarioError):
            ScenarioConfig(onoff_fraction=2.0).validate()
        with pytest.raises(ScenarioError):
            ScenarioConfig(
                bgp_start=D(2020, 1, 1), bgp_end=D(2019, 1, 1)
            ).validate()


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = World(small_scenario(seed=7))
        b = World(small_scenario(seed=7))
        specs_a = [(str(s.prefix), s.delegatee_asn)
                   for s in a.delegation_plan().specs]
        specs_b = [(str(s.prefix), s.delegatee_asn)
                   for s in b.delegation_plan().specs]
        assert specs_a == specs_b
        assert len(a.transfer_ledger()) == len(b.transfer_ledger())

    def test_different_seed_different_world(self):
        a = World(small_scenario(seed=7))
        b = World(small_scenario(seed=8))
        specs_a = {str(s.prefix) for s in a.delegation_plan().specs}
        specs_b = {str(s.prefix) for s in b.delegation_plan().specs}
        assert specs_a != specs_b

    def test_announcements_deterministic_per_day(self, world):
        date = D(2020, 1, 15)
        source = world.announcement_source()
        first = [(str(a.prefix), a.origin_asn) for a in source(date)]
        second = [(str(a.prefix), a.origin_asn) for a in source(date)]
        assert first == second


class TestOrgs:
    def test_lir_holdings(self, world):
        lirs = world.lirs()
        assert len(lirs) == world.config.lir_count
        for org in lirs:
            assert org.holdings
            assert org.asns

    def test_delegated_prefixes_inside_holdings(self, world):
        for spec in world.delegation_plan().specs:
            assert spec.covering_prefix.covers(spec.prefix)
            assert spec.covering_prefix in spec.delegator.holdings

    def test_delegation_prefixes_disjoint(self, world):
        specs = world.delegation_plan().specs
        prefixes = sorted(s.prefix for s in specs)
        for left, right in zip(prefixes, prefixes[1:]):
            assert not left.overlaps(right)

    def test_intra_org_specs_use_second_as(self, world):
        for spec in world.delegation_plan().intra_org():
            assert spec.delegatee_asn in spec.delegator.asns
            assert spec.delegatee_asn != spec.delegator.primary_asn


class TestWhoisWorld:
    def test_small_fraction_matches_config(self, world):
        report = world.whois_report()
        fraction = report.assigned_small / report.assigned_total
        assert fraction == pytest.approx(
            world.config.assigned_small_fraction, abs=0.01
        )

    def test_registered_delegations_in_whois(self, world):
        db = world.whois()
        registered = [
            s for s in world.delegation_plan().cross_org()
            if s.rdap_registered
        ]
        assert registered
        for spec in registered:
            assert db.find_exact_prefix(spec.prefix) is not None

    def test_sub_allocated_count(self, world):
        from repro.whois.inetnum import InetnumStatus

        subs = world.whois().by_status(InetnumStatus.SUB_ALLOCATED_PA)
        assert len(subs) == world.config.sub_allocated_count


class TestRoutingWorld:
    def test_pairs_match_record_path(self, world):
        """The fast pair path equals record-level aggregation."""
        from repro.bgp.stream import prefix_origin_pairs

        date = D(2020, 1, 20)
        stream = world.stream()
        fast = stream.pairs_on(date)
        slow = prefix_origin_pairs(stream.records_on(date))
        assert fast == slow

    def test_monitor_count(self, world):
        expected = (
            len(world.config.collector_names)
            * world.config.monitors_per_collector
        )
        assert world.stream().monitor_count() == expected

    def test_holdings_announced_every_day(self, world):
        date = D(2020, 2, 1)
        pairs = world.stream().pairs_on(date)
        for org in world.lirs():
            for holding in org.holdings:
                assert holding in pairs
                origin_set, count = pairs[holding]
                assert origin_set.sole_origin() == org.primary_asn
                assert count == world.stream().monitor_count()

    def test_onoff_specs_toggle(self, world):
        plan = world.delegation_plan()
        flappy = [s for s in plan.specs if s.onoff is not None]
        assert flappy  # scenario guarantees some
        spec = flappy[0]
        window = [
            world.config.bgp_start + datetime.timedelta(days=i)
            for i in range(spec.onoff.period_days * 2)
        ]
        states = {spec.announced_on(d) for d in window}
        assert states == {True, False}


class TestMarketsWorld:
    def test_markets_start_at_last_slash8(self, world):
        from repro.registry.rir import profile_for

        ledger = world.transfer_ledger()
        for rir in (RIR.APNIC, RIR.ARIN, RIR.RIPE):
            transfers = ledger.intra_rir(rir)
            assert transfers
            first = min(t.date for t in transfers)
            assert first >= profile_for(rir).last_slash8_date

    def test_minor_regions_negligible(self, world):
        ledger = world.transfer_ledger()
        major = len(ledger.intra_rir(RIR.ARIN))
        minor = len(ledger.intra_rir(RIR.AFRINIC)) + len(
            ledger.intra_rir(RIR.LACNIC)
        )
        assert minor < major / 5

    def test_inter_rir_only_between_parties(self, world):
        for record in world.transfer_ledger().inter_rir():
            assert record.source_rir in (RIR.APNIC, RIR.ARIN, RIR.RIPE)
            assert record.recipient_rir in (RIR.APNIC, RIR.ARIN, RIR.RIPE)

    def test_mna_labels_only_where_published(self, world):
        ledger = world.transfer_ledger()
        for record in ledger.records():
            if record.true_type is TransferType.MERGER_ACQUISITION:
                published = record.published_type()
                if record.source_rir in (RIR.APNIC, RIR.LACNIC):
                    assert published is None
                else:
                    assert published is TransferType.MERGER_ACQUISITION

    def test_priced_dataset_window(self, world):
        priced = world.priced_transactions()
        assert len(priced) > 0
        for txn in priced:
            assert world.config.pricing_start <= txn.date
            assert txn.date < world.config.market_end
            assert 16 <= txn.block_length <= 24


class TestRpkiWorld:
    def test_snapshot_count(self, world):
        days = (world.config.bgp_end - world.config.bgp_start).days
        assert len(world.rpki()) == days

    def test_delegations_exist(self, world):
        first = world.rpki().dates()[0]
        delegations = world.rpki().delegations_on(first)
        assert delegations
