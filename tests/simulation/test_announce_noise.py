"""Tests for the announcement source's noise events."""

import datetime

import pytest

from repro.bgp.message import Announcement
from repro.simulation import World, small_scenario
from repro.simulation.announce import AnnouncementSource

D = datetime.date


@pytest.fixture(scope="module")
def world():
    return World(small_scenario())


def noisy_source(world, **rates):
    defaults = dict(hijack_rate=1.0, as_set_rate=1.0, moas_rate=1.0)
    defaults.update(rates)
    return AnnouncementSource(
        world.config.seed,
        world.lirs(),
        world.customers(),
        world.delegation_plan(),
        world.monitors(),
        **defaults,
    )


class TestNoiseEvents:
    def test_hijack_is_restricted_more_specific(self, world):
        source = noisy_source(world, as_set_rate=0.0, moas_rate=0.0)
        announcements = source(D(2020, 1, 15))
        restricted = [
            a for a in announcements
            if a.restricted_to_monitors is not None
        ]
        assert len(restricted) == 1
        hijack = restricted[0]
        assert hijack.prefix.length == 24
        # Restricted to a strict minority of monitors.
        assert len(hijack.restricted_to_monitors) <= (
            len(world.monitors()) // 2
        )
        # Inside some LIR holding (a more-specific of a real block).
        holdings = [h for org in world.lirs() for h in org.holdings]
        assert any(h.covers(hijack.prefix) for h in holdings)

    def test_as_set_artifact_duplicates_a_delegation(self, world):
        source = noisy_source(world, hijack_rate=0.0, moas_rate=0.0)
        announcements = source(D(2020, 1, 15))
        as_sets = [a for a in announcements if a.as_set_origin]
        assert len(as_sets) <= 1
        if as_sets:
            prefixes = {
                s.prefix for s in world.delegation_plan().specs
            }
            assert as_sets[0].prefix in prefixes

    def test_moas_conflict_uses_different_origin(self, world):
        source = noisy_source(world, hijack_rate=0.0, as_set_rate=0.0)
        announcements = source(D(2020, 1, 15))
        by_prefix = {}
        for a in announcements:
            by_prefix.setdefault(a.prefix, set()).add(a.origin_asn)
        conflicted = [
            prefix for prefix, origins in by_prefix.items()
            if len(origins) > 1
        ]
        assert len(conflicted) <= 1

    def test_zero_rates_mean_no_noise(self, world):
        source = noisy_source(
            world, hijack_rate=0.0, as_set_rate=0.0, moas_rate=0.0
        )
        announcements = source(D(2020, 1, 15))
        assert all(a.restricted_to_monitors is None for a in announcements)
        assert all(not a.as_set_origin for a in announcements)

    def test_base_announcements_stable_across_days(self, world):
        source = noisy_source(
            world, hijack_rate=0.0, as_set_rate=0.0, moas_rate=0.0
        )
        holdings = {
            (a.prefix, a.origin_asn)
            for a in source(D(2020, 1, 10))
            if any(a.prefix == h for org in world.lirs()
                   for h in org.holdings)
        }
        holdings_later = {
            (a.prefix, a.origin_asn)
            for a in source(D(2020, 2, 10))
            if any(a.prefix == h for org in world.lirs()
                   for h in org.holdings)
        }
        assert holdings == holdings_later
