"""Tests for the pool-drawdown (Table 1) simulator."""

import datetime

import pytest

from repro.errors import SimulationError
from repro.registry.rir import RIR, profile_for
from repro.simulation.exhaustion import (
    SLASH8,
    ExhaustionReport,
    ExhaustionSimulator,
    _calibrated_base_rate,
    simulate_all,
)

D = datetime.date


class TestCalibration:
    def test_constant_growth_one(self):
        # growth 1.0 -> uniform rate; handled via the geometric formula
        # with daily_growth != 1, so use something very close.
        rate = _calibrated_base_rate(1000.0, 100, 1.0001)
        assert rate == pytest.approx(10.0, rel=0.01)

    def test_cumulative_matches_pool(self):
        pool, days, growth = 5_000_000.0, 2000, 1.25
        base = _calibrated_base_rate(pool, days, growth)
        daily = growth ** (1 / 365)
        total = base * (daily ** days - 1) / (daily - 1)
        assert total == pytest.approx(pool, rel=1e-9)

    def test_invalid_window(self):
        with pytest.raises(SimulationError):
            _calibrated_base_rate(1000.0, 0, 1.2)


class TestSimulation:
    def test_all_rirs_match_table1(self):
        reports = simulate_all()
        for rir in RIR:
            assert reports[rir].matches_profile(profile_for(rir))

    def test_milestones_ordered(self):
        report = ExhaustionSimulator(RIR.RIPE).run()
        assert report.last_slash8_date is not None
        assert report.depletion_date is not None
        assert report.last_slash8_date < report.depletion_date

    def test_depleted_rirs_have_empty_pools(self):
        for rir in (RIR.ARIN, RIR.RIPE, RIR.LACNIC):
            assert ExhaustionSimulator(rir).run().remaining_addresses == 0

    def test_apnic_holds_part_of_slash10(self):
        report = ExhaustionSimulator(RIR.APNIC).run()
        assert (1 << 21) < report.remaining_addresses < (1 << 23)

    def test_custom_pool_changes_timing(self):
        # A much larger pool with the same calibrated target still hits
        # the date (calibration is pool-aware).
        report = ExhaustionSimulator(
            RIR.ARIN, initial_pool_slash8s=50.0
        ).run()
        assert report.matches_profile(profile_for(RIR.ARIN))

    def test_report_mismatch_detection(self):
        profile = profile_for(RIR.ARIN)
        off_by_a_year = ExhaustionReport(
            rir=RIR.ARIN,
            last_slash8_date=profile.last_slash8_date.replace(year=2016),
            depletion_date=profile.depletion_date,
            remaining_addresses=0,
        )
        assert not off_by_a_year.matches_profile(profile)
        never_reached = ExhaustionReport(
            rir=RIR.ARIN,
            last_slash8_date=None,
            depletion_date=None,
            remaining_addresses=SLASH8,
        )
        assert not never_reached.matches_profile(profile)

    def test_depletion_expected_but_missing(self):
        profile = profile_for(RIR.ARIN)
        report = ExhaustionReport(
            rir=RIR.ARIN,
            last_slash8_date=profile.last_slash8_date,
            depletion_date=None,
            remaining_addresses=100,
        )
        assert not report.matches_profile(profile)
