"""Tests for the per-RIR address plan."""

import pytest

from repro.errors import SimulationError
from repro.netbase.bogons import is_bogon
from repro.netbase.prefix import IPv4Prefix
from repro.registry.rir import RIR
from repro.simulation.addressplan import REGION_SLASH8S, AddressPlan


class TestAddressPlan:
    def test_blocks_come_from_the_right_region(self):
        plan = AddressPlan()
        for rir in RIR:
            block = plan.take(rir, 16)
            assert plan.region_of(block) is rir

    def test_blocks_never_overlap(self):
        plan = AddressPlan()
        blocks = [plan.take(RIR.RIPE, 16) for _ in range(50)]
        blocks += [plan.take(RIR.ARIN, 20) for _ in range(50)]
        ordered = sorted(blocks)
        for left, right in zip(ordered, ordered[1:]):
            assert not left.overlaps(right)

    def test_no_bogon_space_in_plan(self):
        for slash8s in REGION_SLASH8S.values():
            for text in slash8s:
                assert not is_bogon(IPv4Prefix.parse(text))

    def test_regions_disjoint(self):
        seen = set()
        for slash8s in REGION_SLASH8S.values():
            for text in slash8s:
                assert text not in seen
                seen.add(text)

    def test_exhaustion_raises(self):
        plan = AddressPlan()
        with pytest.raises(SimulationError):
            # AFRINIC has three /8s; a fourth /8 cannot fit.
            for _ in range(4):
                plan.take(RIR.AFRINIC, 8)

    def test_region_of_unplanned_space(self):
        plan = AddressPlan()
        with pytest.raises(SimulationError):
            plan.region_of(IPv4Prefix.parse("11.0.0.0/8"))

    def test_take_many(self):
        plan = AddressPlan()
        blocks = plan.take_many(RIR.APNIC, 24, 10)
        assert len(blocks) == 10
        assert len(set(blocks)) == 10
