"""Tests for the §6 VPN-provider rotation chains."""

import datetime

import pytest

from repro.simulation import World, small_scenario
from repro.simulation.orgs import BusinessModel


@pytest.fixture(scope="module")
def world():
    return World(small_scenario())


def rotation_specs(world):
    """Specs belonging to rotation chains: grouped by delegatee, the
    bounded-lifetime cross-org /24 runs that tile the window."""
    plan = world.delegation_plan()
    chains = {}
    for spec in plan.cross_org():
        if spec.prefix.length != 24:
            continue
        if spec.onoff is not None:
            continue
        key = (spec.delegatee_asn, spec.delegator.org_id)
        chains.setdefault(key, []).append(spec)
    return {
        key: sorted(specs, key=lambda s: s.active_from)
        for key, specs in chains.items()
        if len(specs) >= 3  # a chain rotates several times
    }


class TestRotationChains:
    def test_chains_exist(self, world):
        assert world.config.vpn_rotation_chains > 0
        assert rotation_specs(world)

    def test_chain_segments_tile_the_window(self, world):
        config = world.config
        for segments in rotation_specs(world).values():
            # Contiguous: each segment starts when the previous ends.
            for left, right in zip(segments, segments[1:]):
                if left.active_until is None:
                    continue
                assert right.active_from == left.active_until
            assert segments[0].active_from == config.bgp_start
            assert segments[-1].active_until is None

    def test_exactly_one_active_per_chain_per_day(self, world):
        config = world.config
        probe_days = [
            config.bgp_start + datetime.timedelta(days=offset)
            for offset in (0, 15, 30, 45)
            if config.bgp_start + datetime.timedelta(days=offset)
            < config.bgp_end
        ]
        for segments in rotation_specs(world).values():
            for day in probe_days:
                active = [s for s in segments if s.active_on(day)]
                assert len(active) == 1

    def test_prefixes_rotate(self, world):
        for segments in rotation_specs(world).values():
            prefixes = [s.prefix for s in segments]
            assert len(set(prefixes)) == len(prefixes)

    def test_delegators_prefer_lease_out_models(self, world):
        """ISPs/hosters delegate ~3x as often per §6 weighting."""
        plan = world.delegation_plan()
        lease_out = sum(
            1 for s in plan.cross_org() if s.delegator.model.leases_out
        )
        total = len(plan.cross_org())
        lirs = world.lirs()
        lease_out_lirs = sum(1 for org in lirs if org.model.leases_out)
        population_share = lease_out_lirs / len(lirs)
        observed_share = lease_out / total
        # With 3x weighting, the observed share must exceed the
        # population share (unless every LIR leases out).
        if population_share < 0.95:
            assert observed_share > population_share
