"""Unit tests for the RPKI substrate."""

import datetime

import pytest

from repro.errors import RpkiError
from repro.netbase.prefix import IPv4Prefix
from repro.rpki.database import RoaDatabase, RpkiDelegation
from repro.rpki.roa import Roa, ValidationState, validate_origin

D = datetime.date


def p(text):
    return IPv4Prefix.parse(text)


class TestRoa:
    def test_default_max_length(self):
        roa = Roa(p("193.0.0.0/16"), 64500)
        assert roa.max_length == 16

    def test_authorizes(self):
        roa = Roa(p("193.0.0.0/16"), 64500, max_length=24)
        assert roa.authorizes(p("193.0.0.0/16"), 64500)
        assert roa.authorizes(p("193.0.5.0/24"), 64500)
        assert not roa.authorizes(p("193.0.5.0/25"), 64500)  # too long
        assert not roa.authorizes(p("193.0.5.0/24"), 64501)  # wrong AS
        assert not roa.authorizes(p("194.0.0.0/16"), 64500)  # not covered

    def test_invalid_max_length(self):
        with pytest.raises(RpkiError):
            Roa(p("193.0.0.0/16"), 64500, max_length=8)
        with pytest.raises(RpkiError):
            Roa(p("193.0.0.0/16"), 64500, max_length=33)

    def test_csv_round_trip(self):
        roa = Roa(p("193.0.0.0/16"), 64500, max_length=24)
        assert Roa.from_csv_row(roa.to_csv_row()) == roa

    @pytest.mark.parametrize("bad", ["", "foo", "AS1,bad,24",
                                     "64500,1.0.0.0/24,24", "AS1,1.0.0.0/24"])
    def test_csv_malformed(self, bad):
        with pytest.raises(RpkiError):
            Roa.from_csv_row(bad)


class TestValidation:
    ROAS = [
        Roa(p("193.0.0.0/16"), 64500, max_length=20),
        Roa(p("193.0.0.0/24"), 64501),
    ]

    def test_valid(self):
        assert validate_origin(
            self.ROAS, p("193.0.0.0/18"), 64500
        ) is ValidationState.VALID
        assert validate_origin(
            self.ROAS, p("193.0.0.0/24"), 64501
        ) is ValidationState.VALID

    def test_invalid(self):
        assert validate_origin(
            self.ROAS, p("193.0.0.0/18"), 64999
        ) is ValidationState.INVALID
        # Covered but longer than maxLength, and /24 ROA belongs to
        # someone else: invalid.
        assert validate_origin(
            self.ROAS, p("193.0.128.0/24"), 64500
        ) is ValidationState.INVALID

    def test_not_found(self):
        assert validate_origin(
            self.ROAS, p("8.8.8.0/24"), 64500
        ) is ValidationState.NOT_FOUND


class TestDatabase:
    @pytest.fixture
    def database(self):
        db = RoaDatabase()
        db.add_snapshot(D(2020, 1, 1), [
            Roa(p("193.0.0.0/16"), 100),
            Roa(p("193.0.5.0/24"), 200),      # delegation 100 -> 200
            Roa(p("193.0.6.0/24"), 100),      # same AS: not a delegation
            Roa(p("8.0.0.0/8"), 300),
        ])
        db.add_snapshot(D(2020, 1, 2), [
            Roa(p("193.0.0.0/16"), 100),
        ])
        return db

    def test_snapshot_access(self, database):
        assert len(database) == 2
        assert database.has_snapshot(D(2020, 1, 1))
        assert not database.has_snapshot(D(2019, 1, 1))
        with pytest.raises(RpkiError):
            database.snapshot(D(2019, 1, 1))
        with pytest.raises(RpkiError):
            database.add_snapshot(D(2020, 1, 1), [])

    def test_delegations_on(self, database):
        delegations = database.delegations_on(D(2020, 1, 1))
        assert delegations == [
            RpkiDelegation(p("193.0.5.0/24"), 100, 200)
        ]

    def test_most_specific_cover_wins(self):
        db = RoaDatabase()
        db.add_snapshot(D(2020, 1, 1), [
            Roa(p("193.0.0.0/8"), 1),
            Roa(p("193.0.0.0/16"), 2),
            Roa(p("193.0.5.0/24"), 3),
        ])
        delegations = db.delegations_on(D(2020, 1, 1))
        keys = {d.key() for d in delegations}
        # /24's delegator is the /16 (AS2), not the /8.
        assert (p("193.0.5.0/24"), 2, 3) in keys
        assert (p("193.0.5.0/24"), 1, 3) not in keys
        # The /16 itself is delegated from the /8.
        assert (p("193.0.0.0/16"), 1, 2) in keys

    def test_delegation_timeline(self, database):
        timeline = database.delegation_timeline()
        key = (p("193.0.5.0/24"), 100, 200)
        assert timeline[key] == [D(2020, 1, 1)]

    def test_file_round_trip(self, database, tmp_path):
        database.write_snapshots(tmp_path)
        loaded = RoaDatabase.read_snapshots(tmp_path)
        assert loaded.dates() == database.dates()
        for date in database.dates():
            assert loaded.snapshot(date) == database.snapshot(date)

    def test_read_bad_filename(self, tmp_path):
        (tmp_path / "not-a-date.csv").write_text("ASN,IP Prefix,Max Length\n")
        with pytest.raises(RpkiError):
            RoaDatabase.read_snapshots(tmp_path)
