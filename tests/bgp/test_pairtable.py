"""Tests for the columnar PairTable and its collector fast path.

``CollectorSystem.pair_table_for_day`` must carry exactly the same
facts as the record-expanding ``pair_counts_for_day`` — per-prefix
origin uniqueness, sole origin, and distinct monitor count — without
materializing per-record objects.
"""

import datetime

import pytest

from repro.bgp.collector import Collector, CollectorSystem
from repro.bgp.message import Announcement
from repro.bgp.propagation import PropagationModel
from repro.bgp.rib import UNIQUE_ORIGIN, PairTable
from repro.bgp.stream import RouteStream
from repro.bgp.topology import ASTopology
from repro.netbase.lpm import pack
from repro.netbase.prefix import IPv4Prefix

D = datetime.date


def p(text):
    return IPv4Prefix.parse(text)


@pytest.fixture
def topology():
    t = ASTopology()
    for asn, tier in [(10, 1), (11, 1), (20, 2), (21, 2), (30, 3), (31, 3)]:
        t.add_as(asn, tier=tier)
    t.add_peering(10, 11)
    t.add_customer_provider(20, 10)
    t.add_customer_provider(21, 11)
    t.add_customer_provider(30, 20)
    t.add_customer_provider(31, 21)
    return t


@pytest.fixture
def system(topology):
    model = PropagationModel(topology)
    return CollectorSystem(
        [Collector("rrc00", [10, 20]), Collector("route-views2", [11, 21])],
        model,
    )


def _table_rows(table):
    return sorted(table.rows())


def _reference_rows(system, announcements):
    pairs = system.pair_counts_for_day(announcements)
    return sorted(
        (
            prefix,
            origins.sole_origin() if origins.is_unique else None,
            count,
        )
        for prefix, (origins, count) in pairs.items()
    )


class TestFromAggregate:
    def test_columns_sorted_by_packed_key(self):
        table = PairTable.from_aggregate({
            pack(p("11.0.0.0/8").network, 8): (65001, True, 4),
            pack(p("10.0.0.0/8").network, 8): (65002, True, 2),
            pack(p("10.0.0.0/16").network, 16): (0, False, 3),
        })
        assert list(table.keys) == sorted(table.keys)
        rows = list(table.rows())
        assert rows == [
            (p("10.0.0.0/8"), 65002, 2),
            (p("10.0.0.0/16"), None, 3),
            (p("11.0.0.0/8"), 65001, 4),
        ]

    def test_non_unique_origin_zeroed(self):
        table = PairTable.from_aggregate({
            pack(p("10.0.0.0/8").network, 8): (65001, False, 1),
        })
        assert table.origins[0] == 0
        assert table.flags[0] & UNIQUE_ORIGIN == 0

    def test_column_length_mismatch_rejected(self):
        from array import array

        with pytest.raises(ValueError, match="equal length"):
            PairTable(array("Q", [1]), array("Q"), array("B"), array("I"))

    def test_len_and_bool(self):
        empty = PairTable.from_aggregate({})
        assert len(empty) == 0 and not empty
        one = PairTable.from_aggregate({pack(0, 0): (1, True, 1)})
        assert len(one) == 1 and one


class TestFromPairs:
    def test_round_trips_pair_counts(self, system):
        announcements = [
            Announcement(p("101.100.0.0/24"), 30),
            Announcement(p("101.101.0.0/24"), 31),
            Announcement(p("101.101.0.0/24"), 30),  # MOAS
        ]
        pairs = system.pair_counts_for_day(announcements)
        table = PairTable.from_pairs(pairs)
        assert _table_rows(table) == _reference_rows(system, announcements)


class TestCollectorFastPath:
    def _assert_equivalent(self, system, announcements):
        table = system.pair_table_for_day(announcements)
        assert _table_rows(table) == _reference_rows(system, announcements)

    def test_plain_day(self, system):
        self._assert_equivalent(system, [
            Announcement(p("101.100.0.0/24"), 30),
            Announcement(p("101.101.0.0/24"), 31),
        ])

    def test_moas_pair_not_unique(self, system):
        announcements = [
            Announcement(p("101.100.0.0/24"), 30),
            Announcement(p("101.100.0.0/24"), 31),
        ]
        table = system.pair_table_for_day(announcements)
        rows = list(table.rows())
        assert rows == [(p("101.100.0.0/24"), None, 4)]
        self._assert_equivalent(system, announcements)

    def test_as_set_origin_not_unique(self, system):
        announcements = [
            Announcement(p("101.100.0.0/24"), 30, as_set_origin=True),
        ]
        table = system.pair_table_for_day(announcements)
        assert list(table.rows()) == [(p("101.100.0.0/24"), None, 4)]
        self._assert_equivalent(system, announcements)

    def test_restricted_monitors(self, system):
        announcements = [
            Announcement(
                p("101.100.0.0/24"), 30,
                restricted_to_monitors=frozenset({10}),
            ),
            Announcement(p("101.101.0.0/24"), 30),
        ]
        table = system.pair_table_for_day(announcements)
        assert list(table.rows()) == [
            (p("101.100.0.0/24"), 30, 1),
            (p("101.101.0.0/24"), 30, 4),
        ]
        self._assert_equivalent(system, announcements)

    def test_unknown_origin_invisible(self, system):
        announcements = [Announcement(p("101.100.0.0/24"), 999)]
        assert len(system.pair_table_for_day(announcements)) == 0
        self._assert_equivalent(system, announcements)

    def test_duplicate_announcements_merge_monitors(self, system):
        announcements = [
            Announcement(
                p("101.100.0.0/24"), 30,
                restricted_to_monitors=frozenset({10}),
            ),
            Announcement(
                p("101.100.0.0/24"), 30,
                restricted_to_monitors=frozenset({11, 21}),
            ),
        ]
        table = system.pair_table_for_day(announcements)
        assert list(table.rows()) == [(p("101.100.0.0/24"), 30, 3)]
        self._assert_equivalent(system, announcements)


class TestStreamPairTable:
    def test_source_stream_matches_pairs_on(self, system):
        announcements = [
            Announcement(p("101.100.0.0/24"), 30),
            Announcement(p("101.101.0.0/24"), 31),
            Announcement(p("101.101.0.0/24"), 30),
        ]
        stream = RouteStream(system, source=lambda date: announcements)
        date = D(2020, 1, 1)
        table = stream.pair_table_on(date)
        reference = stream.pairs_on(date)
        expected = sorted(
            (
                prefix,
                origins.sole_origin() if origins.is_unique else None,
                count,
            )
            for prefix, (origins, count) in reference.items()
        )
        assert _table_rows(table) == expected
