"""Tests for the columnar PairTable and its collector fast path.

``CollectorSystem.pair_table_for_day`` must carry exactly the same
facts as the record-expanding ``pair_counts_for_day`` — per-prefix
origin uniqueness, sole origin, and distinct monitor count — without
materializing per-record objects.
"""

import datetime

import pytest

from repro.bgp.collector import Collector, CollectorSystem
from repro.bgp.message import Announcement
from repro.bgp.propagation import PropagationModel
from repro.bgp.rib import UNIQUE_ORIGIN, PairTable
from repro.bgp.stream import RouteStream
from repro.bgp.topology import ASTopology
from repro.netbase.lpm import pack
from repro.netbase.prefix import IPv4Prefix

D = datetime.date


def p(text):
    return IPv4Prefix.parse(text)


@pytest.fixture
def topology():
    t = ASTopology()
    for asn, tier in [(10, 1), (11, 1), (20, 2), (21, 2), (30, 3), (31, 3)]:
        t.add_as(asn, tier=tier)
    t.add_peering(10, 11)
    t.add_customer_provider(20, 10)
    t.add_customer_provider(21, 11)
    t.add_customer_provider(30, 20)
    t.add_customer_provider(31, 21)
    return t


@pytest.fixture
def system(topology):
    model = PropagationModel(topology)
    return CollectorSystem(
        [Collector("rrc00", [10, 20]), Collector("route-views2", [11, 21])],
        model,
    )


def _table_rows(table):
    return sorted(table.rows())


def _reference_rows(system, announcements):
    pairs = system.pair_counts_for_day(announcements)
    return sorted(
        (
            prefix,
            origins.sole_origin() if origins.is_unique else None,
            count,
        )
        for prefix, (origins, count) in pairs.items()
    )


class TestFromAggregate:
    def test_columns_sorted_by_packed_key(self):
        table = PairTable.from_aggregate({
            pack(p("11.0.0.0/8").network, 8): (65001, True, 4),
            pack(p("10.0.0.0/8").network, 8): (65002, True, 2),
            pack(p("10.0.0.0/16").network, 16): (0, False, 3),
        })
        assert list(table.keys) == sorted(table.keys)
        rows = list(table.rows())
        assert rows == [
            (p("10.0.0.0/8"), 65002, 2),
            (p("10.0.0.0/16"), None, 3),
            (p("11.0.0.0/8"), 65001, 4),
        ]

    def test_non_unique_origin_zeroed(self):
        table = PairTable.from_aggregate({
            pack(p("10.0.0.0/8").network, 8): (65001, False, 1),
        })
        assert table.origins[0] == 0
        assert table.flags[0] & UNIQUE_ORIGIN == 0

    def test_column_length_mismatch_rejected(self):
        from array import array

        with pytest.raises(ValueError, match="equal length"):
            PairTable(array("Q", [1]), array("Q"), array("B"), array("I"))

    def test_len_and_bool(self):
        empty = PairTable.from_aggregate({})
        assert len(empty) == 0 and not empty
        one = PairTable.from_aggregate({pack(0, 0): (1, True, 1)})
        assert len(one) == 1 and one


class TestFromPairs:
    def test_round_trips_pair_counts(self, system):
        announcements = [
            Announcement(p("101.100.0.0/24"), 30),
            Announcement(p("101.101.0.0/24"), 31),
            Announcement(p("101.101.0.0/24"), 30),  # MOAS
        ]
        pairs = system.pair_counts_for_day(announcements)
        table = PairTable.from_pairs(pairs)
        assert _table_rows(table) == _reference_rows(system, announcements)


class TestCollectorFastPath:
    def _assert_equivalent(self, system, announcements):
        table = system.pair_table_for_day(announcements)
        assert _table_rows(table) == _reference_rows(system, announcements)

    def test_plain_day(self, system):
        self._assert_equivalent(system, [
            Announcement(p("101.100.0.0/24"), 30),
            Announcement(p("101.101.0.0/24"), 31),
        ])

    def test_moas_pair_not_unique(self, system):
        announcements = [
            Announcement(p("101.100.0.0/24"), 30),
            Announcement(p("101.100.0.0/24"), 31),
        ]
        table = system.pair_table_for_day(announcements)
        rows = list(table.rows())
        assert rows == [(p("101.100.0.0/24"), None, 4)]
        self._assert_equivalent(system, announcements)

    def test_as_set_origin_not_unique(self, system):
        announcements = [
            Announcement(p("101.100.0.0/24"), 30, as_set_origin=True),
        ]
        table = system.pair_table_for_day(announcements)
        assert list(table.rows()) == [(p("101.100.0.0/24"), None, 4)]
        self._assert_equivalent(system, announcements)

    def test_restricted_monitors(self, system):
        announcements = [
            Announcement(
                p("101.100.0.0/24"), 30,
                restricted_to_monitors=frozenset({10}),
            ),
            Announcement(p("101.101.0.0/24"), 30),
        ]
        table = system.pair_table_for_day(announcements)
        assert list(table.rows()) == [
            (p("101.100.0.0/24"), 30, 1),
            (p("101.101.0.0/24"), 30, 4),
        ]
        self._assert_equivalent(system, announcements)

    def test_unknown_origin_invisible(self, system):
        announcements = [Announcement(p("101.100.0.0/24"), 999)]
        assert len(system.pair_table_for_day(announcements)) == 0
        self._assert_equivalent(system, announcements)

    def test_duplicate_announcements_merge_monitors(self, system):
        announcements = [
            Announcement(
                p("101.100.0.0/24"), 30,
                restricted_to_monitors=frozenset({10}),
            ),
            Announcement(
                p("101.100.0.0/24"), 30,
                restricted_to_monitors=frozenset({11, 21}),
            ),
        ]
        table = system.pair_table_for_day(announcements)
        assert list(table.rows()) == [(p("101.100.0.0/24"), 30, 3)]
        self._assert_equivalent(system, announcements)


class TestStreamPairTable:
    def test_source_stream_matches_pairs_on(self, system):
        announcements = [
            Announcement(p("101.100.0.0/24"), 30),
            Announcement(p("101.101.0.0/24"), 31),
            Announcement(p("101.101.0.0/24"), 30),
        ]
        stream = RouteStream(system, source=lambda date: announcements)
        date = D(2020, 1, 1)
        table = stream.pair_table_on(date)
        reference = stream.pairs_on(date)
        expected = sorted(
            (
                prefix,
                origins.sole_origin() if origins.is_unique else None,
                count,
            )
            for prefix, (origins, count) in reference.items()
        )
        assert _table_rows(table) == expected


def _sample_table():
    return PairTable.from_aggregate({
        pack(p("10.0.0.0/8").network, 8): (65001, True, 3),
        pack(p("10.1.0.0/16").network, 16): (65002, True, 2),
        pack(p("172.16.0.0/12").network, 12): (0, False, 4),
        pack(p("192.0.2.0/24").network, 24): (65003, True, 1),
    })


class TestFromBuffer:
    """The zero-copy construction path and its edges."""

    def test_round_trips_through_bytes(self):
        table = _sample_table()
        rebuilt = PairTable.from_buffer(table.to_bytes(), len(table))
        assert _table_rows(rebuilt) == _table_rows(table)
        assert rebuilt.is_buffer_backed

    def test_zero_pair_table(self):
        empty = PairTable.from_buffer(b"", 0)
        assert len(empty) == 0
        assert not empty
        assert _table_rows(empty) == []
        # And an empty table round-trips through the codec.
        assert empty.to_bytes() == b""

    def test_truncated_buffer_rejected(self):
        table = _sample_table()
        data = table.to_bytes()
        with pytest.raises(ValueError, match="need"):
            PairTable.from_buffer(data[:-1], len(table))
        with pytest.raises(ValueError, match="need"):
            PairTable.from_buffer(data, len(table) + 1)

    def test_readonly_view_over_shared_memory(self):
        # The fan-in path: a worker serializes into a segment, the
        # parent adopts a read-only view of it.
        from multiprocessing import shared_memory

        table = _sample_table()
        data = table.to_bytes()
        segment = shared_memory.SharedMemory(create=True, size=len(data))
        try:
            segment.buf[:len(data)] = data
            view = memoryview(segment.buf)[:len(data)].toreadonly()
            adopted = PairTable.from_buffer(view, len(table))
            assert _table_rows(adopted) == _table_rows(table)
            assert adopted.is_buffer_backed
            # Read-only views refuse mutation rather than corrupting
            # the shared segment.
            with pytest.raises(TypeError):
                adopted.keys[0] = 0
            copy = adopted.materialize()
            assert not copy.is_buffer_backed
            assert _table_rows(copy) == _table_rows(table)
            del adopted, copy
            view.release()
        finally:
            segment.close()
            segment.unlink()


class TestSliceConcat:
    """slice()/concat() are exact inverses at cover-safe cut points."""

    def test_slice_concat_round_trip(self):
        table = _sample_table()
        parts = [table.slice(0, 2), table.slice(2, 3), table.slice(3, 4)]
        rebuilt = PairTable.concat(parts)
        assert _table_rows(rebuilt) == _table_rows(table)
        assert not rebuilt.is_buffer_backed

    def test_slice_preserves_backing_kind(self):
        table = _sample_table()
        assert not table.slice(1, 3).is_buffer_backed
        mapped = PairTable.from_buffer(table.to_bytes(), len(table))
        sub = mapped.slice(1, 3)
        assert sub.is_buffer_backed
        assert list(sub.keys) == list(table.keys[1:3])

    def test_concat_skips_empty_parts(self):
        table = _sample_table()
        rebuilt = PairTable.concat([
            table.slice(0, 0), table.slice(0, 4), table.slice(4, 4),
        ])
        assert _table_rows(rebuilt) == _table_rows(table)

    def test_concat_mixed_backing(self):
        table = _sample_table()
        mapped = PairTable.from_buffer(table.to_bytes(), len(table))
        rebuilt = PairTable.concat([mapped.slice(0, 2), table.slice(2, 4)])
        assert _table_rows(rebuilt) == _table_rows(table)

    def test_concat_rejects_overlapping_ranges(self):
        table = _sample_table()
        with pytest.raises(ValueError, match="ascending"):
            PairTable.concat([table.slice(0, 3), table.slice(2, 4)])
        with pytest.raises(ValueError, match="ascending"):
            PairTable.concat([table.slice(2, 4), table.slice(0, 2)])


class TestMaterializeCounter:
    def test_counts_only_buffer_backed_copies(self):
        table = _sample_table()
        before = PairTable.materialize_count
        assert table.materialize() is table
        assert PairTable.materialize_count == before
        mapped = PairTable.from_buffer(table.to_bytes(), len(table))
        mapped.materialize()
        assert PairTable.materialize_count == before + 1
