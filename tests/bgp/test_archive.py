"""Tests for RIB+update archives and the missing-file fallback."""

import datetime

import pytest

from repro.bgp.archive import ArchiveWindowReader, write_window
from repro.bgp.collector import Collector, CollectorSystem
from repro.bgp.message import Announcement
from repro.bgp.propagation import PropagationModel
from repro.bgp.topology import ASTopology
from repro.errors import CollectorDataError
from repro.netbase.prefix import IPv4Prefix

D = datetime.date


def p(text):
    return IPv4Prefix.parse(text)


@pytest.fixture
def system():
    t = ASTopology()
    for asn, tier in [(10, 1), (11, 1), (20, 2), (30, 3), (31, 3)]:
        t.add_as(asn, tier=tier)
    t.add_peering(10, 11)
    t.add_customer_provider(20, 10)
    t.add_customer_provider(30, 20)
    t.add_customer_provider(31, 20)
    return CollectorSystem(
        [Collector("rrc00", [10, 11])], PropagationModel(t)
    )


def changing_source(date):
    """Prefix set changes day by day: announce, change origin, drop."""
    announcements = [Announcement(p("101.0.0.0/16"), 30)]
    if date.day % 3 != 0:
        announcements.append(Announcement(p("101.0.4.0/24"), 31))
    if date.day >= 4:
        announcements.append(Announcement(p("101.1.0.0/24"), 30))
    return announcements


def record_set(records):
    return {
        (r.collector, r.monitor_asn, r.prefix, str(r.as_path))
        for r in records
    }


class TestWriteAndReplay:
    def test_replay_matches_direct_generation(self, system, tmp_path):
        start, end = D(2020, 1, 1), D(2020, 1, 9)
        write_window(
            system, changing_source, start, end, tmp_path,
            rib_every_days=4,
        )
        reader = ArchiveWindowReader(tmp_path)
        for date in [D(2020, 1, d) for d in range(1, 9)]:
            replayed = record_set(reader.records_on(date))
            direct = record_set(
                system.records_for_day(changing_source(date), date)
            )
            assert replayed == direct, f"mismatch on {date}"

    def test_update_days_are_small_files(self, system, tmp_path):
        paths = write_window(
            system, changing_source, D(2020, 1, 1), D(2020, 1, 10),
            tmp_path, rib_every_days=8,
        )
        ribs = [path for path in paths if path.endswith(".rib.jsonl")]
        updates = [path for path in paths if path.endswith(".updates.jsonl")]
        assert len(ribs) == 2  # day 0 and day 8
        assert len(updates) == 7

    def test_missing_archive_dir(self, tmp_path):
        with pytest.raises(CollectorDataError):
            ArchiveWindowReader(tmp_path / "nope")


class TestFallback:
    def test_missing_update_file_falls_back_to_next_rib(
        self, system, tmp_path
    ):
        import pathlib

        write_window(
            system, changing_source, D(2020, 1, 1), D(2020, 1, 9),
            tmp_path, rib_every_days=4,
        )
        # Delete an update file in the middle of the first segment.
        victim = pathlib.Path(tmp_path) / "rrc00" / "2020-01-03.updates.jsonl"
        assert victim.exists()
        victim.unlink()

        reader = ArchiveWindowReader(tmp_path)
        replayed = record_set(reader.records_on(D(2020, 1, 3)))
        assert reader.fallbacks_used == 1
        # The paper's fallback substitutes the next RIB's state (the
        # 2020-01-05 snapshot), not the true 01-03 state.
        next_rib_state = record_set(
            system.records_for_day(
                changing_source(D(2020, 1, 5)), D(2020, 1, 5)
            )
        )
        assert {(c, m, prefix) for c, m, prefix, _ in replayed} == {
            (c, m, prefix) for c, m, prefix, _ in next_rib_state
        }

    def test_no_rib_anywhere_raises(self, system, tmp_path):
        import pathlib

        write_window(
            system, changing_source, D(2020, 1, 1), D(2020, 1, 4),
            tmp_path, rib_every_days=10,
        )
        rib = pathlib.Path(tmp_path) / "rrc00" / "2020-01-01.rib.jsonl"
        rib.unlink()
        reader = ArchiveWindowReader(tmp_path, max_lookahead_days=3)
        with pytest.raises(CollectorDataError):
            list(reader.records_on(D(2020, 1, 2)))

    def test_missing_update_without_later_rib_raises(
        self, system, tmp_path
    ):
        import pathlib

        write_window(
            system, changing_source, D(2020, 1, 1), D(2020, 1, 6),
            tmp_path, rib_every_days=10,
        )
        victim = pathlib.Path(tmp_path) / "rrc00" / "2020-01-03.updates.jsonl"
        victim.unlink()
        reader = ArchiveWindowReader(tmp_path, max_lookahead_days=3)
        with pytest.raises(CollectorDataError):
            list(reader.records_on(D(2020, 1, 4)))
