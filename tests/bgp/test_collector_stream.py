"""Tests for collectors, archives, streams, RIBs, and sanitization."""

import datetime

import pytest

from repro.bgp.collector import Collector, CollectorSystem
from repro.bgp.message import Announcement, RouteRecord
from repro.bgp.propagation import PropagationModel
from repro.bgp.rib import RoutingTable
from repro.bgp.sanitize import SanitizeStats, sanitize_records
from repro.bgp.stream import RouteStream, date_range, prefix_origin_pairs
from repro.bgp.topology import ASTopology
from repro.errors import CollectorDataError
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import IPv4Prefix

D = datetime.date


def p(text):
    return IPv4Prefix.parse(text)


@pytest.fixture
def topology():
    t = ASTopology()
    for asn, tier in [(10, 1), (11, 1), (20, 2), (21, 2), (30, 3), (31, 3)]:
        t.add_as(asn, tier=tier)
    t.add_peering(10, 11)
    t.add_customer_provider(20, 10)
    t.add_customer_provider(21, 11)
    t.add_customer_provider(30, 20)
    t.add_customer_provider(31, 21)
    return t


@pytest.fixture
def system(topology):
    model = PropagationModel(topology)
    return CollectorSystem(
        [Collector("rrc00", [10, 20]), Collector("route-views2", [11, 21])],
        model,
    )


class TestCollector:
    def test_monitor_validation(self):
        with pytest.raises(CollectorDataError):
            Collector("", [10])
        with pytest.raises(CollectorDataError):
            Collector("rrc00", [])

    def test_records_for_day(self, system):
        announcements = [Announcement(p("101.100.0.0/24"), 30)]
        records = list(
            system.records_for_day(announcements, D(2020, 1, 1))
        )
        # All four monitors see the stub route.
        assert len(records) == 4
        assert all(r.prefix == p("101.100.0.0/24") for r in records)
        assert all(r.origin_asn() == 30 for r in records)

    def test_restricted_propagation(self, system):
        announcement = Announcement(
            p("101.100.0.0/24"), 30,
            restricted_to_monitors=frozenset({10}),
        )
        records = list(system.records_for_day([announcement], D(2020, 1, 1)))
        assert [r.monitor_asn for r in records] == [10]

    def test_restriction_cannot_create_visibility(self, topology):
        # Disconnect 31 by restricting to a monitor that cannot see it
        # topologically: remove tier-1 peering first.
        t = ASTopology()
        for asn in (20, 21, 30, 31):
            t.add_as(asn)
        t.add_customer_provider(30, 20)
        t.add_customer_provider(31, 21)
        system = CollectorSystem(
            [Collector("rrc00", [20, 21])], PropagationModel(t)
        )
        announcement = Announcement(
            p("101.100.0.0/24"), 30,
            restricted_to_monitors=frozenset({21}),
        )
        assert list(system.records_for_day([announcement], D(2020, 1, 1))) == []

    def test_unknown_origin_produces_nothing(self, system):
        records = list(system.records_for_day(
            [Announcement(p("101.100.0.0/24"), 999)], D(2020, 1, 1)
        ))
        assert records == []

    def test_as_set_origin(self, system):
        announcement = Announcement(
            p("101.100.0.0/24"), 30, as_set_origin=True
        )
        records = list(system.records_for_day([announcement], D(2020, 1, 1)))
        assert records
        for record in records:
            assert not record.as_path.origin().is_unique

    def test_all_monitors(self, system):
        assert system.all_monitors() == {10, 11, 20, 21}

    def test_duplicate_collector_rejected(self, topology):
        model = PropagationModel(topology)
        with pytest.raises(CollectorDataError):
            CollectorSystem(
                [Collector("rrc00", [10]), Collector("rrc00", [11])], model
            )


class TestArchive:
    def test_write_read_round_trip(self, system, tmp_path):
        announcements = [
            Announcement(p("101.100.0.0/24"), 30),
            Announcement(p("101.101.0.0/24"), 31),
        ]
        paths = system.write_day(announcements, D(2020, 1, 1), tmp_path)
        assert len(paths) == 2
        records = list(CollectorSystem.read_day(tmp_path, D(2020, 1, 1)))
        in_memory = list(
            system.records_for_day(announcements, D(2020, 1, 1))
        )
        assert {(r.collector, r.monitor_asn, r.prefix, str(r.as_path))
                for r in records} == {
            (r.collector, r.monitor_asn, r.prefix, str(r.as_path))
            for r in in_memory
        }

    def test_missing_day_raises(self, system, tmp_path):
        system.write_day([], D(2020, 1, 1), tmp_path)
        with pytest.raises(CollectorDataError):
            list(CollectorSystem.read_day(tmp_path, D(2020, 1, 2)))

    def test_corrupt_line_raises(self, system, tmp_path):
        system.write_day([], D(2020, 1, 1), tmp_path)
        path = tmp_path / "rrc00" / "2020-01-01.jsonl"
        path.write_text("not json\n")
        with pytest.raises(CollectorDataError):
            list(CollectorSystem.read_day(tmp_path, D(2020, 1, 1)))

    def test_single_collector_read(self, system, tmp_path):
        system.write_day(
            [Announcement(p("101.100.0.0/24"), 30)], D(2020, 1, 1), tmp_path
        )
        records = list(
            CollectorSystem.read_day(tmp_path, D(2020, 1, 1), "rrc00")
        )
        assert {r.collector for r in records} == {"rrc00"}


class TestStream:
    def test_source_stream(self, system):
        def source(date):
            return [Announcement(p("101.100.0.0/24"), 30)]

        stream = RouteStream(system, source=source)
        days = list(stream.days(D(2020, 1, 1), D(2020, 1, 4)))
        assert len(days) == 3
        assert all(len(records) == 4 for _date, records in days)
        assert stream.monitor_count() == 4

    def test_archive_stream(self, system, tmp_path):
        system.write_day(
            [Announcement(p("101.100.0.0/24"), 30)], D(2020, 1, 1), tmp_path
        )
        stream = RouteStream(system, archive_dir=tmp_path)
        assert len(list(stream.records_on(D(2020, 1, 1)))) == 4

    def test_requires_exactly_one_backend(self, system, tmp_path):
        with pytest.raises(CollectorDataError):
            RouteStream(system)
        with pytest.raises(CollectorDataError):
            RouteStream(system, source=lambda d: [], archive_dir=tmp_path)

    def test_date_range(self):
        days = list(date_range(D(2020, 1, 1), D(2020, 1, 10), 3))
        assert days == [D(2020, 1, 1), D(2020, 1, 4), D(2020, 1, 7)]
        with pytest.raises(ValueError):
            list(date_range(D(2020, 1, 1), D(2020, 1, 10), 0))

    def test_prefix_origin_pairs(self, system):
        records = list(system.records_for_day(
            [Announcement(p("101.100.0.0/24"), 30)], D(2020, 1, 1)
        ))
        pairs = prefix_origin_pairs(records)
        origin_set, monitor_count = pairs[p("101.100.0.0/24")]
        assert origin_set.sole_origin() == 30
        assert monitor_count == 4

    def test_prefix_origin_pairs_moas(self, system):
        records = list(system.records_for_day(
            [
                Announcement(p("101.100.0.0/24"), 30),
                Announcement(p("101.100.0.0/24"), 31),
            ],
            D(2020, 1, 1),
        ))
        origin_set, _count = prefix_origin_pairs(records)[p("101.100.0.0/24")]
        assert not origin_set.is_unique
        assert set(origin_set) == {30, 31}


class TestRoutingTable:
    def test_announce_withdraw(self):
        rib = RoutingTable("rrc00", 10)
        path = ASPath.from_asns([10, 20, 30])
        assert rib.announce(p("101.100.0.0/24"), path)
        assert not rib.announce(p("101.100.0.0/24"), path)  # no change
        assert rib.route_for(p("101.100.0.0/24")) == path
        assert rib.withdraw(p("101.100.0.0/24"))
        assert not rib.withdraw(p("101.100.0.0/24"))

    def test_best_match(self):
        rib = RoutingTable("rrc00", 10)
        rib.announce(p("101.100.0.0/16"), ASPath.from_asns([10, 30]))
        rib.announce(p("101.100.1.0/24"), ASPath.from_asns([10, 31]))
        match = rib.best_match(p("101.100.1.128/25"))
        assert match[0] == p("101.100.1.0/24")

    def test_reconcile_produces_updates(self):
        rib = RoutingTable("rrc00", 10)
        day1 = {
            p("101.100.0.0/24"): ASPath.from_asns([10, 30]),
            p("101.101.0.0/24"): ASPath.from_asns([10, 31]),
        }
        ann, wd = rib.reconcile(day1, D(2020, 1, 1))
        assert len(ann) == 2 and not wd
        day2 = {
            p("101.100.0.0/24"): ASPath.from_asns([10, 20, 30]),  # path change
        }
        ann, wd = rib.reconcile(day2, D(2020, 1, 2))
        assert len(ann) == 1
        assert [w.prefix for w in wd] == [p("101.101.0.0/24")]
        assert len(rib) == 1

    def test_records_dump(self):
        rib = RoutingTable("rrc00", 10)
        rib.announce(p("101.100.0.0/24"), ASPath.from_asns([10, 30]))
        records = list(rib.records(D(2020, 1, 1)))
        assert len(records) == 1
        assert records[0].collector == "rrc00"


class TestSanitize:
    def _record(self, prefix, path):
        return RouteRecord(
            collector="rrc00",
            monitor_asn=10,
            prefix=p(prefix),
            as_path=ASPath.parse(path),
            date=D(2020, 1, 1),
        )

    def test_clean_record_kept(self):
        stats = SanitizeStats()
        records = [self._record("101.100.0.0/24", "10 20 30")]
        kept = list(sanitize_records(records, stats))
        assert len(kept) == 1
        assert stats.kept == 1 and stats.removed == 0

    def test_bogon_removed(self):
        stats = SanitizeStats()
        records = [self._record("10.0.0.0/24", "10 20 30")]
        assert list(sanitize_records(records, stats)) == []
        assert stats.bogon_prefix == 1

    def test_reserved_asn_removed(self):
        stats = SanitizeStats()
        records = [self._record("101.100.0.0/24", "10 23456 30")]
        assert list(sanitize_records(records, stats)) == []
        assert stats.reserved_asn == 1

    def test_loop_removed(self):
        stats = SanitizeStats()
        records = [self._record("101.100.0.0/24", "10 20 10 30")]
        assert list(sanitize_records(records, stats)) == []
        assert stats.as_path_loop == 1

    def test_first_matching_rule_counts(self):
        stats = SanitizeStats()
        # Bogon prefix AND loop: attributed to bogon.
        records = [self._record("10.0.0.0/24", "10 20 10 30")]
        list(sanitize_records(records, stats))
        assert stats.bogon_prefix == 1 and stats.as_path_loop == 0

    def test_stats_accounting(self):
        stats = SanitizeStats()
        records = [
            self._record("101.100.0.0/24", "10 20 30"),
            self._record("10.0.0.0/24", "10 20 30"),
        ]
        list(sanitize_records(records, stats))
        assert stats.total == 2
        assert stats.as_dict()["kept"] == 1
