"""Unit tests for valley-free propagation."""

import pytest

from repro.bgp.propagation import PropagationModel
from repro.bgp.topology import ASTopology, TopologyConfig
from repro.errors import BgpError


@pytest.fixture
def topology():
    """Hand-built hierarchy with a known valley::

        10 ===== 11          tier-1 peering
        |         |
        20       21          mids
        |  \\    |
        30  31   32          stubs (31 multihomed to 20 only)
    """
    t = ASTopology()
    for asn, tier in [(10, 1), (11, 1), (20, 2), (21, 2),
                      (30, 3), (31, 3), (32, 3)]:
        t.add_as(asn, tier=tier)
    t.add_peering(10, 11)
    t.add_customer_provider(20, 10)
    t.add_customer_provider(21, 11)
    t.add_customer_provider(30, 20)
    t.add_customer_provider(31, 20)
    t.add_customer_provider(32, 21)
    return t


@pytest.fixture
def model(topology):
    return PropagationModel(topology)


class TestReceivers:
    def test_stub_route_reaches_everyone(self, model):
        # Hierarchy is fully connected through the tier-1 peering.
        receivers = model.receivers(30)
        assert receivers == {10, 11, 20, 21, 31, 32}

    def test_origin_not_a_receiver(self, model):
        assert 30 not in model.receivers(30)

    def test_tier1_route_reaches_everyone(self, model):
        assert model.receivers(10) == {11, 20, 21, 30, 31, 32}

    def test_sees(self, model):
        assert model.sees(32, 30)
        assert model.sees(10, 31)

    def test_unknown_origin(self, model):
        with pytest.raises(BgpError):
            model.receivers(999)

    def test_valley_blocked(self):
        # Two stubs under different providers with NO tier-1 link:
        # routes must not valley through the unconnected mids.
        t = ASTopology()
        for asn in (20, 21, 30, 31):
            t.add_as(asn)
        t.add_customer_provider(30, 20)
        t.add_customer_provider(31, 21)
        model = PropagationModel(t)
        assert model.receivers(30) == {20}
        assert not model.sees(31, 30)

    def test_single_peering_hop_only(self):
        # a - b peer, b - c peer: a's routes reach b but NOT c
        t = ASTopology()
        for asn in (1, 2, 3):
            t.add_as(asn)
        t.add_peering(1, 2)
        t.add_peering(2, 3)
        model = PropagationModel(t)
        assert model.receivers(1) == {2}

    def test_peer_route_goes_down_to_customers(self):
        t = ASTopology()
        for asn in (1, 2, 3):
            t.add_as(asn)
        t.add_peering(1, 2)
        t.add_customer_provider(3, 2)  # 3 is customer of 2
        model = PropagationModel(t)
        assert model.receivers(1) == {2, 3}


class TestPaths:
    def test_direct_provider_path(self, model):
        path = model.path(30, 20)
        assert path is not None
        assert list(path.asns()) == [20, 30]

    def test_cross_hierarchy_path(self, model):
        path = model.path(30, 32)
        assert path is not None
        assert list(path.asns()) == [32, 21, 11, 10, 20, 30]

    def test_path_origin_is_last(self, model):
        path = model.path(31, 10)
        assert path is not None
        assert path.origin().sole_origin() == 31
        assert path.first_hop() == 10

    def test_no_path_when_unreachable(self):
        t = ASTopology()
        t.add_as(1)
        t.add_as(2)
        model = PropagationModel(t)
        assert model.path(1, 2) is None

    def test_paths_are_valley_free(self, model):
        # Every returned path must be up*, peer?, down*.
        topology = model.topology
        for origin in topology.asns:
            for monitor in model.receivers(origin):
                path = model.path(origin, monitor)
                hops = list(path.asns())[::-1]  # origin -> monitor
                phase = "up"
                for a, b in zip(hops, hops[1:]):
                    if b in topology.providers_of(a):
                        assert phase == "up", f"valley in {hops}"
                    elif b in topology.peers_of(a):
                        assert phase == "up", f"second peering in {hops}"
                        phase = "peered"
                    else:
                        assert b in topology.customers_of(a)
                        phase = "down"

    def test_shortest_path_selected(self, model):
        # 31 -> 30 share provider 20: two hops via 20.
        path = model.path(31, 30)
        assert len(list(path.asns())) == 3

    def test_cache_and_clear(self, model):
        first = model.receivers(30)
        assert model.receivers(30) is first  # cached object
        model.clear_cache()
        assert model.receivers(30) == first


class TestVisibilityFraction:
    def test_full_visibility(self, model):
        assert model.visibility_fraction(30, frozenset({10, 11, 21})) == 1.0

    def test_partial_visibility(self):
        t = ASTopology()
        for asn in (20, 21, 30, 31):
            t.add_as(asn)
        t.add_customer_provider(30, 20)
        t.add_customer_provider(31, 21)
        model = PropagationModel(t)
        assert model.visibility_fraction(30, frozenset({20, 21})) == 0.5

    def test_empty_monitors(self, model):
        assert model.visibility_fraction(30, frozenset()) == 0.0


class TestGeneratedTopology:
    def test_stub_routes_reach_nearly_all_monitors(self):
        topology = ASTopology.generate(
            TopologyConfig(tier1_count=4, mid_count=20, stub_count=80)
        )
        model = PropagationModel(topology)
        monitors = frozenset(topology.well_connected_asns(10, seed=3))
        stubs = topology.tier_members(3)[:20]
        for stub in stubs:
            # The hierarchy is connected: full monitor visibility.
            assert model.visibility_fraction(stub, monitors) == 1.0
