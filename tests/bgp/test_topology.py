"""Unit tests for :mod:`repro.bgp.topology`."""

import pytest

from repro.bgp.topology import ASRelationship, ASTopology, TopologyConfig
from repro.errors import BgpError


@pytest.fixture
def small():
    """A tiny hand-built topology.

    ::

        10 --- 11        (tier-1 peering)
        |       |
        20      21       (mid: customers of tier-1)
        |       |
        30      31       (stubs)
    """
    t = ASTopology()
    for asn, tier in [(10, 1), (11, 1), (20, 2), (21, 2), (30, 3), (31, 3)]:
        t.add_as(asn, tier=tier)
    t.add_peering(10, 11)
    t.add_customer_provider(20, 10)
    t.add_customer_provider(21, 11)
    t.add_customer_provider(30, 20)
    t.add_customer_provider(31, 21)
    return t


class TestConstruction:
    def test_relationships(self, small):
        assert small.providers_of(20) == {10}
        assert small.customers_of(10) == {20}
        assert small.peers_of(10) == {11}
        assert small.tier_of(30) == 3

    def test_duplicate_as_rejected(self, small):
        with pytest.raises(BgpError):
            small.add_as(10)

    def test_self_relationships_rejected(self, small):
        with pytest.raises(BgpError):
            small.add_customer_provider(10, 10)
        with pytest.raises(BgpError):
            small.add_peering(10, 10)

    def test_conflicting_relationships_rejected(self, small):
        with pytest.raises(BgpError):
            small.add_peering(20, 10)  # already transit
        with pytest.raises(BgpError):
            small.add_customer_provider(10, 11)  # already peering

    def test_unknown_as(self, small):
        with pytest.raises(BgpError):
            small.providers_of(999)
        with pytest.raises(BgpError):
            small.add_customer_provider(999, 10)

    def test_edge_count(self, small):
        assert small.edge_count() == 5  # 4 transit + 1 peering
        assert len(small) == 6
        assert 10 in small and 999 not in small


class TestGenerate:
    def test_deterministic(self):
        config = TopologyConfig(tier1_count=3, mid_count=10, stub_count=30)
        a = ASTopology.generate(config)
        b = ASTopology.generate(config)
        assert a.asns == b.asns
        for asn in a.asns:
            assert a.providers_of(asn) == b.providers_of(asn)
            assert a.peers_of(asn) == b.peers_of(asn)

    def test_sizes(self):
        config = TopologyConfig(tier1_count=3, mid_count=10, stub_count=30)
        t = ASTopology.generate(config)
        assert len(t) == 43
        assert len(t.tier_members(1)) == 3
        assert len(t.tier_members(2)) == 10
        assert len(t.tier_members(3)) == 30

    def test_tier1_clique(self):
        t = ASTopology.generate(
            TopologyConfig(tier1_count=4, mid_count=5, stub_count=5)
        )
        tier1 = t.tier_members(1)
        for asn in tier1:
            assert t.peers_of(asn) >= set(tier1) - {asn}
            assert not t.providers_of(asn)  # tier-1s buy from nobody

    def test_everyone_has_a_provider_except_tier1(self):
        t = ASTopology.generate(
            TopologyConfig(tier1_count=3, mid_count=10, stub_count=30)
        )
        for asn in t.asns:
            if t.tier_of(asn) != 1:
                assert t.providers_of(asn)

    def test_validation(self):
        with pytest.raises(BgpError):
            ASTopology.generate(TopologyConfig(tier1_count=1))
        with pytest.raises(BgpError):
            ASTopology.generate(
                TopologyConfig(mid_peering_probability=2.0)
            )

    def test_well_connected_monitors(self):
        t = ASTopology.generate(
            TopologyConfig(tier1_count=3, mid_count=10, stub_count=30)
        )
        monitors = t.well_connected_asns(6, seed=1)
        assert len(monitors) == 6
        assert all(t.tier_of(m) <= 2 for m in monitors)
        assert monitors == t.well_connected_asns(6, seed=1)

    def test_too_many_monitors(self, small):
        with pytest.raises(BgpError):
            small.well_connected_asns(100)

    def test_relationship_enum(self):
        assert ASRelationship.CUSTOMER_OF.value == "customer-of"
