"""Differential tests: out-of-core store vs. the in-RAM paths.

The shard store is a pure data-plane change — a sweep fed from
memory-mapped shards must be byte-identical to one fed from live
announcement records, for both kernels, sequential and through the
mmap fan-out (workers opening the shard by path), and through the
incremental delta path.  A warm store must serve every day as a hit
without rebuilding the stream.
"""

import datetime

import pytest

from repro.delegation import (
    InferenceConfig,
    WorldStreamFactory,
    run_inference,
    write_daily_delegations,
)
from repro.obs.metrics import MetricsRegistry
from repro.simulation import World, small_scenario

SCENARIO = small_scenario()
START = SCENARIO.bgp_start
END = START + datetime.timedelta(days=10)
DAYS = (END - START).days


@pytest.fixture(scope="module")
def factory():
    return WorldStreamFactory(SCENARIO)


@pytest.fixture(scope="module")
def as2org():
    return World(SCENARIO).as2org()


def _run(factory, as2org, **kwargs):
    return run_inference(
        factory, START, END,
        InferenceConfig.extended(), as2org=as2org, **kwargs
    )


def _result_bytes(result, path):
    write_daily_delegations(result.daily, path)
    return path.read_bytes()


def _counters(result):
    return (
        result.pairs_seen,
        result.pairs_dropped_visibility,
        result.pairs_dropped_origin,
        result.delegations_dropped_same_org,
        result.sanitize_stats.bogon_prefix,
    )


@pytest.fixture(scope="module")
def baselines(factory, as2org, tmp_path_factory):
    """Storeless reference outputs, one per kernel."""
    base = tmp_path_factory.mktemp("baselines")
    outputs = {}
    for kernel in ("columnar", "object"):
        result = _run(factory, as2org, kernel=kernel, jobs=1)
        outputs[kernel] = (
            _result_bytes(result, base / f"{kernel}.jsonl"),
            _counters(result),
        )
    # The two kernels agree with each other before the store enters.
    assert outputs["columnar"] == outputs["object"]
    return outputs


class TestStoreBackedEquivalence:
    @pytest.mark.parametrize("kernel", ["columnar", "object"])
    @pytest.mark.parametrize("jobs", [1, 2], ids=["seq", "pool"])
    def test_cold_store_matches_storeless(
        self, factory, as2org, baselines, tmp_path, kernel, jobs
    ):
        metrics = MetricsRegistry()
        result = _run(
            factory, as2org, kernel=kernel, jobs=jobs,
            store_dir=tmp_path / "store", metrics=metrics,
        )
        expected_bytes, expected_counters = baselines[kernel]
        assert _result_bytes(result, tmp_path / "out.jsonl") == \
            expected_bytes
        assert _counters(result) == expected_counters
        assert result.runner_stats.store_dir == str(tmp_path / "store")
        # Cold: every day written exactly once, none served warm.
        counters = metrics.counters()
        assert counters.get("store.writes") == DAYS
        assert counters.get("store.hits") is None
        assert counters.get("store.malformed") is None

    @pytest.mark.parametrize("kernel", ["columnar", "object"])
    @pytest.mark.parametrize("jobs", [1, 2], ids=["seq", "pool"])
    def test_warm_store_matches_and_hits_every_day(
        self, factory, as2org, baselines, tmp_path, kernel, jobs
    ):
        # fanin="pickle" disables the result-shard warm path, so this
        # run must re-map every *input* shard (the path under test);
        # the result-shard short-circuit has its own test below.
        _run(
            factory, as2org, jobs=1, store_dir=tmp_path / "store",
            fanin="pickle",
        )
        metrics = MetricsRegistry()
        result = _run(
            factory, as2org, kernel=kernel, jobs=jobs,
            store_dir=tmp_path / "store", metrics=metrics,
            fanin="pickle",
        )
        assert _result_bytes(result, tmp_path / "out.jsonl") == \
            baselines[kernel][0]
        counters = metrics.counters()
        assert counters.get("store.hits") == DAYS
        assert counters.get("store.misses") is None
        assert counters.get("store.writes") is None

    @pytest.mark.parametrize("jobs", [1, 2], ids=["seq", "pool"])
    def test_warm_result_shards_skip_the_kernel(
        self, factory, as2org, baselines, tmp_path, jobs
    ):
        _run(factory, as2org, jobs=1, store_dir=tmp_path / "store")
        assert (tmp_path / "store" / "results").is_dir()
        metrics = MetricsRegistry()
        result = _run(
            factory, as2org, jobs=jobs,
            store_dir=tmp_path / "store", metrics=metrics,
        )
        assert _result_bytes(result, tmp_path / "out.jsonl") == \
            baselines["columnar"][0]
        counters = metrics.counters()
        # Every day served straight from a mapped result shard: no
        # input-shard load, no kernel pass, nothing recomputed.
        assert counters.get("store.result_hits") == DAYS
        assert counters.get("store.hits") is None
        assert counters.get("store.writes") is None
        assert counters.get("runner.cache.hits") == DAYS

    def test_store_is_shared_across_kernels_and_configs(
        self, factory, as2org, tmp_path
    ):
        # Warm with the columnar extended run, then read every day
        # back under the object kernel and the baseline config: the
        # content address excludes both.
        _run(factory, as2org, jobs=1, store_dir=tmp_path / "store")
        metrics = MetricsRegistry()
        run_inference(
            factory, START, END,
            InferenceConfig.baseline(), as2org=as2org,
            kernel="object", jobs=1,
            store_dir=tmp_path / "store", metrics=metrics,
        )
        assert metrics.counters().get("store.hits") == DAYS


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("jobs", [1, 2], ids=["seq", "pool"])
    def test_incremental_store_backed_matches(
        self, factory, as2org, baselines, tmp_path, jobs
    ):
        cold = _run(
            factory, as2org, jobs=jobs, incremental=True,
            store_dir=tmp_path / "store",
        )
        assert _result_bytes(cold, tmp_path / "cold.jsonl") == \
            baselines["columnar"][0]
        warm = _run(
            factory, as2org, jobs=jobs, incremental=True,
            store_dir=tmp_path / "store",
        )
        assert _result_bytes(warm, tmp_path / "warm.jsonl") == \
            baselines["columnar"][0]

    def test_store_composes_with_the_result_cache(
        self, factory, as2org, baselines, tmp_path
    ):
        # Both layers on: first run fills both, second run is served
        # entirely by the result cache (which sits in front).
        kwargs = dict(
            jobs=1,
            cache_dir=tmp_path / "cache",
            store_dir=tmp_path / "store",
        )
        _run(factory, as2org, **kwargs)
        metrics = MetricsRegistry()
        result = _run(factory, as2org, metrics=metrics, **kwargs)
        assert _result_bytes(result, tmp_path / "out.jsonl") == \
            baselines["columnar"][0]
        counters = metrics.counters()
        assert counters.get("runner.cache.hits") == DAYS
        assert counters.get("store.misses") is None
