"""Shard-store failure matrix: every way a shard file can be wrong.

Contract: a warm shard maps zero-copy and round-trips the table
exactly; everything else — torn tails, foreign magic, a v2 cache
entry dropped into the store, an unmappable file, a misdated rename —
loads as a miss (never as a wrong table), bumps ``store.malformed``,
and the day is recomputed.  Writes are atomic, so concurrent writers
race benignly and readers only ever see complete files.
"""

import concurrent.futures
import datetime
import os
import sys
import time

import pytest

from repro.bgp.rib import ROW_BYTES, PairTable
from repro.delegation.runner import _encode_payload
from repro.netbase import lpm
from repro.obs.metrics import MetricsRegistry
from repro.store.shard import (
    _SHARD_HEADER,
    SHARD_SCHEMA,
    ShardStore,
    atomic_write_bytes,
    sweep_stale_temporaries,
)

D = datetime.date
DAY = D(2020, 3, 14)
FINGERPRINT = "f" * 64


def _table(count=5):
    aggregate = {}
    for index in range(count):
        key = ((0x0A000000 + index * 256) << 6) | 24
        aggregate[key] = (65000 + index, index % 2 == 0, 5 + index)
    return PairTable.from_aggregate(aggregate)


@pytest.fixture()
def store(tmp_path):
    return ShardStore(
        tmp_path / "store", FINGERPRINT, metrics=MetricsRegistry()
    )


class TestRoundTrip:
    def test_write_load_round_trip(self, store):
        table = _table()
        path = store.write(DAY, table, total_monitors=24)
        assert path.stat().st_size == \
            _SHARD_HEADER.size + len(table) * ROW_BYTES
        loaded, total_monitors = store.load(DAY)
        assert total_monitors == 24
        assert loaded.equals(table)
        assert store.metrics.counter("store.writes") == 1
        assert store.metrics.counter("store.hits") == 1
        assert store.metrics.counter("store.malformed") == 0

    def test_loads_are_zero_copy_views(self, store):
        store.write(DAY, _table(), total_monitors=24)
        loaded, _ = store.load(DAY)
        if sys.byteorder == "little":
            assert loaded.is_buffer_backed
            assert isinstance(loaded.keys, memoryview)
            # The view is read-only and materializes to equal arrays.
            with pytest.raises(TypeError):
                loaded.keys[0] = 0
        copy = loaded.materialize()
        assert not copy.is_buffer_backed
        assert copy.equals(loaded)

    def test_empty_day_round_trips(self, store):
        table = _table(count=0)
        store.write(DAY, table, total_monitors=24)
        loaded, total_monitors = store.load(DAY)
        assert len(loaded) == 0
        assert total_monitors == 24

    def test_mapped_kb_gauge_accumulates(self, store):
        store.write(DAY, _table(64), total_monitors=24)
        store.load(DAY)
        store.load(DAY)
        size = store.path(DAY).stat().st_size
        assert store.metrics.gauge("store.mapped_kb") == \
            (2 * size) // 1024

    def test_key_excludes_config_and_kernel(self, store, tmp_path):
        # Same inputs, different directory: identical content address.
        other = ShardStore(tmp_path / "elsewhere", FINGERPRINT)
        assert store.key(DAY) == other.key(DAY)
        # Different input data: different address.
        foreign = ShardStore(tmp_path / "store", "0" * 64)
        assert store.key(DAY) != foreign.key(DAY)
        assert store.key(DAY) != store.key(DAY + datetime.timedelta(1))


class TestFailureMatrix:
    def _assert_malformed_miss(self, store, expected=1):
        assert store.load(DAY) is None
        assert store.metrics.counter("store.malformed") == expected
        assert store.metrics.counter("store.misses") == expected
        assert store.metrics.counter("store.hits") == 0

    def test_missing_day_is_a_plain_miss(self, store):
        assert store.load(DAY) is None
        assert store.metrics.counter("store.misses") == 1
        assert store.metrics.counter("store.malformed") == 0

    def test_torn_tail(self, store):
        path = store.write(DAY, _table(), total_monitors=24)
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        self._assert_malformed_miss(store)

    def test_appended_garbage(self, store):
        path = store.write(DAY, _table(), total_monitors=24)
        with open(path, "ab") as handle:
            handle.write(b"\x00" * 7)
        self._assert_malformed_miss(store)

    def test_truncated_below_header(self, store):
        path = store.write(DAY, _table(), total_monitors=24)
        path.write_bytes(path.read_bytes()[: _SHARD_HEADER.size - 1])
        self._assert_malformed_miss(store)

    def test_zero_length_file_is_unmappable(self, store):
        path = store.write(DAY, _table(), total_monitors=24)
        path.write_bytes(b"")
        self._assert_malformed_miss(store)

    def test_foreign_magic(self, store):
        path = store.write(DAY, _table(), total_monitors=24)
        data = bytearray(path.read_bytes())
        data[:8] = b"NOTSHARD"
        path.write_bytes(bytes(data))
        self._assert_malformed_miss(store)

    def test_foreign_schema(self, store):
        path = store.write(DAY, _table(), total_monitors=24)
        data = bytearray(path.read_bytes())
        data[8:10] = (SHARD_SCHEMA + 1).to_bytes(2, "little")
        path.write_bytes(bytes(data))
        self._assert_malformed_miss(store)

    def test_v2_cache_entry_in_the_store(self, store):
        # A result-cache file dropped into the shard store (the magic
        # collision the RPSHARD3 magic + schema check exists for).
        entry = _encode_payload({
            "date": DAY,
            "delegations": [(0x0A000000, 24, 65001, 65002)],
            "counters": {
                "pairs_seen": 10,
                "pairs_dropped_visibility": 1,
                "pairs_dropped_origin": 2,
                "delegations_dropped_same_org": 3,
                "bogon_prefix": 0,
            },
        })
        path = store.path(DAY)
        path.parent.mkdir(parents=True)
        path.write_bytes(entry)
        self._assert_malformed_miss(store)

    def test_misdated_shard(self, store):
        # Rename a valid shard onto another day's address: the header
        # date no longer matches the day being asked for.
        source = store.write(
            DAY + datetime.timedelta(days=1), _table(), total_monitors=24
        )
        target = store.path(DAY)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(source.read_bytes())
        self._assert_malformed_miss(store)

    def test_corrupt_shard_does_not_poison_rewrite(self, store):
        path = store.write(DAY, _table(), total_monitors=24)
        path.write_bytes(b"garbage")
        assert store.load(DAY) is None
        table = _table()
        store.write(DAY, table, total_monitors=24)
        loaded, _ = store.load(DAY)
        assert loaded.equals(table)


class TestAtomicWrites:
    def test_temporary_name_appends_to_the_full_name(self, tmp_path):
        # Regression: with_suffix-built temporaries collide for names
        # differing only in suffix and leak on crash; the temporary
        # must embed the full file name and the writer pid.
        calls = []
        original = os.replace

        def spy(src, dst):
            calls.append((os.fspath(src), os.fspath(dst)))
            original(src, dst)

        target = tmp_path / "ab" / "abcd.shard"
        try:
            os.replace = spy
            atomic_write_bytes(target, b"payload")
        finally:
            os.replace = original
        (src, dst) = calls[0]
        assert dst == str(target)
        assert src == str(
            target.with_name(f"abcd.shard.tmp.{os.getpid()}")
        )
        assert target.read_bytes() == b"payload"
        assert list(tmp_path.rglob("*.tmp.*")) == []

    def test_interrupted_write_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "abcd.shard"
        target.write_bytes(b"old")
        original = os.replace

        def crash(src, dst):
            raise OSError("simulated crash before rename")

        try:
            os.replace = crash
            with pytest.raises(OSError):
                atomic_write_bytes(target, b"new")
        finally:
            os.replace = original
        assert target.read_bytes() == b"old"
        leaked = list(tmp_path.glob("*.tmp.*"))
        assert len(leaked) == 1  # swept later, not on this code path

    def test_concurrent_writers_never_expose_partial_files(self, tmp_path):
        store = ShardStore(
            tmp_path / "store", FINGERPRINT, metrics=MetricsRegistry()
        )
        table = _table(32)
        expected = table.to_bytes()
        with concurrent.futures.ProcessPoolExecutor(2) as pool:
            futures = [
                pool.submit(
                    _hammer_writes, str(tmp_path / "store"), DAY.toordinal()
                )
                for _ in range(2)
            ]
            deadline = time.monotonic() + 10.0
            observed = 0
            while time.monotonic() < deadline and not all(
                future.done() for future in futures
            ):
                loaded = store.load(DAY)
                if loaded is not None:
                    loaded_table, total = loaded
                    assert total == 24
                    assert loaded_table.materialize().to_bytes() == expected
                    observed += 1
            for future in futures:
                future.result(timeout=30)
        assert store.metrics.counter("store.malformed") == 0
        assert observed > 0
        final, _ = store.load(DAY)
        assert final.materialize().to_bytes() == expected


def _hammer_writes(store_dir, ordinal):
    store = ShardStore(store_dir, FINGERPRINT, sweep=False)
    table = _table(32)
    for _ in range(50):
        store.write(
            datetime.date.fromordinal(ordinal), table, total_monitors=24
        )


class TestStaleTemporarySweep:
    def _make_tmp(self, base, name, age_seconds):
        path = base / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"leftover")
        old = time.time() - age_seconds
        os.utime(path, (old, old))
        return path

    def test_sweeps_old_keeps_young(self, tmp_path):
        stale = self._make_tmp(
            tmp_path, "ab/abcd.shard.tmp.123", age_seconds=7200
        )
        young = self._make_tmp(
            tmp_path, "cd/cdef.shard.tmp.456", age_seconds=10
        )
        metrics = MetricsRegistry()
        removed = sweep_stale_temporaries(tmp_path, metrics=metrics)
        assert removed == 1
        assert not stale.exists()
        assert young.exists()
        assert metrics.counter("store.tmp_swept") == 1

    def test_store_open_sweeps_by_default(self, tmp_path):
        stale = self._make_tmp(
            tmp_path / "store", "ab/abcd.shard.tmp.123", age_seconds=7200
        )
        metrics = MetricsRegistry()
        ShardStore(tmp_path / "store", FINGERPRINT, metrics=metrics)
        assert not stale.exists()
        assert metrics.counter("store.tmp_swept") == 1

    def test_worker_open_does_not_sweep(self, tmp_path):
        stale = self._make_tmp(
            tmp_path / "store", "ab/abcd.shard.tmp.123", age_seconds=7200
        )
        ShardStore(tmp_path / "store", FINGERPRINT, sweep=False)
        assert stale.exists()

    def test_missing_directory_is_a_noop(self, tmp_path):
        assert sweep_stale_temporaries(tmp_path / "absent") == 0


class TestCodecItemsizeGuard:
    def test_current_platform_passes(self):
        lpm.require_codec_itemsizes()

    def test_mismatch_raises_with_the_offending_typecode(self, monkeypatch):
        monkeypatch.setattr(lpm, "_CODEC_ITEMSIZES", (("I", 8),))
        with pytest.raises(RuntimeError, match="'I'"):
            lpm.require_codec_itemsizes()
