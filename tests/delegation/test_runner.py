"""Tests for the parallel, cached inference runner.

The contract under test: the runner's output is byte-identical to the
sequential pipeline, the cache keys follow the configuration (hits
when only step (v) changes, misses when steps (i)-(iv) change), and
worker failures surface as :class:`ReproError` instead of hanging.
"""

import dataclasses
import datetime
import json
import os
import pathlib

import pytest

from repro.delegation import (
    ArchiveStreamFactory,
    DelegationInference,
    InferenceConfig,
    WorldStreamFactory,
    run_inference,
    write_daily_delegations,
)
from repro.delegation.consistency import ConsistencyRule
from repro.errors import ReproError
from repro.simulation import World, small_scenario

D = datetime.date

SCENARIO = small_scenario()
START = SCENARIO.bgp_start
END = START + datetime.timedelta(days=15)


@pytest.fixture(scope="module")
def world():
    return World(SCENARIO)


@pytest.fixture(scope="module")
def as2org(world):
    return world.as2org()


@pytest.fixture(scope="module")
def sequential(world, as2org):
    inference = DelegationInference(InferenceConfig.extended(), as2org)
    return inference.infer_range(world.stream(), START, END)


class _ExplodingStreamFactory:
    """Raises inside the worker while building its stream."""

    def __call__(self):
        raise RuntimeError("injected stream failure")


class _DyingStreamFactory:
    """Kills the worker process outright (breaks the pool)."""

    def __call__(self):
        os._exit(13)


def _daily_bytes(result, path):
    write_daily_delegations(result.daily, path)
    return pathlib.Path(path).read_bytes()


class TestEquivalence:
    def test_parallel_is_byte_identical_to_sequential(
        self, sequential, as2org, tmp_path
    ):
        parallel = run_inference(
            WorldStreamFactory(SCENARIO), START, END,
            InferenceConfig.extended(), as2org=as2org, jobs=2,
        )
        assert _daily_bytes(parallel, tmp_path / "par.jsonl") == \
            _daily_bytes(sequential, tmp_path / "seq.jsonl")
        assert parallel.observation_dates == sequential.observation_dates

    def test_counters_match_sequential(self, sequential, as2org):
        parallel = run_inference(
            WorldStreamFactory(SCENARIO), START, END,
            InferenceConfig.extended(), as2org=as2org, jobs=2,
        )
        assert parallel.pairs_seen == sequential.pairs_seen
        assert (parallel.pairs_dropped_visibility
                == sequential.pairs_dropped_visibility)
        assert (parallel.pairs_dropped_origin
                == sequential.pairs_dropped_origin)
        assert (parallel.delegations_dropped_same_org
                == sequential.delegations_dropped_same_org)
        assert (parallel.sanitize_stats.bogon_prefix
                == sequential.sanitize_stats.bogon_prefix)

    def test_in_process_path_matches(self, sequential, as2org, tmp_path):
        # jobs=1 never forks, so unpicklable factories are fine here.
        single = run_inference(
            lambda: World(SCENARIO).stream(), START, END,
            InferenceConfig.extended(), as2org=as2org, jobs=1,
        )
        assert _daily_bytes(single, tmp_path / "one.jsonl") == \
            _daily_bytes(sequential, tmp_path / "seq.jsonl")

    def test_step_days_grid(self, as2org):
        result = run_inference(
            WorldStreamFactory(SCENARIO), START, END,
            InferenceConfig.extended(), as2org=as2org,
            jobs=1, step_days=7,
        )
        expected = [START + datetime.timedelta(days=7 * i)
                    for i in range(3)]
        assert result.observation_dates == expected

    def test_runner_stats_attached(self, as2org):
        result = run_inference(
            WorldStreamFactory(SCENARIO), START, END,
            InferenceConfig.extended(), as2org=as2org, jobs=2,
        )
        stats = result.runner_stats
        assert stats.jobs == 2
        assert stats.days_total == 15
        assert stats.days_computed == 15
        assert stats.days_from_cache == 0
        assert stats.cache_dir is None


class TestCache:
    def test_cold_then_warm(self, as2org, tmp_path):
        factory = WorldStreamFactory(SCENARIO)
        cache = tmp_path / "cache"
        cold = run_inference(
            factory, START, END, InferenceConfig.extended(),
            as2org=as2org, jobs=1, cache_dir=cache,
        )
        assert cold.runner_stats.days_computed == 15
        assert cold.runner_stats.days_from_cache == 0
        warm = run_inference(
            factory, START, END, InferenceConfig.extended(),
            as2org=as2org, jobs=1, cache_dir=cache,
        )
        assert warm.runner_stats.days_computed == 0
        assert warm.runner_stats.days_from_cache == 15
        assert warm.runner_stats.cache_hit_rate == 1.0
        assert warm.daily.dates() == cold.daily.dates()
        for date in warm.daily.dates():
            assert warm.daily.on(date) == cold.daily.on(date)

    def test_config_change_misses(self, as2org, tmp_path):
        factory = WorldStreamFactory(SCENARIO)
        cache = tmp_path / "cache"
        run_inference(
            factory, START, END, InferenceConfig.extended(),
            as2org=as2org, jobs=1, cache_dir=cache,
        )
        changed = run_inference(
            factory, START, END,
            InferenceConfig(visibility_threshold=0.25),
            as2org=as2org, jobs=1, cache_dir=cache,
        )
        assert changed.runner_stats.days_from_cache == 0
        assert changed.runner_stats.days_computed == 15

    def test_consistency_rule_change_still_hits(self, as2org, tmp_path):
        # Step (v) runs after the fan-in: sweeping (M, N) must reuse
        # every per-day entry.
        factory = WorldStreamFactory(SCENARIO)
        cache = tmp_path / "cache"
        run_inference(
            factory, START, END, InferenceConfig.extended(),
            as2org=as2org, jobs=1, cache_dir=cache,
        )
        swept = run_inference(
            factory, START, END,
            InferenceConfig(consistency_rule=ConsistencyRule(5, 1)),
            as2org=as2org, jobs=1, cache_dir=cache,
        )
        assert swept.runner_stats.days_from_cache == 15

    def test_input_change_misses(self, as2org, tmp_path):
        cache = tmp_path / "cache"
        run_inference(
            WorldStreamFactory(SCENARIO), START, END,
            InferenceConfig.extended(), as2org=as2org,
            jobs=1, cache_dir=cache,
        )
        other_scenario = dataclasses.replace(SCENARIO, seed=7)
        other_world = World(other_scenario)
        other = run_inference(
            WorldStreamFactory(other_scenario), START, END,
            InferenceConfig.extended(), as2org=other_world.as2org(),
            jobs=1, cache_dir=cache,
        )
        assert other.runner_stats.days_from_cache == 0

    def test_corrupt_entry_recomputed(self, as2org, tmp_path):
        factory = WorldStreamFactory(SCENARIO)
        cache = tmp_path / "cache"
        first = run_inference(
            factory, START, END, InferenceConfig.extended(),
            as2org=as2org, jobs=1, cache_dir=cache,
        )
        entries = sorted(cache.rglob("*.bin"))
        assert len(entries) == 15
        # Truncated body and a foreign (old-JSON-era) payload must
        # both read as misses, never as wrong results.
        entries[0].write_bytes(entries[0].read_bytes()[:-3])
        entries[1].write_text(json.dumps({"schema": 1}), encoding="utf-8")
        healed = run_inference(
            factory, START, END, InferenceConfig.extended(),
            as2org=as2org, jobs=1, cache_dir=cache,
        )
        assert healed.runner_stats.days_from_cache == 13
        assert healed.runner_stats.days_computed == 2
        for date in first.daily.dates():
            assert healed.daily.on(date) == first.daily.on(date)

    def test_cache_requires_fingerprint(self, as2org, tmp_path):
        with pytest.raises(ReproError, match="fingerprint"):
            run_inference(
                lambda: World(SCENARIO).stream(), START, END,
                InferenceConfig.extended(), as2org=as2org,
                jobs=1, cache_dir=tmp_path / "cache",
            )


class TestFailureModes:
    def test_same_org_requires_as2org(self):
        with pytest.raises(ReproError, match="as2org"):
            run_inference(
                WorldStreamFactory(SCENARIO), START, END,
                InferenceConfig.extended(), jobs=1,
            )

    def test_bad_jobs_rejected(self, as2org):
        with pytest.raises(ReproError, match="jobs"):
            run_inference(
                WorldStreamFactory(SCENARIO), START, END,
                InferenceConfig.extended(), as2org=as2org, jobs=0,
            )

    def test_worker_exception_surfaces_as_repro_error(self):
        with pytest.raises(ReproError, match="worker failed"):
            run_inference(
                _ExplodingStreamFactory(), START,
                START + datetime.timedelta(days=4),
                InferenceConfig.baseline(), jobs=2,
            )

    def test_worker_hard_crash_surfaces_as_repro_error(self):
        # A worker dying mid-task breaks the whole pool; the runner
        # must translate that into ReproError, not hang or leak the
        # raw BrokenProcessPool.
        with pytest.raises(ReproError, match="worker failed"):
            run_inference(
                _DyingStreamFactory(), START,
                START + datetime.timedelta(days=4),
                InferenceConfig.baseline(), jobs=2,
            )


class _ReplaySystemFactory:
    """Rebuild the small world's collector system in any process."""

    def __call__(self):
        return World(SCENARIO).collector_system()


class TestArchiveFactory:
    def test_archive_backed_run(self, world, tmp_path):
        archive = tmp_path / "archive"
        source = world.announcement_source()
        dates = [START + datetime.timedelta(days=i) for i in range(3)]
        for date in dates:
            world.collector_system().write_day(
                source(date), date, archive
            )
        factory = ArchiveStreamFactory(
            str(archive), _ReplaySystemFactory()
        )
        result = run_inference(
            factory, START, START + datetime.timedelta(days=3),
            InferenceConfig.baseline(), jobs=1,
            cache_dir=tmp_path / "cache",
        )
        assert result.observation_dates == dates
        # Same days straight from the in-memory stream must agree.
        reference = DelegationInference(
            InferenceConfig.baseline()
        ).infer_range(
            world.stream(), START, START + datetime.timedelta(days=3)
        )
        for date in dates:
            assert result.daily.on(date) == reference.daily.on(date)

    def test_archive_fingerprint_tracks_content(self, world, tmp_path):
        archive = tmp_path / "archive"
        source = world.announcement_source()
        world.collector_system().write_day(source(START), START, archive)
        factory = ArchiveStreamFactory(
            str(archive), _ReplaySystemFactory()
        )
        before = factory.fingerprint()
        next_day = START + datetime.timedelta(days=1)
        world.collector_system().write_day(
            source(next_day), next_day, archive
        )
        assert factory.fingerprint() != before
