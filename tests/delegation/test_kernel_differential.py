"""Differential tests: columnar kernel vs. the object reference path.

The columnar kernel is a pure performance change — its outputs must be
byte-identical to the object/trie path, with every attrition counter
(bogon, visibility, non-unique origin, same-org) in exact agreement,
both through the sequential API and through the parallel runner.
"""

import datetime

import pytest

from repro.bgp.collector import Collector, CollectorSystem
from repro.bgp.message import Announcement
from repro.bgp.propagation import PropagationModel
from repro.bgp.stream import RouteStream
from repro.bgp.topology import ASTopology
from repro.delegation import (
    DelegationInference,
    InferenceConfig,
    WorldStreamFactory,
    run_inference,
    write_daily_delegations,
)
from repro.errors import ReproError
from repro.netbase.prefix import IPv4Prefix
from repro.simulation import World, small_scenario

D = datetime.date

SCENARIO = small_scenario()
START = SCENARIO.bgp_start
END = START + datetime.timedelta(days=15)


@pytest.fixture(scope="module")
def world():
    return World(SCENARIO)


@pytest.fixture(scope="module")
def as2org(world):
    return world.as2org()


def _counters(result):
    return (
        result.pairs_seen,
        result.pairs_dropped_visibility,
        result.pairs_dropped_origin,
        result.delegations_dropped_same_org,
        result.sanitize_stats.bogon_prefix,
    )


def _daily_bytes(result, path):
    write_daily_delegations(result.daily, path)
    return path.read_bytes()


class TestSequentialDifferential:
    @pytest.mark.parametrize(
        "config",
        [InferenceConfig.baseline(), InferenceConfig.extended()],
        ids=["baseline", "extended"],
    )
    def test_byte_identical_and_counter_parity(
        self, world, as2org, tmp_path, config
    ):
        columnar = DelegationInference(
            config, as2org, kernel="columnar"
        ).infer_range(world.stream(), START, END)
        reference = DelegationInference(
            config, as2org, kernel="object"
        ).infer_range(world.stream(), START, END)
        assert _daily_bytes(columnar, tmp_path / "col.jsonl") == \
            _daily_bytes(reference, tmp_path / "obj.jsonl")
        assert _counters(columnar) == _counters(reference)
        assert columnar.observation_dates == reference.observation_dates

    def test_kernel_property_and_validation(self, as2org):
        baseline = InferenceConfig.baseline()
        assert DelegationInference(
            baseline, kernel="object"
        ).kernel == "object"
        assert DelegationInference(baseline).kernel == "columnar"
        with pytest.raises(ReproError, match="kernel"):
            DelegationInference(baseline, kernel="simd")


class TestBogonDifferential:
    """A day containing bogon routes, entering un-sanitized.

    Exercises the two-pointer interval filter against the per-record
    ``is_bogon`` check, including the counter ordering contract
    (bogons drop before ``pairs_seen`` is charged).
    """

    @pytest.fixture()
    def stream(self):
        t = ASTopology()
        for asn, tier in [(10, 1), (20, 2), (30, 3)]:
            t.add_as(asn, tier=tier)
        t.add_customer_provider(20, 10)
        t.add_customer_provider(30, 20)
        system = CollectorSystem(
            [Collector("rrc00", [10, 20])], PropagationModel(t)
        )
        announcements = [
            Announcement(IPv4Prefix.parse("101.100.0.0/16"), 20),
            Announcement(IPv4Prefix.parse("101.100.7.0/24"), 30),
            # Bogon space: must be dropped (and counted) by both paths.
            Announcement(IPv4Prefix.parse("10.1.0.0/16"), 30),
            Announcement(IPv4Prefix.parse("192.168.0.0/24"), 20),
            Announcement(IPv4Prefix.parse("224.0.0.0/8"), 20),
        ]
        return RouteStream(system, source=lambda date: announcements)

    def test_unsanitized_day_parity(self, stream):
        from repro.delegation import DailyDelegations, InferenceResult

        config = InferenceConfig.baseline()
        results = {}
        for kernel in ("columnar", "object"):
            inference = DelegationInference(config, kernel=kernel)
            pairs = stream.pairs_on(D(2020, 1, 1))
            result = InferenceResult(DailyDelegations(), config)
            delegations = inference.infer_day_from_pairs(
                pairs, stream.monitor_count(), D(2020, 1, 1), result,
                pre_sanitized=False,
            )
            results[kernel] = (delegations, result)
        columnar, reference = results["columnar"], results["object"]
        assert sorted(d.key() for d in columnar[0]) == \
            sorted(d.key() for d in reference[0])
        assert _counters(columnar[1]) == _counters(reference[1])
        assert columnar[1].sanitize_stats.bogon_prefix == 3

    def test_pre_sanitized_skips_bogon_filter(self, stream):
        from repro.delegation import DailyDelegations, InferenceResult

        config = InferenceConfig.baseline()
        inference = DelegationInference(config)
        pairs = stream.pairs_on(D(2020, 1, 1))
        result = InferenceResult(DailyDelegations(), config)
        inference.infer_day_from_pairs(
            pairs, stream.monitor_count(), D(2020, 1, 1), result,
            pre_sanitized=True,
        )
        assert result.sanitize_stats.bogon_prefix == 0
        assert result.pairs_seen == len(pairs)


class TestRunnerDifferential:
    def test_parallel_runner_matches_across_kernels(
        self, as2org, tmp_path
    ):
        outputs = {}
        for kernel in ("columnar", "object"):
            result = run_inference(
                WorldStreamFactory(SCENARIO), START, END,
                InferenceConfig.extended(), as2org=as2org,
                jobs=2, kernel=kernel,
            )
            outputs[kernel] = (
                _daily_bytes(result, tmp_path / f"{kernel}.jsonl"),
                _counters(result),
            )
        assert outputs["columnar"] == outputs["object"]

    def test_kernels_share_cache_entries(self, as2org, tmp_path):
        # Byte-identical outputs mean the kernel must NOT participate
        # in the cache key: a columnar run primes the object run.
        cache = tmp_path / "cache"
        factory = WorldStreamFactory(SCENARIO)
        run_inference(
            factory, START, END, InferenceConfig.extended(),
            as2org=as2org, jobs=1, cache_dir=cache, kernel="columnar",
        )
        warm = run_inference(
            factory, START, END, InferenceConfig.extended(),
            as2org=as2org, jobs=1, cache_dir=cache, kernel="object",
        )
        assert warm.runner_stats.days_from_cache == 15
        assert warm.runner_stats.days_computed == 0

    def test_bad_kernel_rejected(self, as2org):
        with pytest.raises(ReproError, match="kernel"):
            run_inference(
                WorldStreamFactory(SCENARIO), START, END,
                InferenceConfig.extended(), as2org=as2org,
                jobs=1, kernel="vector",
            )


class TestJobsOneStaysInline:
    def test_jobs_one_never_spawns_pool(self, as2org, monkeypatch):
        # The jobs=1 fast path must not pay pool spawn + pickling
        # costs: creating an executor at all is the regression.
        import concurrent.futures

        def _boom(*args, **kwargs):
            raise AssertionError("jobs=1 must not create a process pool")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _boom
        )
        result = run_inference(
            WorldStreamFactory(SCENARIO), START, END,
            InferenceConfig.extended(), as2org=as2org, jobs=1,
        )
        assert result.runner_stats.days_computed == 15

    def test_single_day_window_stays_inline(self, as2org, monkeypatch):
        import concurrent.futures

        def _boom(*args, **kwargs):
            raise AssertionError(
                "single-day window must not create a process pool"
            )

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _boom
        )
        result = run_inference(
            WorldStreamFactory(SCENARIO), START,
            START + datetime.timedelta(days=1),
            InferenceConfig.extended(), as2org=as2org, jobs=4,
        )
        assert result.runner_stats.days_computed == 1
