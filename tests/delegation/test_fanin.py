"""Tests for the zero-copy result fan-in and per-/8 day sharding.

The contract: ``fanin="shm"`` and ``day_shards > 1`` are pure
transport/scheduling changes — output bytes and attrition counters are
identical to the pickled, whole-day baseline for both kernels, with or
without the stores — and no exit path (completion, worker crash,
interrupt) leaks a shared-memory segment or trips the resource
tracker.
"""

import datetime
import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.delegation import (
    InferenceConfig,
    WorldStreamFactory,
    run_inference,
    write_daily_delegations,
)
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.simulation import World, small_scenario

SCENARIO = small_scenario()
START = SCENARIO.bgp_start
END = START + datetime.timedelta(days=8)

SHM_DIR = pathlib.Path("/dev/shm")


@pytest.fixture(scope="module")
def factory():
    return WorldStreamFactory(SCENARIO)


@pytest.fixture(scope="module")
def as2org():
    return World(SCENARIO).as2org()


def _run(factory, as2org, **kwargs):
    return run_inference(
        factory, START, END,
        InferenceConfig.extended(), as2org=as2org, **kwargs
    )


def _daily_bytes(result, path):
    write_daily_delegations(result.daily, path)
    return pathlib.Path(path).read_bytes()


def _counters(result):
    return (
        result.pairs_seen,
        result.pairs_dropped_visibility,
        result.pairs_dropped_origin,
        result.delegations_dropped_same_org,
        result.sanitize_stats.bogon_prefix,
    )


def _segments():
    """The fan-in segments currently named in /dev/shm."""
    if not SHM_DIR.is_dir():
        return set()
    return {path.name for path in SHM_DIR.glob("rpfi*")}


@pytest.fixture(scope="module")
def pickle_baseline(factory, as2org, tmp_path_factory):
    base = tmp_path_factory.mktemp("fanin-baseline")
    outputs = {}
    for kernel in ("columnar", "object"):
        result = _run(
            factory, as2org, jobs=2, kernel=kernel, fanin="pickle"
        )
        outputs[kernel] = (
            _daily_bytes(result, base / f"{kernel}.jsonl"),
            _counters(result),
        )
    assert outputs["columnar"] == outputs["object"]
    return outputs


class TestByteIdentity:
    @pytest.mark.parametrize("kernel", ["columnar", "object"])
    def test_shm_matches_pickle(
        self, factory, as2org, pickle_baseline, tmp_path, kernel
    ):
        result = _run(
            factory, as2org, jobs=2, kernel=kernel, fanin="shm"
        )
        assert _daily_bytes(result, tmp_path / "out.jsonl") == \
            pickle_baseline[kernel][0]
        assert _counters(result) == pickle_baseline[kernel][1]

    @pytest.mark.parametrize("day_shards", [2, 3, 7])
    def test_day_shards_match_whole_days(
        self, factory, as2org, pickle_baseline, tmp_path, day_shards
    ):
        result = _run(
            factory, as2org, jobs=2, day_shards=day_shards,
        )
        assert _daily_bytes(result, tmp_path / "out.jsonl") == \
            pickle_baseline["columnar"][0]
        assert _counters(result) == pickle_baseline["columnar"][1]

    def test_day_shards_compose_with_store_and_cache(
        self, factory, as2org, pickle_baseline, tmp_path
    ):
        kwargs = dict(
            jobs=2, day_shards=3,
            store_dir=tmp_path / "store", cache_dir=tmp_path / "cache",
        )
        cold = _run(factory, as2org, **kwargs)
        assert _daily_bytes(cold, tmp_path / "cold.jsonl") == \
            pickle_baseline["columnar"][0]
        metrics = MetricsRegistry()
        warm = _run(factory, as2org, metrics=metrics, **kwargs)
        assert _daily_bytes(warm, tmp_path / "warm.jsonl") == \
            pickle_baseline["columnar"][0]
        assert _counters(warm) == pickle_baseline["columnar"][1]
        # Warm days come off mapped result shards, not the kernel.
        days = (END - START).days
        assert metrics.counters().get("store.result_hits") == days

    def test_incremental_shm_seed_matches(
        self, factory, as2org, pickle_baseline, tmp_path
    ):
        metrics = MetricsRegistry()
        result = _run(
            factory, as2org, jobs=2, incremental=True, fanin="shm",
            metrics=metrics,
        )
        assert _daily_bytes(result, tmp_path / "inc.jsonl") == \
            pickle_baseline["columnar"][0]
        # The seed crossed via a segment, so nothing materialized.
        assert metrics.counters().get("pairtable.materialized", 0) == 0

    def test_incremental_pickle_seed_materializes(
        self, factory, as2org, pickle_baseline, tmp_path
    ):
        metrics = MetricsRegistry()
        result = _run(
            factory, as2org, jobs=2, incremental=True, fanin="pickle",
            metrics=metrics,
        )
        assert _daily_bytes(result, tmp_path / "inc.jsonl") == \
            pickle_baseline["columnar"][0]


class TestTransportAccounting:
    def test_shm_run_reports_segment_bytes(self, factory, as2org):
        metrics = MetricsRegistry()
        _run(factory, as2org, jobs=2, fanin="shm", metrics=metrics)
        gauges = metrics.gauges()
        assert gauges.get("fanin.shm_kb", 0) > 0
        assert gauges.get("fanin.pickled_kb") == 0
        assert metrics.counters().get("pairtable.materialized", 0) == 0

    def test_pickle_run_reports_pickled_bytes(self, factory, as2org):
        metrics = MetricsRegistry()
        _run(factory, as2org, jobs=2, fanin="pickle", metrics=metrics)
        gauges = metrics.gauges()
        assert gauges.get("fanin.shm_kb") == 0
        assert gauges.get("fanin.pickled_kb", 0) > 0


class TestValidation:
    def test_unknown_fanin_mode(self, factory, as2org):
        with pytest.raises(ReproError, match="fan-in mode"):
            _run(factory, as2org, fanin="carrier-pigeon")

    def test_day_shards_must_be_positive(self, factory, as2org):
        with pytest.raises(ReproError, match="day_shards"):
            _run(factory, as2org, day_shards=0)

    def test_day_shards_need_columnar(self, factory, as2org):
        with pytest.raises(ReproError, match="columnar"):
            _run(factory, as2org, day_shards=2, kernel="object")

    def test_day_shards_exclude_incremental(self, factory, as2org):
        with pytest.raises(ReproError, match="incremental"):
            _run(factory, as2org, day_shards=2, incremental=True)


class _DyingStreamFactory:
    """Kills the worker process outright (breaks the pool)."""

    def __call__(self):
        os._exit(13)


class _InterruptingStreamFactory:
    """Simulates ^C landing in a worker mid-sweep."""

    def __call__(self):
        raise KeyboardInterrupt


class TestSegmentLifecycle:
    def test_no_segments_after_completion(self, factory, as2org):
        before = _segments()
        _run(factory, as2org, jobs=2, fanin="shm", day_shards=2)
        assert _segments() == before

    def test_no_segments_after_worker_crash(self, as2org):
        before = _segments()
        with pytest.raises(ReproError, match="worker failed"):
            run_inference(
                _DyingStreamFactory(), START, END,
                InferenceConfig.extended(), as2org=as2org,
                jobs=2, fanin="shm",
            )
        assert _segments() == before

    def test_no_segments_after_interrupt(self, as2org):
        before = _segments()
        with pytest.raises(KeyboardInterrupt):
            run_inference(
                _InterruptingStreamFactory(), START, END,
                InferenceConfig.extended(), as2org=as2org,
                jobs=2, fanin="shm",
            )
        assert _segments() == before

    def test_no_resource_tracker_warnings(self, tmp_path):
        # The whole point of starting the tracker before the fork and
        # unlinking on adoption: a full shm sweep in a fresh
        # interpreter must exit with a silent tracker.
        script = textwrap.dedent("""
            import datetime
            from repro.delegation import (
                InferenceConfig, WorldStreamFactory, run_inference,
            )
            from repro.simulation import World, small_scenario

            scenario = small_scenario()
            start = scenario.bgp_start
            end = start + datetime.timedelta(days=4)
            run_inference(
                WorldStreamFactory(scenario), start, end,
                InferenceConfig.extended(),
                as2org=World(scenario).as2org(),
                jobs=2, fanin="shm", day_shards=2,
            )
        """)
        env = dict(os.environ)
        root = pathlib.Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "leaked shared_memory" not in proc.stderr
        assert "resource_tracker" not in proc.stderr
        assert "Traceback" not in proc.stderr
