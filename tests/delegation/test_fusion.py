"""Tests for multi-source delegation fusion."""

import pytest

from repro.delegation.fusion import (
    FusedDelegation,
    Source,
    fuse_delegations,
)
from repro.delegation.model import BgpDelegation, RdapDelegation
from repro.netbase.prefix import IPv4Prefix
from repro.rpki.database import RpkiDelegation


def p(text):
    return IPv4Prefix.parse(text)


def bgp(prefix, cover="193.0.0.0/16"):
    return BgpDelegation(
        prefix=p(prefix),
        delegator_asn=100,
        delegatee_asn=200,
        covering_prefix=p(cover),
    )


def rpki(prefix):
    return RpkiDelegation(prefix=p(prefix), delegator_asn=100,
                          delegatee_asn=200)


def rdap(prefix_text):
    prefix = p(prefix_text)
    return RdapDelegation(
        child_first=prefix.network,
        child_last=prefix.broadcast,
        child_handle=str(prefix),
        parent_handle="parent",
        status="ASSIGNED PA",
    )


class TestFusion:
    def test_three_way_corroboration(self):
        report = fuse_delegations(
            [bgp("193.0.4.0/24")],
            [rpki("193.0.4.0/24")],
            [rdap("193.0.4.0/24")],
        )
        assert len(report.fused) == 1
        fused = report.fused[0]
        assert fused.corroboration == 3
        assert fused.sources == {Source.BGP, Source.RPKI, Source.RDAP}

    def test_disjoint_sources(self):
        report = fuse_delegations(
            [bgp("193.0.4.0/24")],
            [],
            [rdap("193.0.64.0/20")],
        )
        assert len(report.fused) == 2
        by_prefix = {f.prefix: f for f in report.fused}
        assert by_prefix[p("193.0.4.0/24")].routed_but_unregistered
        assert by_prefix[p("193.0.64.0/20")].registered_but_unrouted

    def test_overlap_credits_both_granularities(self):
        """A /24 routed inside a registered /20 is one agreement."""
        report = fuse_delegations(
            [bgp("193.0.64.0/24")],
            [],
            [rdap("193.0.64.0/20")],
        )
        by_prefix = {f.prefix: f for f in report.fused}
        assert by_prefix[p("193.0.64.0/24")].sources == {
            Source.BGP, Source.RDAP
        }
        assert by_prefix[p("193.0.64.0/20")].sources == {
            Source.BGP, Source.RDAP
        }

    def test_combined_addresses_no_double_count(self):
        report = fuse_delegations(
            [bgp("193.0.64.0/24")],
            [rpki("193.0.64.0/24")],
            [rdap("193.0.64.0/20")],
        )
        assert report.combined_addresses == 4096  # the /20 covers all

    def test_addresses_by_source(self):
        report = fuse_delegations(
            [bgp("193.0.4.0/24")],
            [],
            [rdap("193.0.64.0/20")],
        )
        assert report.addresses_by_source[Source.BGP] == 256
        assert report.addresses_by_source[Source.RDAP] == 4096
        assert report.addresses_by_source[Source.RPKI] == 0

    def test_count_by_corroboration(self):
        report = fuse_delegations(
            [bgp("193.0.4.0/24")],
            [rpki("193.0.4.0/24")],
            [rdap("193.0.64.0/20")],
        )
        counts = report.count_by_corroboration()
        assert counts[2] == 1  # the BGP+RPKI prefix
        assert counts[1] == 1  # the RDAP-only lease

    def test_summary_lines(self):
        report = fuse_delegations(
            [bgp("193.0.4.0/24")], [], [rdap("193.0.64.0/20")]
        )
        lines = report.summary_lines()
        assert any("combined market size" in line for line in lines)
        assert any("BGP" in line for line in lines)

    def test_empty_everything(self):
        report = fuse_delegations([], [], [])
        assert report.fused == ()
        assert report.combined_addresses == 0


class TestWorldFusion:
    def test_fusion_on_small_world(self):
        """End to end: all three pipelines fused."""
        import datetime

        from repro.delegation import (
            DelegationInference,
            InferenceConfig,
            extract_rdap_delegations,
        )
        from repro.simulation import World, small_scenario

        world = World(small_scenario())
        date = world.config.bgp_end - datetime.timedelta(days=1)
        inference = DelegationInference(
            InferenceConfig.extended(), world.as2org()
        )
        bgp_found = inference.infer_day_from_pairs(
            world.stream().pairs_on(date),
            world.stream().monitor_count(),
            date,
        )
        rpki_found = world.rpki().delegations_on(world.rpki().dates()[-1])
        client = world.rdap_client()
        rdap_found = extract_rdap_delegations(
            world.whois().inetnums(), client
        )
        report = fuse_delegations(bgp_found, rpki_found, rdap_found)
        assert len(report.fused) > len(bgp_found)
        # The combined view exceeds any single source.
        for source_addresses in report.addresses_by_source.values():
            assert report.combined_addresses >= source_addresses
        # Corroborated delegations exist (registered BGP delegations).
        assert any(f.corroboration >= 2 for f in report.fused)
