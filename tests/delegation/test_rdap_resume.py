"""Resumable RDAP sweeps: journal replay after a crash."""

import pytest

from repro.delegation.rdap_extract import (
    RdapExtractionStats,
    extract_rdap_delegations,
)
from repro.ingest import SweepJournal
from repro.netbase.prefix import parse_address
from repro.rdap.client import RdapClient
from repro.rdap.server import RdapServer
from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject, InetnumStatus


def inet(first, last, status, org, admin):
    return InetnumObject(
        first=parse_address(first),
        last=parse_address(last),
        netname="NET",
        status=status,
        org_handle=org,
        admin_handle=admin,
    )


@pytest.fixture
def database():
    db = WhoisDatabase()
    db.add_inetnum(inet("193.0.0.0", "193.0.255.255",
                        InetnumStatus.ALLOCATED_PA, "ORG-LIR", "AC-LIR"))
    for octet in range(4, 10):
        db.add_inetnum(inet(f"193.0.{octet}.0", f"193.0.{octet}.255",
                            InetnumStatus.ASSIGNED_PA,
                            f"ORG-C{octet}", f"AC-C{octet}"))
    # One intra-org pair and one sub-allocation for outcome variety.
    db.add_inetnum(inet("193.0.10.0", "193.0.10.255",
                        InetnumStatus.ASSIGNED_PA, "ORG-X", "AC-LIR"))
    db.add_inetnum(inet("193.0.12.0", "193.0.15.255",
                        InetnumStatus.SUB_ALLOCATED_PA, "ORG-SUB", "AC-SUB"))
    return db


def make_client(database):
    server = RdapServer(database, rate_limit_per_second=1e6, burst=10**6)
    return RdapClient(server, pace_seconds=0.0)


class TestResumableSweep:
    def test_full_run_populates_journal(self, database, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        client = make_client(database)
        delegations = extract_rdap_delegations(
            database.inetnums(), client, journal=journal
        )
        journal.close()
        # One journal entry per queried candidate.
        assert len(SweepJournal(journal.path)) == 8
        assert len(delegations) == 7  # 6 customers + sub-allocation

    def test_resume_skips_completed_lookups(self, database, tmp_path):
        path = tmp_path / "sweep.jsonl"
        inetnums = list(database.inetnums())

        # Reference: one uninterrupted sweep.
        ref_stats = RdapExtractionStats()
        ref_client = make_client(database)
        reference = extract_rdap_delegations(
            inetnums, ref_client, stats=ref_stats
        )

        # First attempt "crashes" after 3 candidates (simulated by
        # feeding only a prefix of the snapshot).
        with SweepJournal(path) as journal:
            first_client = make_client(database)
            extract_rdap_delegations(
                inetnums[:5], first_client, journal=journal
            )

        # Resume over the full snapshot with a fresh journal handle.
        with SweepJournal(path) as journal:
            already = len(journal)
            assert already > 0
            resumed_client = make_client(database)
            stats = RdapExtractionStats()
            resumed = extract_rdap_delegations(
                inetnums, resumed_client, journal=journal, stats=stats
            )

        assert resumed == reference
        assert stats.replayed == already
        # Replayed outcomes count as queried in the stats...
        assert stats.queried == ref_stats.queried
        assert stats.delegations == ref_stats.delegations
        assert stats.intra_org == ref_stats.intra_org
        # ...but the resumed client issued strictly fewer real queries.
        assert 0 < resumed_client.queries_sent < ref_client.queries_sent

    def test_completed_journal_means_zero_queries(self, database, tmp_path):
        path = tmp_path / "sweep.jsonl"
        inetnums = list(database.inetnums())
        with SweepJournal(path) as journal:
            extract_rdap_delegations(
                inetnums, make_client(database), journal=journal
            )
            reference = extract_rdap_delegations(
                inetnums, make_client(database)
            )
        with SweepJournal(path) as journal:
            client = make_client(database)
            stats = RdapExtractionStats()
            resumed = extract_rdap_delegations(
                inetnums, client, journal=journal, stats=stats
            )
        assert client.queries_sent == 0
        assert resumed == reference
        assert stats.replayed == stats.queried

    def test_pre_filter_stats_still_counted_on_resume(
        self, database, tmp_path
    ):
        """Replay keeps the paper statistics (totals, < /24 fraction)
        identical to an uninterrupted sweep."""
        path = tmp_path / "sweep.jsonl"
        tiny = inet("193.0.11.0", "193.0.11.63",
                    InetnumStatus.ASSIGNED_PA, "ORG-T", "AC-T")
        database.add_inetnum(tiny)
        inetnums = list(database.inetnums())
        ref_stats = RdapExtractionStats()
        extract_rdap_delegations(
            inetnums, make_client(database), stats=ref_stats
        )
        with SweepJournal(path) as journal:
            extract_rdap_delegations(
                inetnums, make_client(database), journal=journal
            )
        with SweepJournal(path) as journal:
            stats = RdapExtractionStats()
            extract_rdap_delegations(
                inetnums, make_client(database),
                journal=journal, stats=stats,
            )
        assert stats.assigned_total == ref_stats.assigned_total
        assert stats.sub_allocated_total == ref_stats.sub_allocated_total
        assert stats.smaller_than_24 == ref_stats.smaller_than_24
        assert (
            stats.assigned_smaller_than_24_fraction
            == ref_stats.assigned_smaller_than_24_fraction
        )
