"""Tests for the BGP delegation-inference pipeline."""

import datetime

import pytest

from repro.asorg.as2org import As2OrgDataset, As2OrgSnapshot, Organization
from repro.bgp.collector import Collector, CollectorSystem
from repro.bgp.message import Announcement
from repro.bgp.propagation import PropagationModel
from repro.bgp.stream import RouteStream
from repro.bgp.topology import ASTopology
from repro.delegation.consistency import ConsistencyRule
from repro.delegation.inference import (
    DelegationInference,
    InferenceConfig,
    InferenceResult,
)
from repro.delegation.model import DailyDelegations
from repro.errors import ReproError
from repro.netbase.prefix import IPv4Prefix

D = datetime.date


def p(text):
    return IPv4Prefix.parse(text)


@pytest.fixture
def topology():
    t = ASTopology()
    for asn, tier in [(10, 1), (11, 1), (20, 2), (21, 2),
                      (30, 3), (31, 3), (32, 3)]:
        t.add_as(asn, tier=tier)
    t.add_peering(10, 11)
    t.add_customer_provider(20, 10)
    t.add_customer_provider(21, 11)
    t.add_customer_provider(30, 20)
    t.add_customer_provider(31, 21)
    t.add_customer_provider(32, 21)
    return t


@pytest.fixture
def system(topology):
    return CollectorSystem(
        [Collector("rrc00", [10, 20]), Collector("route-views2", [11, 21])],
        PropagationModel(topology),
    )


@pytest.fixture
def as2org():
    dataset = As2OrgDataset()
    snapshot = As2OrgSnapshot(D(2020, 1, 1))
    snapshot.add_organization(Organization("ORG-A", "Alpha"))
    snapshot.add_organization(Organization("ORG-B", "Beta"))
    for asn in (30,):
        snapshot.assign(asn, "ORG-A")
    for asn in (31, 32):
        snapshot.assign(asn, "ORG-B")
    dataset.add_snapshot(snapshot)
    return dataset


def run_day(system, announcements, config, as2org=None, date=D(2020, 1, 1)):
    inference = DelegationInference(config, as2org)
    records = system.records_for_day(announcements, date)
    return inference.infer_day(records, 4, date)


class TestBaseAlgorithm:
    def test_infers_simple_delegation(self, system):
        announcements = [
            Announcement(p("101.0.0.0/16"), 30),    # S owns P
            Announcement(p("101.0.4.0/24"), 31),    # T announces P'
        ]
        found = run_day(system, announcements, InferenceConfig.baseline())
        assert len(found) == 1
        delegation = found[0]
        assert delegation.prefix == p("101.0.4.0/24")
        assert delegation.delegator_asn == 30
        assert delegation.delegatee_asn == 31
        assert delegation.covering_prefix == p("101.0.0.0/16")

    def test_same_origin_not_a_delegation(self, system):
        announcements = [
            Announcement(p("101.0.0.0/16"), 30),
            Announcement(p("101.0.4.0/24"), 30),   # own more-specific
        ]
        assert run_day(system, announcements, InferenceConfig.baseline()) == []

    def test_no_cover_no_delegation(self, system):
        announcements = [Announcement(p("101.0.4.0/24"), 31)]
        assert run_day(system, announcements, InferenceConfig.baseline()) == []

    def test_most_specific_cover_is_delegator(self, system):
        announcements = [
            Announcement(p("101.0.0.0/8"), 30),
            Announcement(p("101.0.0.0/16"), 31),
            Announcement(p("101.0.4.0/24"), 32),
        ]
        found = run_day(system, announcements, InferenceConfig.baseline())
        pairs = {(d.prefix, d.delegator_asn, d.delegatee_asn) for d in found}
        assert (p("101.0.4.0/24"), 31, 32) in pairs   # from the /16
        assert (p("101.0.0.0/16"), 30, 31) in pairs   # /16 from the /8
        assert (p("101.0.4.0/24"), 30, 32) not in pairs

    def test_visibility_filter_drops_local_routes(self, system):
        # The more-specific only reaches monitor 10 (a local hijack).
        announcements = [
            Announcement(p("101.0.0.0/16"), 30),
            Announcement(
                p("101.0.4.0/24"), 31,
                restricted_to_monitors=frozenset({10}),
            ),
        ]
        result = InferenceResult(
            daily=DailyDelegations(), config=InferenceConfig.baseline()
        )
        inference = DelegationInference(InferenceConfig.baseline())
        records = system.records_for_day(announcements, D(2020, 1, 1))
        found = inference.infer_day(records, 4, D(2020, 1, 1), result)
        assert found == []
        assert result.pairs_dropped_visibility == 1

    def test_threshold_zero_keeps_local_routes(self, system):
        announcements = [
            Announcement(p("101.0.0.0/16"), 30),
            Announcement(
                p("101.0.4.0/24"), 31,
                restricted_to_monitors=frozenset({10}),
            ),
        ]
        config = InferenceConfig(
            visibility_threshold=0.0,
            same_org_filter=False,
            consistency_rule=None,
        )
        assert len(run_day(system, announcements, config)) == 1

    def test_as_set_origin_dropped(self, system):
        announcements = [
            Announcement(p("101.0.0.0/16"), 30),
            Announcement(p("101.0.4.0/24"), 31, as_set_origin=True),
        ]
        assert run_day(system, announcements, InferenceConfig.baseline()) == []

    def test_moas_dropped(self, system):
        announcements = [
            Announcement(p("101.0.0.0/16"), 30),
            Announcement(p("101.0.4.0/24"), 31),
            Announcement(p("101.0.4.0/24"), 32),   # MOAS on P'
        ]
        assert run_day(system, announcements, InferenceConfig.baseline()) == []

    def test_bogus_prefixes_sanitized(self, system):
        announcements = [
            Announcement(p("10.0.0.0/16"), 30),    # RFC 1918
            Announcement(p("10.0.4.0/24"), 31),
        ]
        assert run_day(system, announcements, InferenceConfig.baseline()) == []


class TestVisibilityBoundary:
    """The threshold comparison is inclusive: exactly the threshold
    fraction of monitors keeps a pair (`>=`, never strict `>`)."""

    def test_required_monitors_is_exact_at_representable_products(self):
        # 0.1 * 30 is 3.0000000000000004 in floats; a naive
        # ``count < threshold * total`` comparison would demand 4
        # monitors.  required_monitors() must say 3.
        assert InferenceConfig(
            visibility_threshold=0.1).required_monitors(30) == 3
        assert InferenceConfig(
            visibility_threshold=0.5).required_monitors(4) == 2
        assert InferenceConfig(
            visibility_threshold=0.0).required_monitors(7) == 0
        assert InferenceConfig(
            visibility_threshold=1.0).required_monitors(7) == 7
        # Non-representable products round *up*: 1.4 monitors means a
        # pair needs 2 to reach 10 % of 14.
        assert InferenceConfig(
            visibility_threshold=0.1).required_monitors(14) == 2

    def _run_pair(self, monitor_count, total_monitors, threshold):
        from repro.netbase.asnum import OriginSet

        config = InferenceConfig(
            visibility_threshold=threshold,
            same_org_filter=False,
            consistency_rule=None,
        )
        result = InferenceResult(daily=DailyDelegations(), config=config)
        pairs = {
            p("101.0.0.0/16"): (OriginSet.single(30), total_monitors),
            p("101.0.4.0/24"): (OriginSet.single(31), monitor_count),
        }
        DelegationInference(config).infer_day_from_pairs(
            pairs, total_monitors, D(2020, 1, 1), result
        )
        return result

    def test_pair_at_exactly_threshold_survives(self):
        # 3 of 30 monitors at threshold 0.1: exactly half-open boundary.
        result = self._run_pair(3, 30, 0.1)
        assert result.pairs_dropped_visibility == 0

    def test_pair_below_threshold_dropped(self):
        result = self._run_pair(2, 30, 0.1)
        assert result.pairs_dropped_visibility == 1

    def test_exactly_half_the_monitors_survives(self):
        # The paper's threshold: seen by half the monitors.  Exactly
        # half must survive (>=), one fewer must not.
        assert self._run_pair(2, 4, 0.5).pairs_dropped_visibility == 0
        assert self._run_pair(1, 4, 0.5).pairs_dropped_visibility == 1


class TestExtensions:
    def test_same_org_filter(self, system, as2org):
        announcements = [
            Announcement(p("101.0.0.0/16"), 31),
            Announcement(p("101.0.4.0/24"), 32),   # 31/32 share ORG-B
        ]
        config = InferenceConfig(consistency_rule=None)
        found = run_day(system, announcements, config, as2org)
        assert found == []
        # Baseline keeps it.
        base = run_day(system, announcements, InferenceConfig.baseline())
        assert len(base) == 1

    def test_same_org_filter_requires_dataset(self):
        with pytest.raises(ReproError):
            DelegationInference(InferenceConfig(consistency_rule=None))

    def test_cross_org_kept(self, system, as2org):
        announcements = [
            Announcement(p("101.0.0.0/16"), 30),   # ORG-A
            Announcement(p("101.0.4.0/24"), 31),   # ORG-B
        ]
        config = InferenceConfig(consistency_rule=None)
        assert len(run_day(system, announcements, config, as2org)) == 1

    def test_consistency_fill_over_range(self, system, as2org):
        """On-off announcement of P' is smoothed by extension (v)."""
        on_days = {D(2020, 1, 1), D(2020, 1, 6)}

        def source(date):
            announcements = [Announcement(p("101.0.0.0/16"), 30)]
            if date in on_days:
                announcements.append(Announcement(p("101.0.4.0/24"), 31))
            return announcements

        stream = RouteStream(system, source=source)
        extended = DelegationInference(
            InferenceConfig(consistency_rule=ConsistencyRule(10, 0)),
            as2org,
        )
        result = extended.infer_range(stream, D(2020, 1, 1), D(2020, 1, 7))
        counts = [count for _date, count in result.counts_series()]
        assert counts == [1] * 6  # gap filled

        baseline = DelegationInference(InferenceConfig.baseline())
        base_result = baseline.infer_range(
            stream, D(2020, 1, 1), D(2020, 1, 7)
        )
        base_counts = [c for _d, c in base_result.counts_series()]
        assert base_counts == [1, 0, 0, 0, 0, 1]  # on-off visible

    def test_conflicting_delegation_blocks_fill(self, system, as2org):
        def source(date):
            announcements = [Announcement(p("101.0.0.0/16"), 30)]
            if date in (D(2020, 1, 1), D(2020, 1, 6)):
                announcements.append(Announcement(p("101.0.4.0/24"), 31))
            elif date == D(2020, 1, 3):
                announcements.append(Announcement(p("101.0.4.0/24"), 32))
            return announcements

        stream = RouteStream(system, source=source)
        inference = DelegationInference(InferenceConfig(), as2org)
        result = inference.infer_range(stream, D(2020, 1, 1), D(2020, 1, 7))
        key_31 = (p("101.0.4.0/24"), 30, 31)
        assert key_31 not in result.daily.on(D(2020, 1, 2))
        assert key_31 in result.daily.on(D(2020, 1, 1))

    def test_addresses_series(self, system, as2org):
        def source(date):
            return [
                Announcement(p("101.0.0.0/16"), 30),
                Announcement(p("101.0.4.0/24"), 31),
                Announcement(p("101.0.6.0/23"), 31),
            ]

        stream = RouteStream(system, source=source)
        inference = DelegationInference(InferenceConfig(), as2org)
        result = inference.infer_range(stream, D(2020, 1, 1), D(2020, 1, 2))
        assert result.addresses_series() == [(D(2020, 1, 1), 256 + 512)]

    def test_invalid_threshold(self):
        with pytest.raises(ReproError):
            InferenceConfig(visibility_threshold=1.5)

    def test_invalid_monitor_count(self, system, as2org):
        inference = DelegationInference(InferenceConfig(), as2org)
        with pytest.raises(ReproError):
            inference.infer_day([], 0, D(2020, 1, 1))
