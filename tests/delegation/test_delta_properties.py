"""Property-based tests for the day-over-day delta machinery.

The algebra the incremental runner rests on, pinned over arbitrary
pair tables:

- ``apply(A, diff(A, B)) == B`` exactly (the delta is lossless),
- composability: replaying ``diff(A, B)`` then ``diff(B, C)`` lands
  on ``C`` — a journal is equivalent to its endpoints,
- the empty delta is a true no-op,
- :class:`DeltaState` parity: seeding ``A`` and applying
  ``diff(A, B)`` leaves exactly the state a fresh seed of ``B`` has —
  table, survivors, attrition counters, and delegation rows alike,
- journal entries survive the canonical-JSON codec round trip.
"""

import datetime
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.rib import PairTable
from repro.delegation.delta import (
    DeltaState,
    PairDelta,
    apply_delta,
    delta_entry,
    delta_from_entry,
    diff_pair_tables,
    fold_entry_rows,
    rows_to_quads,
    seed_entry,
    table_from_entry,
)
from repro.delegation.inference import InferenceConfig
from repro.delegation.io import canonical_json
from repro.netbase.lpm import pack

TOTAL_MONITORS = 8
CONFIG = InferenceConfig.baseline()

#: packed (network, length) keys over real prefix shapes, including
#: bogon space (10/8, 192.168/16, 224/4 live under these networks).
packed_keys = st.builds(
    pack,
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)

#: ``packed_key -> (origin, unique, monitors)`` aggregates — the exact
#: input :meth:`PairTable.from_aggregate` canonicalizes.
aggregates = st.dictionaries(
    packed_keys,
    st.tuples(
        st.integers(min_value=1, max_value=65535),
        st.booleans(),
        st.integers(min_value=1, max_value=TOTAL_MONITORS),
    ),
    max_size=30,
)

tables = st.builds(PairTable.from_aggregate, aggregates)


class TestDeltaAlgebra:
    @settings(max_examples=100)
    @given(tables, tables)
    def test_diff_apply_roundtrip(self, a, b):
        assert apply_delta(a, diff_pair_tables(a, b)).equals(b)

    @settings(max_examples=60)
    @given(tables, tables, tables)
    def test_composability(self, a, b, c):
        via_b = apply_delta(
            apply_delta(a, diff_pair_tables(a, b)),
            diff_pair_tables(b, c),
        )
        assert via_b.equals(c)
        assert via_b.equals(apply_delta(a, diff_pair_tables(a, c)))

    @settings(max_examples=60)
    @given(tables)
    def test_self_diff_is_empty(self, a):
        delta = diff_pair_tables(a, a)
        assert delta.is_empty
        assert len(delta) == 0

    @settings(max_examples=60)
    @given(tables)
    def test_empty_delta_is_noop(self, a):
        assert apply_delta(a, PairDelta()).equals(a)

    @settings(max_examples=60)
    @given(tables, tables)
    def test_delta_sizes_bound_the_change(self, a, b):
        delta = diff_pair_tables(a, b)
        assert len(delta.removed) <= len(a)
        assert len(delta.upsert_keys) <= len(b)
        # Removed and upserted keys never overlap.
        assert not (set(delta.removed) & set(delta.upsert_keys))


class TestDeltaStateParity:
    @settings(max_examples=60)
    @given(tables, tables)
    def test_incremental_state_equals_fresh_seed(self, a, b):
        state = DeltaState(CONFIG, TOTAL_MONITORS)
        state.seed(a)
        state.apply(diff_pair_tables(a, b))
        fresh = DeltaState(CONFIG, TOTAL_MONITORS)
        fresh.seed(b)
        assert state.to_table().equals(b)
        assert state.day_counters(0) == fresh.day_counters(0)
        assert state.day_rows()[0] == fresh.day_rows()[0]

    @settings(max_examples=60)
    @given(tables, tables, tables)
    def test_state_composes_across_days(self, a, b, c):
        state = DeltaState(CONFIG, TOTAL_MONITORS)
        state.seed(a)
        state.apply(diff_pair_tables(a, b))
        state.apply(diff_pair_tables(b, c))
        fresh = DeltaState(CONFIG, TOTAL_MONITORS)
        fresh.seed(c)
        assert state.to_table().equals(c)
        assert state.day_counters(0) == fresh.day_counters(0)
        assert state.day_rows()[0] == fresh.day_rows()[0]

    @settings(max_examples=40)
    @given(tables)
    def test_empty_delta_fast_paths_day_rows(self, a):
        state = DeltaState(CONFIG, TOTAL_MONITORS)
        state.seed(a)
        rows, dropped, fast = state.day_rows()
        assert not fast  # first cover pass always runs
        state.apply(diff_pair_tables(a, a))
        rows2, dropped2, fast2 = state.day_rows()
        assert fast2
        assert rows2 == rows and dropped2 == dropped


class TestJournalEntryCodec:
    @settings(max_examples=60)
    @given(tables, tables)
    def test_entries_roundtrip_canonical_json(self, a, b):
        state = DeltaState(CONFIG, TOTAL_MONITORS)
        state.seed(a)
        rows_a = state.day_rows()[0]
        seed = json.loads(canonical_json(seed_entry(
            datetime.date(2020, 1, 1), a, TOTAL_MONITORS,
            state.day_counters(0), rows_a,
        )))
        assert table_from_entry(seed).equals(a)
        assert [tuple(q) for q in seed["quads"]] == rows_to_quads(rows_a)

        delta = diff_pair_tables(a, b)
        state.apply(delta)
        rows_b = state.day_rows()[0]
        removed = [r for r in rows_a if r not in set(rows_b)]
        added = [r for r in rows_b if r not in set(rows_a)]
        entry = json.loads(canonical_json(delta_entry(
            2, datetime.date(2020, 1, 2), delta,
            state.day_counters(0), added, removed,
        )))
        decoded = delta_from_entry(entry)
        assert apply_delta(a, decoded).equals(b)
        assert fold_entry_rows(rows_a, entry) == sorted(rows_b)
