"""Tests for the RPKI consistency-rule evaluation (Fig. 5)."""

import datetime

import pytest

from repro.delegation.rpki_eval import (
    RuleEvaluation,
    evaluate_rules_on_rpki,
    fail_rate_curves,
)
from repro.netbase.prefix import IPv4Prefix
from repro.rpki.database import RoaDatabase
from repro.rpki.roa import Roa

D = datetime.date


def p(text):
    return IPv4Prefix.parse(text)


def build_database(days, missing_days=()):
    """Daily snapshots with one delegation, absent on missing_days."""
    database = RoaDatabase()
    start = D(2020, 1, 1)
    for i in range(days):
        date = start + datetime.timedelta(days=i)
        roas = [Roa(p("193.0.0.0/16"), 100)]
        if i not in missing_days:
            roas.append(Roa(p("193.0.4.0/24"), 200))
        database.add_snapshot(date, roas)
    return database


class TestEvaluation:
    def test_perfect_continuity_zero_fail(self):
        database = build_database(15)
        evaluations = evaluate_rules_on_rpki(database, [10], [0])
        assert len(evaluations) == 1
        assert evaluations[0].premises == 5   # starts on days 0..4
        assert evaluations[0].fail_rate == 0.0

    def test_single_absence_fails_strict_rule(self):
        database = build_database(12, missing_days={5})
        strict, lenient = evaluate_rules_on_rpki(database, [10], [0, 1])
        assert strict.allowed_missing == 0
        assert strict.violations > 0
        assert lenient.violations == 0

    def test_fail_rate_decreases_with_n(self):
        database = build_database(40, missing_days={5, 6, 18, 30})
        evaluations = evaluate_rules_on_rpki(database, [15], [0, 1, 2, 3])
        rates = [e.fail_rate for e in evaluations]
        assert rates == sorted(rates, reverse=True)

    def test_curves_grouping(self):
        database = build_database(15)
        evaluations = evaluate_rules_on_rpki(database, [5, 10], [0, 1])
        curves = fail_rate_curves(evaluations)
        assert set(curves) == {0, 1}
        assert [m for m, _r in curves[0]] == [5, 10]

    def test_zero_premises(self):
        evaluation = RuleEvaluation(10, 0, premises=0, violations=0)
        assert evaluation.fail_rate == 0.0

    def test_multiple_span_values_ordered(self):
        database = build_database(30)
        evaluations = evaluate_rules_on_rpki(database, [20, 5, 10], [0])
        spans = [e.max_span_days for e in evaluations]
        assert spans == [5, 10, 20]
