"""Property-based tests for the consistency-rule machinery."""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delegation.consistency import ConsistencyRule, evaluate_rule, fill_gaps
from repro.delegation.model import DailyDelegations
from repro.netbase.prefix import IPv4Prefix

START = datetime.date(2020, 1, 1)
GRID = [START + datetime.timedelta(days=i) for i in range(40)]
KEY = (IPv4Prefix.parse("193.0.4.0/24"), 100, 200)
CONFLICT = (IPv4Prefix.parse("193.0.4.0/24"), 100, 300)

#: Random subsets of grid days on which the delegation was observed.
day_subsets = st.sets(
    st.integers(min_value=0, max_value=len(GRID) - 1), max_size=len(GRID)
)


def build_daily(indices, key=KEY):
    daily = DailyDelegations()
    for i in indices:
        daily.record(GRID[i], [key])
    return daily


class TestFillGapsProperties:
    @settings(max_examples=80)
    @given(day_subsets, st.integers(min_value=1, max_value=15))
    def test_fill_is_superset(self, indices, span):
        daily = build_daily(indices)
        filled = fill_gaps(daily, ConsistencyRule(span, 0), GRID)
        for date in daily.dates():
            assert daily.on(date) <= filled.on(date)

    @settings(max_examples=80)
    @given(day_subsets, st.integers(min_value=1, max_value=15))
    def test_fill_is_idempotent(self, indices, span):
        daily = build_daily(indices)
        rule = ConsistencyRule(span, 0)
        once = fill_gaps(daily, rule, GRID)
        twice = fill_gaps(once, rule, GRID)
        for date in GRID:
            assert once.on(date) == twice.on(date)

    @settings(max_examples=80)
    @given(day_subsets, st.integers(min_value=1, max_value=15))
    def test_fill_stays_inside_observation_span(self, indices, span):
        daily = build_daily(indices)
        filled = fill_gaps(daily, ConsistencyRule(span, 0), GRID)
        if not indices:
            assert not filled.dates()
            return
        first, last = min(indices), max(indices)
        for i, date in enumerate(GRID):
            if i < first or i > last:
                assert KEY not in filled.on(date)

    @settings(max_examples=80)
    @given(day_subsets, st.integers(min_value=1, max_value=15))
    def test_filled_series_has_no_fillable_gaps(self, indices, span):
        daily = build_daily(indices)
        rule = ConsistencyRule(span, 0)
        filled = fill_gaps(daily, rule, GRID)
        present = [i for i, d in enumerate(GRID) if KEY in filled.on(d)]
        for a, b in zip(present, present[1:]):
            gap = b - a
            assert gap == 1 or gap > span

    @settings(max_examples=60)
    @given(day_subsets, day_subsets)
    def test_conflicts_never_filled_over(self, indices, conflict_indices):
        daily = build_daily(indices)
        for i in conflict_indices:
            daily.record(GRID[i], [CONFLICT])
        filled = fill_gaps(daily, ConsistencyRule(10, 0), GRID)
        # Wherever the conflicting delegatee was observed, the original
        # key must not have been invented on that day.
        for i in conflict_indices - indices:
            assert KEY not in filled.on(GRID[i])


class TestEvaluateProperties:
    @settings(max_examples=60)
    @given(day_subsets, st.integers(min_value=1, max_value=20))
    def test_violations_bounded_by_premises(self, indices, span):
        timeline = {KEY: sorted(GRID[i] for i in indices)}
        premises, violations = evaluate_rule(
            timeline, ConsistencyRule(span, 0), GRID
        )
        assert 0 <= violations <= premises

    @settings(max_examples=60)
    @given(day_subsets, st.integers(min_value=1, max_value=20))
    def test_monotone_in_allowed_missing(self, indices, span):
        timeline = {KEY: sorted(GRID[i] for i in indices)}
        previous = None
        for missing in range(4):
            _premises, violations = evaluate_rule(
                timeline, ConsistencyRule(span, missing), GRID
            )
            if previous is not None:
                assert violations <= previous
            previous = violations

    @settings(max_examples=60)
    @given(day_subsets)
    def test_fast_path_matches_generic(self, indices):
        """The daily-grid fast path equals the generic evaluator."""
        from repro.delegation.rpki_eval import _evaluate_daily_fast

        timeline = {KEY: sorted(GRID[i] for i in indices)}
        for span in (3, 7, 12):
            for missing in (0, 2):
                expected = evaluate_rule(
                    timeline, ConsistencyRule(span, missing), GRID
                )
                [fast] = _evaluate_daily_fast(
                    timeline, GRID, [span], [missing]
                )
                assert (fast.premises, fast.violations) == expected
