"""Tests for the RDAP extraction pipeline and BGP/RDAP comparison."""

import pytest

from repro.delegation.compare import compare_delegations
from repro.delegation.model import RdapDelegation
from repro.delegation.rdap_extract import (
    RdapExtractionStats,
    extract_rdap_delegations,
)
from repro.netbase.prefix import IPv4Prefix, parse_address
from repro.rdap.client import RdapClient
from repro.rdap.server import RdapServer
from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject, InetnumStatus


def p(text):
    return IPv4Prefix.parse(text)


def inet(first, last, status, org, admin):
    return InetnumObject(
        first=parse_address(first),
        last=parse_address(last),
        netname="NET",
        status=status,
        org_handle=org,
        admin_handle=admin,
    )


@pytest.fixture
def database():
    db = WhoisDatabase()
    # LIR allocation.
    db.add_inetnum(inet("193.0.0.0", "193.0.255.255",
                        InetnumStatus.ALLOCATED_PA, "ORG-LIR", "AC-LIR"))
    # Real delegation: customer assignment, /24-sized.
    db.add_inetnum(inet("193.0.4.0", "193.0.4.255",
                        InetnumStatus.ASSIGNED_PA, "ORG-CUST", "AC-CUST"))
    # Sub-allocation to another org (/22-sized).
    db.add_inetnum(inet("193.0.8.0", "193.0.11.255",
                        InetnumStatus.SUB_ALLOCATED_PA, "ORG-SUB", "AC-SUB"))
    # Intra-org assignment: same admin as the LIR.
    db.add_inetnum(inet("193.0.5.0", "193.0.5.255",
                        InetnumStatus.ASSIGNED_PA, "ORG-LIR2", "AC-LIR"))
    # Tiny assignment, smaller than /24: must be skipped unqueried.
    db.add_inetnum(inet("193.0.6.0", "193.0.6.63",
                        InetnumStatus.ASSIGNED_PA, "ORG-TINY", "AC-TINY"))
    # Non-delegation-related status.
    db.add_inetnum(inet("193.0.7.0", "193.0.7.255",
                        InetnumStatus.ASSIGNED_PI, "ORG-PI", "AC-PI"))
    return db


@pytest.fixture
def client(database):
    server = RdapServer(database, rate_limit_per_second=1e6, burst=10**6)
    return RdapClient(server, pace_seconds=0.0)


class TestExtraction:
    def test_pipeline(self, database, client):
        stats = RdapExtractionStats()
        delegations = extract_rdap_delegations(
            database.inetnums(), client, stats=stats
        )
        handles = {d.child_handle for d in delegations}
        assert "193.0.4.0 - 193.0.4.255" in handles      # real delegation
        assert "193.0.8.0 - 193.0.11.255" in handles     # sub-allocation
        assert "193.0.5.0 - 193.0.5.255" not in handles  # intra-org
        assert "193.0.6.0 - 193.0.6.63" not in handles   # < /24
        assert "193.0.7.0 - 193.0.7.255" not in handles  # PI space

    def test_stats(self, database, client):
        stats = RdapExtractionStats()
        extract_rdap_delegations(database.inetnums(), client, stats=stats)
        assert stats.assigned_total == 3
        assert stats.sub_allocated_total == 1
        assert stats.smaller_than_24 == 1
        assert stats.intra_org == 1
        assert stats.delegations == 2
        assert stats.assigned_smaller_than_24_fraction == pytest.approx(1 / 3)

    def test_small_blocks_never_queried(self, database, client):
        extract_rdap_delegations(database.inetnums(), client)
        # 3 candidates queried (4.0/24, 5.0/24, 8.0/22) + parent lookups;
        # the /26 contributed zero queries.
        assert client.queries_sent >= 3

    def test_no_parent_counted(self, client, database):
        stats = RdapExtractionStats()
        orphan = inet("8.0.0.0", "8.0.0.255",
                      InetnumStatus.ASSIGNED_PA, "ORG-X", "AC-X")
        database.add_inetnum(orphan)
        extract_rdap_delegations([orphan], client, stats=stats)
        assert stats.no_parent == 1
        assert stats.delegations == 0

    def test_delegation_record_fields(self, database, client):
        delegations = extract_rdap_delegations(database.inetnums(), client)
        by_handle = {d.child_handle: d for d in delegations}
        real = by_handle["193.0.4.0 - 193.0.4.255"]
        assert real.parent_handle == "193.0.0.0 - 193.0.255.255"
        assert real.status == "ASSIGNED PA"
        assert real.addresses == 256
        assert real.prefixes() == [p("193.0.4.0/24")]


class TestCompare:
    def test_paper_shape_asymmetry(self):
        """BGP sees few of RDAP's IPs; RDAP sees most of BGP's."""
        rdap = [
            RdapDelegation(
                child_first=p("193.0.0.0/18").network,
                child_last=p("193.0.0.0/18").broadcast,
                child_handle="big", parent_handle="top",
                status="SUB-ALLOCATED PA",
            )
        ]
        bgp = [p("193.0.4.0/24"), p("193.0.5.0/24"), p("8.0.0.0/24")]
        report = compare_delegations(bgp, rdap)
        assert report.bgp_delegations == 3
        assert report.rdap_delegations == 1
        # 512 of 16384 RDAP addresses visible in BGP.
        assert report.bgp_over_rdap == pytest.approx(512 / 16384)
        # 512 of 768 BGP addresses registered in RDAP.
        assert report.rdap_over_bgp == pytest.approx(512 / 768)

    def test_empty_sides(self):
        report = compare_delegations([], [])
        assert report.bgp_over_rdap == 0.0
        assert report.rdap_over_bgp == 0.0

    def test_summary_lines(self):
        report = compare_delegations([p("193.0.4.0/24")], [])
        lines = report.summary_lines()
        assert len(lines) == 4
        assert any("BGP" in line for line in lines)
