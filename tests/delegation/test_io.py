"""Tests for inference-result persistence."""

import datetime

import pytest

from repro.delegation.io import (
    read_daily_delegations,
    write_daily_delegations,
)
from repro.delegation.model import DailyDelegations
from repro.errors import DatasetError
from repro.netbase.prefix import IPv4Prefix

D = datetime.date


def p(text):
    return IPv4Prefix.parse(text)


@pytest.fixture
def daily():
    daily = DailyDelegations()
    daily.record(D(2020, 1, 1), [
        (p("193.0.4.0/24"), 100, 200),
        (p("193.0.8.0/23"), 100, 300),
    ])
    daily.record(D(2020, 1, 2), [(p("193.0.4.0/24"), 100, 200)])
    return daily


class TestRoundTrip:
    def test_lossless(self, daily, tmp_path):
        path = write_daily_delegations(daily, tmp_path / "delegations.jsonl")
        loaded = read_daily_delegations(path)
        assert loaded.dates() == daily.dates()
        for date in daily.dates():
            assert loaded.on(date) == daily.on(date)

    def test_counts_and_addresses_survive(self, daily, tmp_path):
        path = write_daily_delegations(daily, tmp_path / "d.jsonl")
        loaded = read_daily_delegations(path)
        for date in daily.dates():
            assert loaded.count_on(date) == daily.count_on(date)
            assert loaded.addresses_on(date) == daily.addresses_on(date)

    def test_empty(self, tmp_path):
        path = write_daily_delegations(
            DailyDelegations(), tmp_path / "empty.jsonl"
        )
        assert len(read_daily_delegations(path)) == 0

    def test_blank_lines_tolerated(self, daily, tmp_path):
        path = tmp_path / "d.jsonl"
        write_daily_delegations(daily, path)
        content = path.read_text()
        path.write_text(content.replace("\n", "\n\n"))
        assert len(read_daily_delegations(path)) == 2

    @pytest.mark.parametrize("junk", [
        "not json",
        '{"date": "2020-01-01"}',
        '{"date": "nope", "delegations": []}',
        '{"date": "2020-01-01", "delegations": [["x", 1]]}',
    ])
    def test_malformed_rejected(self, tmp_path, junk):
        path = tmp_path / "bad.jsonl"
        path.write_text(junk + "\n")
        with pytest.raises(DatasetError):
            read_daily_delegations(path)

    def test_inference_result_round_trip(self, tmp_path):
        """The real pipeline's output persists and reloads."""
        from repro.delegation import DelegationInference, InferenceConfig
        from repro.simulation import World, small_scenario

        world = World(small_scenario())
        inference = DelegationInference(
            InferenceConfig.extended(), world.as2org()
        )
        start = world.config.bgp_start
        result = inference.infer_range(
            world.stream(), start, start + datetime.timedelta(days=5)
        )
        path = write_daily_delegations(result.daily, tmp_path / "run.jsonl")
        loaded = read_daily_delegations(path)
        for date in result.daily.dates():
            assert loaded.on(date) == result.daily.on(date)
