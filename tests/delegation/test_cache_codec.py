"""Tests for the compact v2 binary cache encoding.

Contract: exact round-trip of (date, delegation quads, attrition
counters); everything torn, truncated, or foreign — including v1
JSON-era entries — decodes to ``None`` (a cache miss), never to a
wrong payload.
"""

import datetime
import json
import os
import struct

import pytest

from repro.delegation.runner import (
    _CACHE_HEADER,
    _CACHE_MAGIC,
    _COUNTER_FIELDS,
    CACHE_SCHEMA,
    _cache_read,
    _cache_write,
    _decode_payload,
    _encode_payload,
)
from repro.obs.metrics import MetricsRegistry

D = datetime.date


def _payload(quads=None):
    return {
        "date": D(2020, 3, 14),
        "delegations": quads if quads is not None else [
            (0x0A000000, 8, 65001, 65002),
            (0xC0A80000, 16, 65003, 65004),
            (0xFFFFFFFF, 32, 1, 2),
        ],
        "counters": {
            "pairs_seen": 906195,
            "pairs_dropped_visibility": 12,
            "pairs_dropped_origin": 7,
            "delegations_dropped_same_org": 1199,
            "bogon_prefix": 3,
        },
    }


class TestRoundTrip:
    def test_encode_decode_round_trip(self):
        payload = _payload()
        assert _decode_payload(_encode_payload(payload)) == payload

    def test_empty_day(self):
        payload = _payload(quads=[])
        assert _decode_payload(_encode_payload(payload)) == payload

    def test_record_size_is_16_bytes(self):
        empty = _encode_payload(_payload(quads=[]))
        three = _encode_payload(_payload())
        assert len(empty) == _CACHE_HEADER.size
        assert len(three) - len(empty) == 3 * 16

    def test_extreme_values(self):
        payload = _payload(quads=[(0xFFFFFFFF, 0, 0xFFFFFFFF, 0)])
        payload["counters"]["pairs_seen"] = 2 ** 63
        assert _decode_payload(_encode_payload(payload)) == payload

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "cache" / "entry.bin"
        _cache_write(path, _payload())
        assert _cache_read(path) == _payload()
        assert not list(path.parent.glob("*.tmp.*"))  # atomic, no litter


class TestRejection:
    def test_missing_file_is_miss(self, tmp_path):
        assert _cache_read(tmp_path / "absent.bin") is None

    def test_truncated_header(self):
        data = _encode_payload(_payload())
        assert _decode_payload(data[: _CACHE_HEADER.size - 1]) is None

    def test_truncated_body(self):
        data = _encode_payload(_payload())
        assert _decode_payload(data[:-3]) is None

    def test_trailing_garbage(self):
        data = _encode_payload(_payload())
        assert _decode_payload(data + b"\x00") is None

    def test_wrong_magic(self):
        data = _encode_payload(_payload())
        assert _decode_payload(b"NOPE" + data[4:]) is None

    def test_old_schema_invalidated(self):
        # A v2 blob stamped with schema 1 must read as a miss — the
        # schema bump is the v1-invalidation story.
        data = bytearray(_encode_payload(_payload()))
        struct.pack_into("<H", data, 4, CACHE_SCHEMA - 1)
        assert _decode_payload(bytes(data)) is None

    def test_json_era_entry_is_miss(self):
        legacy = json.dumps(
            {"schema": 1, "date": "2020-03-14", "delegations": []}
        ).encode("utf-8")
        assert _decode_payload(legacy) is None

    def test_impossible_date(self):
        data = bytearray(_encode_payload(_payload()))
        struct.pack_into("<HBB", data, 6, 2020, 13, 40)
        assert _decode_payload(bytes(data)) is None

    def test_corrupt_file_logged_as_miss(self, tmp_path, caplog):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x00" * 10)
        with caplog.at_level("WARNING", logger="repro.delegation.runner"):
            assert _cache_read(path) is None
        assert any("malformed" in r.message for r in caplog.records)

    def test_corrupt_file_bumps_malformed_counter(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x00" * 10)
        metrics = MetricsRegistry()
        assert _cache_read(path, metrics) is None
        assert metrics.counter("cache.malformed") == 1

    def test_missing_file_does_not_count_as_malformed(self, tmp_path):
        metrics = MetricsRegistry()
        assert _cache_read(tmp_path / "absent.bin", metrics) is None
        assert metrics.counter("cache.malformed") == 0


class TestAtomicWrite:
    def test_temporary_appends_to_the_entry_name(self, tmp_path):
        # Regression: the temporary used to be built with with_suffix,
        # so two entries whose keys shared a stem raced on one
        # temporary and a crash left it shadowing future writes.  The
        # temporary must embed the full entry name plus the pid.
        calls = []
        original = os.replace

        def spy(src, dst):
            calls.append(os.fspath(src))
            original(src, dst)

        path = tmp_path / "ab" / "abcdef.bin"
        try:
            os.replace = spy
            _cache_write(path, _payload())
        finally:
            os.replace = original
        assert calls == [
            str(path.with_name(f"abcdef.bin.tmp.{os.getpid()}"))
        ]
        assert _cache_read(path) == _payload()


class TestLayout:
    def test_header_is_little_endian_and_self_described(self):
        data = _encode_payload(_payload())
        magic, schema, year, month, day = struct.unpack_from(
            "<4sHHBB", data
        )
        assert magic == _CACHE_MAGIC == b"RPD2"
        assert schema == CACHE_SCHEMA == 2
        assert (year, month, day) == (2020, 3, 14)
        counters = struct.unpack_from("<5Q", data, 10)
        assert dict(zip(_COUNTER_FIELDS, counters)) == \
            _payload()["counters"]
        (count,) = struct.unpack_from("<I", data, 50)
        assert count == 3

    def test_quads_are_flat_u32_little_endian(self):
        data = _encode_payload(_payload(quads=[(1, 2, 3, 4)]))
        assert struct.unpack_from("<4I", data, _CACHE_HEADER.size) == \
            (1, 2, 3, 4)
