"""Differential tests: incremental delta sweeps vs. full recompute.

The incremental runner (``incremental=True``) is a pure performance
change — for every simulation scenario and against both full-sweep
kernels its output must be byte-identical (the JSONL result file) with
every attrition counter in exact agreement, through the in-process
path, the process-pool path (``jobs=2``), a warm journal replay, and
a mid-sweep crash resumed from the journal.
"""

import datetime

import pytest

from repro.delegation import (
    InferenceConfig,
    WorldStreamFactory,
    run_inference,
    write_daily_delegations,
)
from repro.delegation.delta import DeltaJournal, journal_key, journal_path
from repro.errors import ReproError
from repro.simulation import World, small_scenario

D = datetime.date

SCENARIOS = {
    "seed42": small_scenario(),
    "seed7": small_scenario(seed=7),
}
DAYS = 15


@pytest.fixture(scope="module", params=sorted(SCENARIOS))
def scenario(request):
    return SCENARIOS[request.param]


@pytest.fixture(scope="module")
def as2org(scenario):
    return World(scenario).as2org()


@pytest.fixture(scope="module")
def window(scenario):
    start = scenario.bgp_start
    return start, start + datetime.timedelta(days=DAYS)


@pytest.fixture(scope="module")
def full_by_kernel(scenario, as2org, window):
    """Full recompute through both per-day kernels."""
    start, end = window
    return {
        kernel: run_inference(
            WorldStreamFactory(scenario), start, end,
            InferenceConfig.extended(), as2org=as2org,
            jobs=1, kernel=kernel,
        )
        for kernel in ("columnar", "object")
    }


def _counters(result):
    """The attrition table: every per-filter drop counter."""
    return (
        result.pairs_seen,
        result.pairs_dropped_visibility,
        result.pairs_dropped_origin,
        result.delegations_dropped_same_org,
        result.sanitize_stats.bogon_prefix,
    )


def _daily_bytes(result, path):
    write_daily_delegations(result.daily, path)
    return path.read_bytes()


def _assert_identical(incremental, full, tmp_path):
    assert _daily_bytes(incremental, tmp_path / "inc.jsonl") == \
        _daily_bytes(full, tmp_path / "full.jsonl")
    assert _counters(incremental) == _counters(full)
    assert incremental.observation_dates == full.observation_dates


class TestIncrementalDifferential:
    @pytest.mark.parametrize("kernel", ["columnar", "object"])
    def test_byte_identical_to_both_kernels(
        self, scenario, as2org, window, full_by_kernel, kernel, tmp_path
    ):
        start, end = window
        incremental = run_inference(
            WorldStreamFactory(scenario), start, end,
            InferenceConfig.extended(), as2org=as2org,
            jobs=1, incremental=True,
        )
        _assert_identical(incremental, full_by_kernel[kernel], tmp_path)
        stats = incremental.runner_stats
        assert stats.incremental
        assert stats.days_computed == DAYS

    def test_baseline_config_identical(self, scenario, window, tmp_path):
        start, end = window
        config = InferenceConfig.baseline()
        full = run_inference(
            WorldStreamFactory(scenario), start, end, config, jobs=1,
        )
        incremental = run_inference(
            WorldStreamFactory(scenario), start, end, config,
            jobs=1, incremental=True,
        )
        _assert_identical(incremental, full, tmp_path)

    def test_jobs2_identical(
        self, scenario, as2org, window, full_by_kernel, tmp_path
    ):
        start, end = window
        incremental = run_inference(
            WorldStreamFactory(scenario), start, end,
            InferenceConfig.extended(), as2org=as2org,
            jobs=2, incremental=True,
        )
        _assert_identical(
            incremental, full_by_kernel["columnar"], tmp_path
        )

    def test_step_days_identical(self, scenario, as2org, tmp_path):
        start = scenario.bgp_start
        end = start + datetime.timedelta(days=21)
        full = run_inference(
            WorldStreamFactory(scenario), start, end,
            InferenceConfig.extended(), as2org=as2org,
            jobs=1, step_days=3,
        )
        incremental = run_inference(
            WorldStreamFactory(scenario), start, end,
            InferenceConfig.extended(), as2org=as2org,
            jobs=1, step_days=3, incremental=True,
        )
        _assert_identical(incremental, full, tmp_path)


class TestJournalReplay:
    def test_warm_replay_identical_without_recompute(
        self, scenario, as2org, window, full_by_kernel, tmp_path
    ):
        start, end = window
        factory = WorldStreamFactory(scenario)
        journal_dir = tmp_path / "journal"
        cold = run_inference(
            factory, start, end, InferenceConfig.extended(),
            as2org=as2org, jobs=1, incremental=True,
            journal_dir=journal_dir,
        )
        warm = run_inference(
            factory, start, end, InferenceConfig.extended(),
            as2org=as2org, jobs=1, incremental=True,
            journal_dir=journal_dir,
        )
        _assert_identical(warm, full_by_kernel["columnar"], tmp_path)
        assert cold.runner_stats.days_computed == DAYS
        assert warm.runner_stats.days_computed == 0
        assert warm.runner_stats.days_replayed == DAYS
        assert warm.runner_stats.journal == cold.runner_stats.journal

    def test_longer_window_extends_journal(
        self, scenario, as2org, window, tmp_path
    ):
        start, end = window
        factory = WorldStreamFactory(scenario)
        journal_dir = tmp_path / "journal"
        run_inference(
            factory, start, end, InferenceConfig.extended(),
            as2org=as2org, jobs=1, incremental=True,
            journal_dir=journal_dir,
        )
        longer = end + datetime.timedelta(days=5)
        full = run_inference(
            factory, start, longer, InferenceConfig.extended(),
            as2org=as2org, jobs=1,
        )
        extended = run_inference(
            factory, start, longer, InferenceConfig.extended(),
            as2org=as2org, jobs=1, incremental=True,
            journal_dir=journal_dir,
        )
        _assert_identical(extended, full, tmp_path)
        assert extended.runner_stats.days_replayed == DAYS
        assert extended.runner_stats.days_computed == 5

    def test_crash_mid_sweep_resumes_from_journal(
        self, scenario, as2org, window, full_by_kernel, tmp_path,
        monkeypatch,
    ):
        start, end = window
        factory = WorldStreamFactory(scenario)
        journal_dir = tmp_path / "journal"
        crash_after = 6
        real_append = DeltaJournal.append
        appended = {"count": 0}

        def exploding_append(self, entry):
            if appended["count"] >= crash_after:
                raise RuntimeError("injected mid-sweep crash")
            appended["count"] += 1
            real_append(self, entry)

        monkeypatch.setattr(DeltaJournal, "append", exploding_append)
        with pytest.raises(RuntimeError, match="injected"):
            run_inference(
                factory, start, end, InferenceConfig.extended(),
                as2org=as2org, jobs=1, incremental=True,
                journal_dir=journal_dir,
            )
        monkeypatch.setattr(DeltaJournal, "append", real_append)

        resumed = run_inference(
            factory, start, end, InferenceConfig.extended(),
            as2org=as2org, jobs=1, incremental=True,
            journal_dir=journal_dir,
        )
        _assert_identical(
            resumed, full_by_kernel["columnar"], tmp_path
        )
        # Every day journaled before the crash is replayed, not redone.
        assert resumed.runner_stats.days_replayed == crash_after
        assert resumed.runner_stats.days_computed == DAYS - crash_after

    def test_torn_tail_dropped_and_rewritten(
        self, scenario, as2org, window, full_by_kernel, tmp_path
    ):
        start, end = window
        factory = WorldStreamFactory(scenario)
        journal_dir = tmp_path / "journal"
        cold = run_inference(
            factory, start, end, InferenceConfig.extended(),
            as2org=as2org, jobs=1, incremental=True,
            journal_dir=journal_dir,
        )
        import pathlib
        path = pathlib.Path(cold.runner_stats.journal)
        # Tear the tail: truncate mid-way through the last line.
        data = path.read_bytes()
        lines = data.splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]) + lines[-1][:10])
        resumed = run_inference(
            factory, start, end, InferenceConfig.extended(),
            as2org=as2org, jobs=1, incremental=True,
            journal_dir=journal_dir,
        )
        _assert_identical(
            resumed, full_by_kernel["columnar"], tmp_path
        )
        assert resumed.runner_stats.days_replayed == DAYS - 1
        # The rewritten journal is valid end to end again.
        assert DeltaJournal(path).serial == DAYS

    def test_foreign_journal_is_ignored(
        self, scenario, as2org, window, full_by_kernel, tmp_path
    ):
        """A journal whose dates do not match the window is not
        trusted — the sweep recomputes and leaves it alone."""
        start, end = window
        factory = WorldStreamFactory(scenario)
        journal_dir = tmp_path / "journal"
        run_inference(
            factory, start, end, InferenceConfig.extended(),
            as2org=as2org, jobs=1, incremental=True,
            journal_dir=journal_dir,
        )
        shifted = start + datetime.timedelta(days=1)
        key = journal_key(
            InferenceConfig.extended(), factory.fingerprint(),
            as2org.fingerprint(), shifted, 1,
        )
        # Plant the mismatched journal where the shifted window looks.
        import shutil
        original = journal_path(
            journal_dir,
            journal_key(
                InferenceConfig.extended(), factory.fingerprint(),
                as2org.fingerprint(), start, 1,
            ),
        )
        planted = journal_path(journal_dir, key)
        planted.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(original, planted)
        shifted_run = run_inference(
            factory, shifted, end, InferenceConfig.extended(),
            as2org=as2org, jobs=1, incremental=True,
            journal_dir=journal_dir,
        )
        shifted_full = run_inference(
            factory, shifted, end, InferenceConfig.extended(),
            as2org=as2org, jobs=1,
        )
        _assert_identical(shifted_run, shifted_full, tmp_path)
        assert shifted_run.runner_stats.days_replayed == 0


class TestValidation:
    def test_journal_dir_requires_incremental(self, scenario, window):
        start, end = window
        with pytest.raises(ReproError, match="incremental"):
            run_inference(
                WorldStreamFactory(scenario), start, end,
                InferenceConfig.baseline(), jobs=1,
                journal_dir="/tmp/nope",
            )

    def test_journal_append_rejects_serial_gap(self, tmp_path):
        journal = DeltaJournal(tmp_path / "j.jsonl")
        with pytest.raises(ReproError, match="serial gap"):
            journal.append({"serial": 3, "kind": "delta"})
