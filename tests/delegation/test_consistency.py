"""Unit tests for the consistency-rule machinery."""

import datetime

import pytest

from repro.delegation.consistency import (
    ConsistencyRule,
    evaluate_rule,
    fail_rate,
    fill_gaps,
)
from repro.delegation.model import DailyDelegations
from repro.netbase.prefix import IPv4Prefix

D = datetime.date


def p(text):
    return IPv4Prefix.parse(text)


def grid(first, count):
    return [first + datetime.timedelta(days=i) for i in range(count)]


KEY = (p("193.0.4.0/24"), 100, 200)
CONFLICT_KEY = (p("193.0.4.0/24"), 100, 300)  # same prefix, other delegatee
OTHER_KEY = (p("193.0.8.0/24"), 100, 300)


class TestRuleValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            ConsistencyRule(0, 0)
        with pytest.raises(ValueError):
            ConsistencyRule(5, -1)


class TestEvaluateRule:
    def test_no_gap_no_violation(self):
        dates = grid(D(2020, 1, 1), 11)
        timelines = {KEY: dates}
        premises, violations = evaluate_rule(
            timelines, ConsistencyRule(10, 0), dates
        )
        assert premises == 1  # exactly one pair 10 days apart
        assert violations == 0

    def test_gap_violates_strict_rule(self):
        dates = grid(D(2020, 1, 1), 11)
        observed = [d for d in dates if d != D(2020, 1, 5)]
        premises, violations = evaluate_rule(
            {KEY: observed}, ConsistencyRule(10, 0), dates
        )
        assert premises == 1 and violations == 1

    def test_gap_allowed_with_n(self):
        dates = grid(D(2020, 1, 1), 11)
        observed = [d for d in dates if d != D(2020, 1, 5)]
        premises, violations = evaluate_rule(
            {KEY: observed}, ConsistencyRule(10, 1), dates
        )
        assert premises == 1 and violations == 0

    def test_data_gaps_are_not_premises(self):
        # Observation grid itself misses a day inside the span.
        dates = [d for d in grid(D(2020, 1, 1), 11) if d != D(2020, 1, 5)]
        timelines = {KEY: dates}
        premises, _ = evaluate_rule(timelines, ConsistencyRule(10, 0), dates)
        assert premises == 0

    def test_multiple_premises(self):
        dates = grid(D(2020, 1, 1), 21)
        premises, violations = evaluate_rule(
            {KEY: dates}, ConsistencyRule(10, 0), dates
        )
        assert premises == 11  # days 0..10 can each start a pair
        assert violations == 0

    def test_fail_rate(self):
        dates = grid(D(2020, 1, 1), 11)
        observed = [d for d in dates if d != D(2020, 1, 5)]
        rate = fail_rate({KEY: observed}, ConsistencyRule(10, 0), dates)
        assert rate == 1.0
        assert fail_rate({}, ConsistencyRule(10, 0), dates) == 0.0

    def test_premise_spans_exactly_m_minus_one_between_days(self):
        # Boundary audit: a (M=10, N) premise judges exactly the M-1
        # days strictly between X and X+M — boundary days X and X+M
        # are the observations themselves, never "missing".
        dates = grid(D(2020, 1, 1), 11)
        observed = [dates[0], dates[10]]  # absent on all 9 between
        premises, violations = evaluate_rule(
            {KEY: observed}, ConsistencyRule(10, 9), dates
        )
        assert premises == 1 and violations == 0  # 9 missing == N
        premises, violations = evaluate_rule(
            {KEY: observed}, ConsistencyRule(10, 8), dates
        )
        assert premises == 1 and violations == 1  # 9 missing > N=8

    def test_monotone_in_n(self):
        dates = grid(D(2020, 1, 1), 31)
        observed = [d for i, d in enumerate(dates) if i % 4 != 3]
        rates = [
            fail_rate({KEY: observed}, ConsistencyRule(12, n), dates)
            for n in range(4)
        ]
        assert rates == sorted(rates, reverse=True)


class TestFillGaps:
    def _daily(self, present_dates, key=KEY):
        daily = DailyDelegations()
        for date in present_dates:
            daily.record(date, [key])
        return daily

    def test_fills_short_gap(self):
        dates = grid(D(2020, 1, 1), 6)
        daily = self._daily([dates[0], dates[5]])
        filled = fill_gaps(daily, ConsistencyRule(10, 0), dates)
        for date in dates:
            assert KEY in filled.on(date)

    def test_does_not_fill_beyond_m(self):
        dates = grid(D(2020, 1, 1), 15)
        daily = self._daily([dates[0], dates[14]])
        filled = fill_gaps(daily, ConsistencyRule(10, 0), dates)
        assert KEY not in filled.on(dates[7])

    def test_conflict_blocks_fill(self):
        dates = grid(D(2020, 1, 1), 6)
        daily = self._daily([dates[0], dates[5]])
        daily.record(dates[2], [CONFLICT_KEY])
        filled = fill_gaps(daily, ConsistencyRule(10, 0), dates)
        assert KEY not in filled.on(dates[1])
        assert KEY not in filled.on(dates[3])
        # Conflicting key untouched.
        assert CONFLICT_KEY in filled.on(dates[2])

    def test_other_prefix_does_not_conflict(self):
        dates = grid(D(2020, 1, 1), 6)
        daily = self._daily([dates[0], dates[5]])
        daily.record(dates[2], [OTHER_KEY])
        filled = fill_gaps(daily, ConsistencyRule(10, 0), dates)
        assert KEY in filled.on(dates[3])

    def test_fill_only_observation_days(self):
        # Weekly observation grid: fill lands on grid days only.
        dates = [D(2020, 1, 1) + datetime.timedelta(days=7 * i)
                 for i in range(3)]
        daily = self._daily([dates[0], dates[1]])
        filled = fill_gaps(daily, ConsistencyRule(10, 0), dates)
        # Gap of 7 days <= 10 but no observation day in between: nothing
        # new recorded, nothing invented off-grid.
        assert filled.dates() == [dates[0], dates[1]]

    def test_original_untouched(self):
        dates = grid(D(2020, 1, 1), 6)
        daily = self._daily([dates[0], dates[5]])
        fill_gaps(daily, ConsistencyRule(10, 0), dates)
        assert KEY not in daily.on(dates[2])

    def test_fills_exact_m_day_span(self):
        # Boundary audit: observations exactly M days apart are the
        # *largest* gap the rule fills; an off-by-one either way would
        # fill M+1 or stop at M-1.
        dates = grid(D(2020, 1, 1), 12)
        daily = self._daily([dates[0], dates[10]])  # gap == M == 10
        filled = fill_gaps(daily, ConsistencyRule(10, 0), dates)
        for date in dates[1:10]:  # all 9 = M-1 in-between days
            assert KEY in filled.on(date)
        assert KEY not in filled.on(dates[11])

    def test_does_not_fill_m_plus_one_span(self):
        dates = grid(D(2020, 1, 1), 12)
        daily = self._daily([dates[0], dates[11]])  # gap == M + 1
        filled = fill_gaps(daily, ConsistencyRule(10, 0), dates)
        for date in dates[1:11]:
            assert KEY not in filled.on(date)

    def test_conflict_on_boundary_days_does_not_block(self):
        # The rule's premise is about the days *between* X and X+M; a
        # conflicting delegation coexisting on X or X+M themselves (a
        # MOAS-style overlap) must not suppress the fill.
        dates = grid(D(2020, 1, 1), 11)
        daily = self._daily([dates[0], dates[10]])
        daily.record(dates[0], [CONFLICT_KEY])
        daily.record(dates[10], [CONFLICT_KEY])
        filled = fill_gaps(daily, ConsistencyRule(10, 0), dates)
        for date in dates[1:10]:
            assert KEY in filled.on(date)

    def test_conflict_adjacent_to_boundary_blocks(self):
        # ... but the first/last *in-between* day (X+1, X+M-1) counts.
        dates = grid(D(2020, 1, 1), 11)
        for conflict_day in (dates[1], dates[9]):
            daily = self._daily([dates[0], dates[10]])
            daily.record(conflict_day, [CONFLICT_KEY])
            filled = fill_gaps(daily, ConsistencyRule(10, 0), dates)
            assert KEY not in filled.on(dates[5])

    def test_variance_reduction_effect(self):
        """Gap filling flattens an on-off pattern (Fig. 6's point)."""
        dates = grid(D(2020, 1, 1), 30)
        on_off = [d for i, d in enumerate(dates) if i % 2 == 0]
        daily = self._daily(on_off)
        filled = fill_gaps(daily, ConsistencyRule(10, 0), dates)
        counts_before = [daily.count_on(d) for d in dates]
        counts_after = [filled.count_on(d) for d in dates]
        assert max(counts_before) - min(counts_before) == 1
        # After filling every day between first and last sighting is on.
        assert counts_after[:29] == [1] * 29
