"""Unit tests for the AS-to-organization dataset."""

import datetime

import pytest

from repro.asorg.as2org import As2OrgDataset, As2OrgSnapshot, Organization
from repro.errors import DatasetError

D = datetime.date


def build_snapshot(date):
    snapshot = As2OrgSnapshot(date)
    snapshot.add_organization(Organization("ORG-A", "Alpha Net", "DE"))
    snapshot.add_organization(Organization("ORG-B", "Beta Net", "US"))
    snapshot.assign(100, "ORG-A")
    snapshot.assign(101, "ORG-A")
    snapshot.assign(200, "ORG-B")
    return snapshot


class TestSnapshot:
    def test_same_org(self):
        snapshot = build_snapshot(D(2020, 1, 1))
        assert snapshot.same_org(100, 101)
        assert not snapshot.same_org(100, 200)

    def test_unmapped_never_same(self):
        snapshot = build_snapshot(D(2020, 1, 1))
        assert not snapshot.same_org(100, 999)
        assert not snapshot.same_org(999, 998)
        assert not snapshot.same_org(999, 999)

    def test_org_of(self):
        snapshot = build_snapshot(D(2020, 1, 1))
        assert snapshot.org_of(100) == "ORG-A"
        assert snapshot.org_of(999) is None

    def test_duplicate_org_rejected(self):
        snapshot = build_snapshot(D(2020, 1, 1))
        with pytest.raises(DatasetError):
            snapshot.add_organization(Organization("ORG-A", "dup"))

    def test_assign_validation(self):
        snapshot = build_snapshot(D(2020, 1, 1))
        with pytest.raises(DatasetError):
            snapshot.assign(300, "ORG-NONE")
        with pytest.raises(DatasetError):
            snapshot.assign(100, "ORG-B")

    def test_render_parse_round_trip(self):
        snapshot = build_snapshot(D(2020, 1, 1))
        parsed = As2OrgSnapshot.parse(D(2020, 1, 1), snapshot.render())
        assert parsed.mappings() == snapshot.mappings()
        assert parsed.organizations() == snapshot.organizations()

    def test_parse_rejects_orphan_lines(self):
        with pytest.raises(DatasetError):
            As2OrgSnapshot.parse(D(2020, 1, 1), "ORG-A|x|Name|DE|SIM\n")

    def test_empty_org_id(self):
        with pytest.raises(DatasetError):
            Organization("", "nameless")


class TestDataset:
    @pytest.fixture
    def dataset(self):
        ds = As2OrgDataset()
        ds.add_snapshot(build_snapshot(D(2020, 1, 1)))
        later = As2OrgSnapshot(D(2020, 4, 1))
        later.add_organization(Organization("ORG-A", "Alpha Net", "DE"))
        later.add_organization(Organization("ORG-B", "Beta Net", "US"))
        later.assign(100, "ORG-A")
        later.assign(200, "ORG-B")
        later.assign(101, "ORG-B")  # 101 changed hands in Q2
        ds.add_snapshot(later)
        return ds

    def test_next_available_snapshot(self, dataset):
        assert dataset.snapshot_for(D(2019, 12, 1)).date == D(2020, 1, 1)
        assert dataset.snapshot_for(D(2020, 1, 1)).date == D(2020, 1, 1)
        assert dataset.snapshot_for(D(2020, 2, 1)).date == D(2020, 4, 1)
        # Past the last snapshot: fall back to the last one.
        assert dataset.snapshot_for(D(2020, 9, 1)).date == D(2020, 4, 1)

    def test_same_org_uses_next_snapshot(self, dataset):
        # In January's snapshot 100/101 are the same org; a February day
        # joins against April's snapshot where they differ.
        assert dataset.same_org(100, 101, D(2020, 1, 1))
        assert not dataset.same_org(100, 101, D(2020, 2, 1))

    def test_empty_dataset(self):
        with pytest.raises(DatasetError):
            As2OrgDataset().snapshot_for(D(2020, 1, 1))

    def test_duplicate_snapshot(self, dataset):
        with pytest.raises(DatasetError):
            dataset.add_snapshot(As2OrgSnapshot(D(2020, 1, 1)))

    def test_file_round_trip(self, dataset, tmp_path):
        paths = dataset.write(tmp_path)
        assert len(paths) == 2
        loaded = As2OrgDataset.read(tmp_path)
        assert loaded.dates() == dataset.dates()
        assert loaded.snapshot_for(D(2020, 1, 1)).mappings() == \
            dataset.snapshot_for(D(2020, 1, 1)).mappings()

    def test_read_bad_filename(self, tmp_path):
        (tmp_path / "junk.as-org2info.txt").write_text("#\n")
        with pytest.raises(DatasetError):
            As2OrgDataset.read(tmp_path)
