"""Tests for opt-in per-span peak-memory profiling."""

import pickle

import pytest

from repro.obs import NULL, MetricsRegistry
from repro.obs.profile import MemoryProfiler


def _allocate_kb(kb: int) -> bytearray:
    return bytearray(kb * 1024)


class TestMemoryProfiler:
    def test_span_peak_sees_transient_allocation(self):
        profiler = MemoryProfiler()
        profiler.start()
        try:
            profiler.enter_span()
            blob = _allocate_kb(512)
            del blob
            peak = profiler.exit_span()
        finally:
            profiler.stop()
        assert peak >= 512 * 1024

    def test_parent_peak_covers_child(self):
        profiler = MemoryProfiler()
        profiler.start()
        try:
            profiler.enter_span()          # parent
            profiler.enter_span()          # child
            blob = _allocate_kb(256)
            del blob
            child_peak = profiler.exit_span()
            parent_peak = profiler.exit_span()
        finally:
            profiler.stop()
        assert child_peak >= 256 * 1024
        assert parent_peak >= child_peak

    def test_sibling_spans_are_independent(self):
        profiler = MemoryProfiler()
        profiler.start()
        try:
            profiler.enter_span()          # parent
            profiler.enter_span()
            blob = _allocate_kb(512)
            del blob
            big = profiler.exit_span()
            profiler.enter_span()
            small = profiler.exit_span()
            profiler.exit_span()
        finally:
            profiler.stop()
        # The second sibling must not inherit the first one's peak.
        assert small < big

    def test_stop_only_stops_own_tracing(self):
        import tracemalloc

        tracemalloc.start()
        try:
            profiler = MemoryProfiler()
            profiler.start()   # already tracing: not ours to stop
            profiler.stop()
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()


class TestRegistryProfiling:
    def test_enable_sets_profile_gauges(self):
        registry = MetricsRegistry()
        registry.enable_memory_profile()
        assert registry.memory_profiling
        with registry.span("stage"):
            blob = _allocate_kb(512)
            del blob
        gauge = registry.gauge("profile.stage.peak_kb")
        assert gauge is not None
        assert gauge >= 512

    def test_nested_spans_gauge_full_names(self):
        registry = MetricsRegistry()
        registry.enable_memory_profile()
        with registry.span("outer"):
            with registry.span("inner"):
                blob = _allocate_kb(256)
                del blob
        inner = registry.gauge("profile.outer.inner.peak_kb")
        outer = registry.gauge("profile.outer.peak_kb")
        assert inner is not None and outer is not None
        assert outer >= inner >= 256

    def test_disabled_registry_records_no_profile_gauges(self):
        registry = MetricsRegistry()
        with registry.span("stage"):
            pass
        assert not registry.memory_profiling
        assert registry.gauge("profile.stage.peak_kb") is None

    def test_null_registry_never_profiles(self):
        NULL.enable_memory_profile()
        with NULL.span("stage"):
            pass
        assert NULL.to_json()["gauges"] == {}

    def test_enable_is_idempotent(self):
        registry = MetricsRegistry()
        registry.enable_memory_profile()
        first = registry._mem_profiler
        registry.enable_memory_profile()
        assert registry._mem_profiler is first

    def test_gauges_merge_by_maximum(self):
        # Worker fan-in keeps the worst per-stage peak across the pool.
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("profile.day.peak_kb", 100.0)
        b.set_gauge("profile.day.peak_kb", 900.0)
        a.merge(b)
        assert a.gauge("profile.day.peak_kb") == 900.0

    def test_profiler_not_pickled(self):
        registry = MetricsRegistry()
        registry.enable_memory_profile()
        with registry.span("stage"):
            blob = _allocate_kb(64)
            del blob
        clone = pickle.loads(pickle.dumps(registry))
        # Gauges travel; the process-local profiler does not.
        assert clone.gauge("profile.stage.peak_kb") == pytest.approx(
            registry.gauge("profile.stage.peak_kb")
        )
        assert not clone.memory_profiling
