"""Unit tests for the trace buffer, tracing registry, and summary."""

import json
import pickle

import pytest

from repro.errors import DatasetError
from repro.obs import (
    MetricsRegistry,
    TraceBuffer,
    TracingRegistry,
    load_trace,
    summarize_trace,
)
from repro.obs.trace import TRACE_SCHEMA, TraceEvent


class TestTraceBuffer:
    def test_add_records_pid_and_lane(self):
        import os

        buffer = TraceBuffer(lane="worker-7")
        buffer.add("stage", 10.0, 0.5)
        (event,) = buffer.events()
        assert event.name == "stage"
        assert event.start == 10.0
        assert event.duration == 0.5
        assert event.end == pytest.approx(10.5)
        assert event.lane == "worker-7"
        assert event.pid == os.getpid()
        assert event.failed is False

    def test_merge_is_multiset_union(self):
        a, b = TraceBuffer("main"), TraceBuffer("worker-1")
        a.add("x", 1.0, 0.1)
        b.add("y", 2.0, 0.2)
        b.add("z", 3.0, 0.3)
        merged = a.merge(b)
        assert merged is a
        assert len(a) == 3
        assert a.lanes() == ["main", "worker-1"]

    def test_merge_order_does_not_change_export(self):
        shards = []
        for lane, offset in (("w-1", 0.0), ("w-2", 5.0), ("w-3", 2.5)):
            shard = TraceBuffer(lane)
            shard.add("day", 100.0 + offset, 0.5)
            shard.add("day", 101.0 + offset, 0.25)
            shards.append(shard)
        forward = TraceBuffer("main")
        for shard in shards:
            forward.merge(shard)
        backward = TraceBuffer("main")
        for shard in reversed(shards):
            backward.merge(shard)
        assert forward.to_chrome_json() == backward.to_chrome_json()

    def test_empty_buffer_exports_empty_trace(self):
        payload = TraceBuffer().to_chrome_json()
        assert payload["traceEvents"] == []
        assert payload["metadata"]["schema"] == TRACE_SCHEMA


class TestChromeExport:
    def _buffer(self):
        buffer = TraceBuffer("main")
        buffer.add("outer", 100.0, 1.0)
        buffer.add("outer.inner", 100.2, 0.5, failed=True)
        return buffer

    def test_complete_events_are_relative_microseconds(self):
        payload = self._buffer().to_chrome_json()
        complete = [
            e for e in payload["traceEvents"] if e["ph"] == "X"
        ]
        assert [e["name"] for e in complete] == ["outer", "outer.inner"]
        outer, inner = complete
        assert outer["ts"] == 0.0
        assert outer["dur"] == pytest.approx(1e6)
        assert inner["ts"] == pytest.approx(0.2e6)
        assert inner["dur"] == pytest.approx(0.5e6)

    def test_failed_flag_lands_in_args(self):
        payload = self._buffer().to_chrome_json()
        by_name = {
            e["name"]: e
            for e in payload["traceEvents"]
            if e["ph"] == "X"
        }
        assert "failed" not in by_name["outer"]["args"]
        assert by_name["outer.inner"]["args"]["failed"] is True

    def test_thread_metadata_names_lanes(self):
        buffer = TraceBuffer("main")
        buffer.add("a", 1.0, 0.1)
        other = TraceBuffer("worker-9")
        other.add("b", 2.0, 0.1)
        buffer.merge(other)
        payload = buffer.to_chrome_json()
        thread_names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names == {"main", "worker-9"}
        # Each lane gets its own stable tid.
        tid_by_lane = {
            e["args"]["lane"]: e["tid"]
            for e in payload["traceEvents"]
            if e["ph"] == "X"
        }
        assert len(set(tid_by_lane.values())) == 2

    def test_write_load_round_trip(self, tmp_path):
        target = tmp_path / "trace.json"
        self._buffer().write(target)
        payload = load_trace(target)
        assert payload["metadata"]["trace_start_epoch"] == 100.0
        assert len(
            [e for e in payload["traceEvents"] if e["ph"] == "X"]
        ) == 2

    def test_write_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "trace.json"
        self._buffer().write(target)
        assert target.exists()

    def test_load_rejects_non_trace_json(self, tmp_path):
        target = tmp_path / "not-a-trace.json"
        target.write_text(json.dumps({"schema": 1}), encoding="utf-8")
        with pytest.raises(DatasetError):
            load_trace(target)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_trace(tmp_path / "nope.json")


class TestTracingRegistry:
    def test_span_records_metric_and_event(self):
        registry = TracingRegistry(lane="main")
        with registry.span("stage"):
            pass
        assert registry.timer("stage").count == 1
        (event,) = registry.trace.events()
        assert event.name == "stage"
        assert event.lane == "main"

    def test_nested_spans_keep_dotted_names(self):
        registry = TracingRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        names = [e.name for e in registry.trace.events()]
        # Inner closes first; both carry their full dotted path.
        assert names == ["outer.inner", "outer"]

    def test_failed_span_event(self):
        registry = TracingRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("boom"):
                raise RuntimeError("boom")
        (event,) = registry.trace.events()
        assert event.failed is True
        assert registry.counter("boom.failed") == 1

    def test_merge_folds_trace_and_metrics(self):
        parent = TracingRegistry(lane="main")
        worker = TracingRegistry(lane="worker-1")
        with worker.span("day"):
            pass
        worker.inc("pipeline.pairs_seen", 5)
        parent.merge(worker)
        assert parent.counter("pipeline.pairs_seen") == 5
        assert parent.trace.lanes() == ["worker-1"]

    def test_merge_plain_registry_has_no_trace(self):
        parent = TracingRegistry()
        plain = MetricsRegistry()
        plain.inc("c", 2)
        parent.merge(plain)
        assert parent.counter("c") == 2
        assert len(parent.trace) == 0

    def test_pickle_round_trip_keeps_events(self):
        registry = TracingRegistry(lane="worker-3")
        with registry.span("stage"):
            pass
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.trace.lane == "worker-3"
        assert [e.name for e in clone.trace.events()] == ["stage"]
        assert clone.to_json() == registry.to_json()


class TestSummarizeTrace:
    def _payload(self):
        buffer = TraceBuffer("main")
        buffer.add("runner", 100.0, 2.0)
        w1 = TraceBuffer("worker-1")
        w1.add("day", 100.1, 0.9)
        w1.add("day", 101.0, 0.9)
        w2 = TraceBuffer("worker-2")
        w2.add("day", 100.1, 1.8, failed=True)
        buffer.merge(w1).merge(w2)
        return buffer.to_chrome_json()

    def test_mentions_lanes_and_wall_clock(self):
        text = summarize_trace(self._payload())
        assert "3 lanes" in text
        assert "wall-clock 2.000s" in text
        assert "worker-1" in text and "worker-2" in text

    def test_reports_failed_spans(self):
        text = summarize_trace(self._payload())
        assert "FAILED SPANS: 1" in text
        assert "FAILED" in text

    def test_critical_path_present(self):
        text = summarize_trace(self._payload())
        assert "critical path" in text

    def test_top_limits_slowest_table(self):
        text = summarize_trace(self._payload(), top=2)
        assert "top 2 slowest spans" in text

    def test_empty_trace(self):
        assert "empty trace" in summarize_trace({"traceEvents": []})

    def test_zero_duration_spans_terminate(self):
        # Regression guard: a chain of zero-duration spans must not
        # make the critical-path walk loop forever.
        buffer = TraceBuffer("main")
        buffer.add("a", 100.0, 0.0)
        buffer.add("b", 100.0, 0.0)
        buffer.add("c", 100.0, 0.0)
        text = summarize_trace(buffer.to_chrome_json())
        assert "3 spans" in text


def test_trace_event_is_frozen():
    event = TraceEvent("a", 1.0, 0.5, pid=1, lane="main")
    with pytest.raises(AttributeError):
        event.name = "b"
