"""Property-based tests for ``TraceBuffer.merge``.

The runner merges worker trace buffers in whatever order the pool
finishes chunks, exactly like metric registries — so the exported
trace's canonical form must be independent of merge grouping and
order, with the empty buffer as identity.  Mirrors
``tests/obs/test_metrics_properties.py``.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.obs import TraceBuffer

_LANES = st.sampled_from(["main", "worker-1", "worker-2"])

#: One recorded span: (name, start, duration, failed).
_SPANS = st.tuples(
    st.sampled_from(["runner", "runner.day", "rdap.sweep"]),
    st.floats(min_value=0.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=1e3,
              allow_nan=False, allow_infinity=False),
    st.booleans(),
)

_SHARDS = st.lists(
    st.tuples(_LANES, st.lists(_SPANS, max_size=10)),
    min_size=1,
    max_size=5,
)


def _buffer(lane, spans) -> TraceBuffer:
    buffer = TraceBuffer(lane)
    for name, start, duration, failed in spans:
        buffer.add(name, start, duration, failed=failed)
    return buffer


def _canon(buffer: TraceBuffer):
    """Comparable snapshot: the canonical-sorted event multiset."""
    return sorted(
        (e.name, round(e.start, 6), round(e.duration, 6),
         e.lane, e.failed)
        for e in buffer.events()
    )


@given(_SHARDS)
def test_merge_order_is_irrelevant(shards):
    forward = TraceBuffer("main")
    for lane, spans in shards:
        forward.merge(_buffer(lane, spans))
    backward = TraceBuffer("main")
    for lane, spans in reversed(shards):
        backward.merge(_buffer(lane, spans))
    assert _canon(forward) == _canon(backward)
    assert forward.to_chrome_json() == backward.to_chrome_json()


@given(
    st.lists(_SPANS, max_size=10),
    st.lists(_SPANS, max_size=10),
    st.lists(_SPANS, max_size=10),
)
def test_merge_is_associative(spans_a, spans_b, spans_c):
    left = _buffer("a", spans_a).merge(
        _buffer("b", spans_b).merge(_buffer("c", spans_c))
    )
    right = _buffer("a", spans_a).merge(_buffer("b", spans_b)).merge(
        _buffer("c", spans_c)
    )
    assert _canon(left) == _canon(right)


@given(st.lists(_SPANS, max_size=15))
def test_empty_buffer_is_identity(spans):
    merged = _buffer("main", spans).merge(TraceBuffer("other"))
    assert _canon(merged) == _canon(_buffer("main", spans))
    absorbed = TraceBuffer("main").merge(_buffer("main", spans))
    assert _canon(absorbed) == _canon(_buffer("main", spans))


@given(_SHARDS)
def test_merged_length_is_sum_of_shards(shards):
    merged = TraceBuffer("main")
    for lane, spans in shards:
        merged.merge(_buffer(lane, spans))
    assert len(merged) == sum(len(spans) for _lane, spans in shards)
