"""Tests for the append-only run history and its regression gate."""

import json

import pytest

from repro.errors import DatasetError
from repro.obs import (
    RunHistory,
    find_regressions,
    parse_percent,
    render_diff,
    render_list,
    summarize_manifest,
)


def _manifest(
    runner_seconds=1.0,
    pairs_seen=100,
    quarantined=0,
    config_hash="abc123" * 8,
    profile=None,
    runner_p99=None,
    mismatched=0,
):
    """A minimal but structurally faithful manifest payload."""
    gauges = dict(profile or {})
    counters = {"spans.mismatched": mismatched} if mismatched else {}
    histograms = {}
    if runner_p99 is not None:
        histograms["runner"] = {
            "count": 1,
            "total_seconds": runner_seconds,
            "p50_seconds": runner_p99,
            "p90_seconds": runner_p99,
            "p99_seconds": runner_p99,
            "p999_seconds": runner_p99,
            "buckets": {"20": 1},
        }
    return {
        "schema": 1,
        "command": "infer",
        "created": "2026-08-06T00:00:00+00:00",
        "config": {"visibility_threshold": 10},
        "config_hash": config_hash,
        "inputs": {"stream": "deadbeef"},
        "stages": [
            {
                "name": "(i) sanitize",
                "records_in": pairs_seen + 3,
                "records_out": pairs_seen,
                "dropped": {"bogon_prefix": 3},
            },
        ],
        "cache": {"hits": 4, "misses": 6},
        "degradation": (
            {"quarantined_total": quarantined} if quarantined else None
        ),
        "extra": {"scale": "small", "seed": 42},
        "metrics": {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "timers": {
                "runner": {
                    "count": 1,
                    "total_seconds": runner_seconds,
                    "min_seconds": runner_seconds,
                    "max_seconds": runner_seconds,
                },
                "runner.fan_in": {
                    "count": 1,
                    "total_seconds": 0.001,
                    "min_seconds": 0.001,
                    "max_seconds": 0.001,
                },
            },
        },
    }


class TestParsePercent:
    def test_percent_suffix(self):
        assert parse_percent("20%") == pytest.approx(0.20)

    def test_bare_fraction(self):
        assert parse_percent("0.35") == pytest.approx(0.35)

    def test_number_passes_through(self):
        assert parse_percent(0.5) == pytest.approx(0.5)

    def test_garbage_rejected(self):
        with pytest.raises(DatasetError):
            parse_percent("fast-ish")

    def test_negative_rejected(self):
        with pytest.raises(DatasetError):
            parse_percent("-10%")


class TestSummarizeManifest:
    def test_keeps_comparable_facts(self):
        entry = summarize_manifest(_manifest(
            quarantined=2,
            profile={"profile.runner.peak_kb": 1024.0, "other": 1.0},
        ))
        assert entry["command"] == "infer"
        assert entry["stages"]["(i) sanitize"]["in"] == 103
        assert entry["timers"]["runner"]["total_seconds"] == 1.0
        assert entry["cache"] == {"hits": 4, "misses": 6}
        assert entry["quarantined"] == 2
        # Only profile.* gauges travel; the full dump stays behind.
        assert entry["profile"] == {"profile.runner.peak_kb": 1024.0}

    def test_tolerates_sparse_manifest(self):
        entry = summarize_manifest({"schema": 1, "command": "ingest"})
        assert entry["command"] == "ingest"
        assert entry["stages"] == {}
        assert entry["timers"] == {}
        assert entry["quarantined"] == 0

    def test_carries_mean_and_histogram_p99(self):
        entry = summarize_manifest(_manifest(runner_p99=0.9))
        runner = entry["timers"]["runner"]
        assert runner["mean_seconds"] == pytest.approx(1.0)
        assert runner["p99_seconds"] == pytest.approx(0.9)
        # A timer with no histogram simply has no p99 key.
        assert "p99_seconds" not in entry["timers"]["runner.fan_in"]

    def test_mismatched_spans_ride_in_malformed_map(self):
        entry = summarize_manifest(_manifest(mismatched=2))
        assert entry["malformed"]["spans.mismatched"] == 2


class TestRunHistory:
    def test_record_assigns_sequential_ids(self, tmp_path):
        history = RunHistory(tmp_path / "h.jsonl")
        first = history.record(_manifest())
        second = history.record(_manifest())
        assert first["id"] == 1
        assert second["id"] == 2
        assert [e["id"] for e in history.entries()] == [1, 2]

    def test_record_is_append_only(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history = RunHistory(path)
        history.record(_manifest())
        before = path.read_text(encoding="utf-8")
        history.record(_manifest())
        after = path.read_text(encoding="utf-8")
        assert after.startswith(before)

    def test_entries_skip_truncated_tail(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history = RunHistory(path)
        history.record(_manifest())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"id": 2, "command": "inf')  # crash mid-write
        assert [e["id"] for e in history.entries()] == [1]
        # Recording after a crash still produces a loadable store.
        entry = history.record(_manifest())
        assert entry["id"] == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert RunHistory(tmp_path / "absent.jsonl").entries() == []

    def test_entry_lookup_and_missing(self, tmp_path):
        history = RunHistory(tmp_path / "h.jsonl")
        history.record(_manifest())
        assert history.entry(1)["id"] == 1
        with pytest.raises(DatasetError):
            history.entry(99)

    def test_latest_on_empty_store(self, tmp_path):
        with pytest.raises(DatasetError):
            RunHistory(tmp_path / "h.jsonl").latest()

    def test_diff_renders(self, tmp_path):
        history = RunHistory(tmp_path / "h.jsonl")
        history.record(_manifest(runner_seconds=1.0))
        history.record(_manifest(runner_seconds=2.0))
        text = history.diff(1, 2)
        assert "run #1" in text and "run #2" in text
        assert "config: identical" in text
        assert "+100.0%" in text

    def test_check_defaults_to_latest(self, tmp_path):
        history = RunHistory(tmp_path / "h.jsonl")
        history.record(_manifest(runner_seconds=1.0))
        history.record(_manifest(runner_seconds=5.0))
        regressions = history.check(1, max_regress=0.20)
        assert any("timer runner" in line for line in regressions)


class TestFindRegressions:
    def _entries(self, base_kwargs, cand_kwargs):
        return (
            summarize_manifest(_manifest(**base_kwargs)),
            summarize_manifest(_manifest(**cand_kwargs)),
        )

    def test_slowdown_past_limit_flagged(self):
        base, cand = self._entries(
            {"runner_seconds": 1.0}, {"runner_seconds": 1.5}
        )
        regressions = find_regressions(base, cand, max_regress=0.20)
        assert len(regressions) == 1
        assert "timer runner" in regressions[0]

    def test_slowdown_within_limit_passes(self):
        base, cand = self._entries(
            {"runner_seconds": 1.0}, {"runner_seconds": 1.1}
        )
        assert find_regressions(base, cand, max_regress=0.20) == []

    def test_fast_timers_never_gate(self):
        # runner.fan_in doubles but sits under min_seconds: noise.
        base, cand = self._entries(
            {"runner_seconds": 0.002}, {"runner_seconds": 0.040}
        )
        assert find_regressions(
            base, cand, max_regress=0.20, min_seconds=0.05
        ) == []

    def test_quarantine_increase_flagged(self):
        base, cand = self._entries(
            {"quarantined": 0}, {"quarantined": 3}
        )
        regressions = find_regressions(base, cand, max_regress=10.0)
        assert any("quarantined" in line for line in regressions)

    def test_p99_regression_flagged_even_with_flat_total(self):
        # Same wall-clock total, but the tail blew out: the mean gate
        # stays silent and only the p99 gate catches it.
        base, cand = self._entries(
            {"runner_seconds": 1.0, "runner_p99": 0.1},
            {"runner_seconds": 1.0, "runner_p99": 0.8},
        )
        regressions = find_regressions(base, cand, max_regress=0.20)
        assert len(regressions) == 1
        assert "p99" in regressions[0]

    def test_p99_under_noise_floor_never_gates(self):
        base, cand = self._entries(
            {"runner_seconds": 1.0, "runner_p99": 0.001},
            {"runner_seconds": 1.0, "runner_p99": 0.040},
        )
        assert find_regressions(
            base, cand, max_regress=0.20, min_seconds=0.05
        ) == []

    def test_p99_gate_skips_entries_without_histograms(self):
        # Baseline recorded before histograms existed: no p99 key.
        base, cand = self._entries(
            {"runner_seconds": 1.0},
            {"runner_seconds": 1.0, "runner_p99": 5.0},
        )
        assert find_regressions(base, cand, max_regress=0.20) == []

    def test_mismatched_span_increase_flagged(self):
        base, cand = self._entries({}, {"mismatched": 1})
        regressions = find_regressions(base, cand, max_regress=10.0)
        assert any("spans.mismatched" in line for line in regressions)

    def test_attrition_drift_needs_same_config(self):
        same_base, same_cand = self._entries(
            {"pairs_seen": 100}, {"pairs_seen": 90}
        )
        drift = find_regressions(same_base, same_cand, max_regress=10.0)
        assert any("determinism" in line for line in drift)
        # Different configs: attrition is expected to move.
        diff_base, diff_cand = self._entries(
            {"pairs_seen": 100},
            {"pairs_seen": 90, "config_hash": "other" * 8},
        )
        assert find_regressions(
            diff_base, diff_cand, max_regress=10.0
        ) == []


class TestRendering:
    def test_render_list_empty(self):
        assert "empty" in render_list([])

    def test_render_list_table(self, tmp_path):
        history = RunHistory(tmp_path / "h.jsonl")
        history.record(_manifest())
        text = render_list(history.entries())
        assert "run history" in text
        assert "infer" in text
        assert "40%" in text  # 4 hits / 10 total

    def test_render_diff_reports_memory(self):
        base = summarize_manifest(
            _manifest(profile={"profile.runner.peak_kb": 100.0})
        )
        cand = summarize_manifest(
            _manifest(profile={"profile.runner.peak_kb": 900.0})
        )
        text = render_diff(base, cand)
        assert "profile.runner.peak_kb" in text
        assert "900 kB" in text

    def test_render_diff_added_and_removed_timers(self):
        base = summarize_manifest(_manifest())
        cand = summarize_manifest(_manifest())
        del cand["timers"]["runner.fan_in"]
        cand["timers"]["runner.cache_write"] = {
            "count": 1, "total_seconds": 0.1,
        }
        text = render_diff(base, cand)
        assert "added" in text and "removed" in text


def test_entries_are_plain_json_lines(tmp_path):
    path = tmp_path / "h.jsonl"
    RunHistory(path).record(_manifest())
    (line,) = path.read_text(encoding="utf-8").splitlines()
    payload = json.loads(line)
    assert payload["id"] == 1
    assert payload["schema"] == 1
