"""End-to-end tests for ``--metrics-out`` manifests and their invariants.

Two properties anchor this module:

* instrumentation is *inert*: running with ``--metrics-out`` must not
  change a single byte of any exported figure CSV, sequential or
  parallel; and
* attrition is *deterministic*: the per-filter stage table an infer
  manifest reports must be identical for ``--jobs 1`` and ``--jobs 2``
  (only wall-clock timings may differ).
"""

import json

import pytest

from repro.cli import main
from repro.obs import load_manifest, render_manifest

#: Figure CSVs with fully deterministic content.
_DATA_FIGS = ("fig1", "fig2", "fig4", "fig5", "fig6")

_INFER_ARGS = ["infer", "--step-days", "7", "--tail", "1"]


def _run_figures(tmp_path, name, extra):
    out = tmp_path / name
    assert main(["figures", str(out)] + extra) == 0
    return out


def _read_csvs(directory):
    return {
        fig: (directory / f"{fig}.csv").read_bytes()
        for fig in _DATA_FIGS
    }


def _strip_seconds(stages):
    return [
        {key: value for key, value in stage.items() if key != "seconds"}
        for stage in stages
    ]


class TestFiguresDifferential:
    def test_metrics_out_never_changes_csvs(self, tmp_path, capsys):
        plain_seq = _run_figures(tmp_path, "plain_seq", [])
        with_seq = _run_figures(
            tmp_path, "with_seq",
            ["--metrics-out", str(tmp_path / "seq.json")],
        )
        plain_par = _run_figures(tmp_path, "plain_par", ["--jobs", "2"])
        with_par = _run_figures(
            tmp_path, "with_par",
            ["--jobs", "2", "--metrics-out", str(tmp_path / "par.json")],
        )
        capsys.readouterr()

        baseline = _read_csvs(plain_seq)
        # Instrumented runs are byte-identical to plain runs...
        assert _read_csvs(with_seq) == baseline
        assert _read_csvs(with_par) == baseline
        # ...and parallelism itself never changes the data series.
        assert _read_csvs(plain_par) == baseline
        # Both manifests were written and are loadable.
        assert load_manifest(tmp_path / "seq.json")["command"] == "figures"
        assert load_manifest(tmp_path / "par.json")["command"] == "figures"

    def test_runner_stats_csv_stable_modulo_timing(self, tmp_path, capsys):
        plain = _run_figures(tmp_path, "p", ["--jobs", "2"])
        instrumented = _run_figures(
            tmp_path, "i",
            ["--jobs", "2", "--metrics-out", str(tmp_path / "m.json")],
        )
        capsys.readouterr()

        def rows_without_elapsed(directory):
            lines = (directory / "fig6_runner.csv").read_text().splitlines()
            return [line.rsplit(",", 1)[0] for line in lines]

        assert rows_without_elapsed(instrumented) == \
            rows_without_elapsed(plain)


class TestInferManifest:
    def _infer_manifest(self, tmp_path, name, jobs, capsys):
        path = tmp_path / name
        argv = ["infer", *_INFER_ARGS[1:],
                "--jobs", str(jobs), "--metrics-out", str(path)]
        assert main(argv) == 0
        capsys.readouterr()
        return load_manifest(path)

    def test_manifest_contents(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        path = tmp_path / "m.json"
        argv = _INFER_ARGS + [
            "--jobs", "1", "--cache-dir", str(cache),
            "--metrics-out", str(path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        payload = load_manifest(path)

        assert payload["command"] == "infer"
        assert payload["config"]["same_org_filter"] is True
        assert len(payload["config_hash"]) == 64
        assert "stream" in payload["inputs"]
        assert "as2org" in payload["inputs"]

        stages = {stage["name"]: stage for stage in payload["stages"]}
        # All five §4 filter stages appear, with per-filter attrition.
        for name in ("(i) sanitize", "(ii) visibility",
                     "(iii) unique-origin", "(iv) same-org",
                     "(v) consistency"):
            assert name in stages
        assert stages["(ii) visibility"]["records_in"] > 0
        for stage in payload["stages"]:
            assert stage["records_in"] >= stage["records_out"] or \
                stage["name"] == "(v) consistency"

        # Cold run: everything was computed, nothing cached.
        assert payload["cache"]["hits"] == 0
        assert payload["cache"]["misses"] > 0

        timers = payload["metrics"]["timers"]
        assert timers["runner.compute.day"]["count"] == \
            payload["cache"]["misses"]
        assert payload["extra"]["scale"] == "small"

        # Warm re-run against the same cache flips the counters.
        path2 = tmp_path / "m2.json"
        assert main(_INFER_ARGS + [
            "--jobs", "1", "--cache-dir", str(cache),
            "--metrics-out", str(path2),
        ]) == 0
        capsys.readouterr()
        warm = load_manifest(path2)
        assert warm["cache"]["hits"] == payload["cache"]["misses"]
        assert warm["cache"]["misses"] == 0

    def test_attrition_identical_across_jobs(self, tmp_path, capsys):
        sequential = self._infer_manifest(tmp_path, "j1.json", 1, capsys)
        parallel = self._infer_manifest(tmp_path, "j2.json", 2, capsys)

        # Stage tables agree exactly once nondeterministic wall-clock
        # values are stripped.
        assert _strip_seconds(sequential["stages"]) == \
            _strip_seconds(parallel["stages"])

        # And the underlying per-filter counters agree exactly.
        def pipeline_counters(payload):
            return {
                name: value
                for name, value in payload["metrics"]["counters"].items()
                if name.startswith("pipeline.")
            }

        counters = pipeline_counters(sequential)
        assert counters == pipeline_counters(parallel)
        assert counters["pipeline.pairs_seen"] > 0
        assert counters["pipeline.delegations"] > 0

    def test_manifest_command_renders(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        assert main(_INFER_ARGS + [
            "--jobs", "1", "--metrics-out", str(path),
        ]) == 0
        capsys.readouterr()
        assert main(["manifest", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run manifest: infer" in out
        assert "per-stage attrition" in out
        assert "(iv) same-org" in out
        assert "pipeline.pairs_seen" in out

    def test_manifest_command_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "not.json"
        path.write_text(json.dumps({"schema": 999}), encoding="utf-8")
        assert main(["manifest", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "Traceback" not in err


class TestMarketManifest:
    def test_market_writes_manifest(self, tmp_path, capsys):
        path = tmp_path / "market.json"
        assert main(["market", "--metrics-out", str(path)]) == 0
        report = capsys.readouterr().out
        assert "Market report" in report
        payload = load_manifest(path)
        assert payload["command"] == "market"
        assert payload["metrics"]["counters"]["market.priced_transactions"] > 0
        assert "market.prices" in payload["metrics"]["timers"]
        # The report itself is unchanged by instrumentation.
        assert main(["market"]) == 0
        assert capsys.readouterr().out == report

    def test_render_smoke(self, tmp_path, capsys):
        path = tmp_path / "market.json"
        assert main(["market", "--metrics-out", str(path)]) == 0
        capsys.readouterr()
        text = render_manifest(load_manifest(path))
        assert "run manifest: market" in text
