"""Unit tests for the ``repro obs top`` dashboard loop.

``run_top`` takes injectable fetch/clock/sleep/out hooks precisely so
this suite can drive the refresh loop without a socket; the real
fetcher is exercised end-to-end by the serve CLI tests.
"""

import pytest

from repro.errors import ReproError
from repro.obs import MetricsRegistry
from repro.obs.top import (
    CLEAR,
    parse_target,
    render_dashboard,
    run_top,
)


def _health(requests=5, p99=0.004):
    snap = {
        "requests": requests,
        "qps": requests / 60.0,
        "errors": 0,
        "errorRate": 0.0,
        "p99Seconds": p99,
        "windowSeconds": 60,
    }
    return {
        "status": "ok",
        "uptimeSeconds": 12.0,
        "connections": {"live": 1},
        "window": {"1m": snap, "5m": dict(snap, windowSeconds=300)},
    }


def _metrics(ip_requests=5, mismatched=0):
    registry = MetricsRegistry()
    for _ in range(ip_requests):
        registry.observe("serve.http.request", 0.002)
        registry.observe("serve.http.route.ip", 0.002)
    if mismatched:
        registry.inc("spans.mismatched", mismatched)
    return registry.to_json()


class TestParseTarget:
    def test_host_port(self):
        assert parse_target("localhost:8080") == ("localhost", 8080)

    def test_url_with_path(self):
        assert parse_target("http://127.0.0.1:9100/metrics") == (
            "127.0.0.1", 9100
        )

    def test_https_prefix(self):
        assert parse_target("https://h:1") == ("h", 1)

    def test_missing_port_rejected(self):
        with pytest.raises(ReproError, match="host:port"):
            parse_target("localhost")

    def test_bad_port_rejected(self):
        with pytest.raises(ReproError, match="bad port"):
            parse_target("localhost:http")


class TestRenderDashboard:
    def test_first_frame_has_windows_and_routes(self):
        frame = render_dashboard(_health(), _metrics())
        assert "repro obs top — ok" in frame
        assert "1m" in frame and "5m" in frame
        # Route rows are discovered from histogram names; qps is
        # blank until a second poll provides a counter delta.
        assert "ip" in frame
        assert "-" in frame
        assert "warning" not in frame

    def test_qps_from_counter_deltas(self):
        frame = render_dashboard(
            _health(),
            _metrics(ip_requests=25),
            previous=_metrics(ip_requests=5),
            elapsed=2.0,
        )
        # 20 new requests over 2 s -> 10.00 qps on both rows.
        assert frame.count("10.00") >= 2

    def test_mismatched_spans_warn(self):
        frame = render_dashboard(_health(), _metrics(mismatched=3))
        assert "warning: 3 mismatched span exit(s)" in frame

    def test_empty_server_renders_slo_only(self):
        frame = render_dashboard(_health(requests=0), _metrics(0))
        assert "repro obs top" in frame
        assert "per-route" not in frame


class TestRunTop:
    def _spy(self, polls):
        """A fetcher yielding successive metric documents."""
        state = {"i": 0}

        def fetch(host, port):
            assert (host, port) == ("localhost", 9999)
            i = min(state["i"], len(polls) - 1)
            state["i"] += 1
            return _health(), polls[i]

        return fetch

    def test_renders_count_frames_then_stops(self):
        frames, naps = [], []
        ticks = iter([10.0, 12.0, 14.0])
        code = run_top(
            "localhost:9999",
            interval=2.0,
            count=3,
            clear=False,
            fetch=self._spy([_metrics(5), _metrics(25), _metrics(40)]),
            sleep=naps.append,
            clock=lambda: next(ticks),
            out=frames.append,
        )
        assert code == 0
        assert len(frames) == 3
        # Sleeps *between* frames only: count - 1 of them.
        assert naps == [2.0, 2.0]
        # Second frame computed qps from the counter delta.
        assert "10.00" in frames[1]

    def test_clear_prefixes_ansi(self):
        frames = []
        run_top(
            "localhost:9999",
            count=1,
            fetch=self._spy([_metrics()]),
            out=frames.append,
        )
        assert frames[0].startswith(CLEAR)

    def test_keyboard_interrupt_exits_cleanly(self):
        def fetch(host, port):
            raise KeyboardInterrupt

        assert run_top("localhost:9999", fetch=fetch) == 0

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ReproError, match="interval"):
            run_top("localhost:9999", interval=0.0)

    def test_unreachable_target_raises(self):
        # The real fetcher against a closed port: a clean ReproError,
        # not a raw socket traceback.
        with pytest.raises(ReproError, match="cannot reach"):
            run_top("127.0.0.1:1", count=1)
