"""End-to-end tests for ``--trace-out``, ``--profile-mem``, and the
``trace`` / ``history`` subcommands.

The same two invariants as ``--metrics-out`` anchor the new flags:
tracing and profiling are *inert* (no figure CSV byte changes, no
attrition drift, sequential or parallel), and the artifacts they
produce round-trip through their own analysis commands.
"""

import json

import pytest

from repro.cli import main
from repro.obs import load_manifest, load_trace

_INFER_ARGS = ["infer", "--step-days", "7", "--tail", "1"]

_DATA_FIGS = ("fig1", "fig2", "fig4", "fig5", "fig6")


def _run_infer(capsys, extra):
    assert main(_INFER_ARGS + extra) == 0
    return capsys.readouterr().out


def _strip_seconds(stages):
    return [
        {key: value for key, value in stage.items() if key != "seconds"}
        for stage in stages
    ]


class TestTraceOut:
    def test_parallel_run_traces_multiple_lanes(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        _run_infer(capsys, ["--jobs", "2", "--trace-out", str(trace_path)])
        payload = load_trace(trace_path)
        spans = [
            e for e in payload["traceEvents"] if e.get("ph") == "X"
        ]
        assert spans
        lanes = {e["args"]["lane"] for e in spans}
        assert "main" in lanes
        workers = {l for l in lanes if l.startswith("worker-")}
        # Two jobs over multiple day-chunks: both pool lanes appear.
        assert len(workers) >= 2
        # Worker day spans carry the runner's dotted stage names.
        assert any(
            e["name"] == "runner.compute.day" for e in spans
        )

    def test_trace_is_valid_chrome_json(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        _run_infer(capsys, ["--jobs", "1", "--trace-out", str(trace_path)])
        payload = json.loads(trace_path.read_text(encoding="utf-8"))
        assert isinstance(payload["traceEvents"], list)
        for event in payload["traceEvents"]:
            assert event["ph"] in ("X", "M")
            if event["ph"] == "X":
                assert event["ts"] >= 0
                assert event["dur"] >= 0

    def test_trace_and_metrics_together(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        manifest_path = tmp_path / "m.json"
        _run_infer(capsys, [
            "--jobs", "2",
            "--trace-out", str(trace_path),
            "--metrics-out", str(manifest_path),
        ])
        manifest = load_manifest(manifest_path)
        trace = load_trace(trace_path)
        # The tracing registry still feeds the manifest completely.
        assert manifest["metrics"]["timers"]["runner.compute.day"][
            "count"] == manifest["cache"]["misses"]
        assert trace["traceEvents"]

    def test_summarize_reads_cli_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        _run_infer(capsys, ["--jobs", "2", "--trace-out", str(trace_path)])
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "per-lane utilization" in out
        assert "critical path" in out
        assert "slowest spans" in out
        assert "worker-" in out

    def test_summarize_top_flag(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        _run_infer(capsys, ["--jobs", "1", "--trace-out", str(trace_path)])
        assert main([
            "trace", "summarize", str(trace_path), "--top", "3"
        ]) == 0
        assert "top 3 slowest spans" in capsys.readouterr().out

    def test_ingest_and_market_accept_trace_out(self, tmp_path, capsys):
        dataset = tmp_path / "data"
        assert main([
            "generate", str(dataset), "--collector-days", "1", "--no-rpki"
        ]) == 0
        capsys.readouterr()
        ingest_trace = tmp_path / "ingest.json"
        assert main([
            "ingest", str(dataset), "--trace-out", str(ingest_trace)
        ]) == 0
        capsys.readouterr()
        names = {
            e["name"]
            for e in load_trace(ingest_trace)["traceEvents"]
            if e.get("ph") == "X"
        }
        assert {"ingest.transfers", "ingest.scrapes",
                "ingest.whois"} <= names
        market_trace = tmp_path / "market.json"
        assert main(["market", "--trace-out", str(market_trace)]) == 0
        capsys.readouterr()
        names = {
            e["name"]
            for e in load_trace(market_trace)["traceEvents"]
            if e.get("ph") == "X"
        }
        assert {"market.prices", "market.transfers",
                "market.leasing"} <= names


class TestObservabilityIsInert:
    """New flags must never change what the pipeline computes."""

    def test_infer_output_identical_with_all_flags(self, capsys, tmp_path):
        for jobs in ("1", "2"):
            plain = _run_infer(capsys, ["--jobs", jobs])
            instrumented = _run_infer(capsys, [
                "--jobs", jobs,
                "--trace-out", str(tmp_path / f"t{jobs}.json"),
                "--profile-mem",
                "--metrics-out", str(tmp_path / f"m{jobs}.json"),
            ])
            assert instrumented == plain

    def test_figures_csvs_identical_with_all_flags(self, tmp_path, capsys):
        def run(name, extra):
            out = tmp_path / name
            assert main(["figures", str(out)] + extra) == 0
            capsys.readouterr()
            return {
                fig: (out / f"{fig}.csv").read_bytes()
                for fig in _DATA_FIGS
            }

        baseline = run("plain", [])
        traced_seq = run("traced_seq", [
            "--trace-out", str(tmp_path / "seq.json"), "--profile-mem",
        ])
        traced_par = run("traced_par", [
            "--jobs", "2",
            "--trace-out", str(tmp_path / "par.json"), "--profile-mem",
        ])
        assert traced_seq == baseline
        assert traced_par == baseline

    def test_attrition_identical_with_tracing(self, tmp_path, capsys):
        def manifest_for(extra, name):
            path = tmp_path / name
            _run_infer(capsys, extra + ["--metrics-out", str(path)])
            return load_manifest(path)

        plain = manifest_for(["--jobs", "1"], "plain.json")
        traced = manifest_for(
            ["--jobs", "2", "--trace-out", str(tmp_path / "t.json"),
             "--profile-mem"],
            "traced.json",
        )
        assert _strip_seconds(plain["stages"]) == \
            _strip_seconds(traced["stages"])


class TestProfileMem:
    def test_profile_gauges_in_manifest(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        _run_infer(capsys, [
            "--jobs", "2", "--profile-mem", "--metrics-out", str(path)
        ])
        gauges = load_manifest(path)["metrics"]["gauges"]
        profile = {
            name: value for name, value in gauges.items()
            if name.startswith("profile.") and name.endswith(".peak_kb")
        }
        assert profile, "expected profile.* gauges in the manifest"
        # Worker stages fanned their peaks back to the parent.
        assert any("runner.compute.day" in name for name in profile)
        assert all(value > 0 for value in profile.values())

    def test_no_profile_gauges_without_flag(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        _run_infer(capsys, ["--jobs", "1", "--metrics-out", str(path)])
        gauges = load_manifest(path)["metrics"]["gauges"]
        assert not any(name.startswith("profile.") for name in gauges)


class TestPromOut:
    def test_infer_writes_valid_prometheus_text(self, tmp_path, capsys):
        from repro.obs.telemetry import parse_prometheus_text

        prom = tmp_path / "metrics.prom"
        _run_infer(capsys, ["--jobs", "2", "--prom-out", str(prom)])
        families = parse_prometheus_text(
            prom.read_text(encoding="utf-8")
        )
        # The runner's per-day latency fans in as a real histogram.
        day = families["repro_runner_compute_day_seconds"]
        assert day["type"] == "histogram"
        assert families["repro_pipeline_pairs_seen_total"]["type"] == (
            "counter"
        )

    def test_prom_out_is_inert(self, tmp_path, capsys):
        for jobs in ("1", "2"):
            plain = _run_infer(capsys, ["--jobs", jobs])
            instrumented = _run_infer(capsys, [
                "--jobs", jobs,
                "--prom-out", str(tmp_path / f"m{jobs}.prom"),
            ])
            assert instrumented == plain

    def test_figures_csvs_identical_with_prom_out(self, tmp_path, capsys):
        def run(name, extra):
            out = tmp_path / name
            assert main(["figures", str(out)] + extra) == 0
            capsys.readouterr()
            return {
                fig: (out / f"{fig}.csv").read_bytes()
                for fig in _DATA_FIGS
            }

        baseline = run("plain", [])
        prom_seq = run("prom_seq", [
            "--prom-out", str(tmp_path / "seq.prom"),
        ])
        prom_par = run("prom_par", [
            "--jobs", "2", "--prom-out", str(tmp_path / "par.prom"),
        ])
        assert prom_seq == baseline
        assert prom_par == baseline

    def test_prom_out_bad_paths_rejected(self, tmp_path, capsys):
        for bad in (tmp_path, tmp_path / "no" / "m.prom"):
            assert main(_INFER_ARGS + ["--prom-out", str(bad)]) == 2
            err = capsys.readouterr().err
            assert "--prom-out" in err


class TestObsTopCli:
    def test_parser_wiring(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "obs", "top", "localhost:8080",
            "--interval", "0.5", "--count", "2", "--no-clear",
        ])
        assert args.target == "localhost:8080"
        assert args.interval == 0.5
        assert args.count == 2
        assert args.no_clear

    def test_unreachable_target_is_clean_error(self, capsys):
        assert main([
            "obs", "top", "127.0.0.1:1", "--count", "1"
        ]) == 2
        err = capsys.readouterr().err
        assert "cannot reach" in err

    def test_top_against_live_server(self, tmp_path, capsys):
        """End-to-end: one dashboard frame from a real CLI server."""
        import threading
        import time as time_module

        ready = tmp_path / "ready.txt"
        server = threading.Thread(target=main, args=([
            "serve", "--no-infer",
            "--whois-port", "0", "--http-port", "0",
            "--serve-seconds", "3",
            "--ready-file", str(ready),
        ],))
        server.start()
        try:
            deadline = time_module.monotonic() + 10.0
            while not ready.exists():
                assert time_module.monotonic() < deadline, "no ready file"
                time_module.sleep(0.02)
            host, _whois, http_port = ready.read_text().split()
            assert main([
                "obs", "top", f"{host}:{http_port}",
                "--count", "1", "--no-clear",
            ]) == 0
            out = capsys.readouterr().out
            assert "repro obs top — ok" in out
            assert "1m" in out and "5m" in out
        finally:
            server.join(timeout=15.0)
        assert not server.is_alive()


class TestHistoryCli:
    @pytest.fixture()
    def recorded(self, tmp_path, capsys):
        """Two recorded infer runs sharing one history store."""
        history = tmp_path / "h.jsonl"
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            _run_infer(capsys, ["--jobs", "1",
                                "--metrics-out", str(path)])
            assert main([
                "history", "--history", str(history),
                "record", str(path),
            ]) == 0
            capsys.readouterr()
        return history

    def test_record_and_list(self, recorded, capsys):
        assert main([
            "history", "--history", str(recorded), "list"
        ]) == 0
        out = capsys.readouterr().out
        assert "run history" in out
        assert "infer" in out

    def test_diff(self, recorded, capsys):
        assert main([
            "history", "--history", str(recorded), "diff", "1", "2"
        ]) == 0
        out = capsys.readouterr().out
        assert "config: identical" in out
        assert "stage attrition" in out
        assert "same" in out

    def test_check_passes_between_identical_runs(self, recorded, capsys):
        # Generous limit: wall-clock noise between two identical tiny
        # runs must not fail the gate.
        assert main([
            "history", "--history", str(recorded),
            "check", "--baseline", "1", "--max-regress", "500%",
        ]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_check_exits_nonzero_on_regression(self, recorded, capsys):
        # Forge a much slower third run from run 1's entry.
        entries = [
            json.loads(line)
            for line in recorded.read_text(encoding="utf-8").splitlines()
        ]
        slow = dict(entries[0])
        slow["id"] = 3
        slow["timers"] = {
            name: {
                "count": stats["count"],
                "total_seconds": stats["total_seconds"] * 100 + 10,
            }
            for name, stats in slow["timers"].items()
        }
        with open(recorded, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(slow, sort_keys=True) + "\n")
        assert main([
            "history", "--history", str(recorded),
            "check", "--baseline", "1", "--candidate", "3",
            "--max-regress", "20%", "--min-seconds", "0.0001",
        ]) == 1
        out = capsys.readouterr().out
        assert "regression" in out
        assert "timer" in out

    def test_check_exits_nonzero_on_p99_regression(self, recorded, capsys):
        # Forge a run whose totals are untouched but whose recorded
        # tail latencies blew out: only the p99 gate can catch it.
        entries = [
            json.loads(line)
            for line in recorded.read_text(encoding="utf-8").splitlines()
        ]
        slow = dict(entries[0])
        slow["id"] = 3
        slow["timers"] = {
            name: dict(
                stats,
                p99_seconds=stats["p99_seconds"] * 100 + 10,
            ) if "p99_seconds" in stats else dict(stats)
            for name, stats in slow["timers"].items()
        }
        assert slow["timers"] != entries[0]["timers"], \
            "expected recorded p99s to forge a regression from"
        with open(recorded, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(slow, sort_keys=True) + "\n")
        assert main([
            "history", "--history", str(recorded),
            "check", "--baseline", "1", "--candidate", "3",
            "--max-regress", "20%", "--min-seconds", "0.0000001",
        ]) == 1
        out = capsys.readouterr().out
        assert "p99" in out

    def test_record_reports_id_and_store(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        _run_infer(capsys, ["--jobs", "1", "--metrics-out", str(path)])
        history = tmp_path / "h.jsonl"
        assert main([
            "history", "--history", str(history), "record", str(path)
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded run 1" in out
        assert "h.jsonl" in out

    def test_record_missing_manifest(self, tmp_path, capsys):
        assert main([
            "history", "--history", str(tmp_path / "h.jsonl"),
            "record", str(tmp_path / "absent.json"),
        ]) == 2
        assert "no manifest" in capsys.readouterr().err
