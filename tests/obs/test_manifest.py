"""Tests for run-manifest writing, loading, and rendering."""

import json

import pytest

from repro.errors import DatasetError
from repro.obs import (
    MANIFEST_SCHEMA,
    MetricsRegistry,
    RunManifest,
    config_hash,
    load_manifest,
    render_manifest,
)


def _sample_manifest() -> RunManifest:
    metrics = MetricsRegistry()
    metrics.inc("pipeline.pairs_seen", 100)
    metrics.observe("runner.compute.day", 0.25)
    metrics.set_gauge("runner.jobs", 2)
    manifest = RunManifest(
        command="infer",
        config={"visibility_threshold": 10},
        config_digest="ab" * 32,
        metrics=metrics,
        created="2020-06-25T00:00:00+00:00",
    )
    manifest.add_input("stream", "cd" * 32)
    manifest.add_stage(
        "(ii) visibility", 100, 98,
        dropped={"below_threshold": 2},
    )
    manifest.add_stage("(v) consistency", 98, 99, seconds=0.125)
    manifest.cache = {"hits": 3, "misses": 7}
    manifest.extra["scale"] = "small"
    return manifest


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "m.json"
        _sample_manifest().write(path)
        payload = load_manifest(path)
        assert payload["schema"] == MANIFEST_SCHEMA
        assert payload["command"] == "infer"
        assert payload["created"] == "2020-06-25T00:00:00+00:00"
        assert payload["config"] == {"visibility_threshold": 10}
        assert payload["inputs"] == {"stream": "cd" * 32}
        assert payload["cache"] == {"hits": 3, "misses": 7}
        assert payload["extra"]["scale"] == "small"
        assert payload["metrics"]["counters"]["pipeline.pairs_seen"] == 100

    def test_stage_serialization(self, tmp_path):
        path = tmp_path / "m.json"
        _sample_manifest().write(path)
        stages = load_manifest(path)["stages"]
        assert [s["name"] for s in stages] == [
            "(ii) visibility", "(v) consistency",
        ]
        assert stages[0]["records_in"] == 100
        assert stages[0]["records_out"] == 98
        assert stages[0]["dropped"] == {"below_threshold": 2}
        assert "seconds" not in stages[0]  # omitted when unknown
        assert stages[1]["seconds"] == 0.125

    def test_write_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "m.json"
        _sample_manifest().write(path)
        assert path.exists()

    def test_created_defaults_to_now(self, tmp_path):
        manifest = RunManifest(command="market")
        path = tmp_path / "m.json"
        manifest.write(path)
        assert load_manifest(path)["created"]  # some ISO timestamp

    def test_file_ends_with_newline(self, tmp_path):
        path = tmp_path / "m.json"
        _sample_manifest().write(path)
        assert path.read_text(encoding="utf-8").endswith("}\n")


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="no manifest"):
            load_manifest(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(DatasetError, match="unreadable manifest"):
            load_manifest(path)

    def test_not_a_manifest(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"foo": 1}), encoding="utf-8")
        with pytest.raises(DatasetError, match="not a run manifest"):
            load_manifest(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema": 999}), encoding="utf-8")
        with pytest.raises(DatasetError, match="unsupported manifest"):
            load_manifest(path)


class TestRender:
    def test_render_contains_all_sections(self, tmp_path):
        path = tmp_path / "m.json"
        _sample_manifest().write(path)
        text = render_manifest(load_manifest(path))
        assert "run manifest: infer" in text
        assert "config hash: abababababababab" in text
        assert "input stream:" in text
        assert "cache: 3 hits, 7 misses (30% hit rate)" in text
        assert "per-stage attrition" in text
        assert "(ii) visibility" in text
        assert "below_threshold=2" in text
        assert "timers" in text
        assert "runner.compute.day" in text
        assert "counters" in text
        assert "pipeline.pairs_seen" in text
        assert "gauges" in text
        assert "runner.jobs" in text

    def test_render_minimal_manifest(self, tmp_path):
        path = tmp_path / "m.json"
        RunManifest(command="market").write(path)
        text = render_manifest(load_manifest(path))
        assert "run manifest: market" in text
        # No empty-section tables for an all-defaults manifest.
        assert "per-stage attrition" not in text
        assert "timers" not in text


class TestConfigHash:
    def test_deterministic_and_sensitive(self):
        from repro.delegation import InferenceConfig

        extended = InferenceConfig.extended()
        assert config_hash(extended) == config_hash(
            InferenceConfig.extended()
        )
        assert config_hash(extended) != config_hash(
            InferenceConfig.baseline()
        )
        assert len(config_hash(extended)) == 64
