"""Unit tests for latency histograms, windows, and Prometheus output."""

import math
import pickle

import pytest

from repro.errors import TelemetryError
from repro.obs import MetricsRegistry
from repro.obs.telemetry import (
    BUCKET_BOUNDS,
    HISTOGRAM_BASE_SECONDS,
    HISTOGRAM_FINITE_BUCKETS,
    HistogramStats,
    SlidingWindow,
    bucket_index,
    bucket_upper_bound,
    mangle_metric_name,
    parse_prometheus_text,
    to_prometheus,
    write_prometheus,
)


class TestBuckets:
    def test_base_and_below_land_in_bucket_zero(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0
        assert bucket_index(HISTOGRAM_BASE_SECONDS) == 0

    def test_le_semantics_at_exact_bounds(self):
        # A value exactly on a bound belongs to that bucket (le).
        for index in (0, 1, 7, HISTOGRAM_FINITE_BUCKETS - 1):
            assert bucket_index(BUCKET_BOUNDS[index]) == index

    def test_values_past_last_bound_overflow(self):
        beyond = BUCKET_BOUNDS[-1] * 2
        assert bucket_index(beyond) == HISTOGRAM_FINITE_BUCKETS

    def test_overflow_upper_bound_clamps_to_last_finite(self):
        assert bucket_upper_bound(HISTOGRAM_FINITE_BUCKETS) == (
            BUCKET_BOUNDS[-1]
        )

    def test_bounds_are_factor_two(self):
        for previous, current in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]):
            assert current == pytest.approx(previous * 2.0)


class TestHistogramStats:
    def test_observe_and_quantiles(self):
        stats = HistogramStats()
        for _ in range(99):
            stats.observe(0.001)  # bucket of 1.024 ms
        stats.observe(0.1)  # one slow outlier
        assert stats.count == 100
        assert stats.quantile(0.50) == bucket_upper_bound(
            bucket_index(0.001)
        )
        # p99 rank is 99 -> still the fast bucket; p999 rank is 100.
        assert stats.quantile(0.99) == bucket_upper_bound(
            bucket_index(0.001)
        )
        assert stats.quantile(0.999) == bucket_upper_bound(
            bucket_index(0.1)
        )

    def test_empty_quantile_is_zero(self):
        assert HistogramStats().quantile(0.99) == 0.0

    def test_to_json_round_trip(self):
        stats = HistogramStats()
        stats.observe(0.002)
        stats.observe(5.0)
        payload = stats.to_json()
        assert payload["count"] == 2
        assert payload["p99_seconds"] == stats.quantile(0.99)
        clone = HistogramStats.from_json(payload)
        assert clone.buckets == stats.buckets
        assert clone.quantile(0.99) == stats.quantile(0.99)

    def test_pickle_round_trip(self):
        stats = HistogramStats()
        stats.observe(0.5)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.buckets == stats.buckets
        assert clone.count == 1

    def test_cumulative_buckets_ascend(self):
        stats = HistogramStats()
        for value in (0.001, 0.001, 1.0, 1e9):
            stats.observe(value)
        pairs = stats.cumulative_buckets()
        assert [count for _i, count in pairs] == [2, 3, 4]
        assert pairs[-1][0] == HISTOGRAM_FINITE_BUCKETS


class TestRegistryHistograms:
    def test_observe_feeds_same_named_histogram(self):
        registry = MetricsRegistry()
        registry.observe("stage", 0.004)
        registry.observe("stage", 0.004)
        assert registry.histogram("stage").count == 2
        assert registry.timer("stage").count == 2

    def test_span_records_histogram_for_free(self):
        registry = MetricsRegistry()
        with registry.span("stage"):
            pass
        assert registry.histogram("stage").count == 1

    def test_merge_folds_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("t", 0.001)
        b.observe("t", 0.001)
        b.observe("t", 10.0)
        a.merge(b)
        merged = a.histogram("t")
        assert merged.count == 3
        assert merged.buckets[bucket_index(0.001)] == 2

    def test_unpickling_pre_histogram_state_loads_empty(self):
        registry = MetricsRegistry()
        registry.observe("t", 0.5)
        state = registry.__getstate__()
        del state["histograms"]  # a registry pickled before this PR
        old = MetricsRegistry()
        old.__setstate__(state)
        assert old.timer("t").count == 1
        assert old.histograms() == {}

    def test_to_json_includes_histograms(self):
        registry = MetricsRegistry()
        registry.observe("t", 0.5)
        payload = registry.to_json()
        assert payload["histograms"]["t"]["count"] == 1


class TestSlidingWindow:
    def test_rollup_counts_and_rates(self):
        window = SlidingWindow(span_seconds=300)
        now = 1000.0
        for i in range(30):
            window.record(now - i, 0.002, error=(i < 3))
        snap = window.snapshot(now, 60)
        assert snap["requests"] == 30
        assert snap["errors"] == 3
        assert snap["qps"] == pytest.approx(0.5)
        assert snap["errorRate"] == pytest.approx(0.1)
        assert snap["p99Seconds"] == pytest.approx(
            bucket_upper_bound(bucket_index(0.002)), rel=1e-6
        )

    def test_old_slots_age_out(self):
        window = SlidingWindow(span_seconds=300)
        window.record(100.0, 0.001)
        assert window.snapshot(100.0, 60)["requests"] == 1
        # 61 seconds later the observation left the 1 m window...
        assert window.snapshot(161.0, 60)["requests"] == 0
        # ...but is still inside the 5 m window.
        assert window.snapshot(161.0, 300)["requests"] == 1

    def test_ring_reuses_slots_after_a_full_revolution(self):
        window = SlidingWindow(span_seconds=10)
        window.record(5.0, 0.001)
        window.record(15.0, 0.001)  # same slot (15 % 10 == 5 % 10)
        snap = window.snapshot(15.0, 10)
        assert snap["requests"] == 1

    def test_empty_window_is_all_zero(self):
        snap = SlidingWindow().snapshot(1000.0, 60)
        assert snap["requests"] == 0
        assert snap["qps"] == 0.0
        assert snap["errorRate"] == 0.0
        assert snap["p99Seconds"] == 0.0


class TestMangling:
    def test_dots_become_underscores_with_prefix(self):
        assert mangle_metric_name("serve.whois.request") == (
            "repro_serve_whois_request"
        )

    def test_suffix_appends_last(self):
        assert mangle_metric_name("a.b", "_total") == "repro_a_b_total"

    def test_every_illegal_character_is_replaced(self):
        assert mangle_metric_name("a-b c/d.e") == "repro_a_b_c_d_e"


class TestToPrometheus:
    def _registry(self):
        registry = MetricsRegistry()
        registry.inc("serve.whois.requests", 5)
        registry.set_gauge("serve.connections.peak", 3.0)
        registry.observe("serve.whois.request", 0.002)
        registry.observe("serve.whois.request", 0.004)
        return registry

    def test_output_validates_strictly(self):
        text = to_prometheus(self._registry().to_json())
        families = parse_prometheus_text(text)
        assert families["repro_serve_whois_requests_total"]["type"] == (
            "counter"
        )
        assert families["repro_serve_connections_peak"]["type"] == "gauge"
        histogram = families["repro_serve_whois_request_seconds"]
        assert histogram["type"] == "histogram"

    def test_histogram_carries_inf_sum_count(self):
        text = to_prometheus(self._registry().to_json())
        assert 'repro_serve_whois_request_seconds_bucket{le="+Inf"} 2' in (
            text
        )
        assert "repro_serve_whois_request_seconds_count 2" in text
        assert "repro_serve_whois_request_seconds_sum" in text

    def test_timer_without_histogram_renders_as_summary(self):
        # Manifests recorded before this PR have timers only.
        snapshot = {
            "timers": {"old.stage": {"count": 3, "total_seconds": 1.5}}
        }
        text = to_prometheus(snapshot)
        families = parse_prometheus_text(text)
        assert families["repro_old_stage_seconds"]["type"] == "summary"

    def test_colliding_names_merge_instead_of_duplicating(self):
        registry = MetricsRegistry()
        registry.inc("a.b", 1)
        registry.inc("a_b", 2)  # mangles to the same series
        text = to_prometheus(registry.to_json())
        samples = [
            line for line in text.splitlines()
            if line.startswith("repro_a_b_total ")
        ]
        assert len(samples) == 1
        families = parse_prometheus_text(text)
        assert families["repro_a_b_total"]["samples"][
            ("repro_a_b_total", ())
        ] == 3.0

    def test_write_prometheus_writes_the_file(self, tmp_path):
        target = tmp_path / "metrics.prom"
        write_prometheus(self._registry(), target)
        parse_prometheus_text(target.read_text(encoding="utf-8"))


class TestStrictParser:
    def test_rejects_sample_without_type(self):
        with pytest.raises(TelemetryError, match="no # TYPE"):
            parse_prometheus_text("repro_x_total 1\n")

    def test_rejects_duplicate_series(self):
        text = (
            "# TYPE repro_x_total counter\n"
            "repro_x_total 1\n"
            "repro_x_total 2\n"
        )
        with pytest.raises(TelemetryError, match="duplicate series"):
            parse_prometheus_text(text)

    def test_rejects_duplicate_type_declaration(self):
        text = (
            "# TYPE repro_x_total counter\n"
            "# TYPE repro_x_total counter\n"
        )
        with pytest.raises(TelemetryError, match="duplicate TYPE"):
            parse_prometheus_text(text)

    def test_rejects_non_cumulative_buckets(self):
        text = (
            "# TYPE repro_t_seconds histogram\n"
            'repro_t_seconds_bucket{le="0.001"} 5\n'
            'repro_t_seconds_bucket{le="0.002"} 3\n'
            'repro_t_seconds_bucket{le="+Inf"} 5\n'
            "repro_t_seconds_sum 0.01\n"
            "repro_t_seconds_count 5\n"
        )
        with pytest.raises(TelemetryError, match="not cumulative"):
            parse_prometheus_text(text)

    def test_rejects_histogram_missing_inf(self):
        text = (
            "# TYPE repro_t_seconds histogram\n"
            'repro_t_seconds_bucket{le="0.001"} 5\n'
            "repro_t_seconds_sum 0.01\n"
            "repro_t_seconds_count 5\n"
        )
        with pytest.raises(TelemetryError, match=r"\+Inf"):
            parse_prometheus_text(text)

    def test_rejects_inf_bucket_disagreeing_with_count(self):
        text = (
            "# TYPE repro_t_seconds histogram\n"
            'repro_t_seconds_bucket{le="+Inf"} 4\n'
            "repro_t_seconds_sum 0.01\n"
            "repro_t_seconds_count 5\n"
        )
        with pytest.raises(TelemetryError, match="disagrees"):
            parse_prometheus_text(text)

    def test_rejects_histogram_missing_sum_or_count(self):
        text = (
            "# TYPE repro_t_seconds histogram\n"
            'repro_t_seconds_bucket{le="+Inf"} 4\n'
        )
        with pytest.raises(TelemetryError, match="missing _sum"):
            parse_prometheus_text(text)

    def test_rejects_unparseable_sample(self):
        text = "# TYPE repro_x gauge\nrepro_x one two three\n"
        with pytest.raises(TelemetryError, match="unparseable"):
            parse_prometheus_text(text)

    def test_parses_inf_values(self):
        text = "# TYPE repro_g gauge\nrepro_g +Inf\n"
        families = parse_prometheus_text(text)
        assert families["repro_g"]["samples"][("repro_g", ())] == (
            math.inf
        )
