"""Property-based tests for ``MetricsRegistry.merge``.

The runner's correctness story depends on merge algebra: worker
registries fan back into the parent in whatever order the pool
finishes chunks, so the merged result must not depend on grouping or
order — and merging N worker registries must equal one registry that
saw every observation sequentially.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.obs import MetricsRegistry

_NAMES = st.sampled_from(["a", "b", "c.d", "runner.day"])

#: One recorded event: (kind, metric name, value).
_EVENTS = st.one_of(
    st.tuples(st.just("inc"), _NAMES,
              st.integers(min_value=0, max_value=1000)),
    st.tuples(st.just("gauge"), _NAMES,
              st.floats(min_value=0.0, max_value=1e6,
                        allow_nan=False, allow_infinity=False)),
    st.tuples(st.just("observe"), _NAMES,
              st.floats(min_value=0.0, max_value=1e3,
                        allow_nan=False, allow_infinity=False)),
)


def _apply(registry: MetricsRegistry, events) -> MetricsRegistry:
    for kind, name, value in events:
        if kind == "inc":
            registry.inc(name, value)
        elif kind == "gauge":
            registry.set_gauge(name, value)
        else:
            registry.observe(name, value)
    return registry


def _registry(events) -> MetricsRegistry:
    return _apply(MetricsRegistry(), events)


def _canon(registry: MetricsRegistry) -> dict:
    """Comparable snapshot with float-tolerant timer totals."""
    payload = registry.to_json()
    for stats in payload["timers"].values():
        for key in (
            "total_seconds", "mean_seconds", "min_seconds", "max_seconds"
        ):
            stats[key] = round(stats[key], 6)
    for stats in payload["histograms"].values():
        # Bucket counts and quantiles are exact (integer counts,
        # fixed bounds); only the running sum accumulates float error.
        stats["total_seconds"] = round(stats["total_seconds"], 6)
    payload["gauges"] = {
        name: round(value, 6)
        for name, value in payload["gauges"].items()
    }
    return payload


@given(st.lists(_EVENTS, max_size=30), st.lists(_EVENTS, max_size=30))
def test_merge_is_commutative(events_a, events_b):
    ab = _registry(events_a).merge(_registry(events_b))
    ba = _registry(events_b).merge(_registry(events_a))
    assert _canon(ab) == _canon(ba)


@given(
    st.lists(_EVENTS, max_size=20),
    st.lists(_EVENTS, max_size=20),
    st.lists(_EVENTS, max_size=20),
)
def test_merge_is_associative(events_a, events_b, events_c):
    left = _registry(events_a).merge(
        _registry(events_b).merge(_registry(events_c))
    )
    right = _registry(events_a).merge(_registry(events_b)).merge(
        _registry(events_c)
    )
    assert _canon(left) == _canon(right)


@given(st.lists(_EVENTS, max_size=30))
def test_empty_registry_is_identity(events):
    merged = _registry(events).merge(MetricsRegistry())
    assert _canon(merged) == _canon(_registry(events))
    absorbed = MetricsRegistry().merge(_registry(events))
    assert _canon(absorbed) == _canon(_registry(events))


@given(
    st.lists(st.lists(_EVENTS, max_size=15), min_size=1, max_size=6)
)
def test_merge_of_workers_equals_sequential(event_shards):
    """N worker registries merged == one registry that saw it all.

    This is exactly the runner's fan-in: each shard of days records
    into its own registry; merging them (in any order the pool
    finishes) must match a sequential run over the concatenation.
    """
    workers = [_registry(shard) for shard in event_shards]
    merged = MetricsRegistry()
    for worker in workers:
        merged.merge(worker)
    sequential = MetricsRegistry()
    for shard in event_shards:
        _apply(sequential, shard)
    assert _canon(merged) == _canon(sequential)
