"""Property-based tests for ``HistogramStats`` merge algebra.

The distribution dimension must obey the exact algebra the rest of
:mod:`repro.obs.metrics` does — merge associative and commutative with
the empty histogram as identity, N worker merges equal to one
sequential registry — because worker histograms fan in through the
same :meth:`MetricsRegistry.merge` path as counters.  On top of that,
the exact-bucket quantile estimator must be monotone (p50 <= p90 <=
p99 <= p999) and every quantile must be a real bucket bound that
contains the requested rank.
"""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.telemetry import (
    BUCKET_BOUNDS,
    HISTOGRAM_FINITE_BUCKETS,
    HistogramStats,
    bucket_index,
    bucket_upper_bound,
)

#: Latency observations spanning the whole bucket range, sub-µs and
#: overflow values included.
_SECONDS = st.floats(
    min_value=0.0, max_value=1e7,
    allow_nan=False, allow_infinity=False,
)
_OBSERVATIONS = st.lists(_SECONDS, max_size=60)


def _histogram(values) -> HistogramStats:
    stats = HistogramStats()
    for value in values:
        stats.observe(value)
    return stats


def _canon(stats: HistogramStats) -> dict:
    # Bucket counts are exact integers; only the running float sum is
    # grouping-sensitive, so compare it to 9 significant digits
    # (summation error is ~1e-14 relative, leaving orders of margin).
    return {
        "count": stats.count,
        "total_seconds": float(f"{stats.total_seconds:.9g}"),
        "buckets": dict(stats.buckets),
    }


@given(_OBSERVATIONS, _OBSERVATIONS)
def test_merge_is_commutative(values_a, values_b):
    ab = _histogram(values_a).merge(_histogram(values_b))
    ba = _histogram(values_b).merge(_histogram(values_a))
    assert _canon(ab) == _canon(ba)


@given(_OBSERVATIONS, _OBSERVATIONS, _OBSERVATIONS)
def test_merge_is_associative(values_a, values_b, values_c):
    left = _histogram(values_a).merge(
        _histogram(values_b).merge(_histogram(values_c))
    )
    right = _histogram(values_a).merge(_histogram(values_b)).merge(
        _histogram(values_c)
    )
    assert _canon(left) == _canon(right)


@given(_OBSERVATIONS)
def test_empty_histogram_is_identity(values):
    merged = _histogram(values).merge(HistogramStats())
    assert _canon(merged) == _canon(_histogram(values))
    absorbed = HistogramStats().merge(_histogram(values))
    assert _canon(absorbed) == _canon(_histogram(values))


@given(st.lists(_OBSERVATIONS, min_size=1, max_size=6))
def test_merge_of_workers_equals_sequential(shards):
    """N worker histograms merged == one that saw every observation.

    The runner's fan-in for distributions: each worker chunk ships a
    histogram inside its registry; the merged p99 must not depend on
    which process observed which day.
    """
    merged = HistogramStats()
    for shard in shards:
        merged.merge(_histogram(shard))
    sequential = _histogram([v for shard in shards for v in shard])
    assert _canon(merged) == _canon(sequential)
    assert merged.quantile(0.99) == sequential.quantile(0.99)


@given(_OBSERVATIONS)
def test_quantiles_are_monotone(values):
    stats = _histogram(values)
    quantiles = [
        stats.quantile(q) for q in (0.5, 0.9, 0.99, 0.999)
    ]
    assert quantiles == sorted(quantiles)


@given(st.lists(_SECONDS, min_size=1, max_size=60),
       st.floats(min_value=0.01, max_value=0.999))
def test_quantile_matches_rank_bucket(values, q):
    """Exact-bucket oracle: the estimate equals the upper bound of
    the bucket holding the ``ceil(q*n)``-th smallest observation
    (overflow clamped to the last finite bound), and is always one of
    the shared bounds — never an interpolated value."""
    stats = _histogram(values)
    rank = max(1, math.ceil(q * stats.count))
    rank_bucket = sorted(bucket_index(v) for v in values)[rank - 1]
    estimate = stats.quantile(q)
    assert estimate == bucket_upper_bound(rank_bucket)
    assert estimate in BUCKET_BOUNDS


@given(_SECONDS)
def test_bucket_index_respects_le_bounds(value):
    index = bucket_index(value)
    assert 0 <= index <= HISTOGRAM_FINITE_BUCKETS
    if index < HISTOGRAM_FINITE_BUCKETS:
        assert value <= bucket_upper_bound(index)
    if 0 < index:
        assert value > BUCKET_BOUNDS[index - 1]
