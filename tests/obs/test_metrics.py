"""Unit tests for the metrics registry, spans, and the no-op default."""

import pickle
import time

import pytest

from repro.obs import NULL, MetricsRegistry, NullRegistry, TimerStats


class TestCounters:
    def test_inc_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a")
        assert registry.counter("a") == 2

    def test_inc_amount(self):
        registry = MetricsRegistry()
        registry.inc("a", 41)
        registry.inc("a", 1)
        assert registry.counter("a") == 42

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter("nope") == 0

    def test_counters_view_is_a_copy(self):
        registry = MetricsRegistry()
        registry.inc("a")
        view = registry.counters()
        view["a"] = 99
        assert registry.counter("a") == 1


class TestGauges:
    def test_set_and_read(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 3.0)
        assert registry.gauge("depth") == 3.0

    def test_keeps_maximum(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 3.0)
        registry.set_gauge("depth", 1.0)
        registry.set_gauge("depth", 7.0)
        assert registry.gauge("depth") == 7.0

    def test_missing_gauge_is_none(self):
        assert MetricsRegistry().gauge("nope") is None


class TestTimers:
    def test_observe_accumulates(self):
        registry = MetricsRegistry()
        registry.observe("t", 1.0)
        registry.observe("t", 3.0)
        stats = registry.timer("t")
        assert stats.count == 2
        assert stats.total_seconds == pytest.approx(4.0)
        assert stats.min_seconds == pytest.approx(1.0)
        assert stats.max_seconds == pytest.approx(3.0)
        assert stats.mean_seconds == pytest.approx(2.0)

    def test_missing_timer_is_empty(self):
        stats = MetricsRegistry().timer("nope")
        assert stats.count == 0
        assert stats.mean_seconds == 0.0

    def test_to_json_zeroes_min_when_empty(self):
        assert TimerStats().to_json()["min_seconds"] == 0.0


class TestSpans:
    def test_span_records_wall_clock(self):
        registry = MetricsRegistry()
        with registry.span("stage"):
            time.sleep(0.01)
        stats = registry.timer("stage")
        assert stats.count == 1
        assert stats.total_seconds >= 0.005

    def test_spans_nest_with_dotted_names(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
            with registry.span("inner"):
                pass
        assert registry.timer("outer").count == 1
        assert registry.timer("outer.inner").count == 2
        # The stack unwound completely.
        with registry.span("after"):
            pass
        assert registry.timer("after").count == 1

    def test_span_survives_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("boom"):
                raise RuntimeError("boom")
        assert registry.timer("boom").count == 1
        # Stack is clean afterwards: a new span is top-level again.
        with registry.span("next"):
            pass
        assert registry.timer("next").count == 1

    def test_failed_span_counts_failure(self):
        """A span exited by an exception marks itself failed.

        Previously a raising block was indistinguishable from a
        success in the timers — a stage that died early even *looked
        faster*.  The ``<name>.failed`` counter disambiguates.
        """
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            with registry.span("stage"):
                raise ValueError("nope")
        assert registry.counter("stage.failed") == 1

    def test_successful_span_has_no_failure_counter(self):
        registry = MetricsRegistry()
        with registry.span("stage"):
            pass
        assert registry.counter("stage.failed") == 0
        assert "stage.failed" not in registry.counters()

    def test_nested_failure_marks_both_levels(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("outer"):
                with registry.span("inner"):
                    raise RuntimeError("boom")
        assert registry.counter("outer.inner.failed") == 1
        # The exception also propagated through the outer span.
        assert registry.counter("outer.failed") == 1

    def test_mismatched_exit_records_counter(self):
        """Out-of-order span exits are counted, not silently skipped.

        Previously an overlapping exit left the stack untouched and
        said nothing — corrupted nesting (every descendant span
        mis-prefixed from then on) was invisible.  The counter makes
        it gate-able in manifests and ``history check``.
        """
        registry = MetricsRegistry()
        outer = registry.span("outer").__enter__()
        inner = registry.span("inner").__enter__()
        outer.__exit__(None, None, None)  # wrong order: inner on top
        inner.__exit__(None, None, None)
        assert registry.counter("spans.mismatched") == 1
        # Both timers still recorded their wall clock.
        assert registry.timer("outer").count == 1
        assert registry.timer("outer.inner").count == 1

    def test_clean_nesting_records_no_mismatch(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        assert "spans.mismatched" not in registry.counters()


class TestMerge:
    def test_merge_returns_self_and_sums(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        b.inc("only_b", 5)
        b.set_gauge("g", 2.0)
        a.set_gauge("g", 3.0)
        b.observe("t", 1.0)
        a.observe("t", 2.0)
        merged = a.merge(b)
        assert merged is a
        assert a.counter("c") == 3
        assert a.counter("only_b") == 5
        assert a.gauge("g") == 3.0
        stats = a.timer("t")
        assert stats.count == 2
        assert stats.total_seconds == pytest.approx(3.0)

    def test_merge_empty_is_identity(self):
        a = MetricsRegistry()
        a.inc("c", 7)
        a.observe("t", 1.5)
        before = a.to_json()
        a.merge(MetricsRegistry())
        assert a.to_json() == before

    def test_merge_into_empty_timer_does_not_leak_inf(self):
        """Merging into a count==0 timer copies, not min()s.

        The empty-timer sentinel ``min_seconds = inf`` used to win the
        ``min()`` during merge and then leak into ``to_json`` of the
        merged registry (serializing as JSON ``Infinity``).
        """
        empty, full = TimerStats(), TimerStats()
        full.observe(2.0)
        full.observe(4.0)
        empty.merge(full)
        assert empty.count == 2
        assert empty.min_seconds == pytest.approx(2.0)
        assert empty.max_seconds == pytest.approx(4.0)
        payload = empty.to_json()
        assert payload["min_seconds"] == pytest.approx(2.0)

    def test_merge_from_empty_timer_is_identity(self):
        full = TimerStats()
        full.observe(1.0)
        before = full.to_json()
        full.merge(TimerStats())
        assert full.to_json() == before

    def test_registry_merge_never_serializes_infinity(self):
        import json

        a, b = MetricsRegistry(), MetricsRegistry()
        b.observe("t", 0.5)
        a.merge(b)  # "t" is created empty in a, then merged into
        text = json.dumps(a.to_json())
        assert "Infinity" not in text
        assert a.timer("t").min_seconds == pytest.approx(0.5)


class TestPickling:
    def test_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("c", 3)
        registry.set_gauge("g", 1.0)
        registry.observe("t", 0.5)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.to_json() == registry.to_json()

    def test_span_stack_not_pickled(self):
        registry = MetricsRegistry()
        span = registry.span("open")
        span.__enter__()
        clone = pickle.loads(pickle.dumps(registry))
        # The clone starts with a clean stack: spans are process-local.
        with clone.span("top"):
            pass
        assert clone.timer("top").count == 1
        span.__exit__(None, None, None)


class TestNullRegistry:
    def test_records_nothing(self):
        registry = NullRegistry()
        registry.inc("c", 10)
        registry.set_gauge("g", 1.0)
        registry.observe("t", 1.0)
        with registry.span("stage"):
            pass
        assert registry.to_json() == {
            "counters": {}, "gauges": {}, "timers": {},
            "histograms": {},
        }

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled is True
        assert NULL.enabled is False

    def test_merge_is_noop(self):
        other = MetricsRegistry()
        other.inc("c")
        assert NULL.merge(other).to_json()["counters"] == {}

    def test_span_is_reusable_singleton(self):
        assert NULL.span("a") is NULL.span("b")
