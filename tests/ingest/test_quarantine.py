"""Units for the quarantine-and-continue error policy."""

import pytest

from repro.ingest import ErrorPolicy, QuarantineReport
from repro.obs.metrics import MetricsRegistry


class TestErrorPolicy:
    def test_parse(self):
        assert ErrorPolicy.parse("strict") is ErrorPolicy.STRICT
        assert ErrorPolicy.parse(" Quarantine ") is ErrorPolicy.QUARANTINE

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            ErrorPolicy.parse("lenient")


class TestQuarantineReport:
    def test_empty(self):
        report = QuarantineReport()
        assert len(report) == 0
        assert not report
        assert report.count() == 0
        assert report.to_json()["quarantined_total"] == 0

    def test_counts_by_source_and_kind(self):
        report = QuarantineReport()
        report.add("a.json", 0, "bad date", kind="transfers")
        report.add("a.json", 3, "bad rir", kind="transfers")
        report.add("b.csv", 1, "bad price", kind="scrapes")
        assert report.count() == 3
        assert report.count("a.json") == 2
        assert report.by_source() == {"a.json": 2, "b.csv": 1}
        assert report.by_kind() == {"transfers": 2, "scrapes": 1}
        assert report.kind_count("scrapes") == 1
        assert report.kind_count("rpsl") == 0

    def test_detail_capped_but_counts_exact(self):
        report = QuarantineReport(max_detail=2)
        for index in range(5):
            report.add("big.json", index, "bad", kind="transfers")
        assert report.count("big.json") == 5
        assert len(report.records()) == 2
        payload = report.to_json()
        assert payload["quarantined_total"] == 5
        assert payload["by_source"]["big.json"] == 5
        assert len(payload["records"]) == 2

    def test_metrics_counters(self):
        metrics = MetricsRegistry()
        report = QuarantineReport(metrics=metrics)
        report.add("a", 0, "x", kind="transfers")
        report.add("a", 1, "y", kind="rpsl")
        assert metrics.counter("ingest.quarantined") == 2
        assert metrics.counter("ingest.quarantined.transfers") == 1
        assert metrics.counter("ingest.quarantined.rpsl") == 1

    def test_merge(self):
        left = QuarantineReport()
        left.add("a", 0, "x", kind="transfers")
        right = QuarantineReport()
        right.add("b", 1, "y", kind="scrapes")
        right.add("b", 2, "z", kind="scrapes")
        left.merge(right)
        assert left.count() == 3
        assert left.by_source() == {"a": 1, "b": 2}
        assert left.by_kind() == {"transfers": 1, "scrapes": 2}

    def test_merge_preserves_counts_past_detail_cap(self):
        right = QuarantineReport(max_detail=1)
        for index in range(4):
            right.add("b", index, "y", kind="scrapes")
        left = QuarantineReport()
        left.merge(right)
        assert left.count() == 4
        assert left.by_source() == {"b": 4}

    def test_json_record_fields(self):
        report = QuarantineReport()
        report.add("feed.json", 7, "no ip4nets", kind="transfers")
        record = report.to_json()["records"][0]
        assert record == {
            "source": "feed.json",
            "index": 7,
            "kind": "transfers",
            "reason": "no ip4nets",
        }
