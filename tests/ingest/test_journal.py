"""Units for the append-only sweep journal."""

import json

from repro.ingest import SweepJournal


class TestSweepJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.record("a", {"kind": "no_parent"})
            journal.record("b", {"kind": "delegation", "child_first": 1})
        reloaded = SweepJournal(path)
        assert len(reloaded) == 2
        assert "a" in reloaded
        assert reloaded.get("b") == {"kind": "delegation", "child_first": 1}
        assert sorted(reloaded.keys()) == ["a", "b"]

    def test_missing_file_is_empty(self, tmp_path):
        journal = SweepJournal(tmp_path / "absent.jsonl")
        assert len(journal) == 0
        assert journal.get("a") is None

    def test_flushed_per_record(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path)
        journal.record("a", {"kind": "intra_org"})
        # Readable by a second process *before* close: flushed.
        assert "a" in SweepJournal(path)
        journal.close()

    def test_truncated_final_line_skipped(self, tmp_path):
        """A crash mid-write leaves a partial line; resume drops it."""
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.record("a", {"kind": "no_parent"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "b", "outcome": {"kind": "intra')
        journal = SweepJournal(path)
        assert "a" in journal
        assert "b" not in journal
        # The dropped key can be re-recorded cleanly.
        journal.record("b", {"kind": "intra_org"})
        journal.close()
        assert SweepJournal(path).get("b") == {"kind": "intra_org"}

    def test_last_record_wins(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.record("a", {"kind": "no_parent"})
            journal.record("a", {"kind": "intra_org"})
        assert SweepJournal(path).get("a") == {"kind": "intra_org"}

    def test_ignores_non_journal_lines(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text(
            json.dumps(["not", "a", "journal", "entry"]) + "\n"
            + json.dumps({"key": "a", "outcome": {"kind": "no_parent"}})
            + "\n",
            encoding="utf-8",
        )
        journal = SweepJournal(path)
        assert len(journal) == 1
        assert "a" in journal
