"""Units for the shared capped backoff policy and the RDAP client cap."""

import pytest

from repro.errors import RdapError
from repro.ingest import BackoffPolicy
from repro.netbase.prefix import IPv4Prefix, parse_address
from repro.rdap.client import RdapClient, VirtualClock
from repro.rdap.server import RdapServer
from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject, InetnumStatus


class TestBackoffPolicy:
    def test_exponential_then_capped(self):
        policy = BackoffPolicy(
            initial_seconds=1.0, multiplier=2.0, max_backoff_seconds=5.0
        )
        assert policy.delay(0) == 1.0
        assert policy.delay(1) == 2.0
        assert policy.delay(2) == 4.0
        assert policy.delay(3) == 5.0   # capped, not 8
        assert policy.delay(10) == 5.0  # stays capped forever

    def test_schedule(self):
        policy = BackoffPolicy(
            initial_seconds=0.5, max_backoff_seconds=2.0
        )
        assert policy.schedule(4) == [0.5, 1.0, 2.0, 2.0]

    def test_jitter_deterministic_and_bounded(self):
        policy = BackoffPolicy(
            initial_seconds=1.0,
            max_backoff_seconds=8.0,
            jitter_fraction=0.5,
            seed=7,
        )
        first = policy.delay(2, key="193.0.4.0/24")
        second = policy.delay(2, key="193.0.4.0/24")
        assert first == second                       # deterministic
        assert 2.0 <= first <= 4.0                   # within jitter band
        other = policy.delay(2, key="10.0.0.0/24")
        assert other != first                        # key-dependent

    def test_jitter_never_exceeds_cap(self):
        policy = BackoffPolicy(
            initial_seconds=1.0,
            max_backoff_seconds=4.0,
            jitter_fraction=0.9,
            seed=3,
        )
        for attempt in range(12):
            assert policy.delay(attempt, key="k") <= 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(initial_seconds=-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(initial_seconds=5.0, max_backoff_seconds=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter_fraction=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy().delay(-1)


def _throttling_client(max_retries, **kwargs):
    db = WhoisDatabase()
    db.add_inetnum(
        InetnumObject(
            first=parse_address("193.0.0.0"),
            last=parse_address("193.0.0.255"),
            netname="NET",
            status=InetnumStatus.ASSIGNED_PA,
            org_handle="ORG-A",
            admin_handle="AC-1",
        )
    )
    # Refill so slow that every retry throttles again.
    server = RdapServer(db, rate_limit_per_second=1e-9, burst=1)
    clock = VirtualClock()
    return (
        RdapClient(
            server, pace_seconds=0.0, max_retries=max_retries,
            clock=clock, **kwargs,
        ),
        clock,
    )


class TestClientBackoffCap:
    def test_capped_backoff_at_max_retries_boundary(self):
        """At ``max_retries`` the clock advances by the capped schedule,
        not the unbounded doubling (which would be 0.5+1+2+4+8+16+32).

        The near-zero refill rate makes the server's structured
        ``retry_after_seconds`` hint astronomical, so every honored
        delay lands exactly on the 4s cap — never beyond it.
        """
        client, clock = _throttling_client(
            7, backoff_seconds=0.5, max_backoff_seconds=4.0
        )
        prefix = IPv4Prefix.parse("193.0.0.0/24")
        assert client.lookup_ip(prefix) is not None  # drains the bucket
        with pytest.raises(RdapError):
            client.lookup_ip(prefix)
        # Delays slept: 4 x 7 (the last attempt does not sleep); the
        # uncapped hint alone would have slept for ~31 years.
        assert clock.now() == pytest.approx(28.0)
        assert client.throttle_events == 8

    def test_custom_policy_object(self):
        policy = BackoffPolicy(
            initial_seconds=1.0, max_backoff_seconds=1.0
        )
        client, clock = _throttling_client(2, backoff=policy)
        assert client.backoff_policy is policy
        prefix = IPv4Prefix.parse("193.0.0.0/24")
        assert client.lookup_ip(prefix) is not None
        with pytest.raises(RdapError):
            client.lookup_ip(prefix)
        assert clock.now() == pytest.approx(2.0)  # two flat 1s delays

    def test_default_cap_preserves_short_schedules(self):
        """A server hint beyond the cap is honored only up to the cap:
        the default 30s ceiling bounds all five waits."""
        client, clock = _throttling_client(5)
        prefix = IPv4Prefix.parse("193.0.0.0/24")
        assert client.lookup_ip(prefix) is not None
        with pytest.raises(RdapError):
            client.lookup_ip(prefix)
        assert clock.now() == pytest.approx(30.0 * 5)
