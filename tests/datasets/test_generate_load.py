"""End-to-end dataset generation and reloading."""

import datetime
import json

import pytest

from repro.bgp.collector import CollectorSystem
from repro.datasets import (
    generate_all,
    load_leasing_scrapes,
    load_priced_transactions,
    load_transfer_ledger,
    load_whois_snapshot,
)
from repro.errors import DatasetError
from repro.simulation import World, small_scenario

D = datetime.date


@pytest.fixture(scope="module")
def world():
    return World(small_scenario())


@pytest.fixture(scope="module")
def manifest(world, tmp_path_factory):
    directory = tmp_path_factory.mktemp("dataset")
    return generate_all(world, directory, include_rpki=False)


class TestGenerate:
    def test_manifest_written(self, manifest, tmp_path_factory):
        assert manifest.transfer_feeds
        assert manifest.collector_days
        with open(f"{manifest.root}/manifest.json", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["root"] == manifest.root

    def test_transfer_round_trip(self, world, manifest):
        ledger = load_transfer_ledger(f"{manifest.root}/transfers")
        assert len(ledger) == len(world.transfer_ledger())
        # Inter-RIR records must not be double counted.
        assert len(ledger.inter_rir()) == len(
            world.transfer_ledger().inter_rir()
        )

    def test_pricing_round_trip(self, world, manifest):
        dataset = load_priced_transactions(manifest.priced_transactions)
        assert len(dataset) == len(world.priced_transactions())

    def test_whois_round_trip(self, world, manifest):
        database = load_whois_snapshot(manifest.whois_snapshot)
        assert len(database) == len(world.whois())

    def test_leasing_round_trip(self, manifest):
        records = load_leasing_scrapes(manifest.leasing_scrapes)
        providers = {record.provider for record in records}
        assert len(providers) == 21

    def test_collector_archive_readable(self, world, manifest):
        date = D.fromisoformat(manifest.collector_days[0])
        records = list(
            CollectorSystem.read_day(manifest.collector_archive, date)
        )
        assert records
        in_memory = list(world.stream().records_on(date))
        assert len(records) == len(in_memory)

    def test_loaders_reject_missing(self, tmp_path):
        with pytest.raises(DatasetError):
            load_transfer_ledger(tmp_path)
