"""Fault-tolerant loader behaviour: error wrapping and quarantine."""

import datetime

import pytest

from repro.datasets.loaders import (
    load_leasing_scrapes,
    load_transfer_ledger,
)
from repro.datasets.scrapes import read_scrape_csv, write_scrape_csv
from repro.errors import DatasetError
from repro.ingest import ErrorPolicy, QuarantineReport
from repro.market.leasing import ScrapeRecord
from repro.netbase.prefix import IPv4Prefix
from repro.registry.rir import RIR
from repro.registry.transfers import TransferLedger, TransferType


def _write_feeds(tmp_path):
    ledger = TransferLedger()
    ledger.record(
        date=datetime.date(2020, 1, 2),
        prefixes=[IPv4Prefix.parse("193.0.0.0/24")],
        source_org="a",
        recipient_org="b",
        source_rir=RIR.RIPE,
        recipient_rir=RIR.RIPE,
        true_type=TransferType.MARKET,
    )
    return ledger.write_feeds(tmp_path)


class TestLoadTransferLedgerErrors:
    def test_invalid_json_names_path(self, tmp_path):
        """Regression: a broken feed used to leak a raw
        ``json.JSONDecodeError`` with no file context."""
        paths = _write_feeds(tmp_path)
        broken = paths[RIR.APNIC]
        with open(broken, "w", encoding="utf-8") as handle:
            handle.write('{"transfers": [')
        with pytest.raises(DatasetError) as excinfo:
            load_transfer_ledger(tmp_path)
        assert "apnic_transfers_latest.json" in str(excinfo.value)
        assert "invalid JSON" in str(excinfo.value)

    def test_unreadable_feed_names_path(self, tmp_path):
        paths = _write_feeds(tmp_path)
        import os
        import pathlib

        broken = pathlib.Path(paths[RIR.APNIC])
        broken.chmod(0o000)
        try:
            if os.access(broken, os.R_OK):  # running as root
                pytest.skip("cannot revoke read permission here")
            with pytest.raises(DatasetError) as excinfo:
                load_transfer_ledger(tmp_path)
            assert "apnic_transfers_latest.json" in str(excinfo.value)
        finally:
            broken.chmod(0o644)

    def test_quarantine_skips_broken_feed_file(self, tmp_path):
        paths = _write_feeds(tmp_path)
        with open(paths[RIR.APNIC], "w", encoding="utf-8") as handle:
            handle.write("not json at all")
        report = QuarantineReport()
        ledger = load_transfer_ledger(
            tmp_path, policy=ErrorPolicy.QUARANTINE, report=report
        )
        assert len(ledger) == 1  # the RIPE record still loads
        assert report.count(str(paths[RIR.APNIC])) == 1

    def test_quarantine_reports_feed_paths_for_bad_records(self, tmp_path):
        import json

        paths = _write_feeds(tmp_path)
        ripe_path = paths[RIR.RIPE]
        with open(ripe_path, encoding="utf-8") as handle:
            feed = json.load(handle)
        feed["transfers"][0]["transfer_date"] = "not-a-date"
        with open(ripe_path, "w", encoding="utf-8") as handle:
            json.dump(feed, handle)
        report = QuarantineReport()
        ledger = load_transfer_ledger(
            tmp_path, policy=ErrorPolicy.QUARANTINE, report=report
        )
        assert len(ledger) == 0
        assert report.count(str(ripe_path)) == 1

    def test_missing_directory_still_raises(self, tmp_path):
        with pytest.raises(DatasetError, match="no transfer feeds"):
            load_transfer_ledger(
                tmp_path, policy=ErrorPolicy.QUARANTINE
            )


class TestScrapeCsvPolicies:
    def _write_csv(self, tmp_path):
        records = [
            ScrapeRecord(
                date=datetime.date(2020, 1, 6),
                provider="alpha",
                price=0.40,
                bundles_hosting=False,
            ),
            ScrapeRecord(
                date=datetime.date(2020, 1, 13),
                provider="beta",
                price=0.45,
                bundles_hosting=True,
            ),
        ]
        path = tmp_path / "scrapes.csv"
        write_scrape_csv(records, path)
        return path

    def test_strict_raises_on_bad_row(self, tmp_path):
        path = self._write_csv(tmp_path)
        text = path.read_text(encoding="utf-8").replace("0.40", "n/a")
        path.write_text(text, encoding="utf-8")
        with pytest.raises(DatasetError, match="bad scrape row"):
            read_scrape_csv(path)

    def test_quarantine_keeps_good_rows(self, tmp_path):
        path = self._write_csv(tmp_path)
        text = path.read_text(encoding="utf-8").replace("0.40", "n/a")
        path.write_text(text, encoding="utf-8")
        report = QuarantineReport()
        records = load_leasing_scrapes(
            path, policy=ErrorPolicy.QUARANTINE, report=report
        )
        assert [r.provider for r in records] == ["beta"]
        assert report.count(str(path)) == 1
        assert report.records()[0].index == 0
        assert report.records()[0].kind == "scrapes"

    def test_clean_file_identical_between_policies(self, tmp_path):
        path = self._write_csv(tmp_path)
        report = QuarantineReport()
        strict = read_scrape_csv(path)
        lenient = read_scrape_csv(
            path, policy=ErrorPolicy.QUARANTINE, report=report
        )
        assert strict == lenient
        assert report.count() == 0
