"""Smoke tests: every example script runs cleanly."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent.parent / "examples"

SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(SCRIPTS) >= 3
    assert "quickstart.py" in SCRIPTS


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), f"{script} produced no output"


def test_buy_or_lease_accepts_arguments():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "buy_or_lease.py"), "22", "5"],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr
    assert "/22" in completed.stdout
