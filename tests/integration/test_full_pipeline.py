"""End-to-end integration: the whole paper on the small world.

One world, every pipeline, cross-checked against the world's ground
truth — the strongest guarantee that the subsystems compose.
"""

import datetime

import pytest

from repro.analysis.market_size import estimate_market_size
from repro.analysis.prices import regional_price_difference
from repro.delegation import (
    DelegationInference,
    InferenceConfig,
    RdapExtractionStats,
    compare_delegations,
    evaluate_rules_on_rpki,
    extract_rdap_delegations,
)
from repro.simulation import World, small_scenario

D = datetime.date


@pytest.fixture(scope="module")
def world():
    return World(small_scenario())


@pytest.fixture(scope="module")
def inference_result(world):
    inference = DelegationInference(
        InferenceConfig.extended(), world.as2org()
    )
    return inference.infer_range(
        world.stream(), world.config.bgp_start, world.config.bgp_end
    )


class TestInferenceVsGroundTruth:
    def test_recall_against_planted_delegations(self, world, inference_result):
        """Most planted, always-on cross-org delegations are found."""
        date = world.config.bgp_start + datetime.timedelta(days=10)
        truth = {
            spec.prefix
            for spec in world.delegation_plan().cross_org()
            if spec.active_on(date) and spec.onoff is None
        }
        inferred = inference_result.daily.prefixes_on(date)
        recall = len(truth & inferred) / len(truth)
        assert recall > 0.95

    def test_no_intra_org_delegations_survive(self, world, inference_result):
        """Extension (iv) removes every planted intra-org delegation."""
        date = world.config.bgp_start + datetime.timedelta(days=10)
        intra = {spec.prefix for spec in world.delegation_plan().intra_org()}
        inferred = inference_result.daily.prefixes_on(date)
        assert not intra & inferred

    def test_baseline_keeps_intra_org(self, world):
        date = world.config.bgp_start + datetime.timedelta(days=10)
        baseline = DelegationInference(InferenceConfig.baseline())
        found = baseline.infer_day_from_pairs(
            world.stream().pairs_on(date),
            world.stream().monitor_count(),
            date,
        )
        intra = {spec.prefix for spec in world.delegation_plan().intra_org()}
        assert intra & {d.prefix for d in found}

    def test_precision_no_phantom_delegations(self, world, inference_result):
        """Everything inferred corresponds to a planted delegation."""
        date = world.config.bgp_start + datetime.timedelta(days=10)
        truth = {
            spec.prefix
            for spec in world.delegation_plan().cross_org()
            if spec.active_on(date)
        }
        inferred = inference_result.daily.prefixes_on(date)
        phantoms = inferred - truth
        assert len(phantoms) <= max(1, len(inferred) // 20)

    def test_delegators_and_delegatees_correct(self, world):
        date = world.config.bgp_start + datetime.timedelta(days=10)
        inference = DelegationInference(
            InferenceConfig.extended(), world.as2org()
        )
        found = inference.infer_day_from_pairs(
            world.stream().pairs_on(date),
            world.stream().monitor_count(),
            date,
        )
        by_prefix = {
            spec.prefix: spec for spec in world.delegation_plan().cross_org()
        }
        for delegation in found:
            spec = by_prefix.get(delegation.prefix)
            if spec is None:
                continue
            assert delegation.delegatee_asn == spec.delegatee_asn
            assert delegation.delegator_asn == spec.delegator.primary_asn


class TestCrossSourceConsistency:
    def test_rdap_and_bgp_views_compose(self, world, inference_result):
        server = world.rdap_server()
        client = world.rdap_client(server)
        stats = RdapExtractionStats()
        rdap = extract_rdap_delegations(
            world.whois().inetnums(), client, stats=stats
        )
        date = world.config.bgp_end - datetime.timedelta(days=1)
        bgp = inference_result.daily.prefixes_on(date)
        report = compare_delegations(bgp, rdap)
        # The registered share of BGP delegations approximates the
        # scenario's overlap target (registration is by address).
        assert report.rdap_over_bgp == pytest.approx(
            world.config.rdap_overlap_fraction, abs=0.2
        )
        estimate = estimate_market_size(bgp, rdap)
        assert estimate.combined_addresses >= report.rdap_addresses
        assert estimate.combined_addresses >= report.bgp_addresses

    def test_rpki_rule_evaluation_supports_adopted_rule(self, world):
        evaluations = evaluate_rules_on_rpki(world.rpki(), [10], [0])
        assert evaluations[0].premises > 100
        assert evaluations[0].fail_rate < 0.10

    def test_market_analyses_run_on_same_world(self, world):
        _h, p = regional_price_difference(world.priced_transactions())
        assert 0.0 <= p <= 1.0
        assert len(world.transfer_ledger()) > 100


class TestArchiveBackedInference:
    def test_archive_stream_gives_same_delegations(self, world, tmp_path):
        """File-backed and in-memory streams agree day by day."""
        from repro.bgp.stream import RouteStream

        date = world.config.bgp_start + datetime.timedelta(days=5)
        source = world.announcement_source()
        system = world.collector_system()
        system.write_day(source(date), date, tmp_path)

        archive_stream = RouteStream(system, archive_dir=tmp_path)
        memory_stream = world.stream()
        inference = DelegationInference(
            InferenceConfig.extended(), world.as2org()
        )
        monitors = memory_stream.monitor_count()
        from_archive = inference.infer_day_from_pairs(
            archive_stream.pairs_on(date), monitors, date
        )
        from_memory = inference.infer_day_from_pairs(
            memory_stream.pairs_on(date), monitors, date
        )
        assert {d.key() for d in from_archive} == {
            d.key() for d in from_memory
        }
