"""Unit tests for :mod:`repro.netbase.trie`."""

import pytest

from repro.netbase.prefix import IPv4Prefix
from repro.netbase.trie import PrefixTrie


def p(text):
    return IPv4Prefix.parse(text)


@pytest.fixture
def trie():
    t = PrefixTrie()
    t[p("10.0.0.0/8")] = "a"
    t[p("10.1.0.0/16")] = "b"
    t[p("10.1.2.0/24")] = "c"
    t[p("192.0.2.0/24")] = "d"
    return t


class TestBasics:
    def test_len_and_bool(self, trie):
        assert len(trie) == 4
        assert trie
        assert not PrefixTrie()

    def test_get_exact(self, trie):
        assert trie.get(p("10.1.0.0/16")) == "b"
        assert trie.get(p("10.2.0.0/16")) is None
        assert trie.get(p("10.2.0.0/16"), "x") == "x"

    def test_getitem_raises(self, trie):
        assert trie[p("10.0.0.0/8")] == "a"
        with pytest.raises(KeyError):
            trie[p("10.0.0.0/9")]

    def test_contains_is_exact(self, trie):
        assert p("10.1.0.0/16") in trie
        assert p("10.1.0.0/17") not in trie  # covered but not stored

    def test_replace_keeps_size(self, trie):
        trie[p("10.0.0.0/8")] = "a2"
        assert len(trie) == 4
        assert trie[p("10.0.0.0/8")] == "a2"

    def test_root_entry(self):
        t = PrefixTrie()
        t[p("0.0.0.0/0")] = "default"
        assert t[p("0.0.0.0/0")] == "default"
        assert t.longest_match(p("8.8.8.8/32")) == (p("0.0.0.0/0"), "default")


class TestDelete:
    def test_delete_existing(self, trie):
        assert trie.delete(p("10.1.0.0/16"))
        assert len(trie) == 3
        assert p("10.1.0.0/16") not in trie
        # children survive
        assert trie[p("10.1.2.0/24")] == "c"

    def test_delete_missing(self, trie):
        assert not trie.delete(p("10.9.0.0/16"))
        assert len(trie) == 4

    def test_delete_prunes_branch(self):
        t = PrefixTrie()
        t[p("10.1.2.0/24")] = 1
        assert t.delete(p("10.1.2.0/24"))
        assert t._root.zero is None and t._root.one is None

    def test_clear(self, trie):
        trie.clear()
        assert len(trie) == 0
        assert list(trie.items()) == []


class TestCoverQueries:
    def test_covering_order(self, trie):
        found = list(trie.covering(p("10.1.2.0/25")))
        assert found == [
            (p("10.0.0.0/8"), "a"),
            (p("10.1.0.0/16"), "b"),
            (p("10.1.2.0/24"), "c"),
        ]

    def test_covering_includes_exact(self, trie):
        found = list(trie.covering(p("10.1.0.0/16")))
        assert (p("10.1.0.0/16"), "b") in found

    def test_longest_match(self, trie):
        assert trie.longest_match(p("10.1.2.3/32")) == (p("10.1.2.0/24"), "c")
        assert trie.longest_match(p("10.9.9.9/32")) == (p("10.0.0.0/8"), "a")
        assert trie.longest_match(p("11.0.0.0/8")) is None

    def test_covered(self, trie):
        inside = list(trie.covered(p("10.0.0.0/8")))
        assert inside == [
            (p("10.0.0.0/8"), "a"),
            (p("10.1.0.0/16"), "b"),
            (p("10.1.2.0/24"), "c"),
        ]

    def test_covered_no_match(self, trie):
        assert list(trie.covered(p("11.0.0.0/8"))) == []

    def test_covered_of_leaf(self, trie):
        assert list(trie.covered(p("192.0.2.0/24"))) == [(p("192.0.2.0/24"), "d")]


class TestIteration:
    def test_items_sorted(self, trie):
        keys = [k for k, _v in trie.items()]
        assert keys == sorted(keys)
        assert len(keys) == 4

    def test_keys_values(self, trie):
        assert set(trie.values()) == {"a", "b", "c", "d"}
        assert set(trie.keys()) == set(iter(trie))

    def test_many_entries(self):
        t = PrefixTrie()
        base = p("172.16.0.0/12")
        subnets = list(base.subnets(24))[:300]
        for i, s in enumerate(subnets):
            t[s] = i
        assert len(t) == 300
        assert [k for k, _ in t.covered(base)] == sorted(subnets)
        for i, s in enumerate(subnets):
            assert t[s] == i
