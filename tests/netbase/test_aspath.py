"""Unit tests for :mod:`repro.netbase.aspath`."""

import pytest

from repro.errors import ASPathError
from repro.netbase.aspath import ASPath, ASPathSegment, SegmentType


class TestParsing:
    def test_simple_sequence(self):
        path = ASPath.parse("701 3356 13335")
        assert list(path.asns()) == [701, 3356, 13335]
        assert len(path.segments) == 1
        assert str(path) == "701 3356 13335"

    def test_with_as_set(self):
        path = ASPath.parse("701 3356 {64496,64497}")
        assert len(path.segments) == 2
        assert path.segments[1].is_set
        assert str(path) == "701 3356 {64496,64497}"

    def test_set_in_middle(self):
        path = ASPath.parse("701 {1,2} 3356")
        assert [s.is_set for s in path.segments] == [False, True, False]

    def test_empty(self):
        path = ASPath.parse("")
        assert path.is_empty
        with pytest.raises(ASPathError):
            path.origin()
        with pytest.raises(ASPathError):
            path.first_hop()

    @pytest.mark.parametrize("bad", ["701 {1,2", "701 {}", "70x1", "{a}"])
    def test_malformed(self, bad):
        with pytest.raises(ASPathError):
            ASPath.parse(bad)

    def test_from_asns(self):
        assert ASPath.from_asns([1, 2, 3]) == ASPath.parse("1 2 3")
        assert ASPath.from_asns([]).is_empty


class TestOrigin:
    def test_sequence_origin(self):
        assert ASPath.parse("701 3356").origin().sole_origin() == 3356

    def test_as_set_origin_not_unique(self):
        origin = ASPath.parse("701 {1,2}").origin()
        assert not origin.is_unique
        assert set(origin) == {1, 2}

    def test_first_hop(self):
        assert ASPath.parse("701 3356 13335").first_hop() == 701


class TestLoops:
    def test_clean_path(self):
        assert not ASPath.parse("701 3356 13335").has_loop()

    def test_prepending_is_not_loop(self):
        assert not ASPath.parse("701 3356 3356 3356 13335").has_loop()

    def test_real_loop(self):
        assert ASPath.parse("701 3356 701").has_loop()

    def test_loop_across_prepending(self):
        assert ASPath.parse("701 701 3356 701").has_loop()

    def test_loop_via_as_set(self):
        assert ASPath.parse("701 3356 {701}").has_loop()

    def test_prepend_after_set_is_loop(self):
        # 3356 before and after a set: the set breaks adjacency.
        assert ASPath.parse("701 3356 {9} 3356").has_loop()


class TestSanitizationPredicates:
    def test_reserved_asn(self):
        assert ASPath.parse("701 0 3356").has_reserved_asn()
        assert ASPath.parse("701 23456").has_reserved_asn()
        assert not ASPath.parse("701 3356").has_reserved_asn()
        assert ASPath.parse("701 {64496}").has_reserved_asn()

    def test_strip_prepending(self):
        path = ASPath.parse("701 3356 3356 13335 13335 13335")
        assert str(path.strip_prepending()) == "701 3356 13335"

    def test_strip_preserves_sets(self):
        path = ASPath.parse("701 701 {1,2}")
        assert str(path.strip_prepending()) == "701 {1,2}"


class TestProtocol:
    def test_len_counts_set_as_one(self):
        assert len(ASPath.parse("701 3356 {1,2,3}")) == 3
        assert len(ASPath.parse("701 701 3356")) == 3  # prepending counts

    def test_eq_hash(self):
        a = ASPath.parse("701 3356")
        b = ASPath.from_asns([701, 3356])
        assert a == b and hash(a) == hash(b)
        assert a != ASPath.parse("701 1299")

    def test_set_equality_unordered(self):
        assert ASPath.parse("{1,2}") == ASPath.parse("{2,1}")

    def test_segment_validation(self):
        with pytest.raises(ASPathError):
            ASPathSegment(SegmentType.SEQUENCE, [])

    def test_repr_round_trip(self):
        path = ASPath.parse("701 {1,2} 3356")
        assert eval(repr(path)) == path  # noqa: S307 - controlled input
