"""Unit tests for :mod:`repro.netbase.bogons`."""

from repro.netbase.bogons import BOGON_PREFIXES, bogon_set, is_bogon
from repro.netbase.prefix import IPv4Prefix


def p(text):
    return IPv4Prefix.parse(text)


class TestIsBogon:
    def test_exact_bogon(self):
        assert is_bogon(p("10.0.0.0/8"))
        assert is_bogon(p("192.168.0.0/16"))

    def test_more_specific_inside_bogon(self):
        assert is_bogon(p("10.1.2.0/24"))
        assert is_bogon(p("100.64.1.0/24"))
        assert is_bogon(p("203.0.113.128/25"))

    def test_covering_a_bogon_is_bogon(self):
        assert is_bogon(p("8.0.0.0/6"))  # covers 10.0.0.0/8
        assert is_bogon(p("0.0.0.0/0"))

    def test_public_space_is_clean(self):
        for text in ["8.8.8.0/24", "193.0.0.0/16", "1.0.0.0/24",
                     "199.0.0.0/8"]:
            assert not is_bogon(p(text))

    def test_adjacent_to_bogon_is_clean(self):
        assert not is_bogon(p("11.0.0.0/8"))
        assert not is_bogon(p("172.32.0.0/12"))


class TestBogonSet:
    def test_copy_semantics(self):
        ps = bogon_set()
        ps.add(p("1.2.3.0/24"))
        assert not is_bogon(p("1.2.3.0/24"))  # module list untouched
        ps2 = bogon_set()
        assert not ps2.covers(p("1.2.3.0/24"))

    def test_contains_all_reference_prefixes(self):
        ps = bogon_set()
        for prefix in BOGON_PREFIXES:
            assert ps.has_exact(prefix)

    def test_reference_list_covers_rfc1918(self):
        ps = bogon_set()
        for text in ["10.0.0.0/8", "172.16.0.0/12", "192.168.0.0/16"]:
            assert ps.covers(p(text))
