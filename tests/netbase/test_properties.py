"""Property-based tests for the netbase data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netbase.prefix import MAX_ADDRESS, IPv4Prefix, format_address, parse_address
from repro.netbase.prefixset import PrefixSet, address_count, aggregate
from repro.netbase.trie import PrefixTrie

addresses = st.integers(min_value=0, max_value=MAX_ADDRESS)
lengths = st.integers(min_value=0, max_value=32)


@st.composite
def prefixes(draw):
    return IPv4Prefix(draw(addresses), draw(lengths), strict=False)


prefix_lists = st.lists(prefixes(), max_size=60)


class TestPrefixProperties:
    @given(addresses)
    def test_address_round_trip(self, value):
        assert parse_address(format_address(value)) == value

    @given(prefixes())
    def test_str_round_trip(self, prefix):
        assert IPv4Prefix.parse(str(prefix)) == prefix

    @given(prefixes())
    def test_network_within_block(self, prefix):
        assert prefix.contains_address(prefix.network)
        assert prefix.contains_address(prefix.broadcast)
        assert prefix.broadcast - prefix.network + 1 == prefix.num_addresses

    @given(prefixes())
    def test_supernet_covers(self, prefix):
        if prefix.length > 0:
            parent = prefix.supernet()
            assert parent.covers(prefix)
            assert prefix.is_subnet_of(parent)

    @given(prefixes())
    def test_halves_partition(self, prefix):
        if prefix.length < 32:
            low, high = prefix.halves()
            assert low.network == prefix.network
            assert high.broadcast == prefix.broadcast
            assert low.broadcast + 1 == high.network
            assert not low.overlaps(high)

    @given(prefixes(), prefixes())
    def test_cover_antisymmetry(self, a, b):
        if a.covers(b) and b.covers(a):
            assert a == b

    @given(prefixes(), prefixes())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(addresses, addresses)
    def test_from_range_covers_exactly(self, x, y):
        first, last = min(x, y), max(x, y)
        blocks = IPv4Prefix.from_range(first, last)
        assert sum(b.num_addresses for b in blocks) == last - first + 1
        assert blocks[0].network == first
        assert blocks[-1].broadcast == last
        for left, right in zip(blocks, blocks[1:]):
            assert left.broadcast + 1 == right.network


class TestAggregateProperties:
    @given(prefix_lists)
    def test_aggregate_preserves_address_set(self, blocks):
        merged = aggregate(blocks)
        # Same covered-address count...
        raw = set()
        for b in blocks:
            if b.length >= 24:
                raw.update(range(b.network, b.broadcast + 1))
        if all(b.length >= 24 for b in blocks):
            agg_addresses = set()
            for b in merged:
                agg_addresses.update(range(b.network, b.broadcast + 1))
            assert agg_addresses == raw

    @given(prefix_lists)
    def test_aggregate_is_minimal_and_sorted(self, blocks):
        merged = aggregate(blocks)
        assert merged == sorted(merged)
        # No member covers another; no mergeable sibling pair remains.
        for i, a in enumerate(merged):
            for b in merged[i + 1:]:
                assert not a.covers(b) and not b.covers(a)
        siblings = {(m.network, m.length) for m in merged}
        for m in merged:
            if m.length > 0:
                s = m.sibling()
                assert (s.network, s.length) not in siblings

    @given(prefix_lists)
    def test_aggregate_idempotent(self, blocks):
        once = aggregate(blocks)
        assert aggregate(once) == once

    @given(prefix_lists)
    def test_address_count_matches_aggregate(self, blocks):
        assert address_count(blocks) == sum(
            b.num_addresses for b in aggregate(blocks)
        )


class TestTrieProperties:
    @settings(max_examples=50)
    @given(st.lists(st.tuples(prefixes(), st.integers()), max_size=80))
    def test_trie_behaves_like_dict(self, entries):
        trie = PrefixTrie()
        model = {}
        for prefix, value in entries:
            trie[prefix] = value
            model[prefix] = value
        assert len(trie) == len(model)
        for prefix, value in model.items():
            assert trie[prefix] == value
        assert dict(trie.items()) == model
        keys = [k for k, _ in trie.items()]
        assert keys == sorted(keys)

    @settings(max_examples=50)
    @given(st.lists(prefixes(), max_size=60), prefixes())
    def test_longest_match_is_most_specific_cover(self, stored, probe):
        trie = PrefixTrie()
        for prefix in stored:
            trie[prefix] = True
        match = trie.longest_match(probe)
        covers = [s for s in set(stored) if s.covers(probe)]
        if not covers:
            assert match is None
        else:
            expected = max(covers, key=lambda s: s.length)
            assert match is not None
            assert match[0] == expected

    @settings(max_examples=50)
    @given(st.lists(prefixes(), max_size=60), prefixes())
    def test_covered_matches_filter(self, stored, probe):
        trie = PrefixTrie()
        for prefix in stored:
            trie[prefix] = True
        got = [k for k, _ in trie.covered(probe)]
        expected = sorted(s for s in set(stored) if probe.covers(s))
        assert got == expected

    @settings(max_examples=50)
    @given(st.lists(prefixes(), max_size=40))
    def test_delete_everything(self, stored):
        trie = PrefixTrie()
        for prefix in stored:
            trie[prefix] = 1
        for prefix in set(stored):
            assert trie.delete(prefix)
        assert len(trie) == 0
        assert list(trie.items()) == []


class TestPrefixSetProperties:
    @settings(max_examples=50)
    @given(prefix_lists, prefixes())
    def test_covers_matches_bruteforce(self, members, probe):
        ps = PrefixSet(members)
        assert ps.covers(probe) == any(m.covers(probe) for m in members)

    @settings(max_examples=50)
    @given(prefix_lists, prefixes())
    def test_overlap_addresses_bounded(self, members, probe):
        ps = PrefixSet(members)
        overlap = ps.overlap_addresses(probe)
        assert 0 <= overlap <= probe.num_addresses
        if ps.covers(probe):
            assert overlap == probe.num_addresses
