"""Unit tests for :mod:`repro.netbase.prefix`."""

import pytest

from repro.errors import PrefixError
from repro.netbase.prefix import (
    MAX_ADDRESS,
    IPv4Prefix,
    format_address,
    parse_address,
)


class TestParseAddress:
    def test_round_trip(self):
        for text in ["0.0.0.0", "10.1.2.3", "192.0.2.255", "255.255.255.255"]:
            assert format_address(parse_address(text)) == text

    def test_value(self):
        assert parse_address("1.2.3.4") == 0x01020304
        assert parse_address("0.0.0.0") == 0
        assert parse_address("255.255.255.255") == MAX_ADDRESS

    @pytest.mark.parametrize(
        "bad",
        ["", "1.2.3", "1.2.3.4.5", "256.0.0.0", "1.2.3.-4", "a.b.c.d",
         "01.2.3.4", "1.2.3.4/24", " 1.2.3.4"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(PrefixError):
            parse_address(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(PrefixError):
            format_address(-1)
        with pytest.raises(PrefixError):
            format_address(MAX_ADDRESS + 1)


class TestConstruction:
    def test_parse_and_str(self):
        p = IPv4Prefix.parse("192.0.2.0/24")
        assert str(p) == "192.0.2.0/24"
        assert p.network == 0xC0000200
        assert p.length == 24

    def test_bare_address_is_slash_32(self):
        assert IPv4Prefix.parse("10.0.0.1").length == 32

    def test_strict_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            IPv4Prefix.parse("192.0.2.1/24")

    def test_non_strict_masks_host_bits(self):
        p = IPv4Prefix.parse("192.0.2.1/24", strict=False)
        assert str(p) == "192.0.2.0/24"

    @pytest.mark.parametrize("bad", ["10.0.0.0/33", "10.0.0.0/-1",
                                     "10.0.0.0/x", "10.0.0.0/"])
    def test_bad_length(self, bad):
        with pytest.raises(PrefixError):
            IPv4Prefix.parse(bad)

    def test_immutable(self):
        p = IPv4Prefix.parse("10.0.0.0/8")
        with pytest.raises(AttributeError):
            p.length = 9  # type: ignore[misc]

    def test_zero_length(self):
        p = IPv4Prefix.parse("0.0.0.0/0")
        assert p.num_addresses == 2 ** 32
        assert p.contains_address(MAX_ADDRESS)


class TestProperties:
    def test_broadcast_and_count(self):
        p = IPv4Prefix.parse("192.0.2.0/24")
        assert p.broadcast == parse_address("192.0.2.255")
        assert p.num_addresses == 256

    def test_netmask(self):
        assert IPv4Prefix.parse("10.0.0.0/8").netmask == 0xFF000000
        assert IPv4Prefix.parse("0.0.0.0/0").netmask == 0

    def test_slash_32(self):
        p = IPv4Prefix.parse("1.2.3.4/32")
        assert p.num_addresses == 1
        assert p.broadcast == p.network


class TestRelations:
    def test_covers(self):
        big = IPv4Prefix.parse("10.0.0.0/8")
        small = IPv4Prefix.parse("10.1.0.0/16")
        assert big.covers(small)
        assert not small.covers(big)
        assert big.covers(big)

    def test_subnet_relations(self):
        big = IPv4Prefix.parse("10.0.0.0/8")
        small = IPv4Prefix.parse("10.1.0.0/16")
        assert small.is_subnet_of(big)
        assert small.is_proper_subnet_of(big)
        assert not big.is_proper_subnet_of(big)
        assert big.is_subnet_of(big)

    def test_overlaps(self):
        a = IPv4Prefix.parse("10.0.0.0/8")
        b = IPv4Prefix.parse("10.255.0.0/16")
        c = IPv4Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_contains_dunder(self):
        p = IPv4Prefix.parse("192.0.2.0/24")
        assert IPv4Prefix.parse("192.0.2.128/25") in p
        assert parse_address("192.0.2.7") in p
        assert parse_address("192.0.3.7") not in p


class TestDerivation:
    def test_supernet(self):
        p = IPv4Prefix.parse("10.1.0.0/16")
        assert str(p.supernet()) == "10.0.0.0/15"
        assert str(p.supernet(8)) == "10.0.0.0/8"
        with pytest.raises(PrefixError):
            p.supernet(17)

    def test_subnets(self):
        p = IPv4Prefix.parse("10.0.0.0/23")
        subs = list(p.subnets())
        assert [str(s) for s in subs] == ["10.0.0.0/24", "10.0.1.0/24"]
        assert len(list(p.subnets(26))) == 8
        with pytest.raises(PrefixError):
            list(p.subnets(22))

    def test_halves_and_sibling(self):
        p = IPv4Prefix.parse("10.0.0.0/24")
        low, high = p.halves()
        assert str(low) == "10.0.0.0/25"
        assert str(high) == "10.0.0.128/25"
        assert low.sibling() == high
        assert high.sibling() == low
        with pytest.raises(PrefixError):
            IPv4Prefix.parse("0.0.0.0/0").sibling()

    def test_bit(self):
        p = IPv4Prefix.parse("128.0.0.0/1")
        assert p.bit(0) == 1
        p2 = IPv4Prefix.parse("64.0.0.0/2")
        assert (p2.bit(0), p2.bit(1)) == (0, 1)
        with pytest.raises(PrefixError):
            p.bit(32)


class TestFromRange:
    def test_exact_block(self):
        p = IPv4Prefix.parse("10.0.0.0/24")
        assert IPv4Prefix.from_range(p.network, p.broadcast) == [p]

    def test_unaligned_range_splits(self):
        first = parse_address("10.0.0.128")
        last = parse_address("10.0.1.255")
        blocks = IPv4Prefix.from_range(first, last)
        assert [str(b) for b in blocks] == ["10.0.0.128/25", "10.0.1.0/24"]
        assert sum(b.num_addresses for b in blocks) == last - first + 1

    def test_single_address(self):
        a = parse_address("1.2.3.4")
        assert IPv4Prefix.from_range(a, a) == [IPv4Prefix.parse("1.2.3.4/32")]

    def test_whole_space(self):
        blocks = IPv4Prefix.from_range(0, MAX_ADDRESS)
        assert blocks == [IPv4Prefix.parse("0.0.0.0/0")]

    def test_empty_range_rejected(self):
        with pytest.raises(PrefixError):
            IPv4Prefix.from_range(5, 4)


class TestOrderingAndHashing:
    def test_sort_order(self):
        texts = ["10.0.0.0/8", "10.0.0.0/16", "10.0.0.0/24", "10.0.1.0/24",
                 "11.0.0.0/8"]
        prefixes = [IPv4Prefix.parse(t) for t in texts]
        assert sorted(reversed(prefixes)) == prefixes

    def test_covering_sorts_before_covered(self):
        cover = IPv4Prefix.parse("10.0.0.0/8")
        inner = IPv4Prefix.parse("10.0.0.0/24")
        assert sorted([inner, cover]) == [cover, inner]

    def test_hash_eq(self):
        a = IPv4Prefix.parse("10.0.0.0/8")
        b = IPv4Prefix(0x0A000000, 8)
        assert a == b and hash(a) == hash(b)
        assert a != IPv4Prefix.parse("10.0.0.0/9")

    def test_comparisons_with_other_types(self):
        p = IPv4Prefix.parse("10.0.0.0/8")
        assert p != "10.0.0.0/8"
        with pytest.raises(TypeError):
            _ = p < "10.0.0.0/8"  # type: ignore[operator]

    def test_repr_round_trip(self):
        p = IPv4Prefix.parse("198.51.100.0/24")
        assert eval(repr(p)) == p  # noqa: S307 - controlled input
