"""Unit tests for the sorted-array LPM kernel (repro.netbase.lpm)."""

import random
from array import array

import pytest

from repro.netbase.lpm import (
    SortedPrefixMap,
    broadcast_of,
    day_shard_bounds,
    nearest_strict_covers,
    pack,
    unpack,
)
from repro.netbase.prefix import IPv4Prefix


def P(text):
    return IPv4Prefix.parse(text)


class TestPackedKeys:
    def test_pack_round_trip(self):
        for text in ("0.0.0.0/0", "10.0.0.0/8", "203.0.113.7/32"):
            prefix = P(text)
            key = pack(prefix.network, prefix.length)
            assert unpack(key) == (prefix.network, prefix.length)

    def test_sort_order_matches_prefix_order(self):
        prefixes = [
            P("10.0.0.0/8"), P("10.0.0.0/16"), P("10.0.0.0/24"),
            P("10.1.0.0/16"), P("9.0.0.0/8"), P("0.0.0.0/0"),
        ]
        by_key = sorted(pack(p.network, p.length) for p in prefixes)
        by_tuple = sorted((p.network, p.length) for p in prefixes)
        assert [unpack(k) for k in by_key] == by_tuple

    def test_broadcast_of(self):
        prefix = P("192.168.4.0/22")
        assert broadcast_of(pack(prefix.network, prefix.length)) == \
            prefix.broadcast


class TestSortedPrefixMap:
    def test_exact_lookup_and_contains(self):
        spm = SortedPrefixMap([(P("10.0.0.0/8"), "a"), (P("10.0.0.0/9"), "b")])
        assert spm[P("10.0.0.0/8")] == "a"
        assert spm.get(P("10.0.0.0/9")) == "b"
        assert P("10.0.0.0/10") not in spm
        assert spm.get(P("10.0.0.0/10"), "missing") == "missing"
        with pytest.raises(KeyError):
            spm[P("11.0.0.0/8")]

    def test_duplicate_inserts_last_wins(self):
        spm = SortedPrefixMap([
            (P("10.0.0.0/8"), "first"), (P("10.0.0.0/8"), "second"),
        ])
        assert len(spm) == 1
        assert spm[P("10.0.0.0/8")] == "second"

    def test_covering_shortest_first(self):
        spm = SortedPrefixMap([
            (P("10.0.0.0/8"), 8), (P("10.1.0.0/16"), 16),
            (P("10.1.2.0/24"), 24), (P("10.2.0.0/16"), -1),
        ])
        covers = list(spm.covering(P("10.1.2.128/25")))
        assert covers == [
            (P("10.0.0.0/8"), 8), (P("10.1.0.0/16"), 16),
            (P("10.1.2.0/24"), 24),
        ]
        # Exact matches count as covering.
        assert (P("10.1.2.0/24"), 24) in list(spm.covering(P("10.1.2.0/24")))

    def test_longest_match(self):
        spm = SortedPrefixMap([
            (P("0.0.0.0/0"), "default"), (P("10.0.0.0/8"), "eight"),
            (P("10.1.0.0/16"), "sixteen"),
        ])
        assert spm.longest_match(P("10.1.2.3/32")) == (P("10.1.0.0/16"), "sixteen")
        assert spm.longest_match(P("10.200.0.0/16")) == (P("10.0.0.0/8"), "eight")
        assert spm.longest_match(P("192.0.2.0/24")) == (P("0.0.0.0/0"), "default")

    def test_longest_match_empty(self):
        assert SortedPrefixMap().longest_match(P("10.0.0.0/8")) is None

    def test_covered_contiguous_slice(self):
        spm = SortedPrefixMap([
            (P("10.0.0.0/8"), 1), (P("10.0.0.0/16"), 2),
            (P("10.0.1.0/24"), 3), (P("10.1.0.0/16"), 4),
            (P("11.0.0.0/8"), 5),
        ])
        inside = list(spm.covered(P("10.0.0.0/8")))
        assert inside == [
            (P("10.0.0.0/8"), 1), (P("10.0.0.0/16"), 2),
            (P("10.0.1.0/24"), 3), (P("10.1.0.0/16"), 4),
        ]
        # The shared-network, shorter-length neighbour is filtered out.
        assert list(spm.covered(P("10.0.0.0/16"))) == [
            (P("10.0.0.0/16"), 2), (P("10.0.1.0/24"), 3),
        ]

    def test_edge_lengths(self):
        spm = SortedPrefixMap([
            (P("0.0.0.0/0"), "root"), (P("255.255.255.255/32"), "leaf"),
        ])
        assert spm.longest_match(P("255.255.255.255/32")) == \
            (P("255.255.255.255/32"), "leaf")
        assert list(spm.covering(P("255.255.255.255/32"))) == [
            (P("0.0.0.0/0"), "root"), (P("255.255.255.255/32"), "leaf"),
        ]
        assert len(list(spm.covered(P("0.0.0.0/0")))) == 2

    def test_iteration_sorted(self):
        spm = SortedPrefixMap([
            (P("11.0.0.0/8"), 2), (P("10.0.0.0/8"), 1),
            (P("10.0.0.0/16"), 3),
        ])
        assert list(spm.keys()) == [
            P("10.0.0.0/8"), P("10.0.0.0/16"), P("11.0.0.0/8"),
        ]
        assert list(spm) == list(spm.keys())
        assert bool(spm) and len(spm) == 3
        assert not SortedPrefixMap()

    def test_from_packed_adopts_columns(self):
        keys = array("Q", sorted(
            pack(p.network, p.length)
            for p in (P("10.0.0.0/8"), P("10.0.0.0/16"))
        ))
        spm = SortedPrefixMap.from_packed(keys, ["a", "b"])
        assert spm[P("10.0.0.0/8")] == "a"
        assert spm.longest_match(P("10.0.0.1/32")) == (P("10.0.0.0/16"), "b")


class TestNearestStrictCovers:
    def _covers(self, texts):
        keys = array("Q", sorted(
            pack(p.network, p.length) for p in map(P, texts)
        ))
        return keys, nearest_strict_covers(keys)

    def test_nesting_chain(self):
        keys, covers = self._covers(
            ["10.0.0.0/8", "10.0.0.0/16", "10.0.0.0/24", "10.0.1.0/24"]
        )
        assert covers == [-1, 0, 1, 1]

    def test_disjoint_blocks(self):
        _keys, covers = self._covers(["10.0.0.0/8", "11.0.0.0/8"])
        assert covers == [-1, -1]

    def test_sibling_after_deep_nesting(self):
        # The stack must pop the closed /24 chain before 10.128.0.0/9's
        # cover is read off the top.
        keys, covers = self._covers([
            "10.0.0.0/8", "10.0.0.0/24", "10.0.0.0/32", "10.128.0.0/9",
        ])
        assert covers == [-1, 0, 1, 0]

    def test_default_route_covers_everything(self):
        _keys, covers = self._covers(
            ["0.0.0.0/0", "10.0.0.0/8", "200.0.0.0/8"]
        )
        assert covers == [-1, 0, 0]

    def test_empty(self):
        assert nearest_strict_covers(array("Q")) == []


class TestDayShardBounds:
    """The per-/8 cut invariant behind intra-day sharding."""

    def _random_keys(self, rng, count):
        seen = set()
        while len(seen) < count:
            length = rng.randint(8, 28)
            network = rng.randrange(1 << 32) & ~(
                (1 << (32 - length)) - 1
            )
            seen.add(pack(network, length))
        return array("Q", sorted(seen))

    def test_partitions_the_index_space(self):
        rng = random.Random(7)
        for _ in range(20):
            keys = self._random_keys(rng, rng.randint(1, 80))
            for shards in (1, 2, 3, 5, 16):
                bounds = day_shard_bounds(keys, shards)
                assert len(bounds) == shards
                cursor = 0
                for low, high in bounds:
                    assert low == cursor
                    assert high >= low
                    cursor = high
                assert cursor == len(keys)

    def test_single_shard_and_empty(self):
        keys = self._random_keys(random.Random(1), 10)
        assert day_shard_bounds(keys, 1) == [(0, len(keys))]
        assert day_shard_bounds(array("Q"), 3) == [
            (0, 0), (0, 0), (0, 0)
        ]
        with pytest.raises(ValueError):
            day_shard_bounds(keys, 0)

    def test_cuts_are_cover_safe(self):
        # At every cut, no earlier prefix may cover the first key of
        # the next range — the running-max broadcast lies below it.
        rng = random.Random(13)
        for _ in range(20):
            keys = self._random_keys(rng, rng.randint(2, 120))
            for low, high in day_shard_bounds(keys, 4)[1:]:
                if low == high == len(keys):
                    continue
                network = keys[low] >> 6
                assert all(
                    broadcast_of(keys[i]) < network for i in range(low)
                )

    def test_per_range_cover_pass_equals_full_pass(self):
        # The whole point: running nearest_strict_covers per range and
        # concatenating (indices offset by the range start) must be
        # identical to one pass over the full array.
        rng = random.Random(20)
        for _ in range(30):
            keys = self._random_keys(rng, rng.randint(1, 150))
            full = list(nearest_strict_covers(keys))
            for shards in (2, 3, 7):
                stitched = []
                for low, high in day_shard_bounds(keys, shards):
                    part = nearest_strict_covers(keys[low:high])
                    stitched.extend(
                        -1 if cover == -1 else cover + low
                        for cover in part
                    )
                assert stitched == full

    def test_cuts_land_on_top_octet_boundaries(self):
        # No announced prefix shorter than /8 -> every top-octet
        # transition is safe, so cuts sit exactly on /8 edges.
        keys = array("Q", sorted(
            pack((octet << 24) | (sub << 16), 16)
            for octet in (10, 11, 12, 13)
            for sub in range(8)
        ))
        for low, high in day_shard_bounds(keys, 4):
            if low < len(keys):
                assert (keys[low] >> 6) % (1 << 24) == 0
