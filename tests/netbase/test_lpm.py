"""Unit tests for the sorted-array LPM kernel (repro.netbase.lpm)."""

from array import array

import pytest

from repro.netbase.lpm import (
    SortedPrefixMap,
    broadcast_of,
    nearest_strict_covers,
    pack,
    unpack,
)
from repro.netbase.prefix import IPv4Prefix


def P(text):
    return IPv4Prefix.parse(text)


class TestPackedKeys:
    def test_pack_round_trip(self):
        for text in ("0.0.0.0/0", "10.0.0.0/8", "203.0.113.7/32"):
            prefix = P(text)
            key = pack(prefix.network, prefix.length)
            assert unpack(key) == (prefix.network, prefix.length)

    def test_sort_order_matches_prefix_order(self):
        prefixes = [
            P("10.0.0.0/8"), P("10.0.0.0/16"), P("10.0.0.0/24"),
            P("10.1.0.0/16"), P("9.0.0.0/8"), P("0.0.0.0/0"),
        ]
        by_key = sorted(pack(p.network, p.length) for p in prefixes)
        by_tuple = sorted((p.network, p.length) for p in prefixes)
        assert [unpack(k) for k in by_key] == by_tuple

    def test_broadcast_of(self):
        prefix = P("192.168.4.0/22")
        assert broadcast_of(pack(prefix.network, prefix.length)) == \
            prefix.broadcast


class TestSortedPrefixMap:
    def test_exact_lookup_and_contains(self):
        spm = SortedPrefixMap([(P("10.0.0.0/8"), "a"), (P("10.0.0.0/9"), "b")])
        assert spm[P("10.0.0.0/8")] == "a"
        assert spm.get(P("10.0.0.0/9")) == "b"
        assert P("10.0.0.0/10") not in spm
        assert spm.get(P("10.0.0.0/10"), "missing") == "missing"
        with pytest.raises(KeyError):
            spm[P("11.0.0.0/8")]

    def test_duplicate_inserts_last_wins(self):
        spm = SortedPrefixMap([
            (P("10.0.0.0/8"), "first"), (P("10.0.0.0/8"), "second"),
        ])
        assert len(spm) == 1
        assert spm[P("10.0.0.0/8")] == "second"

    def test_covering_shortest_first(self):
        spm = SortedPrefixMap([
            (P("10.0.0.0/8"), 8), (P("10.1.0.0/16"), 16),
            (P("10.1.2.0/24"), 24), (P("10.2.0.0/16"), -1),
        ])
        covers = list(spm.covering(P("10.1.2.128/25")))
        assert covers == [
            (P("10.0.0.0/8"), 8), (P("10.1.0.0/16"), 16),
            (P("10.1.2.0/24"), 24),
        ]
        # Exact matches count as covering.
        assert (P("10.1.2.0/24"), 24) in list(spm.covering(P("10.1.2.0/24")))

    def test_longest_match(self):
        spm = SortedPrefixMap([
            (P("0.0.0.0/0"), "default"), (P("10.0.0.0/8"), "eight"),
            (P("10.1.0.0/16"), "sixteen"),
        ])
        assert spm.longest_match(P("10.1.2.3/32")) == (P("10.1.0.0/16"), "sixteen")
        assert spm.longest_match(P("10.200.0.0/16")) == (P("10.0.0.0/8"), "eight")
        assert spm.longest_match(P("192.0.2.0/24")) == (P("0.0.0.0/0"), "default")

    def test_longest_match_empty(self):
        assert SortedPrefixMap().longest_match(P("10.0.0.0/8")) is None

    def test_covered_contiguous_slice(self):
        spm = SortedPrefixMap([
            (P("10.0.0.0/8"), 1), (P("10.0.0.0/16"), 2),
            (P("10.0.1.0/24"), 3), (P("10.1.0.0/16"), 4),
            (P("11.0.0.0/8"), 5),
        ])
        inside = list(spm.covered(P("10.0.0.0/8")))
        assert inside == [
            (P("10.0.0.0/8"), 1), (P("10.0.0.0/16"), 2),
            (P("10.0.1.0/24"), 3), (P("10.1.0.0/16"), 4),
        ]
        # The shared-network, shorter-length neighbour is filtered out.
        assert list(spm.covered(P("10.0.0.0/16"))) == [
            (P("10.0.0.0/16"), 2), (P("10.0.1.0/24"), 3),
        ]

    def test_edge_lengths(self):
        spm = SortedPrefixMap([
            (P("0.0.0.0/0"), "root"), (P("255.255.255.255/32"), "leaf"),
        ])
        assert spm.longest_match(P("255.255.255.255/32")) == \
            (P("255.255.255.255/32"), "leaf")
        assert list(spm.covering(P("255.255.255.255/32"))) == [
            (P("0.0.0.0/0"), "root"), (P("255.255.255.255/32"), "leaf"),
        ]
        assert len(list(spm.covered(P("0.0.0.0/0")))) == 2

    def test_iteration_sorted(self):
        spm = SortedPrefixMap([
            (P("11.0.0.0/8"), 2), (P("10.0.0.0/8"), 1),
            (P("10.0.0.0/16"), 3),
        ])
        assert list(spm.keys()) == [
            P("10.0.0.0/8"), P("10.0.0.0/16"), P("11.0.0.0/8"),
        ]
        assert list(spm) == list(spm.keys())
        assert bool(spm) and len(spm) == 3
        assert not SortedPrefixMap()

    def test_from_packed_adopts_columns(self):
        keys = array("Q", sorted(
            pack(p.network, p.length)
            for p in (P("10.0.0.0/8"), P("10.0.0.0/16"))
        ))
        spm = SortedPrefixMap.from_packed(keys, ["a", "b"])
        assert spm[P("10.0.0.0/8")] == "a"
        assert spm.longest_match(P("10.0.0.1/32")) == (P("10.0.0.0/16"), "b")


class TestNearestStrictCovers:
    def _covers(self, texts):
        keys = array("Q", sorted(
            pack(p.network, p.length) for p in map(P, texts)
        ))
        return keys, nearest_strict_covers(keys)

    def test_nesting_chain(self):
        keys, covers = self._covers(
            ["10.0.0.0/8", "10.0.0.0/16", "10.0.0.0/24", "10.0.1.0/24"]
        )
        assert covers == [-1, 0, 1, 1]

    def test_disjoint_blocks(self):
        _keys, covers = self._covers(["10.0.0.0/8", "11.0.0.0/8"])
        assert covers == [-1, -1]

    def test_sibling_after_deep_nesting(self):
        # The stack must pop the closed /24 chain before 10.128.0.0/9's
        # cover is read off the top.
        keys, covers = self._covers([
            "10.0.0.0/8", "10.0.0.0/24", "10.0.0.0/32", "10.128.0.0/9",
        ])
        assert covers == [-1, 0, 1, 0]

    def test_default_route_covers_everything(self):
        _keys, covers = self._covers(
            ["0.0.0.0/0", "10.0.0.0/8", "200.0.0.0/8"]
        )
        assert covers == [-1, 0, 0]

    def test_empty(self):
        assert nearest_strict_covers(array("Q")) == []
