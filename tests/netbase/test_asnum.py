"""Unit tests for :mod:`repro.netbase.asnum`."""

import pytest

from repro.errors import ASNumberError
from repro.netbase.asnum import (
    AS_TRANS,
    MAX_ASN,
    OriginSet,
    is_private_asn,
    is_reserved_asn,
    is_routable_asn,
    validate_asn,
)


class TestValidate:
    def test_accepts_valid(self):
        assert validate_asn(0) == 0
        assert validate_asn(3356) == 3356
        assert validate_asn(MAX_ASN) == MAX_ASN

    @pytest.mark.parametrize("bad", [-1, MAX_ASN + 1, "3356", 3.5, True])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ASNumberError):
            validate_asn(bad)


class TestClassification:
    def test_reserved(self):
        assert is_reserved_asn(0)
        assert is_reserved_asn(AS_TRANS)
        assert is_reserved_asn(65535)
        assert is_reserved_asn(64500)  # documentation
        assert is_reserved_asn(MAX_ASN)
        assert not is_reserved_asn(3356)
        assert not is_reserved_asn(64512)  # private, not "reserved"

    def test_private(self):
        assert is_private_asn(64512)
        assert is_private_asn(65534)
        assert is_private_asn(4_200_000_000)
        assert not is_private_asn(65535)
        assert not is_private_asn(3356)

    def test_routable(self):
        assert is_routable_asn(3356)
        assert is_routable_asn(200000)
        assert not is_routable_asn(0)
        assert not is_routable_asn(64512)
        assert not is_routable_asn(AS_TRANS)


class TestOriginSet:
    def test_single(self):
        o = OriginSet.single(3356)
        assert o.is_unique
        assert o.sole_origin() == 3356
        assert 3356 in o and 1299 not in o
        assert len(o) == 1

    def test_moas_not_unique(self):
        o = OriginSet([3356, 1299])
        assert not o.is_unique
        with pytest.raises(ASNumberError):
            o.sole_origin()

    def test_as_set_not_unique_even_if_singleton(self):
        o = OriginSet([3356], from_as_set=True)
        assert not o.is_unique
        with pytest.raises(ASNumberError):
            o.sole_origin()

    def test_merge(self):
        merged = OriginSet.single(1).merge(OriginSet.single(2))
        assert set(merged) == {1, 2}
        assert not merged.from_as_set
        tainted = merged.merge(OriginSet([3], from_as_set=True))
        assert tainted.from_as_set

    def test_merge_same_origin_stays_unique(self):
        merged = OriginSet.single(7).merge(OriginSet.single(7))
        assert merged.is_unique

    def test_empty_rejected(self):
        with pytest.raises(ASNumberError):
            OriginSet([])

    def test_eq_hash(self):
        assert OriginSet([1, 2]) == OriginSet([2, 1])
        assert hash(OriginSet([1, 2])) == hash(OriginSet([2, 1]))
        assert OriginSet([1]) != OriginSet([1], from_as_set=True)

    def test_iter_sorted(self):
        assert list(OriginSet([9, 3, 5])) == [3, 5, 9]
