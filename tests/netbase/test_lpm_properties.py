"""Property-based equivalence: SortedPrefixMap vs. the PrefixTrie.

The sorted-array LPM kernel replaces the trie on the inference hot
path, so the two must agree exactly — same results, same order — for
``longest_match``, ``covering``, and ``covered`` on arbitrary prefix
sets, including /0 and /32 edge lengths and duplicate inserts.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.netbase.lpm import SortedPrefixMap
from repro.netbase.prefix import MAX_ADDRESS, IPv4Prefix
from repro.netbase.trie import PrefixTrie

addresses = st.integers(min_value=0, max_value=MAX_ADDRESS)
lengths = st.integers(min_value=0, max_value=32)
# Edge lengths drawn often enough to exercise /0 and /32 every run.
edgy_lengths = st.one_of(st.sampled_from([0, 32]), lengths)


@st.composite
def prefixes(draw):
    return IPv4Prefix(draw(addresses), draw(edgy_lengths), strict=False)


# Duplicate prefixes allowed on purpose: last insert must win in both
# structures, so equivalence covers the overwrite semantics too.
prefix_lists = st.lists(prefixes(), max_size=60)


def _build(stored):
    trie = PrefixTrie()
    items = []
    for index, prefix in enumerate(stored):
        trie.insert(prefix, index)
        items.append((prefix, index))
    return trie, SortedPrefixMap(items)


class TestTrieEquivalence:
    @given(prefix_lists, prefixes())
    def test_longest_match(self, stored, query):
        trie, spm = _build(stored)
        assert spm.longest_match(query) == trie.longest_match(query)

    @given(prefix_lists, prefixes())
    def test_covering(self, stored, query):
        trie, spm = _build(stored)
        assert list(spm.covering(query)) == list(trie.covering(query))

    @given(prefix_lists, prefixes())
    def test_covered(self, stored, query):
        trie, spm = _build(stored)
        assert list(spm.covered(query)) == list(trie.covered(query))

    @given(prefix_lists, prefixes())
    def test_exact_lookup(self, stored, query):
        trie, spm = _build(stored)
        assert (query in spm) == (query in trie)
        assert spm.get(query) == trie.get(query)

    @given(prefix_lists)
    def test_items_agree(self, stored):
        trie, spm = _build(stored)
        assert len(spm) == len(trie)
        assert sorted(spm.items()) == sorted(trie.items())

    @given(prefix_lists)
    def test_self_queries(self, stored):
        # Every stored prefix, queried against the full set — hits the
        # exact-match branches of covering/covered simultaneously.
        trie, spm = _build(stored)
        for prefix in stored:
            assert spm.longest_match(prefix) == trie.longest_match(prefix)
            assert list(spm.covered(prefix)) == list(trie.covered(prefix))
