"""Unit tests for :mod:`repro.netbase.prefixset`."""

import pytest

from repro.netbase.prefix import IPv4Prefix, parse_address
from repro.netbase.prefixset import (
    PrefixSet,
    address_count,
    aggregate,
    coverage_fraction,
)


def p(text):
    return IPv4Prefix.parse(text)


class TestAggregate:
    def test_empty(self):
        assert aggregate([]) == []

    def test_merges_siblings(self):
        assert aggregate([p("10.0.0.0/25"), p("10.0.0.128/25")]) == [
            p("10.0.0.0/24")
        ]

    def test_merges_recursively(self):
        quarters = list(p("10.0.0.0/24").subnets(26))
        assert aggregate(quarters) == [p("10.0.0.0/24")]

    def test_removes_covered(self):
        assert aggregate([p("10.0.0.0/8"), p("10.1.0.0/16")]) == [
            p("10.0.0.0/8")
        ]

    def test_non_adjacent_not_merged(self):
        blocks = [p("10.0.0.0/24"), p("10.0.2.0/24")]
        assert aggregate(blocks) == blocks

    def test_non_sibling_adjacent_not_merged(self):
        # 10.0.1.0/24 and 10.0.2.0/24 are adjacent but not siblings.
        blocks = [p("10.0.1.0/24"), p("10.0.2.0/24")]
        assert aggregate(blocks) == blocks

    def test_duplicates_collapse(self):
        assert aggregate([p("10.0.0.0/24")] * 3) == [p("10.0.0.0/24")]

    def test_merge_then_cover(self):
        # Sibling /25s merge into a /24 already covered by the /23.
        blocks = [p("10.0.0.0/23"), p("10.0.0.0/25"), p("10.0.0.128/25")]
        assert aggregate(blocks) == [p("10.0.0.0/23")]


class TestAddressCount:
    def test_simple(self):
        assert address_count([p("10.0.0.0/24")]) == 256

    def test_overlap_not_double_counted(self):
        assert address_count([p("10.0.0.0/8"), p("10.1.0.0/16")]) == 2 ** 24

    def test_disjoint_sum(self):
        assert address_count([p("10.0.0.0/24"), p("10.0.2.0/23")]) == 256 + 512


class TestCoverageFraction:
    def test_full_coverage(self):
        assert coverage_fraction([p("10.0.0.0/24")], [p("10.0.0.0/8")]) == 1.0

    def test_no_coverage(self):
        assert coverage_fraction([p("10.0.0.0/24")], [p("11.0.0.0/8")]) == 0.0

    def test_partial(self):
        frac = coverage_fraction(
            [p("10.0.0.0/23")], [p("10.0.0.0/24")]
        )
        assert frac == pytest.approx(0.5)

    def test_empty_base(self):
        assert coverage_fraction([], [p("10.0.0.0/8")]) == 0.0

    def test_asymmetry(self):
        bgp = [p("10.0.0.0/24")]
        rdap = [p("10.0.0.0/16")]
        assert coverage_fraction(bgp, rdap) == 1.0
        assert coverage_fraction(rdap, bgp) == pytest.approx(256 / 65536)


class TestPrefixSet:
    @pytest.fixture
    def ps(self):
        return PrefixSet([p("10.0.0.0/8"), p("192.0.2.0/24")])

    def test_covers_prefix_and_address(self, ps):
        assert ps.covers(p("10.1.0.0/16"))
        assert ps.covers(parse_address("10.255.255.255"))
        assert not ps.covers(p("11.0.0.0/8"))
        assert p("192.0.2.0/25") in ps
        assert parse_address("8.8.8.8") not in ps

    def test_has_exact(self, ps):
        assert ps.has_exact(p("10.0.0.0/8"))
        assert not ps.has_exact(p("10.0.0.0/16"))

    def test_discard(self, ps):
        assert ps.discard(p("192.0.2.0/24"))
        assert not ps.discard(p("192.0.2.0/24"))
        assert not ps.covers(p("192.0.2.0/24"))

    def test_update_and_len(self, ps):
        ps.update([p("172.16.0.0/12"), p("198.18.0.0/15")])
        assert len(ps) == 4

    def test_covering_and_covered_by(self, ps):
        ps.add(p("10.1.0.0/16"))
        assert list(ps.covering(p("10.1.2.0/24"))) == [
            p("10.0.0.0/8"), p("10.1.0.0/16")
        ]
        assert list(ps.covered_by(p("10.0.0.0/8"))) == [
            p("10.0.0.0/8"), p("10.1.0.0/16")
        ]

    def test_overlap_addresses(self):
        ps = PrefixSet([p("10.0.0.0/25"), p("10.0.1.0/24")])
        assert ps.overlap_addresses(p("10.0.0.0/23")) == 128 + 256
        assert ps.overlap_addresses(p("10.0.0.0/26")) == 64  # covered case
        assert ps.overlap_addresses(p("11.0.0.0/8")) == 0

    def test_aggregated_and_count(self):
        ps = PrefixSet([p("10.0.0.0/25"), p("10.0.0.128/25")])
        assert ps.aggregated() == [p("10.0.0.0/24")]
        assert ps.address_count() == 256

    def test_bool_and_iter(self):
        ps = PrefixSet()
        assert not ps
        ps.add(p("10.0.0.0/8"))
        assert ps
        assert list(ps) == [p("10.0.0.0/8")]
