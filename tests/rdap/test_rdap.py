"""Unit tests for the RDAP server and client."""

import pytest

from repro.errors import RdapError, RdapNotFoundError, RdapRateLimitError
from repro.netbase.prefix import IPv4Prefix, parse_address
from repro.rdap.client import RdapClient, VirtualClock
from repro.rdap.server import RateLimiter, RdapServer
from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject, InetnumStatus


def make(first, last, status=InetnumStatus.ASSIGNED_PA, org="ORG-A",
         admin="AC-1", netname="NET"):
    return InetnumObject(
        first=parse_address(first),
        last=parse_address(last),
        netname=netname,
        status=status,
        org_handle=org,
        admin_handle=admin,
    )


@pytest.fixture
def server():
    db = WhoisDatabase()
    db.add_inetnum(make("193.0.0.0", "193.0.255.255",
                        status=InetnumStatus.ALLOCATED_PA, org="ORG-LIR"))
    db.add_inetnum(make("193.0.4.0", "193.0.4.255", org="ORG-CUST"))
    return RdapServer(db, rate_limit_per_second=1000.0, burst=1000)


class TestRateLimiter:
    def test_burst_then_throttle(self):
        limiter = RateLimiter(rate=1.0, capacity=2)
        assert limiter.try_acquire(0.0)
        assert limiter.try_acquire(0.0)
        assert not limiter.try_acquire(0.0)
        assert limiter.seconds_until_token() == pytest.approx(1.0)

    def test_refill(self):
        limiter = RateLimiter(rate=2.0, capacity=2)
        limiter.try_acquire(0.0)
        limiter.try_acquire(0.0)
        assert not limiter.try_acquire(0.1)
        assert limiter.try_acquire(1.0)

    def test_capacity_cap(self):
        limiter = RateLimiter(rate=100.0, capacity=1)
        limiter.try_acquire(0.0)
        assert limiter.try_acquire(10.0)
        assert not limiter.try_acquire(10.0)

    def test_backwards_clock_rejected(self):
        limiter = RateLimiter(rate=1.0, capacity=1)
        limiter.try_acquire(5.0)
        with pytest.raises(ValueError):
            limiter.try_acquire(4.0)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0, capacity=1)
        with pytest.raises(ValueError):
            RateLimiter(rate=1, capacity=0)


class TestServer:
    def test_exact_lookup(self, server):
        response = server.lookup_ip(IPv4Prefix.parse("193.0.4.0/24"))
        assert response["objectClassName"] == "ip network"
        assert response["handle"] == "193.0.4.0 - 193.0.4.255"
        assert response["type"] == "ASSIGNED PA"
        assert response["parentHandle"] == "193.0.0.0 - 193.0.255.255"

    def test_top_level_has_null_parent(self, server):
        response = server.lookup_ip(IPv4Prefix.parse("193.0.0.0/16"))
        assert response["parentHandle"] is None

    def test_most_specific_fallback(self, server):
        # /25 inside the ASSIGNED PA /24: server returns the /24.
        response = server.lookup_ip(IPv4Prefix.parse("193.0.4.0/25"))
        assert response["handle"] == "193.0.4.0 - 193.0.4.255"

    def test_not_found(self, server):
        with pytest.raises(RdapNotFoundError):
            server.lookup_ip(IPv4Prefix.parse("8.8.8.0/24"))

    def test_entities(self, server):
        response = server.lookup_ip(IPv4Prefix.parse("193.0.4.0/24"))
        roles = {e["roles"][0]: e["handle"] for e in response["entities"]}
        assert roles["registrant"] == "ORG-CUST"
        assert roles["administrative"] == "AC-1"

    def test_rate_limit(self):
        db = WhoisDatabase()
        db.add_inetnum(make("193.0.0.0", "193.0.0.255"))
        server = RdapServer(db, rate_limit_per_second=1.0, burst=1)
        server.lookup_ip(IPv4Prefix.parse("193.0.0.0/24"), now=0.0)
        with pytest.raises(RdapRateLimitError):
            server.lookup_ip(IPv4Prefix.parse("193.0.0.0/24"), now=0.0)
        assert server.throttled_count == 1
        # Another client has its own bucket.
        server.lookup_ip(
            IPv4Prefix.parse("193.0.0.0/24"), client_id="other", now=0.0
        )


class TestClient:
    def test_lookup_and_parent(self, server):
        client = RdapClient(server)
        handle = client.parent_handle(IPv4Prefix.parse("193.0.4.0/24"))
        assert handle == "193.0.0.0 - 193.0.255.255"
        assert client.queries_sent == 1

    def test_not_found_returns_none(self, server):
        client = RdapClient(server)
        assert client.lookup_ip(IPv4Prefix.parse("8.8.8.0/24")) is None
        assert client.not_found_count == 1

    def test_retry_after_throttle(self):
        db = WhoisDatabase()
        db.add_inetnum(make("193.0.0.0", "193.0.0.255"))
        server = RdapServer(db, rate_limit_per_second=2.0, burst=1)
        client = RdapClient(server, pace_seconds=0.0, backoff_seconds=1.0)
        # First query drains the bucket; second throttles then retries.
        assert client.lookup_ip(IPv4Prefix.parse("193.0.0.0/24")) is not None
        assert client.lookup_ip(IPv4Prefix.parse("193.0.0.0/24")) is not None
        assert client.throttle_events >= 1

    def test_gives_up_eventually(self):
        db = WhoisDatabase()
        db.add_inetnum(make("193.0.0.0", "193.0.0.255"))
        # Refill so slow that retries cannot succeed.
        server = RdapServer(db, rate_limit_per_second=0.0001, burst=1)
        client = RdapClient(
            server, pace_seconds=0.0, max_retries=2, backoff_seconds=0.1
        )
        client.lookup_ip(IPv4Prefix.parse("193.0.0.0/24"))
        with pytest.raises(RdapError):
            client.lookup_ip(IPv4Prefix.parse("193.0.0.0/24"))

    def test_pacing_advances_clock(self, server):
        clock = VirtualClock()
        client = RdapClient(server, pace_seconds=0.5, clock=clock)
        client.lookup_ip(IPv4Prefix.parse("193.0.4.0/24"))
        client.lookup_ip(IPv4Prefix.parse("193.0.4.0/24"))
        assert clock.now() == pytest.approx(1.0)

    def test_virtual_clock_validation(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.sleep(-1)
