"""Unit tests for the RDAP server and client."""

import pytest

from repro.errors import RdapError, RdapNotFoundError, RdapRateLimitError
from repro.netbase.prefix import IPv4Prefix, parse_address
from repro.rdap.client import RdapClient, VirtualClock
from repro.rdap.server import RateLimiter, RdapServer
from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject, InetnumStatus


def make(first, last, status=InetnumStatus.ASSIGNED_PA, org="ORG-A",
         admin="AC-1", netname="NET"):
    return InetnumObject(
        first=parse_address(first),
        last=parse_address(last),
        netname=netname,
        status=status,
        org_handle=org,
        admin_handle=admin,
    )


@pytest.fixture
def server():
    db = WhoisDatabase()
    db.add_inetnum(make("193.0.0.0", "193.0.255.255",
                        status=InetnumStatus.ALLOCATED_PA, org="ORG-LIR"))
    db.add_inetnum(make("193.0.4.0", "193.0.4.255", org="ORG-CUST"))
    return RdapServer(db, rate_limit_per_second=1000.0, burst=1000)


class TestRateLimiter:
    def test_burst_then_throttle(self):
        limiter = RateLimiter(rate=1.0, capacity=2)
        assert limiter.try_acquire(0.0)
        assert limiter.try_acquire(0.0)
        assert not limiter.try_acquire(0.0)
        assert limiter.seconds_until_token() == pytest.approx(1.0)

    def test_refill(self):
        limiter = RateLimiter(rate=2.0, capacity=2)
        limiter.try_acquire(0.0)
        limiter.try_acquire(0.0)
        assert not limiter.try_acquire(0.1)
        assert limiter.try_acquire(1.0)

    def test_capacity_cap(self):
        limiter = RateLimiter(rate=100.0, capacity=1)
        limiter.try_acquire(0.0)
        assert limiter.try_acquire(10.0)
        assert not limiter.try_acquire(10.0)

    def test_backwards_clock_rejected(self):
        limiter = RateLimiter(rate=1.0, capacity=1)
        limiter.try_acquire(5.0)
        with pytest.raises(ValueError):
            limiter.try_acquire(4.0)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0, capacity=1)
        with pytest.raises(ValueError):
            RateLimiter(rate=1, capacity=0)


class TestServer:
    def test_exact_lookup(self, server):
        response = server.lookup_ip(IPv4Prefix.parse("193.0.4.0/24"))
        assert response["objectClassName"] == "ip network"
        assert response["handle"] == "193.0.4.0 - 193.0.4.255"
        assert response["type"] == "ASSIGNED PA"
        assert response["parentHandle"] == "193.0.0.0 - 193.0.255.255"

    def test_top_level_has_null_parent(self, server):
        response = server.lookup_ip(IPv4Prefix.parse("193.0.0.0/16"))
        assert response["parentHandle"] is None

    def test_most_specific_fallback(self, server):
        # /25 inside the ASSIGNED PA /24: server returns the /24.
        response = server.lookup_ip(IPv4Prefix.parse("193.0.4.0/25"))
        assert response["handle"] == "193.0.4.0 - 193.0.4.255"

    def test_not_found(self, server):
        with pytest.raises(RdapNotFoundError):
            server.lookup_ip(IPv4Prefix.parse("8.8.8.0/24"))

    def test_entities(self, server):
        response = server.lookup_ip(IPv4Prefix.parse("193.0.4.0/24"))
        roles = {e["roles"][0]: e["handle"] for e in response["entities"]}
        assert roles["registrant"] == "ORG-CUST"
        assert roles["administrative"] == "AC-1"

    def test_rate_limit(self):
        db = WhoisDatabase()
        db.add_inetnum(make("193.0.0.0", "193.0.0.255"))
        server = RdapServer(db, rate_limit_per_second=1.0, burst=1)
        server.lookup_ip(IPv4Prefix.parse("193.0.0.0/24"), now=0.0)
        with pytest.raises(RdapRateLimitError):
            server.lookup_ip(IPv4Prefix.parse("193.0.0.0/24"), now=0.0)
        assert server.throttled_count == 1
        # Another client has its own bucket.
        server.lookup_ip(
            IPv4Prefix.parse("193.0.0.0/24"), client_id="other", now=0.0
        )


class TestClient:
    def test_lookup_and_parent(self, server):
        client = RdapClient(server)
        handle = client.parent_handle(IPv4Prefix.parse("193.0.4.0/24"))
        assert handle == "193.0.0.0 - 193.0.255.255"
        assert client.queries_sent == 1

    def test_not_found_returns_none(self, server):
        client = RdapClient(server)
        assert client.lookup_ip(IPv4Prefix.parse("8.8.8.0/24")) is None
        assert client.not_found_count == 1

    def test_retry_after_throttle(self):
        db = WhoisDatabase()
        db.add_inetnum(make("193.0.0.0", "193.0.0.255"))
        server = RdapServer(db, rate_limit_per_second=2.0, burst=1)
        client = RdapClient(server, pace_seconds=0.0, backoff_seconds=1.0)
        # First query drains the bucket; second throttles then retries.
        assert client.lookup_ip(IPv4Prefix.parse("193.0.0.0/24")) is not None
        assert client.lookup_ip(IPv4Prefix.parse("193.0.0.0/24")) is not None
        assert client.throttle_events >= 1

    def test_gives_up_eventually(self):
        db = WhoisDatabase()
        db.add_inetnum(make("193.0.0.0", "193.0.0.255"))
        # Refill so slow that retries cannot succeed.
        server = RdapServer(db, rate_limit_per_second=0.0001, burst=1)
        client = RdapClient(
            server, pace_seconds=0.0, max_retries=2, backoff_seconds=0.1
        )
        client.lookup_ip(IPv4Prefix.parse("193.0.0.0/24"))
        with pytest.raises(RdapError):
            client.lookup_ip(IPv4Prefix.parse("193.0.0.0/24"))

    def test_pacing_advances_clock(self, server):
        clock = VirtualClock()
        client = RdapClient(server, pace_seconds=0.5, clock=clock)
        client.lookup_ip(IPv4Prefix.parse("193.0.4.0/24"))
        client.lookup_ip(IPv4Prefix.parse("193.0.4.0/24"))
        assert clock.now() == pytest.approx(1.0)

    def test_virtual_clock_validation(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.sleep(-1)


class TestStructuredRateLimitError:
    def test_retry_after_attribute(self):
        db = WhoisDatabase()
        db.add_inetnum(make("193.0.0.0", "193.0.0.255"))
        server = RdapServer(db, rate_limit_per_second=0.5, burst=1)
        server.lookup_ip(IPv4Prefix.parse("193.0.0.0/24"), now=0.0)
        with pytest.raises(RdapRateLimitError) as info:
            server.lookup_ip(IPv4Prefix.parse("193.0.0.0/24"), now=0.0)
        # The retry hint is structured data, not buried in the text.
        assert info.value.retry_after_seconds == pytest.approx(2.0)

    def test_default_is_none(self):
        assert RdapRateLimitError("ad-hoc").retry_after_seconds is None

    def test_client_honors_hint_over_shorter_backoff(self):
        db = WhoisDatabase()
        db.add_inetnum(make("193.0.0.0", "193.0.0.255"))
        # Refill in 2s; local backoff alone would retry after 0.01s.
        server = RdapServer(db, rate_limit_per_second=0.5, burst=1)
        clock = VirtualClock()
        client = RdapClient(
            server, pace_seconds=0.0, backoff_seconds=0.01, clock=clock
        )
        client.lookup_ip(IPv4Prefix.parse("193.0.0.0/24"))
        assert client.lookup_ip(
            IPv4Prefix.parse("193.0.0.0/24")
        ) is not None
        # One throttled attempt, then a sleep long enough for the
        # bucket to actually hold a token (the server's hint), rather
        # than a storm of doomed 0.01s retries.
        assert client.throttle_events == 1
        assert clock.now() >= 2.0


class TestLimiterEviction:
    def _server(self, max_clients=4, rate=1.0, burst=2):
        db = WhoisDatabase()
        db.add_inetnum(make("193.0.0.0", "193.0.0.255"))
        return RdapServer(
            db, rate_limit_per_second=rate, burst=burst,
            max_clients=max_clients,
        )

    def test_refilled_entries_swept(self):
        server = self._server(max_clients=100, rate=1.0, burst=2)
        server.check_rate("a", 0.0)
        assert server.live_limiter_count == 1
        # By t=10 the bucket has long refilled; the next sweep drops
        # it.  Force a sweep by crossing the check interval.
        for i in range(RdapServer.SWEEP_INTERVAL):
            server.check_rate(f"c{i}", 10.0)
        assert "a" not in server._limiters
        assert server.evicted_count >= 1

    def test_table_bounded_by_max_clients(self):
        server = self._server(max_clients=8, rate=0.001, burst=2)
        # A flood of distinct clients, all mid-bucket (nothing
        # refills at rate 0.001): LRU overflow eviction must hold the
        # table at the bound after every check.
        for i in range(1000):
            server.check_rate(f"client-{i}", float(i) * 1e-6)
            assert server.live_limiter_count <= 8
        assert server.evicted_count >= 992

    def test_eviction_never_resets_active_bucket(self):
        server = self._server(max_clients=50, rate=0.001, burst=2)
        # Exhaust client A's bucket...
        server.check_rate("A", 0.0)
        server.check_rate("A", 0.0)
        with pytest.raises(RdapRateLimitError):
            server.check_rate("A", 0.0)
        # ...then hammer enough other clients to trigger many sweeps.
        # A's bucket is empty (not refilled) and A is recently seen,
        # so no sweep may touch it.
        for i in range(3 * RdapServer.SWEEP_INTERVAL):
            try:
                server.check_rate(f"other-{i % 40}", 0.01)
            except RdapRateLimitError:
                pass  # the hammer clients exhaust their own buckets
        with pytest.raises(RdapRateLimitError):
            server.check_rate("A", 0.01)

    def test_gauge_tracks_live_count(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        server = self._server(max_clients=4)
        server.set_metrics(metrics)
        for i in range(2 * RdapServer.SWEEP_INTERVAL):
            server.check_rate(f"c{i % 10}", float(i) * 1e-3)
        gauge = metrics.to_json()["gauges"]["rdap.limiters.live"]
        assert 0 < gauge <= 10

    def test_max_clients_validation(self):
        with pytest.raises(ValueError):
            self._server(max_clients=0)

    def test_tokens_never_exceed_capacity_property(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=50, deadline=None)
        @given(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=5),  # client
                    st.floats(
                        min_value=0.0, max_value=0.5,
                        allow_nan=False,  # clock increment
                    ),
                ),
                max_size=200,
            )
        )
        def run(ops):
            server = self._server(max_clients=3, rate=10.0, burst=4)
            now = 0.0
            for client, delta in ops:
                now += delta
                try:
                    server.check_rate(f"c{client}", now)
                except RdapRateLimitError:
                    pass
                for limiter in server._limiters.values():
                    assert 0.0 <= limiter._tokens <= limiter._capacity
                assert server.live_limiter_count <= 3 + 1

        run()
