"""Logging behaviour of the RDAP client."""

import logging

from repro.netbase.prefix import IPv4Prefix, parse_address
from repro.rdap.client import RdapClient
from repro.rdap.server import RdapServer
from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject, InetnumStatus


def test_throttle_is_logged(caplog):
    db = WhoisDatabase()
    db.add_inetnum(InetnumObject(
        first=parse_address("193.0.0.0"),
        last=parse_address("193.0.0.255"),
        netname="NET",
        status=InetnumStatus.ASSIGNED_PA,
        org_handle="ORG-A",
        admin_handle="AC-1",
    ))
    server = RdapServer(db, rate_limit_per_second=2.0, burst=1)
    client = RdapClient(server, pace_seconds=0.0, backoff_seconds=1.0)
    with caplog.at_level(logging.WARNING, logger="repro.rdap.client"):
        client.lookup_ip(IPv4Prefix.parse("193.0.0.0/24"))
        client.lookup_ip(IPv4Prefix.parse("193.0.0.0/24"))
    assert any("throttled" in record.message for record in caplog.records)
