"""Unit tests for :mod:`repro.registry.transfers`."""

import datetime
import json

import pytest

from repro.errors import DatasetError, TransferError
from repro.netbase.prefix import IPv4Prefix
from repro.registry.rir import RIR
from repro.registry.transfers import (
    TransferLedger,
    TransferRecord,
    TransferType,
)


def d(text):
    return datetime.date.fromisoformat(text)


def p(text):
    return IPv4Prefix.parse(text)


def make_record(ledger, *, date="2020-01-02", src_rir=RIR.RIPE,
                dst_rir=RIR.RIPE, true_type=TransferType.MARKET,
                prefix="193.0.0.0/24"):
    return ledger.record(
        date=d(date),
        prefixes=[p(prefix)],
        source_org="org-src",
        recipient_org="org-dst",
        source_rir=src_rir,
        recipient_rir=dst_rir,
        true_type=true_type,
    )


class TestRecord:
    def test_basic_properties(self):
        ledger = TransferLedger()
        record = make_record(ledger)
        assert record.addresses == 256
        assert record.largest_block_length == 24
        assert not record.is_inter_rir

    def test_empty_prefixes_rejected(self):
        with pytest.raises(TransferError):
            TransferRecord(
                transfer_id="T1",
                date=d("2020-01-01"),
                prefixes=(),
                source_org="a",
                recipient_org="b",
                source_rir=RIR.RIPE,
                recipient_rir=RIR.RIPE,
                true_type=TransferType.MARKET,
            )

    def test_published_type_labelled(self):
        ledger = TransferLedger()
        record = make_record(
            ledger, true_type=TransferType.MERGER_ACQUISITION
        )
        assert record.published_type() is TransferType.MERGER_ACQUISITION

    def test_published_type_unlabelled(self):
        ledger = TransferLedger()
        record = make_record(
            ledger, src_rir=RIR.APNIC, dst_rir=RIR.APNIC,
            true_type=TransferType.MERGER_ACQUISITION, prefix="1.0.0.0/24",
        )
        assert record.published_type() is None

    def test_largest_block(self):
        ledger = TransferLedger()
        record = ledger.record(
            date=d("2020-01-01"),
            prefixes=[p("193.0.0.0/24"), p("193.1.0.0/16")],
            source_org="a", recipient_org="b",
            source_rir=RIR.RIPE, recipient_rir=RIR.RIPE,
        )
        assert record.largest_block_length == 16
        assert record.addresses == 256 + 65536


class TestJsonRoundTrip:
    def test_round_trip_market(self):
        ledger = TransferLedger()
        record = make_record(ledger)
        parsed = TransferRecord.from_feed_json(record.to_feed_json())
        assert parsed.date == record.date
        assert parsed.prefixes == record.prefixes
        assert parsed.source_rir is RIR.RIPE
        assert parsed.true_type is TransferType.MARKET

    def test_mna_label_survives_for_labelling_rir(self):
        ledger = TransferLedger()
        record = make_record(
            ledger, true_type=TransferType.MERGER_ACQUISITION
        )
        parsed = TransferRecord.from_feed_json(record.to_feed_json())
        assert parsed.true_type is TransferType.MERGER_ACQUISITION

    def test_mna_label_lost_for_apnic(self):
        ledger = TransferLedger()
        record = make_record(
            ledger, src_rir=RIR.APNIC, dst_rir=RIR.APNIC,
            true_type=TransferType.MERGER_ACQUISITION, prefix="1.0.0.0/24",
        )
        parsed = TransferRecord.from_feed_json(record.to_feed_json())
        assert parsed.true_type is TransferType.MARKET  # ambiguity modeled

    def test_range_split_into_cidrs(self):
        raw = {
            "transfer_date": "2020-01-02T00:00:00Z",
            "type": "RESOURCE_TRANSFER",
            "source_organization": {"name": "a"},
            "recipient_organization": {"name": "b"},
            "source_rir": "ARIN",
            "recipient_rir": "ARIN",
            "ip4nets": {"transfer_set": [
                {"start_address": "8.0.0.128", "end_address": "8.0.1.255"},
            ]},
        }
        parsed = TransferRecord.from_feed_json(raw)
        assert parsed.prefixes == (p("8.0.0.128/25"), p("8.0.1.0/24"))

    def test_malformed_raises_dataseterror(self):
        with pytest.raises(DatasetError):
            TransferRecord.from_feed_json({"transfer_date": "bogus"})


class TestLedger:
    def test_queries(self):
        ledger = TransferLedger()
        make_record(ledger, date="2020-01-02")
        make_record(ledger, date="2020-03-02")
        make_record(ledger, date="2020-02-02", src_rir=RIR.ARIN,
                    dst_rir=RIR.RIPE, prefix="8.0.0.0/24")
        assert len(ledger) == 3
        assert len(ledger.intra_rir(RIR.RIPE)) == 2
        assert len(ledger.inter_rir()) == 1
        assert len(ledger.between(d("2020-01-01"), d("2020-03-01"))) == 2

    def test_records_sorted(self):
        ledger = TransferLedger()
        make_record(ledger, date="2020-03-02")
        make_record(ledger, date="2020-01-02")
        dates = [r.date for r in ledger]
        assert dates == sorted(dates)

    def test_feed_contains_both_endpoints(self):
        ledger = TransferLedger()
        make_record(ledger, src_rir=RIR.ARIN, dst_rir=RIR.RIPE,
                    prefix="8.0.0.0/24")
        arin_feed = ledger.feed_for(RIR.ARIN)
        ripe_feed = ledger.feed_for(RIR.RIPE)
        apnic_feed = ledger.feed_for(RIR.APNIC)
        assert len(arin_feed["transfers"]) == 1
        assert len(ripe_feed["transfers"]) == 1
        assert len(apnic_feed["transfers"]) == 0

    def test_from_feeds_dedupes_inter_rir(self):
        ledger = TransferLedger()
        make_record(ledger, src_rir=RIR.ARIN, dst_rir=RIR.RIPE,
                    prefix="8.0.0.0/24")
        make_record(ledger, date="2020-02-02")
        feeds = [ledger.feed_for(rir) for rir in RIR]
        rebuilt = TransferLedger.from_feeds(feeds)
        assert len(rebuilt) == 2

    def test_write_feeds(self, tmp_path):
        ledger = TransferLedger()
        make_record(ledger)
        paths = ledger.write_feeds(tmp_path)
        assert set(paths) == set(RIR)
        with open(paths[RIR.RIPE], encoding="utf-8") as handle:
            feed = json.load(handle)
        assert feed["rir"] == "RIPE NCC"
        assert len(feed["transfers"]) == 1

    def test_from_feeds_keeps_mna_and_market_twins(self):
        """Regression: the dedup key omitted the published type, so a
        labelled M&A transfer and a market transfer with identical
        endpoints, date, and prefixes collapsed into one record."""
        ledger = TransferLedger()
        make_record(ledger, true_type=TransferType.MARKET)
        make_record(ledger, true_type=TransferType.MERGER_ACQUISITION)
        feeds = [ledger.feed_for(rir) for rir in RIR]
        rebuilt = TransferLedger.from_feeds(feeds)
        assert len(rebuilt) == 2
        types = sorted(r.true_type.value for r in rebuilt)
        assert types == ["market", "merger-acquisition"]

    def test_from_feeds_still_dedupes_inter_rir_mna(self):
        """An inter-RIR M&A transfer appears in both endpoint feeds
        with the same type label, so it still collapses to one."""
        ledger = TransferLedger()
        make_record(ledger, src_rir=RIR.ARIN, dst_rir=RIR.RIPE,
                    true_type=TransferType.MERGER_ACQUISITION,
                    prefix="8.0.0.0/24")
        feeds = [ledger.feed_for(rir) for rir in RIR]
        rebuilt = TransferLedger.from_feeds(feeds)
        assert len(rebuilt) == 1


class TestFromFeedsQuarantine:
    def _feeds_with_bad_record(self):
        ledger = TransferLedger()
        make_record(ledger)
        make_record(ledger, date="2020-02-02", prefix="193.0.1.0/24")
        feed = ledger.feed_for(RIR.RIPE)
        feed["transfers"][0].pop("ip4nets")
        return [feed]

    def test_strict_raises_with_context(self):
        from repro.ingest import ErrorPolicy

        feeds = self._feeds_with_bad_record()
        with pytest.raises(DatasetError, match="record 0"):
            TransferLedger.from_feeds(feeds, policy=ErrorPolicy.STRICT)

    def test_strict_is_default(self):
        with pytest.raises(DatasetError):
            TransferLedger.from_feeds(self._feeds_with_bad_record())

    def test_quarantine_continues_and_reports(self):
        from repro.ingest import ErrorPolicy, QuarantineReport

        feeds = self._feeds_with_bad_record()
        report = QuarantineReport()
        rebuilt = TransferLedger.from_feeds(
            feeds,
            policy=ErrorPolicy.QUARANTINE,
            report=report,
            sources=["ripe_feed.json"],
        )
        assert len(rebuilt) == 1
        assert report.count() == 1
        entry = report.records()[0]
        assert entry.source == "ripe_feed.json"
        assert entry.index == 0
        assert entry.kind == "transfers"

    def test_quarantine_non_list_transfers(self):
        from repro.ingest import ErrorPolicy, QuarantineReport

        report = QuarantineReport()
        rebuilt = TransferLedger.from_feeds(
            [{"rir": "RIPE NCC", "transfers": "oops"}],
            policy=ErrorPolicy.QUARANTINE,
            report=report,
        )
        assert len(rebuilt) == 0
        assert report.count("RIPE NCC") == 1
