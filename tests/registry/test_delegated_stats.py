"""Tests for the NRO delegated-extended statistics format."""

import datetime

import pytest

from repro.errors import DatasetError
from repro.netbase.prefix import IPv4Prefix, parse_address
from repro.registry.delegated_stats import (
    DelegatedRecord,
    DelegationStatus,
    available_addresses,
    parse_file,
    read_file,
    records_from_registry,
    render_file,
    write_file,
)
from repro.registry.registry import RIRRegistry
from repro.registry.rir import RIR

D = datetime.date


def record(start="193.0.0.0", count=65536,
           status=DelegationStatus.ALLOCATED, date=D(1993, 9, 1)):
    return DelegatedRecord(
        rir=RIR.RIPE,
        country="EU",
        start=parse_address(start),
        count=count,
        date=date,
        status=status,
        opaque_id="org-1",
    )


class TestRecord:
    def test_line_round_trip(self):
        original = record()
        parsed = DelegatedRecord.from_line(original.to_line())
        assert parsed == original

    def test_classic_line_parses(self):
        line = "ripencc|EU|ipv4|193.0.0.0|65536|19930901|allocated|x"
        parsed = DelegatedRecord.from_line(line)
        assert parsed.rir is RIR.RIPE
        assert parsed.count == 65536
        assert parsed.status is DelegationStatus.ALLOCATED
        assert parsed.date == D(1993, 9, 1)

    def test_available_line_without_date(self):
        line = "ripencc|ZZ|ipv4|185.0.0.0|1024||available|"
        parsed = DelegatedRecord.from_line(line)
        assert parsed.date is None
        assert parsed.status is DelegationStatus.AVAILABLE

    def test_non_cidr_count(self):
        # Early allocations were not CIDR aligned: count 768 = /24 + /25...
        rec = record(count=768)
        prefixes = rec.prefixes()
        assert sum(p.num_addresses for p in prefixes) == 768
        assert len(prefixes) == 2

    @pytest.mark.parametrize("bad", [
        "ripencc|EU|ipv6|::|32|19930901|allocated",
        "ripencc|EU|ipv4|193.0.0.0|x|19930901|allocated",
        "ripencc|EU|ipv4|193.0.0.0|256|19930901|weird",
        "short|line",
        "mars|EU|ipv4|193.0.0.0|256|19930901|allocated",
    ])
    def test_malformed_lines(self, bad):
        with pytest.raises(DatasetError):
            DelegatedRecord.from_line(bad)

    def test_validation(self):
        with pytest.raises(DatasetError):
            record(count=0)


class TestFile:
    def test_render_parse_round_trip(self):
        records = [
            record(),
            record(start="185.0.0.0", count=1024,
                   status=DelegationStatus.AVAILABLE, date=None),
        ]
        text = render_file(RIR.RIPE, records, file_date=D(2020, 6, 1))
        parsed = parse_file(text)
        assert sorted(parsed, key=lambda r: r.start) == sorted(
            records, key=lambda r: r.start
        )

    def test_header_and_summary_present(self):
        text = render_file(RIR.RIPE, [record()], file_date=D(2020, 6, 1))
        lines = text.splitlines()
        assert lines[0].startswith("2|ripencc|20200601|1|")
        assert lines[1] == "ripencc|*|ipv4|*|1|summary"

    def test_summary_mismatch_detected(self):
        text = (
            "2|ripencc|20200601|2|19830101|20200601|+0000\n"
            "ripencc|*|ipv4|*|2|summary\n"
            "ripencc|EU|ipv4|193.0.0.0|256|19930901|allocated|x\n"
        )
        with pytest.raises(DatasetError):
            parse_file(text)

    def test_comments_skipped(self):
        text = (
            "# a comment\n"
            "ripencc|EU|ipv4|193.0.0.0|256|19930901|allocated|x\n"
        )
        assert len(parse_file(text)) == 1

    def test_file_io(self, tmp_path):
        path = write_file(
            RIR.RIPE, [record()],
            tmp_path / "delegated-ripencc-extended-latest",
            file_date=D(2020, 6, 1),
        )
        assert len(read_file(path)) == 1

    def test_available_addresses(self):
        records = [
            record(),
            record(start="185.0.0.0", count=340_000 // 256 * 256,
                   status=DelegationStatus.AVAILABLE, date=None),
        ]
        assert available_addresses(records) == 340_000 // 256 * 256


class TestFromRegistry:
    def test_registry_state_renders(self):
        registry = RIRRegistry(
            RIR.RIPE, [IPv4Prefix.parse("185.0.0.0/20")]
        )
        registry.open_membership("org-1", D(2019, 1, 1))
        _decision, block = registry.request_allocation(
            "org-1", D(2019, 6, 1)
        )
        registry.open_membership("org-2", D(2019, 1, 1))
        registry.register_external_block(
            "org-2", IPv4Prefix.parse("193.0.0.0/24")
        )
        registry.recover("org-2", IPv4Prefix.parse("193.0.0.0/24"),
                         D(2020, 1, 1))
        records = list(records_from_registry(registry, date=D(2020, 1, 2)))
        by_status = {}
        for rec in records:
            by_status.setdefault(rec.status, []).append(rec)
        allocated = by_status[DelegationStatus.ALLOCATED]
        assert any(rec.start == block.network for rec in allocated)
        assert DelegationStatus.AVAILABLE in by_status
        assert DelegationStatus.RESERVED in by_status  # quarantine
        # The whole state survives a file round trip.
        text = render_file(RIR.RIPE, records, file_date=D(2020, 1, 2))
        assert len(parse_file(text)) == len(records)
