"""Unit tests for waiting lists and quarantine queues."""

import datetime

import pytest

from repro.netbase.prefix import IPv4Prefix
from repro.registry.quarantine import QuarantineQueue
from repro.registry.waitlist import WaitingList


def d(text):
    return datetime.date.fromisoformat(text)


def p(text):
    return IPv4Prefix.parse(text)


class TestWaitingList:
    def test_fifo_order(self):
        wl = WaitingList()
        wl.enqueue("org-a", 24, d("2020-01-01"))
        wl.enqueue("org-b", 24, d("2020-01-02"))
        first = wl.fulfill_next(d("2020-02-01"))
        assert first is not None and first.org_id == "org-a"
        assert len(wl) == 1
        assert wl.next_pending().org_id == "org-b"

    def test_waiting_days(self):
        wl = WaitingList()
        request = wl.enqueue("org-a", 24, d("2020-01-01"))
        assert request.waiting_days(d("2020-05-10")) == 130
        wl.fulfill_next(d("2020-03-01"))
        assert request.waiting_days(d("2020-05-10")) == 60

    def test_max_waiting_days(self):
        wl = WaitingList()
        wl.enqueue("org-a", 24, d("2020-01-01"))
        wl.enqueue("org-b", 24, d("2020-03-01"))
        assert wl.max_waiting_days(d("2020-05-10")) == 130

    def test_fulfill_empty(self):
        assert WaitingList().fulfill_next(d("2020-01-01")) is None

    def test_abolish(self):
        wl = WaitingList()
        wl.enqueue("org-a", 24, d("2019-01-01"))
        dropped = wl.abolish(d("2019-07-02"))
        assert [r.org_id for r in dropped] == ["org-a"]
        assert len(wl) == 0
        with pytest.raises(ValueError):
            wl.enqueue("org-b", 24, d("2019-08-01"))

    def test_bool(self):
        wl = WaitingList()
        assert not wl
        wl.enqueue("org-a", 24, d("2020-01-01"))
        assert wl


class TestQuarantine:
    def test_release_after_holding_period(self):
        q = QuarantineQueue(holding_days=183)
        q.admit(p("10.0.0.0/22"), d("2020-01-01"))
        assert q.release_due(d("2020-06-30")) == []
        assert q.release_due(d("2020-07-02")) == [p("10.0.0.0/22")]
        assert len(q) == 0

    def test_release_is_ordered_and_partial(self):
        q = QuarantineQueue(holding_days=10)
        q.admit(p("10.0.1.0/24"), d("2020-01-05"))
        q.admit(p("10.0.0.0/24"), d("2020-01-01"))
        released = q.release_due(d("2020-01-11"))
        assert released == [p("10.0.0.0/24")]
        assert len(q) == 1

    def test_quarantined_addresses(self):
        q = QuarantineQueue(holding_days=10)
        q.admit(p("10.0.0.0/24"), d("2020-01-01"))
        q.admit(p("10.1.0.0/23"), d("2020-01-01"))
        assert q.quarantined_addresses() == 256 + 512

    def test_zero_holding(self):
        q = QuarantineQueue(holding_days=0)
        q.admit(p("10.0.0.0/24"), d("2020-01-01"))
        assert q.release_due(d("2020-01-01")) == [p("10.0.0.0/24")]

    def test_negative_holding_rejected(self):
        with pytest.raises(ValueError):
            QuarantineQueue(holding_days=-1)

    def test_pending_sorted_by_release(self):
        q = QuarantineQueue(holding_days=30)
        q.admit(p("10.0.1.0/24"), d("2020-02-01"))
        q.admit(p("10.0.0.0/24"), d("2020-01-01"))
        releases = [e.release_on for e in q.pending()]
        assert releases == sorted(releases)
