"""Integration-style tests for :mod:`repro.registry.registry`."""

import datetime

import pytest

from repro.errors import MembershipError, PolicyError, TransferError
from repro.netbase.prefix import IPv4Prefix
from repro.registry.registry import RegistrySystem, RIRRegistry
from repro.registry.rir import RIR
from repro.registry.transfers import TransferType


def d(text):
    return datetime.date.fromisoformat(text)


def p(text):
    return IPv4Prefix.parse(text)


@pytest.fixture
def ripe():
    return RIRRegistry(RIR.RIPE, [p("185.0.0.0/16")])


class TestAllocationLifecycle:
    def test_member_gets_block(self, ripe):
        ripe.open_membership("org-1", d("2020-01-01"))
        decision, block = ripe.request_allocation("org-1", d("2020-01-02"))
        assert decision.approved and block is not None
        assert block.length == 24  # RIPE's 2020 cap
        assert ripe.holder_of(block) == "org-1"

    def test_non_member_rejected(self, ripe):
        with pytest.raises(MembershipError):
            ripe.request_allocation("org-x", d("2020-01-02"))

    def test_second_request_denied_after_last_slash8(self, ripe):
        ripe.open_membership("org-1", d("2020-01-01"))
        ripe.request_allocation("org-1", d("2020-01-02"))
        decision, block = ripe.request_allocation("org-1", d("2020-02-02"))
        assert not decision.approved and block is None

    def test_empty_pool_waitlists(self):
        registry = RIRRegistry(RIR.RIPE, [])
        registry.open_membership("org-1", d("2020-01-01"))
        decision, block = registry.request_allocation("org-1", d("2020-01-02"))
        assert decision.approved and decision.waitlisted and block is None
        assert len(registry.waiting_list) == 1

    def test_waitlist_fulfilled_after_recovery(self):
        registry = RIRRegistry(RIR.RIPE, [])
        registry.open_membership("org-old", d("2019-01-01"))
        registry.open_membership("org-new", d("2020-01-01"))
        # org-old holds legacy-ish space registered externally.
        registry.register_external_block("org-old", p("185.0.0.0/24"))
        # New member queues.
        registry.request_allocation("org-new", d("2020-01-02"))
        # Old member closes; space recovered into quarantine.
        registry.close_membership("org-old", d("2020-01-03"))
        # Before quarantine matures nothing happens.
        assert registry.tick(d("2020-02-01")) == []
        # After ~6 months the block is released and the request served.
        fulfilled = registry.tick(d("2020-07-10"))
        assert len(fulfilled) == 1
        org, block = fulfilled[0]
        assert org == "org-new"
        assert block == p("185.0.0.0/24")
        assert registry.holder_of(block) == "org-new"

    def test_waitlist_skips_departed_member(self):
        registry = RIRRegistry(RIR.RIPE, [])
        registry.open_membership("org-a", d("2020-01-01"))
        registry.open_membership("org-b", d("2020-01-01"))
        registry.request_allocation("org-a", d("2020-01-02"))
        registry.request_allocation("org-b", d("2020-01-03"))
        registry.close_membership("org-a", d("2020-01-04"))
        registry.pool.add(p("185.0.0.0/24"))
        fulfilled = registry.tick(d("2020-01-05"))
        assert [org for org, _ in fulfilled] == ["org-b"]


class TestRecovery:
    def test_recover_requires_holder(self, ripe):
        ripe.open_membership("org-1", d("2020-01-01"))
        _, block = ripe.request_allocation("org-1", d("2020-01-02"))
        ripe.recover("org-1", block, d("2020-02-01"))
        assert ripe.holder_of(block) is None
        assert ripe.quarantine.quarantined_addresses() == block.num_addresses

    def test_recover_wrong_org(self, ripe):
        ripe.open_membership("org-1", d("2020-01-01"))
        ripe.open_membership("org-2", d("2020-01-01"))
        _, block = ripe.request_allocation("org-1", d("2020-01-02"))
        with pytest.raises(MembershipError):
            ripe.recover("org-2", block, d("2020-02-01"))


class TestIntraRIRTransfer:
    def test_transfer_moves_registration(self, ripe):
        ripe.open_membership("seller", d("2020-01-01"))
        ripe.open_membership("buyer", d("2020-01-01"))
        _, block = ripe.request_allocation("seller", d("2020-01-02"))
        record = ripe.transfer(
            d("2020-03-01"), [block], "seller", "buyer",
            price_per_address=22.5,
        )
        assert ripe.holder_of(block) == "buyer"
        assert record.price_per_address == 22.5
        assert not record.is_inter_rir
        assert len(ripe.ledger) == 1

    def test_transfer_requires_holding(self, ripe):
        ripe.open_membership("seller", d("2020-01-01"))
        ripe.open_membership("buyer", d("2020-01-01"))
        with pytest.raises(TransferError):
            ripe.transfer(
                d("2020-03-01"), [p("185.0.0.0/24")], "seller", "buyer"
            )

    def test_transfer_rejects_tiny_blocks(self, ripe):
        ripe.open_membership("seller", d("2020-01-01"))
        ripe.open_membership("buyer", d("2020-01-01"))
        ripe.register_external_block("seller", p("185.0.0.0/25"))
        with pytest.raises(PolicyError):
            ripe.transfer(
                d("2020-03-01"), [p("185.0.0.0/25")], "seller", "buyer"
            )


class TestRegistrySystem:
    @pytest.fixture
    def system(self):
        system = RegistrySystem({
            RIR.ARIN: [p("8.0.0.0/16")],
            RIR.RIPE: [p("185.0.0.0/16")],
        })
        system[RIR.ARIN].open_membership("us-org", d("2014-01-01"))
        system[RIR.RIPE].open_membership("eu-org", d("2014-01-01"))
        return system

    def test_inter_rir_transfer(self, system):
        system[RIR.ARIN].register_external_block("us-org", p("8.0.1.0/24"))
        record = system.inter_rir_transfer(
            d("2020-01-01"), [p("8.0.1.0/24")],
            "us-org", RIR.ARIN, "eu-org", RIR.RIPE,
        )
        assert record.is_inter_rir
        assert system[RIR.ARIN].holder_of(p("8.0.1.0/24")) is None
        assert system[RIR.RIPE].holder_of(p("8.0.1.0/24")) == "eu-org"
        # Region moves with the block.
        assert system.maintaining_rir(p("8.0.1.0/24")) is RIR.RIPE

    def test_inter_rir_restricted_parties(self, system):
        system[RIR.LACNIC].open_membership("latam-org", d("2014-01-01"))
        system[RIR.LACNIC].register_external_block(
            "latam-org", p("200.0.0.0/24")
        )
        with pytest.raises(PolicyError):
            system.inter_rir_transfer(
                d("2020-01-01"), [p("200.0.0.0/24")],
                "latam-org", RIR.LACNIC, "eu-org", RIR.RIPE,
            )

    def test_intra_via_system_rejected(self, system):
        with pytest.raises(TransferError):
            system.inter_rir_transfer(
                d("2020-01-01"), [p("8.0.1.0/24")],
                "us-org", RIR.ARIN, "us-org", RIR.ARIN,
            )

    def test_shared_ledger_sees_both_feeds(self, system):
        system[RIR.ARIN].register_external_block("us-org", p("8.0.1.0/24"))
        system.inter_rir_transfer(
            d("2020-01-01"), [p("8.0.1.0/24")],
            "us-org", RIR.ARIN, "eu-org", RIR.RIPE,
        )
        assert len(system.ledger.feed_for(RIR.ARIN)["transfers"]) == 1
        assert len(system.ledger.feed_for(RIR.RIPE)["transfers"]) == 1

    def test_tick_all(self, system):
        results = system.tick(d("2020-01-01"))
        assert set(results) == set(RIR)
