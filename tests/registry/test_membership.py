"""Unit tests for :mod:`repro.registry.membership`."""

import datetime

import pytest

from repro.errors import MembershipError
from repro.netbase.prefix import IPv4Prefix
from repro.registry.membership import (
    DEFAULT_FEE_SCHEDULES,
    FeeSchedule,
    MembershipRoster,
)
from repro.registry.rir import RIR


def d(text):
    return datetime.date.fromisoformat(text)


def p(text):
    return IPv4Prefix.parse(text)


class TestFeeSchedule:
    def test_step_selection(self):
        fees = FeeSchedule(
            RIR.ARIN, base_fee=0.0,
            size_steps=((2 ** 12, 1000.0), (2 ** 16, 2000.0), (2 ** 32, 8000.0)),
        )
        assert fees.annual_fee(256) == 1000.0
        assert fees.annual_fee(2 ** 12) == 1000.0
        assert fees.annual_fee(2 ** 12 + 1) == 2000.0
        assert fees.annual_fee(2 ** 20) == 8000.0

    def test_base_fee_added(self):
        fees = DEFAULT_FEE_SCHEDULES[RIR.RIPE]
        assert fees.annual_fee(256) == fees.base_fee
        assert fees.annual_fee(2 ** 20) == fees.base_fee  # flat at RIPE

    def test_monthly_fee_per_address(self):
        fees = DEFAULT_FEE_SCHEDULES[RIR.RIPE]
        per_ip = fees.monthly_fee_per_address(256)
        assert per_ip == pytest.approx(1550.0 / 256 / 12)
        # Larger holders pay much less per address.
        assert fees.monthly_fee_per_address(2 ** 16) < per_ip / 100

    def test_zero_holdings(self):
        fees = DEFAULT_FEE_SCHEDULES[RIR.ARIN]
        assert fees.monthly_fee_per_address(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_FEE_SCHEDULES[RIR.ARIN].annual_fee(-1)

    def test_all_rirs_have_schedules(self):
        assert set(DEFAULT_FEE_SCHEDULES) == set(RIR)


class TestRoster:
    def test_open_and_require(self):
        roster = MembershipRoster(RIR.RIPE)
        account = roster.open_account("org-1", d("2020-01-01"))
        assert account.active
        assert roster.require("org-1") is account
        assert "org-1" in roster
        assert len(roster) == 1

    def test_double_join_rejected(self):
        roster = MembershipRoster(RIR.RIPE)
        roster.open_account("org-1", d("2020-01-01"))
        with pytest.raises(MembershipError):
            roster.open_account("org-1", d("2020-02-01"))

    def test_rejoin_after_close(self):
        roster = MembershipRoster(RIR.RIPE)
        roster.open_account("org-1", d("2020-01-01"))
        roster.close_account("org-1", d("2020-02-01"))
        assert "org-1" not in roster
        account = roster.open_account("org-1", d("2020-03-01"))
        assert account.active

    def test_require_unknown(self):
        roster = MembershipRoster(RIR.RIPE)
        with pytest.raises(MembershipError):
            roster.require("nobody")
        assert roster.get("nobody") is None

    def test_holdings_accounting(self):
        roster = MembershipRoster(RIR.RIPE)
        account = roster.open_account("org-1", d("2020-01-01"))
        account.add_holding(p("193.0.0.0/24"))
        account.add_holding(p("193.0.2.0/23"))
        assert account.held_addresses() == 256 + 512
        account.remove_holding(p("193.0.0.0/24"))
        assert account.held_addresses() == 512
        with pytest.raises(MembershipError):
            account.remove_holding(p("193.0.0.0/24"))

    def test_annual_fee_uses_holdings(self):
        roster = MembershipRoster(RIR.ARIN)
        account = roster.open_account("org-1", d("2020-01-01"))
        small = roster.annual_fee("org-1")
        account.add_holding(p("8.0.0.0/8"))
        assert roster.annual_fee("org-1") > small
