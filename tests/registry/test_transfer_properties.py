"""Property-based tests for transfer-record serialization."""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netbase.prefix import IPv4Prefix
from repro.registry.rir import RIR, profile_for
from repro.registry.transfers import (
    TransferLedger,
    TransferRecord,
    TransferType,
)

dates = st.dates(
    min_value=datetime.date(2010, 1, 1),
    max_value=datetime.date(2020, 12, 31),
)
lengths = st.integers(min_value=16, max_value=24)
rirs = st.sampled_from(list(RIR))
types = st.sampled_from(list(TransferType))


@st.composite
def prefixes(draw):
    length = draw(lengths)
    network = draw(st.integers(min_value=0, max_value=(1 << 32) - 1))
    return IPv4Prefix(network, length, strict=False)


@st.composite
def records(draw):
    source_rir = draw(rirs)
    inter = draw(st.booleans())
    recipient_rir = draw(rirs) if inter else source_rir
    block_count = draw(st.integers(min_value=1, max_value=4))
    blocks = tuple(
        sorted({draw(prefixes()) for _ in range(block_count)})
    )
    return TransferRecord(
        transfer_id=f"T{draw(st.integers(min_value=1, max_value=10**6))}",
        date=draw(dates),
        prefixes=blocks,
        source_org=draw(st.text(
            alphabet="abcdefghij", min_size=1, max_size=12
        )),
        recipient_org=draw(st.text(
            alphabet="klmnopqrst", min_size=1, max_size=12
        )),
        source_rir=source_rir,
        recipient_rir=recipient_rir,
        true_type=draw(types),
    )


class TestFeedRoundTrip:
    @settings(max_examples=80)
    @given(records())
    def test_json_round_trip_preserves_observables(self, record):
        parsed = TransferRecord.from_feed_json(record.to_feed_json())
        assert parsed.date == record.date
        assert parsed.source_org == record.source_org
        assert parsed.recipient_org == record.recipient_org
        assert parsed.source_rir is record.source_rir
        assert parsed.recipient_rir is record.recipient_rir
        # CIDR sets survive (ranges may re-split, addresses identical).
        assert {p for p in parsed.prefixes} == {p for p in record.prefixes}

    @settings(max_examples=80)
    @given(records())
    def test_label_visibility_matches_rir_policy(self, record):
        parsed = TransferRecord.from_feed_json(record.to_feed_json())
        if profile_for(record.source_rir).labels_mna_transfers:
            assert parsed.true_type is record.true_type
        else:
            assert parsed.true_type is TransferType.MARKET

    @settings(max_examples=40)
    @given(st.lists(records(), max_size=15))
    def test_ledger_feed_reconstruction(self, record_list):
        ledger = TransferLedger()
        ledger.extend(record_list)
        feeds = [ledger.feed_for(rir) for rir in RIR]
        rebuilt = TransferLedger.from_feeds(feeds)
        # Deduplication: every distinct (date, prefixes, orgs, rirs)
        # tuple appears exactly once.
        expected_keys = {
            (r.date, r.prefixes, r.source_org, r.recipient_org,
             r.source_rir, r.recipient_rir)
            for r in record_list
        }
        rebuilt_keys = {
            (r.date, r.prefixes, r.source_org, r.recipient_org,
             r.source_rir, r.recipient_rir)
            for r in rebuilt.records()
        }
        assert rebuilt_keys == expected_keys
