"""Property-based tests for the free pool."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PoolExhaustedError
from repro.netbase.prefix import IPv4Prefix
from repro.registry.pool import FreePool

INITIAL = IPv4Prefix.parse("10.0.0.0/12")

#: Sequences of allocation requests (prefix lengths 13..26).
request_lists = st.lists(st.integers(min_value=13, max_value=26),
                         max_size=60)


class TestPoolInvariants:
    @settings(max_examples=60)
    @given(request_lists)
    def test_accounting_is_exact(self, lengths):
        pool = FreePool([INITIAL])
        outstanding = []
        for length in lengths:
            try:
                outstanding.append(pool.allocate(length))
            except PoolExhaustedError:
                pass
        allocated = sum(b.num_addresses for b in outstanding)
        assert pool.available_addresses() == (
            INITIAL.num_addresses - allocated
        )

    @settings(max_examples=60)
    @given(request_lists)
    def test_allocations_are_disjoint_and_in_bounds(self, lengths):
        pool = FreePool([INITIAL])
        outstanding = []
        for length in lengths:
            try:
                outstanding.append(pool.allocate(length))
            except PoolExhaustedError:
                pass
        ordered = sorted(outstanding)
        for block in ordered:
            assert INITIAL.covers(block)
        for left, right in zip(ordered, ordered[1:]):
            assert not left.overlaps(right)

    @settings(max_examples=60)
    @given(request_lists)
    def test_full_return_restores_pool(self, lengths):
        pool = FreePool([INITIAL])
        outstanding = []
        for length in lengths:
            try:
                outstanding.append(pool.allocate(length))
            except PoolExhaustedError:
                pass
        for block in outstanding:
            pool.add(block)
        assert list(pool.blocks()) == [INITIAL]

    @settings(max_examples=40)
    @given(request_lists, st.randoms(use_true_random=False))
    def test_interleaved_alloc_free(self, lengths, rng):
        pool = FreePool([INITIAL])
        outstanding = []
        for length in lengths:
            if outstanding and rng.random() < 0.4:
                pool.add(outstanding.pop(rng.randrange(len(outstanding))))
            try:
                outstanding.append(pool.allocate(length))
            except PoolExhaustedError:
                pass
            allocated = sum(b.num_addresses for b in outstanding)
            assert pool.available_addresses() == (
                INITIAL.num_addresses - allocated
            )
