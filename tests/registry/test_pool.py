"""Unit tests for :mod:`repro.registry.pool`."""

import pytest

from repro.errors import PoolExhaustedError
from repro.netbase.prefix import IPv4Prefix
from repro.registry.pool import FreePool


def p(text):
    return IPv4Prefix.parse(text)


class TestAllocate:
    def test_exact_fit(self):
        pool = FreePool([p("10.0.0.0/24")])
        assert pool.allocate(24) == p("10.0.0.0/24")
        assert not pool

    def test_split_larger_block(self):
        pool = FreePool([p("10.0.0.0/22")])
        block = pool.allocate(24)
        assert block == p("10.0.0.0/24")
        assert pool.available_addresses() == 1024 - 256

    def test_deterministic_lowest_address_first(self):
        pool = FreePool([p("11.0.0.0/24"), p("10.0.0.0/24")])
        assert pool.allocate(24) == p("10.0.0.0/24")
        assert pool.allocate(24) == p("11.0.0.0/24")

    def test_best_fit_preferred(self):
        pool = FreePool([p("10.0.0.0/8"), p("172.16.0.0/24")])
        # /24 request should consume the /24, not split the /8.
        assert pool.allocate(24) == p("172.16.0.0/24")

    def test_exhausted(self):
        pool = FreePool([p("10.0.0.0/24")])
        with pytest.raises(PoolExhaustedError):
            pool.allocate(23)

    def test_empty_pool(self):
        with pytest.raises(PoolExhaustedError):
            FreePool().allocate(24)

    def test_can_allocate(self):
        pool = FreePool([p("10.0.0.0/22")])
        assert pool.can_allocate(24)
        assert pool.can_allocate(22)
        assert not pool.can_allocate(21)

    def test_drain_completely(self):
        pool = FreePool([p("10.0.0.0/22")])
        blocks = [pool.allocate(24) for _ in range(4)]
        assert sorted(blocks) == list(p("10.0.0.0/22").subnets(24))
        assert pool.available_addresses() == 0


class TestAddAndMerge:
    def test_buddy_merge_on_return(self):
        pool = FreePool([p("10.0.0.0/23")])
        a = pool.allocate(24)
        b = pool.allocate(24)
        pool.add(a)
        pool.add(b)
        assert list(pool.blocks()) == [p("10.0.0.0/23")]

    def test_merge_cascades(self):
        pool = FreePool()
        for sub in p("10.0.0.0/22").subnets(24):
            pool.add(sub)
        assert list(pool.blocks()) == [p("10.0.0.0/22")]

    def test_non_buddies_stay_separate(self):
        pool = FreePool()
        pool.add(p("10.0.1.0/24"))
        pool.add(p("10.0.2.0/24"))
        assert len(pool) == 2

    def test_duplicate_add_rejected(self):
        pool = FreePool([p("10.0.0.0/24")])
        with pytest.raises(ValueError):
            pool.add(p("10.0.0.0/24"))

    def test_contains(self):
        pool = FreePool([p("10.0.0.0/16")])
        assert p("10.0.1.0/24") in pool
        assert p("10.1.0.0/24") not in pool


class TestAllocateSpecific:
    def test_exact(self):
        pool = FreePool([p("10.0.0.0/24")])
        assert pool.allocate_specific(p("10.0.0.0/24")) == p("10.0.0.0/24")

    def test_carves_from_larger(self):
        pool = FreePool([p("10.0.0.0/16")])
        got = pool.allocate_specific(p("10.0.128.0/24"))
        assert got == p("10.0.128.0/24")
        assert pool.available_addresses() == 2 ** 16 - 256
        assert p("10.0.128.0/24") not in pool
        assert p("10.0.129.0/24") in pool

    def test_remainder_is_aggregated(self):
        pool = FreePool([p("10.0.0.0/16")])
        pool.allocate_specific(p("10.0.0.0/24"))
        pool.add(p("10.0.0.0/24"))
        assert list(pool.blocks()) == [p("10.0.0.0/16")]

    def test_not_free(self):
        pool = FreePool([p("10.0.0.0/24")])
        with pytest.raises(PoolExhaustedError):
            pool.allocate_specific(p("10.1.0.0/24"))
        pool.allocate_specific(p("10.0.0.0/25"))
        with pytest.raises(PoolExhaustedError):
            pool.allocate_specific(p("10.0.0.0/25"))


class TestAccounting:
    def test_available_addresses(self):
        pool = FreePool([p("10.0.0.0/24"), p("10.0.2.0/23")])
        assert pool.available_addresses() == 256 + 512

    def test_aggregated(self):
        pool = FreePool()
        pool.add(p("10.0.0.0/25"))
        pool.add(p("10.0.1.0/24"))
        # /25 and /24 are not buddies; aggregated() reports minimal form.
        assert pool.aggregated() == [p("10.0.0.0/25"), p("10.0.1.0/24")]

    def test_len_and_bool(self):
        pool = FreePool()
        assert len(pool) == 0 and not pool
        pool.add(p("10.0.0.0/24"))
        assert len(pool) == 1 and pool
