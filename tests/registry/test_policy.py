"""Unit tests for :mod:`repro.registry.policy` and the RIR profiles."""

import datetime

import pytest

from repro.errors import PolicyError
from repro.registry.policy import (
    APNIC_WAITLIST_ABOLISHED,
    NORMAL_PHASE_MAX_LENGTH,
    AllocationPolicy,
    PolicyPhase,
)
from repro.registry.rir import (
    INTER_RIR_PARTIES,
    RIR,
    exhaustion_table,
    profile_for,
)


def d(text):
    return datetime.date.fromisoformat(text)


class TestProfiles:
    def test_table1_dates(self):
        table = exhaustion_table()
        assert table[RIR.APNIC][0] == d("2011-04-15")
        assert table[RIR.RIPE][0] == d("2012-09-14")
        assert table[RIR.ARIN][0] == d("2014-04-23")
        assert table[RIR.LACNIC][0] == d("2017-02-15")
        assert table[RIR.AFRINIC][0] == d("2017-03-31")

    def test_depletion_dates(self):
        table = exhaustion_table()
        assert table[RIR.ARIN][1] == d("2015-09-24")
        assert table[RIR.RIPE][1] == d("2019-11-25")
        assert table[RIR.LACNIC][1] == d("2020-08-19")
        assert table[RIR.APNIC][1] is None
        assert table[RIR.AFRINIC][1] is None

    def test_max_allocation_lengths(self):
        assert profile_for(RIR.AFRINIC).max_allocation_length == 22
        assert profile_for(RIR.ARIN).max_allocation_length == 22
        assert profile_for(RIR.LACNIC).max_allocation_length == 22
        assert profile_for(RIR.APNIC).max_allocation_length == 23
        assert profile_for(RIR.RIPE).max_allocation_length == 24

    def test_mna_labelling(self):
        labelled = {r for r in RIR if profile_for(r).labels_mna_transfers}
        assert labelled == {RIR.AFRINIC, RIR.ARIN, RIR.RIPE}

    def test_inter_rir_parties(self):
        assert INTER_RIR_PARTIES == {RIR.APNIC, RIR.ARIN, RIR.RIPE}


class TestPhases:
    def test_ripe_phases(self):
        policy = AllocationPolicy.for_rir(RIR.RIPE)
        assert policy.phase_on(d("2010-01-01")) is PolicyPhase.NORMAL
        assert policy.phase_on(d("2012-09-14")) is PolicyPhase.SOFT_LANDING
        assert policy.phase_on(d("2019-11-24")) is PolicyPhase.SOFT_LANDING
        assert policy.phase_on(d("2019-11-25")) is PolicyPhase.EXHAUSTED
        assert policy.phase_on(d("2020-06-01")) is PolicyPhase.EXHAUSTED

    def test_apnic_never_exhausted_in_window(self):
        policy = AllocationPolicy.for_rir(RIR.APNIC)
        assert policy.phase_on(d("2020-06-01")) is PolicyPhase.SOFT_LANDING

    def test_max_allocation_by_phase(self):
        policy = AllocationPolicy.for_rir(RIR.RIPE)
        assert (
            policy.max_allocation_length(d("2010-01-01"))
            == NORMAL_PHASE_MAX_LENGTH
        )
        assert policy.max_allocation_length(d("2020-01-01")) == 24


class TestWaitingListActivation:
    def test_apnic_abolition(self):
        policy = AllocationPolicy.for_rir(RIR.APNIC)
        before = APNIC_WAITLIST_ABOLISHED - datetime.timedelta(days=1)
        assert policy.waiting_list_active(before)
        assert not policy.waiting_list_active(APNIC_WAITLIST_ABOLISHED)

    def test_other_rirs_keep_lists(self):
        for rir in (RIR.ARIN, RIR.LACNIC, RIR.RIPE):
            policy = AllocationPolicy.for_rir(rir)
            assert policy.waiting_list_active(d("2020-06-01"))

    def test_no_list_during_normal_phase(self):
        policy = AllocationPolicy.for_rir(RIR.RIPE)
        assert not policy.waiting_list_active(d("2010-01-01"))


class TestDecisions:
    def test_normal_phase_grants_requested(self):
        policy = AllocationPolicy.for_rir(RIR.RIPE)
        decision = policy.evaluate_request(d("2010-01-01"), 16)
        assert decision.approved and not decision.waitlisted
        assert decision.granted_length == 16

    def test_soft_landing_caps_size(self):
        policy = AllocationPolicy.for_rir(RIR.RIPE)
        decision = policy.evaluate_request(d("2015-01-01"), 16)
        assert decision.approved and not decision.waitlisted
        assert decision.granted_length == 24  # capped at RIPE's /24

    def test_one_block_per_member_after_last_slash8(self):
        policy = AllocationPolicy.for_rir(RIR.RIPE)
        decision = policy.evaluate_request(
            d("2015-01-01"), 24, existing_allocations=1
        )
        assert not decision.approved

    def test_exhausted_goes_to_waitlist(self):
        policy = AllocationPolicy.for_rir(RIR.RIPE)
        decision = policy.evaluate_request(
            d("2020-01-01"), 24, pool_can_satisfy=False
        )
        assert decision.approved and decision.waitlisted

    def test_soft_landing_empty_pool_waitlists(self):
        policy = AllocationPolicy.for_rir(RIR.ARIN)
        decision = policy.evaluate_request(
            d("2015-01-01"), 22, pool_can_satisfy=False
        )
        assert decision.approved and decision.waitlisted

    def test_apnic_after_abolition_denies(self):
        policy = AllocationPolicy.for_rir(RIR.APNIC)
        decision = policy.evaluate_request(
            d("2020-01-01"), 23, pool_can_satisfy=False
        )
        assert not decision.approved and not decision.waitlisted

    def test_invalid_length(self):
        policy = AllocationPolicy.for_rir(RIR.RIPE)
        with pytest.raises(PolicyError):
            policy.evaluate_request(d("2020-01-01"), 33)

    def test_transfer_block_minimum(self):
        policy = AllocationPolicy.for_rir(RIR.RIPE)
        policy.validate_transfer_block(d("2020-01-01"), 24)
        with pytest.raises(PolicyError):
            policy.validate_transfer_block(d("2020-01-01"), 25)
