"""Tests for the buy-and-lease-back model."""

import math

import pytest

from repro.errors import MarketError
from repro.market.leaseback import LeaseBackDeal


def deal(**overrides):
    defaults = dict(
        sold_addresses=4096,
        sale_price_per_ip=22.5,
        leased_back_addresses=1024,
        lease_price_per_ip_month=0.50,
        repurchase_price_per_ip=25.0,
    )
    defaults.update(overrides)
    return LeaseBackDeal(**defaults)


class TestCashFlow:
    def test_cash_now(self):
        assert deal().cash_now == pytest.approx(4096 * 22.5)

    def test_monthly_cost(self):
        assert deal().monthly_cost == pytest.approx(512.0)

    def test_net_position(self):
        d = deal()
        assert d.net_position(0) == d.cash_now
        assert d.net_position(12) == pytest.approx(d.cash_now - 12 * 512.0)
        with pytest.raises(MarketError):
            d.net_position(-1)

    def test_months_until_negative(self):
        d = deal()
        months = d.months_until_negative()
        assert months == pytest.approx(d.cash_now / d.monthly_cost)
        assert d.net_position(int(months) + 1) < 0

    def test_plain_sale_never_negative(self):
        d = deal(leased_back_addresses=0, repurchase_price_per_ip=None)
        assert d.monthly_cost == 0
        assert d.months_until_negative() == math.inf


class TestDealQuality:
    def test_effective_sale_fraction(self):
        assert deal().effective_sale_fraction == pytest.approx(0.75)
        assert deal(
            leased_back_addresses=4096
        ).effective_sale_fraction == 0.0

    def test_repurchase_option(self):
        d = deal()
        assert d.repurchase_cost(256) == pytest.approx(256 * 25.0)
        no_option = deal(repurchase_price_per_ip=None)
        with pytest.raises(MarketError):
            no_option.repurchase_cost(256)
        with pytest.raises(MarketError):
            d.repurchase_cost(-1)

    def test_rationality_check(self):
        d = deal(lease_price_per_ip_month=0.50)
        assert d.is_rational_versus_plain_lease(0.60)
        assert not d.is_rational_versus_plain_lease(0.40)


class TestValidation:
    def test_invalid_deals(self):
        with pytest.raises(MarketError):
            deal(sold_addresses=0)
        with pytest.raises(MarketError):
            deal(leased_back_addresses=5000)
        with pytest.raises(MarketError):
            deal(sale_price_per_ip=0)
        with pytest.raises(MarketError):
            deal(lease_price_per_ip_month=-1)
        with pytest.raises(MarketError):
            deal(repurchase_price_per_ip=0)
