"""Unit tests for leasing providers and the amortization model."""

import datetime
import math

import pytest

from repro.errors import MarketError
from repro.market.amortization import (
    AmortizationScenario,
    amortization_grid,
    amortization_months,
    amortization_years,
    summarize_grid,
)
from repro.market.leasing import (
    FIRST_SCRAPE,
    SECOND_WAVE,
    LeaseAgreement,
    LeasingProvider,
    ScrapeLog,
    default_leasing_providers,
)
from repro.netbase.prefix import IPv4Prefix
from repro.registry.rir import RIR

D = datetime.date


class TestLeasingProvider:
    def test_price_timeline_steps(self):
        provider = LeasingProvider(
            name="X",
            listed_since=D(2019, 10, 26),
            price_timeline=((D(2019, 10, 26), 1.0), (D(2020, 1, 1), 2.0)),
        )
        assert provider.advertised_price(D(2019, 12, 1)) == 1.0
        assert provider.advertised_price(D(2020, 1, 1)) == 2.0
        assert provider.advertised_price(D(2019, 1, 1)) is None

    def test_monthly_cost(self):
        provider = LeasingProvider(
            name="X",
            listed_since=D(2019, 10, 26),
            price_timeline=((D(2019, 10, 26), 0.50),),
            discount_for_commitment=0.10,
        )
        assert provider.monthly_cost(24, D(2020, 1, 1)) == 128.0
        assert provider.monthly_cost(24, D(2020, 1, 1), 12) == \
            pytest.approx(128.0 * 0.9)
        with pytest.raises(MarketError):
            provider.monthly_cost(24, D(2019, 1, 1))
        with pytest.raises(MarketError):
            provider.monthly_cost(24, D(2020, 1, 1), 0)

    def test_validation(self):
        with pytest.raises(MarketError):
            LeasingProvider("X", D(2020, 1, 1), ())
        with pytest.raises(MarketError):
            LeasingProvider(
                "X", D(2020, 1, 1),
                ((D(2020, 2, 1), 1.0), (D(2020, 1, 1), 2.0)),
            )
        with pytest.raises(MarketError):
            LeasingProvider("X", D(2020, 1, 1), ((D(2020, 1, 1), 0.0),))


class TestDefaultProviders:
    @pytest.fixture
    def providers(self):
        return {p.name: p for p in default_leasing_providers()}

    def test_counts(self, providers):
        assert len(providers) == 21
        initial = [p for p in providers.values()
                   if p.listed_since == FIRST_SCRAPE]
        added = [p for p in providers.values()
                 if p.listed_since == SECOND_WAVE]
        assert len(initial) == 12 and len(added) == 9

    def test_paper_price_range(self, providers):
        prices = [
            p.advertised_price(D(2020, 6, 1))
            for p in providers.values()
        ]
        assert min(prices) == pytest.approx(0.30)
        assert max(prices) == pytest.approx(2.33)

    def test_heficed_reduction(self, providers):
        heficed = providers["Heficed"]
        assert heficed.advertised_price(D(2019, 11, 1)) == 0.65
        assert heficed.advertised_price(D(2020, 6, 1)) == 0.40

    def test_ipv4mall_increase(self, providers):
        mall = providers["IPv4Mall"]
        assert mall.advertised_price(D(2019, 11, 1)) == 0.35
        assert mall.advertised_price(D(2020, 6, 1)) == 0.56

    def test_ip_as_january_spike(self, providers):
        ip_as = providers["IP-AS"]
        assert ip_as.advertised_price(D(2019, 11, 1)) == 1.17
        assert ip_as.advertised_price(D(2020, 1, 15)) == 3.90
        assert ip_as.advertised_price(D(2020, 6, 1)) == 2.33

    def test_spike_is_factor_ten_above_floor(self, providers):
        prices_jan = [
            p.advertised_price(D(2020, 1, 15))
            for p in providers.values()
            if p.visible_on(D(2020, 1, 15))
        ]
        assert max(prices_jan) / min(prices_jan) > 10

    def test_both_market_models_present(self, providers):
        bundled = [p for p in providers.values() if p.bundles_hosting]
        pure = [p for p in providers.values() if not p.bundles_hosting]
        assert bundled and pure


class TestScrapeLog:
    def test_scrape_respects_visibility(self):
        log = ScrapeLog(default_leasing_providers())
        before = log.scrape(D(2019, 11, 1))
        after = log.scrape(D(2020, 6, 1))
        assert len(before) == 12
        assert len(after) == 21

    def test_series(self):
        log = ScrapeLog(default_leasing_providers())
        records = log.scrape_series(D(2019, 10, 26), D(2019, 11, 9), 7)
        assert len(records) == 36  # 3 scrapes x 12 providers
        with pytest.raises(MarketError):
            log.scrape_series(D(2020, 1, 1), D(2020, 2, 1), 0)

    def test_needs_providers(self):
        with pytest.raises(MarketError):
            ScrapeLog([])


class TestLeaseAgreement:
    def test_active_window(self):
        lease = LeaseAgreement(
            provider="X",
            customer_org="org-1",
            prefix=IPv4Prefix.parse("193.0.0.0/24"),
            start=D(2020, 1, 1),
            end=D(2020, 4, 1),
        )
        assert not lease.active_on(D(2019, 12, 31))
        assert lease.active_on(D(2020, 1, 1))
        assert lease.active_on(D(2020, 3, 31))
        assert not lease.active_on(D(2020, 4, 1))

    def test_open_ended(self):
        lease = LeaseAgreement(
            provider="X",
            customer_org="org-1",
            prefix=IPv4Prefix.parse("193.0.0.0/24"),
            start=D(2020, 1, 1),
        )
        assert lease.active_on(D(2030, 1, 1))


class TestAmortization:
    def test_basic_formula(self):
        assert amortization_months(22.5, 2.25) == pytest.approx(10.0)
        assert amortization_years(22.5, 2.25) == pytest.approx(10 / 12)

    def test_maintenance_extends(self):
        without = amortization_months(22.5, 0.56)
        with_fee = amortization_months(22.5, 0.56, 0.50)
        assert with_fee > without * 5

    def test_never_amortizes(self):
        assert amortization_months(22.5, 0.30, 0.30) == math.inf
        assert amortization_months(22.5, 0.30, 0.50) == math.inf

    def test_validation(self):
        with pytest.raises(MarketError):
            amortization_months(0, 1.0)
        with pytest.raises(MarketError):
            amortization_months(22.5, 0)
        with pytest.raises(MarketError):
            amortization_months(22.5, 1.0, -0.1)

    def test_paper_headline_range(self):
        """§6: amortization spans <1 year to multiple tens of years."""
        lease_prices = [0.30, 0.56, 0.90, 2.33]
        grid = amortization_grid(22.5, lease_prices)
        summary = summarize_grid(grid)
        assert summary["min_months"] < 12          # less than a year
        assert summary["max_months"] > 240         # multiple tens of years
        # Broker-reported customer average: two to three years.
        assert 12 < summary["median_months"] < 60

    def test_scenario_maintenance_depends_on_size(self):
        small = AmortizationScenario(RIR.RIPE, 24, 22.5, 0.56)
        large = AmortizationScenario(RIR.RIPE, 16, 22.5, 0.56)
        assert small.maintenance_per_ip_month() > \
            large.maintenance_per_ip_month()
        assert small.months() > large.months()

    def test_summarize_requires_finite(self):
        scenarios = [AmortizationScenario(RIR.RIPE, 24, 22.5, 0.30)]
        if math.isinf(scenarios[0].months()):
            with pytest.raises(MarketError):
                summarize_grid(scenarios)
