"""Unit tests for the price model."""

import datetime
import random
import statistics

import pytest

from repro.errors import MarketError
from repro.market.pricing import (
    CONSOLIDATION_START,
    PriceModel,
    PriceModelConfig,
    size_premium,
)
from repro.registry.rir import RIR

D = datetime.date


class TestSizePremium:
    def test_small_blocks_more_expensive(self):
        assert size_premium(24) > size_premium(23) > size_premium(20)

    def test_large_blocks_rise_again(self):
        assert size_premium(12) > size_premium(16)
        assert size_premium(8) > size_premium(12)

    def test_untransferable(self):
        with pytest.raises(MarketError):
            size_premium(25)


class TestTrend:
    @pytest.fixture
    def model(self):
        return PriceModel()

    def test_doubling_since_2016(self, model):
        start = model.trend_price(D(2016, 1, 1))
        now = model.trend_price(D(2020, 6, 1))
        assert now / start == pytest.approx(2.05, rel=0.05)

    def test_2020_level_near_22_50(self, model):
        assert model.trend_price(D(2020, 3, 1)) == pytest.approx(22.5, rel=0.03)

    def test_monotone_rise_before_consolidation(self, model):
        dates = [D(2016, 6, 1), D(2017, 6, 1), D(2018, 6, 1), D(2019, 2, 1)]
        prices = [model.trend_price(d) for d in dates]
        assert prices == sorted(prices)

    def test_flat_during_consolidation(self, model):
        early = model.trend_price(CONSOLIDATION_START)
        late = model.trend_price(D(2020, 6, 1))
        assert abs(late - early) / early < 0.02  # barely changes

    def test_before_start_clamps(self, model):
        assert model.trend_price(D(2015, 1, 1)) == model.config.start_price

    def test_reference_price(self, model):
        assert model.reference_price(D(2020, 1, 1)) == pytest.approx(
            model.trend_price(D(2020, 1, 1)), abs=0.01
        )

    def test_config_validation(self):
        with pytest.raises(MarketError):
            PriceModel(PriceModelConfig(start_price=-1))
        with pytest.raises(MarketError):
            PriceModel(
                PriceModelConfig(
                    start_date=D(2020, 1, 1),
                    consolidation_start=D(2019, 1, 1),
                )
            )


class TestSampling:
    @pytest.fixture
    def model(self):
        return PriceModel()

    def test_no_regional_effect(self, model):
        date = D(2020, 1, 1)
        prices = {
            region: model.expected_price(date, 24, region)
            for region in (RIR.APNIC, RIR.ARIN, RIR.RIPE)
        }
        assert len(set(prices.values())) == 1

    def test_sample_mean_tracks_expectation(self, model):
        rng = random.Random(1)
        date = D(2020, 1, 1)
        samples = [model.sample_price(rng, date, 24) for _ in range(3000)]
        assert statistics.mean(samples) == pytest.approx(
            model.expected_price(date, 24), rel=0.02
        )

    def test_variance_collapses_after_consolidation(self, model):
        rng = random.Random(2)
        before = [
            model.sample_price(rng, D(2017, 6, 1), 24) for _ in range(2000)
        ]
        after = [
            model.sample_price(rng, D(2020, 1, 1), 24) for _ in range(2000)
        ]
        cv_before = statistics.stdev(before) / statistics.mean(before)
        cv_after = statistics.stdev(after) / statistics.mean(after)
        assert cv_after < cv_before / 2

    def test_samples_positive_and_rounded(self, model):
        rng = random.Random(3)
        for _ in range(100):
            price = model.sample_price(rng, D(2019, 1, 1), 16)
            assert price > 0
            assert round(price, 2) == price

    def test_noise_sigma_switch(self, model):
        assert model.noise_sigma(D(2018, 1, 1)) == \
            model.config.noise_sigma_before
        assert model.noise_sigma(D(2020, 1, 1)) == \
            model.config.noise_sigma_after
