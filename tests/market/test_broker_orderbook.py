"""Unit tests for brokers and the order book."""

import datetime

import pytest

from repro.errors import MarketError, OrderError
from repro.market.broker import Broker, CommissionSide, default_brokers
from repro.market.orderbook import OrderBook
from repro.netbase.prefix import IPv4Prefix

D = datetime.date


def p(text):
    return IPv4Prefix.parse(text)


class TestBroker:
    def test_commission_sides(self):
        seller_side = Broker("A", 0.10, CommissionSide.SELLER)
        assert seller_side.commission_amounts(1000.0) == (100.0, 0.0)
        buyer_side = Broker("B", 0.10, CommissionSide.BUYER)
        assert buyer_side.commission_amounts(1000.0) == (0.0, 100.0)
        split = Broker("C", 0.10, CommissionSide.SPLIT)
        assert split.commission_amounts(1000.0) == (50.0, 50.0)

    def test_net_gross(self):
        broker = Broker("A", 0.08, CommissionSide.SELLER)
        assert broker.seller_net(1000.0) == pytest.approx(920.0)
        assert broker.buyer_gross(1000.0) == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(MarketError):
            Broker("", 0.05)
        with pytest.raises(MarketError):
            Broker("A", 0.5)
        with pytest.raises(MarketError):
            Broker("A", 0.05).commission_amounts(-1)

    def test_default_brokers(self):
        brokers = default_brokers()
        assert len(brokers) == 4
        public = [b for b in brokers if b.publishes_prices]
        assert [b.name for b in public] == ["IPv4.Global"]
        assert sum(b.shares_private_data for b in brokers) == 3
        assert all(0.05 <= b.commission_rate <= 0.10 for b in brokers)


class TestOrderBook:
    @pytest.fixture
    def book(self):
        return OrderBook()

    def test_match_exact_size_cheapest_ask(self, book):
        book.place_sell("s1", p("193.0.0.0/24"), 25.0, D(2020, 1, 1))
        book.place_sell("s2", p("193.0.1.0/24"), 22.0, D(2020, 1, 2))
        book.place_buy("b1", 24, 24.0, D(2020, 1, 3))
        matches = book.match(D(2020, 1, 4))
        assert len(matches) == 1
        assert matches[0].sell.org_id == "s2"
        assert matches[0].price_per_address == 22.0
        # s1's ask exceeded the bid and stays open.
        assert len(book.open_sells()) == 1
        assert not book.open_buys()

    def test_no_match_on_size_mismatch(self, book):
        book.place_sell("s1", p("193.0.0.0/23"), 20.0, D(2020, 1, 1))
        book.place_buy("b1", 24, 30.0, D(2020, 1, 2))
        assert book.match(D(2020, 1, 3)) == []

    def test_fifo_among_buyers(self, book):
        book.place_sell("s1", p("193.0.0.0/24"), 20.0, D(2020, 1, 1))
        book.place_buy("late", 24, 30.0, D(2020, 1, 3))
        book.place_buy("early", 24, 30.0, D(2020, 1, 2))
        matches = book.match(D(2020, 1, 4))
        assert [m.buy.org_id for m in matches] == ["early"]

    def test_withdraw(self, book):
        order = book.place_sell("s1", p("193.0.0.0/24"), 20.0, D(2020, 1, 1))
        book.withdraw_sell(order)
        book.place_buy("b1", 24, 30.0, D(2020, 1, 2))
        assert book.match(D(2020, 1, 3)) == []

    def test_best_ask(self, book):
        assert book.best_ask(24) is None
        book.place_sell("s1", p("193.0.0.0/24"), 25.0, D(2020, 1, 1))
        book.place_sell("s2", p("193.0.1.0/24"), 22.0, D(2020, 1, 1))
        assert book.best_ask(24) == 22.0

    def test_anchor_asks(self, book):
        book.place_sell("s1", p("193.0.0.0/24"), 40.0, D(2020, 1, 1))
        book.place_sell("s2", p("193.0.1.0/24"), 23.0, D(2020, 1, 1))
        adjusted = book.anchor_asks(reference_price=22.5, tolerance=0.15)
        assert adjusted == 1
        asks = sorted(o.ask for o in book.open_sells())
        assert asks[0] == 23.0
        assert asks[1] == pytest.approx(22.5 * 1.15, abs=0.01)

    def test_anchor_validation(self, book):
        with pytest.raises(OrderError):
            book.anchor_asks(0)

    def test_order_validation(self, book):
        with pytest.raises(OrderError):
            book.place_sell("s", p("193.0.0.0/25"), 20.0, D(2020, 1, 1))
        with pytest.raises(OrderError):
            book.place_sell("s", p("193.0.0.0/24"), -5.0, D(2020, 1, 1))
        with pytest.raises(OrderError):
            book.place_buy("b", 30, 20.0, D(2020, 1, 1))
        with pytest.raises(OrderError):
            book.place_buy("b", 24, 0.0, D(2020, 1, 1))
