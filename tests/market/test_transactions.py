"""Unit tests for the anonymized transaction dataset."""

import datetime

import pytest

from repro.errors import DatasetError, MarketError
from repro.market.transactions import Transaction, TransactionDataset
from repro.registry.rir import RIR

D = datetime.date


def t(date, region=RIR.ARIN, length=24, price=22.5, broker="IPv4.Global"):
    return Transaction(
        date=date,
        region=region,
        block_length=length,
        price_per_address=price,
        broker=broker,
    )


class TestTransaction:
    def test_derived_fields(self):
        txn = t(D(2020, 1, 15), length=22)
        assert txn.addresses == 1024
        assert txn.total_value == pytest.approx(1024 * 22.5)
        assert txn.quarter() == (2020, 1)

    def test_quarter_boundaries(self):
        assert t(D(2020, 3, 31)).quarter() == (2020, 1)
        assert t(D(2020, 4, 1)).quarter() == (2020, 2)
        assert t(D(2020, 12, 31)).quarter() == (2020, 4)

    def test_size_anonymity_guard(self):
        with pytest.raises(MarketError):
            t(D(2020, 1, 1), length=15)  # identifiable: rarer than /16
        with pytest.raises(MarketError):
            t(D(2020, 1, 1), length=25)

    def test_price_validation(self):
        with pytest.raises(MarketError):
            t(D(2020, 1, 1), price=0)


class TestDataset:
    @pytest.fixture
    def dataset(self):
        return TransactionDataset([
            t(D(2019, 11, 1), RIR.ARIN, 24, 21.0),
            t(D(2020, 2, 1), RIR.RIPE, 22, 22.0),
            t(D(2020, 2, 15), RIR.APNIC, 16, 20.0),
            t(D(2020, 5, 1), RIR.ARIN, 24, 23.0),
            t(D(2020, 5, 2), RIR.AFRINIC, 24, 22.0),
        ])

    def test_sorted_iteration(self, dataset):
        dates = [txn.date for txn in dataset]
        assert dates == sorted(dates)
        assert len(dataset) == 5

    def test_window_filter(self, dataset):
        window = dataset.in_window(D(2020, 1, 1), D(2020, 3, 1))
        assert len(window) == 2

    def test_region_filters(self, dataset):
        assert len(dataset.for_regions([RIR.ARIN])) == 2
        # The paper's exclusion of AFRINIC/LACNIC.
        core = dataset.excluding_regions([RIR.AFRINIC, RIR.LACNIC])
        assert len(core) == 4

    def test_length_filter(self, dataset):
        assert len(dataset.for_lengths([24])) == 3

    def test_by_quarter(self, dataset):
        quarters = dataset.by_quarter()
        assert list(quarters) == [(2019, 4), (2020, 1), (2020, 2)]
        assert len(quarters[(2020, 1)]) == 2

    def test_by_region_and_counts(self, dataset):
        by_region = dataset.by_region()
        assert len(by_region[RIR.ARIN]) == 2
        assert dataset.count_by_region()[RIR.APNIC] == 1

    def test_add_keeps_sorted(self, dataset):
        dataset.add(t(D(2019, 1, 1)))
        assert next(iter(dataset)).date == D(2019, 1, 1)

    def test_csv_round_trip(self, dataset, tmp_path):
        path = dataset.write_csv(tmp_path / "txns.csv")
        loaded = TransactionDataset.read_csv(path)
        assert len(loaded) == len(dataset)
        assert [txn.date for txn in loaded] == [txn.date for txn in dataset]
        assert [txn.price_per_address for txn in loaded] == \
            [txn.price_per_address for txn in dataset]

    def test_csv_malformed(self):
        with pytest.raises(DatasetError):
            TransactionDataset.from_csv(
                "date,region,block_length,price_per_address,broker\n"
                "2020-01-01,mars,24,22.5,x\n"
            )

    def test_prices(self, dataset):
        assert len(dataset.prices()) == 5
        assert all(price > 0 for price in dataset.prices())
