"""Unit tests for the serving layer's wire framing."""

import json

import pytest

from repro.serve.protocol import (
    HttpRequest,
    ProtocolError,
    http_response,
    parse_http_head,
    rdap_error_body,
    render_json,
    whois_throttle_line,
)


class TestRenderJson:
    def test_canonical_encoding(self):
        payload = {"b": 1, "a": [1, 2], "c": {"y": None, "x": "é"}}
        encoded = render_json(payload)
        # Sorted keys, compact separators, ascii-escaped — and stable.
        assert encoded == (
            b'{"a":[1,2],"b":1,"c":{"x":"\\u00e9","y":null}}'
        )
        assert json.loads(encoded) == payload
        assert render_json(payload) == encoded

    def test_error_body_shape(self):
        body = rdap_error_body(429, "rate limit exceeded", "slow down")
        assert body["errorCode"] == 429
        assert body["description"] == ["slow down"]
        assert body["rdapConformance"] == ["rdap_level_0"]


class TestWhoisThrottleLine:
    def test_format(self):
        line = whois_throttle_line(1.5)
        assert line.startswith("%ERROR:201:")
        assert "1.50s" in line


class TestParseHttpHead:
    def test_basic_get(self):
        request = parse_http_head(
            b"GET /ip/193.0.0.0/16 HTTP/1.1\r\n"
            b"Host: localhost\r\nX-Client-Id: abc\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/ip/193.0.0.0/16"
        assert request.version == "HTTP/1.1"
        assert request.header("x-client-id") == "abc"
        assert request.header("X-Client-Id") == "abc"  # case folded

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError):
            parse_http_head(b"GET /only-two-parts\r\n")
        with pytest.raises(ProtocolError):
            parse_http_head(b"GET / SPDY/1\r\n")

    def test_malformed_header(self):
        with pytest.raises(ProtocolError):
            parse_http_head(b"GET / HTTP/1.1\r\nno-colon-here\r\n")


class TestKeepAlive:
    def test_http11_default_keep_alive(self):
        assert HttpRequest("GET", "/", "HTTP/1.1").keep_alive
        assert not HttpRequest(
            "GET", "/", "HTTP/1.1", {"connection": "close"}
        ).keep_alive

    def test_http10_default_close(self):
        assert not HttpRequest("GET", "/", "HTTP/1.0").keep_alive
        assert HttpRequest(
            "GET", "/", "HTTP/1.0", {"connection": "keep-alive"}
        ).keep_alive


class TestHttpResponse:
    def test_status_line_and_length(self):
        raw = http_response(200, b'{"a":1}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 7" in head
        assert body == b'{"a":1}'

    def test_retry_after_rounds_up(self):
        raw = http_response(429, b"{}", retry_after_seconds=0.03)
        # RFC 7231 delay-seconds: integral, and a positive wait must
        # never round down to "retry immediately".
        assert b"Retry-After: 1\r\n" in raw
        raw = http_response(429, b"{}", retry_after_seconds=2.2)
        assert b"Retry-After: 3\r\n" in raw

    def test_no_retry_after_by_default(self):
        assert b"Retry-After" not in http_response(200, b"{}")

    def test_head_only_omits_body(self):
        raw = http_response(200, b'{"a":1}', head_only=True)
        assert raw.endswith(b"\r\n\r\n")
        assert b"Content-Length: 7" in raw  # length of the GET body

    def test_connection_header(self):
        assert b"Connection: keep-alive" in http_response(200, b"")
        assert b"Connection: close" in http_response(
            200, b"", keep_alive=False
        )
