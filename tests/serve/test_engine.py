"""Tests for the shared query core behind both frontends."""

import datetime

import pytest

from repro.delegation.model import DailyDelegations
from repro.errors import PrefixError
from repro.netbase.prefix import IPv4Prefix
from repro.serve.engine import (
    DelegationIndex,
    TransferIndex,
    parse_prefix_text,
)


class TestParsePrefixText:
    def test_bare_address_is_host_route(self):
        assert parse_prefix_text("193.0.4.7") == IPv4Prefix.parse(
            "193.0.4.7/32"
        )

    def test_prefix_tolerates_host_bits(self):
        # Registry endpoints accept 193.0.4.7/24 (host bits set).
        assert parse_prefix_text("193.0.4.7/24") == IPv4Prefix.parse(
            "193.0.4.0/24"
        )

    def test_garbage_raises(self):
        with pytest.raises((PrefixError, ValueError)):
            parse_prefix_text("not-a-prefix")


def _daily(*entries):
    daily = DailyDelegations()
    for day, prefix, delegator, delegatee in entries:
        daily.record(
            day, [(IPv4Prefix.parse(prefix), delegator, delegatee)]
        )
    return daily


class TestDelegationIndex:
    def test_empty_index(self):
        index = DelegationIndex()
        assert len(index) == 0
        result = index.lookup(IPv4Prefix.parse("10.0.0.0/8"))
        assert result["covering"] == []
        assert result["longestMatch"] is None
        assert result["snapshotDate"] is None
        assert index.as_history(65000)["count"] == 0

    def test_snapshot_is_latest_day(self):
        d1 = datetime.date(2020, 1, 1)
        d2 = datetime.date(2020, 1, 2)
        index = DelegationIndex(_daily(
            (d1, "10.0.0.0/16", 100, 200),
            (d2, "10.0.0.0/16", 100, 200),
            (d1, "10.9.0.0/16", 100, 300),  # gone by d2: not current
        ))
        assert index.snapshot_date == d2
        assert len(index) == 1
        gone = index.lookup(IPv4Prefix.parse("10.9.0.0/16"))
        assert gone["covering"] == []

    def test_covering_order_and_longest_match(self):
        day = datetime.date(2020, 6, 1)
        index = DelegationIndex(_daily(
            (day, "10.0.0.0/8", 1, 2),
            (day, "10.1.0.0/16", 1, 3),
        ))
        result = index.lookup(IPv4Prefix.parse("10.1.2.0/24"))
        prefixes = [e["prefix"] for e in result["covering"]]
        assert prefixes == ["10.0.0.0/8", "10.1.0.0/16"]
        assert result["longestMatch"]["prefix"] == "10.1.0.0/16"
        assert result["longestMatch"]["delegations"] == [
            {"delegatorAsn": 1, "delegateeAsn": 3}
        ]

    def test_as_history_roles_and_dates(self):
        d1 = datetime.date(2020, 1, 1)
        d2 = datetime.date(2020, 1, 3)
        index = DelegationIndex(_daily(
            (d1, "10.0.0.0/16", 100, 200),
            (d2, "10.0.0.0/16", 100, 200),
        ))
        delegator = index.as_history(100)
        delegatee = index.as_history(200)
        assert delegator["count"] == 1
        assert delegator["delegations"][0]["role"] == "delegator"
        record = delegatee["delegations"][0]
        assert record["role"] == "delegatee"
        assert record["firstSeen"] == "2020-01-01"
        assert record["lastSeen"] == "2020-01-03"
        assert record["daysSeen"] == 2
        assert record["active"] is True


class TestTransferIndex:
    def test_empty(self):
        index = TransferIndex()
        assert len(index) == 0
        result = index.lookup(IPv4Prefix.parse("10.0.0.0/8"))
        assert result == {
            "query": "10.0.0.0/8", "covering": [], "within": [],
        }

    def test_world_ledger_round_trip(self, world):
        ledger = world.transfer_ledger()
        index = TransferIndex(ledger)
        assert len(index) == len(ledger.records())
        record = ledger.records()[0]
        prefix = record.prefixes[0]
        result = index.lookup(prefix)
        hits = result["covering"] + result["within"]
        assert any(
            h["transferId"] == record.transfer_id for h in hits
        )
        # Camel-case JSON shape, dates ISO-formatted.
        sample = hits[0]
        assert set(sample) >= {
            "transferId", "date", "prefixes", "sourceOrg",
            "recipientOrg", "type", "pricePerAddress",
        }
        datetime.date.fromisoformat(sample["date"])


class TestQueryEngine:
    def test_loaded_summary(self, engine):
        loaded = engine.loaded_summary()
        assert loaded["inetnums"] > 0
        assert loaded["delegations"] > 0
        assert loaded["transfers"] > 0
        assert loaded["marketStats"] > 0

    def test_whois_byte_identity_with_server(self, engine):
        obj = next(engine.whois.database.inetnums())
        line = str(obj.primary_prefix())
        assert engine.whois_query(line) == engine.whois.query(line)

    def test_rdap_matches_unmetered_lookup(self, engine):
        obj = next(engine.whois.database.inetnums())
        prefix = obj.primary_prefix()
        assert engine.rdap_ip(prefix) == engine.rdap.lookup_object(prefix)

    def test_market_summary_shape(self, engine):
        summary = engine.market_summary()
        assert summary["pricedTransactions"] > 0
        assert "meanPrice2020PerIp" in summary
        assert set(summary["perRir"]) == {
            "ripencc", "arin", "apnic", "lacnic", "afrinic",
        }

    def test_shared_rate_buckets(self, tight_engine):
        from repro.errors import RdapRateLimitError

        # burst=2: two queries pass, the third throttles — regardless
        # of which frontend charged the earlier ones.
        tight_engine.check_rate("c", 0.0)
        tight_engine.check_rate("c", 0.0)
        with pytest.raises(RdapRateLimitError) as info:
            tight_engine.check_rate("c", 0.0)
        assert info.value.retry_after_seconds == pytest.approx(2.0)
