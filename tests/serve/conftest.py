"""Shared fixtures for the serving-layer suite.

The expensive load (delegation inference) happens once per session;
individual tests then bind throwaway servers on ephemeral ports.
"""

import pytest

from repro.rdap.server import RdapServer
from repro.serve import QueryEngine
from repro.simulation import World, small_scenario
from repro.whois.server import WhoisServer


@pytest.fixture(scope="session")
def world():
    return World(small_scenario(seed=42))


@pytest.fixture(scope="session")
def engine(world):
    """A fully loaded engine with a limit too high to ever throttle."""
    return QueryEngine.from_world(
        world,
        step_days=7,
        rate_limit_per_second=1e6,
        burst=1_000_000,
    )


@pytest.fixture
def tight_engine(world):
    """A delegation-less engine with a tiny burst, for throttle tests."""
    database = world.whois()
    return QueryEngine(
        whois=WhoisServer(database),
        rdap=RdapServer(database, rate_limit_per_second=0.5, burst=2),
    )
