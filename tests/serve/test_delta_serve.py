"""Live delta applies against a running server.

The serving half of the incremental-inference contract: an engine
loaded with ``incremental=True`` keeps its
:class:`~repro.delegation.delta.LiveDeltaHandle`, journal entries for
new days apply *in place* while queries are being answered, ``/health``
exposes the advancing serial, and no query ever observes a torn
delegation set — every response equals the full-recompute answer for
*some* applied serial.
"""

import asyncio
import datetime
import json

import pytest

from repro.delegation import (
    InferenceConfig,
    WorldStreamFactory,
    run_inference,
)
from repro.delegation.delta import DeltaJournal, journal_key, journal_path
from repro.errors import ReproError
from repro.serve import QueryEngine, ReproServeServer
from repro.serve.client import HttpSession
from repro.serve.engine import DelegationIndex
from repro.serve.protocol import render_json

EXTRA_DAYS = 3


@pytest.fixture(scope="module")
def inc_engine(world):
    """An engine whose inference sweep ran incrementally."""
    return QueryEngine.from_world(
        world,
        step_days=1,
        incremental=True,
        rate_limit_per_second=1e6,
        burst=1_000_000,
    )


@pytest.fixture(scope="module")
def new_entries(world, tmp_path_factory):
    """Journal entries for EXTRA_DAYS days past the engine's window."""
    journal_dir = tmp_path_factory.mktemp("journal")
    factory = WorldStreamFactory(world.config)
    config = InferenceConfig.extended()
    as2org = world.as2org()
    start = world.config.bgp_start
    longer = world.config.bgp_end + datetime.timedelta(days=EXTRA_DAYS)
    result = run_inference(
        factory, start, longer, config, as2org=as2org, jobs=1,
        incremental=True, journal_dir=journal_dir,
    )
    path = journal_path(journal_dir, journal_key(
        config, factory.fingerprint(), as2org.fingerprint(), start, 1,
    ))
    entries = DeltaJournal(path).read()
    base_serial = (longer - start).days - EXTRA_DAYS
    return result, [e for e in entries if e["serial"] > base_serial]


def serve(engine, scenario, **kwargs):
    async def _main():
        server = ReproServeServer(engine, **kwargs)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.shutdown()

    return asyncio.run(_main())


class TestLiveApply:
    def test_engine_carries_delta_handle(self, inc_engine, world):
        days = (world.config.bgp_end - world.config.bgp_start).days
        assert inc_engine.delta_serial == days
        assert inc_engine.loaded_summary()["deltaSerial"] == days

    def test_apply_advances_serial_and_matches_recompute(
        self, world, new_entries
    ):
        # A private engine: applies mutate the delegation index.
        engine = QueryEngine.from_world(
            world, step_days=1, incremental=True,
            rate_limit_per_second=1e6, burst=1_000_000,
        )
        result, entries = new_entries
        before = engine.delta_serial
        for entry in entries:
            engine.apply_delta_entry(entry)
        assert engine.delta_serial == before + EXTRA_DAYS
        reference = DelegationIndex(result.daily)
        assert engine.delegations.snapshot_date == \
            reference.snapshot_date
        assert len(engine.delegations) == len(reference)
        for asn in list(reference._by_asn)[:5]:
            assert engine.delegations.as_history(asn) == \
                reference.as_history(asn)

    def test_serial_gap_and_seed_entry_rejected(self, world, new_entries):
        engine = QueryEngine.from_world(
            world, step_days=1, incremental=True,
            rate_limit_per_second=1e6, burst=1_000_000,
        )
        _result, entries = new_entries
        skipped = dict(entries[-1])
        with pytest.raises(ReproError, match="serial gap"):
            engine.apply_delta_entry(skipped)
        with pytest.raises(ReproError, match="seed"):
            engine.apply_delta_entry(dict(entries[0], kind="seed"))

    def test_non_incremental_engine_refuses(self, engine, new_entries):
        _result, entries = new_entries
        with pytest.raises(ReproError, match="delta handle"):
            engine.apply_delta_entry(entries[0])

    def test_concurrent_queries_never_see_torn_state(
        self, world, new_entries
    ):
        engine = QueryEngine.from_world(
            world, step_days=1, incremental=True,
            rate_limit_per_second=1e6, burst=1_000_000,
        )
        _result, entries = new_entries
        probe = "/delegations/193.0.0.0/8"

        # Every serial's full answer, captured on a twin engine.
        twin = QueryEngine.from_world(
            world, step_days=1, incremental=True,
            rate_limit_per_second=1e6, burst=1_000_000,
        )
        from repro.serve.engine import parse_prefix_text
        prefix = parse_prefix_text("193.0.0.0/8")
        allowed = {render_json(twin.delegations_lookup(prefix))}
        for entry in entries:
            twin.apply_delta_entry(entry)
            allowed.add(render_json(twin.delegations_lookup(prefix)))

        async def scenario(server):
            session = HttpSession(server.host, server.http_port)
            await session.connect()
            bodies = []
            serials = []

            async def hammer():
                for _ in range(40):
                    status, _h, body = await session.get(probe)
                    assert status == 200
                    bodies.append(body)
                    status, _h, health = await session.get("/health")
                    serials.append(
                        json.loads(health)["delta"]["serial"]
                    )
                    await asyncio.sleep(0)

            async def apply():
                for entry in entries:
                    await server.apply_delta_entries([entry])
                    await asyncio.sleep(0.005)

            try:
                await asyncio.gather(hammer(), apply())
            finally:
                await session.close()
            return bodies, serials, server.health()

        bodies, serials, health = serve(engine, scenario)
        assert all(body in allowed for body in bodies)
        assert serials == sorted(serials)  # serial only advances
        assert health["delta"]["serial"] == \
            engine.delta.serial
        assert health["delta"]["applied"] == EXTRA_DAYS
        assert health["delta"]["snapshotDate"] == \
            engine.delta.dates[-1].isoformat()

    def test_apply_journal_catches_up_running_server(
        self, world, new_entries, tmp_path
    ):
        engine = QueryEngine.from_world(
            world, step_days=1, incremental=True,
            rate_limit_per_second=1e6, burst=1_000_000,
        )
        _result, entries = new_entries
        # Rebuild a journal file holding the full sequence: seed the
        # prefix the engine already applied, then the new days.
        factory = WorldStreamFactory(world.config)
        config = InferenceConfig.extended()
        as2org = world.as2org()
        start = world.config.bgp_start
        longer = world.config.bgp_end + datetime.timedelta(
            days=EXTRA_DAYS
        )
        run_inference(
            factory, start, longer, config, as2org=as2org, jobs=1,
            incremental=True, journal_dir=tmp_path,
        )
        path = journal_path(tmp_path, journal_key(
            config, factory.fingerprint(), as2org.fingerprint(),
            start, 1,
        ))

        async def scenario(server):
            before = server.health()["delta"]["serial"]
            applied = await server.apply_journal(path)
            return before, applied, server.health()["delta"]["serial"]

        before, applied, after = serve(engine, scenario)
        assert applied == EXTRA_DAYS
        assert after == before + EXTRA_DAYS
