"""Concurrency and protocol tests for the asyncio server.

The suite drives real sockets against throwaway servers on ephemeral
ports; every functional answer is checked byte-for-byte against the
in-memory engines (the design invariant of the serving layer).
Tests run the event loop via ``asyncio.run`` — no async test plugin.
"""

import asyncio
import json

import pytest

from repro.serve import ReproServeServer
from repro.serve.client import HttpSession, WhoisSession, whois_request
from repro.serve.engine import parse_prefix_text
from repro.serve.protocol import render_json


def serve(engine, scenario, **kwargs):
    """Start a server, run ``scenario(server)``, always shut down."""

    async def _main():
        server = ReproServeServer(engine, **kwargs)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.shutdown()

    return asyncio.run(_main())


def sample_prefixes(engine, count):
    prefixes = []
    for obj in engine.whois.database.inetnums():
        prefixes.append(obj.primary_prefix())
        if len(prefixes) == count:
            break
    assert len(prefixes) == count, "world smaller than expected"
    return prefixes


class TestWhoisFrontend:
    def test_one_shot_byte_identical(self, engine):
        prefix = sample_prefixes(engine, 1)[0]
        line = str(prefix)
        expected = (engine.whois_query(line) + "\n").encode("utf-8")

        async def scenario(server):
            return await whois_request(
                server.host, server.whois_port, line
            )

        assert serve(engine, scenario) == expected

    def test_flags_and_errors_byte_identical(self, engine):
        prefix = str(sample_prefixes(engine, 1)[0])
        lines = [
            f"-L {prefix}", f"-m {prefix}", f"-x {prefix}",
            "-x 1.2.3.4/30",          # no match
            "completely --invalid",   # syntax error
        ]

        async def scenario(server):
            return [
                await whois_request(server.host, server.whois_port, line)
                for line in lines
            ]

        responses = serve(engine, scenario)
        for line, raw in zip(lines, responses):
            assert raw == (engine.whois_query(line) + "\n").encode()

    def test_persistent_session_multi_object(self, engine):
        """-k framing survives -L answers with internal blank lines."""
        prefixes = [str(p) for p in sample_prefixes(engine, 3)]
        queries = [f"-L {p}" for p in prefixes] + prefixes

        async def scenario(server):
            session = WhoisSession(server.host, server.whois_port)
            await session.connect()
            try:
                return [await session.query(q) for q in queries]
            finally:
                await session.close()

        answers = serve(engine, scenario)
        for query, answer in zip(queries, answers):
            assert answer == engine.whois_query(query)

    def test_overlong_line_answered_with_error(self, engine):
        async def scenario(server):
            return await whois_request(
                server.host, server.whois_port, "x" * 4096
            )

        raw = serve(engine, scenario)
        assert raw.startswith(b"%ERROR:100:")

    def test_throttled_client_gets_error_201(self, tight_engine):
        prefix = str(sample_prefixes(tight_engine, 1)[0])

        async def scenario(server):
            return [
                await whois_request(server.host, server.whois_port, prefix)
                for _ in range(4)
            ]

        responses = serve(tight_engine, scenario)
        assert all(
            not r.startswith(b"%ERROR:201") for r in responses[:2]
        )
        assert responses[2].startswith(b"%ERROR:201:")
        assert responses[3].startswith(b"%ERROR:201:")


class TestHttpFrontend:
    def get(self, engine, paths, **session_kwargs):
        async def scenario(server):
            session = HttpSession(
                server.host, server.http_port, **session_kwargs
            )
            await session.connect()
            try:
                return [await session.get(path) for path in paths]
            finally:
                await session.close()

        return serve(engine, scenario)

    def test_ip_lookup_byte_identical(self, engine):
        prefix = sample_prefixes(engine, 1)[0]
        (status, headers, body), = self.get(engine, [f"/ip/{prefix}"])
        assert status == 200
        assert headers["content-type"] == "application/rdap+json"
        assert body == render_json(engine.rdap_ip(prefix))

    def test_all_routes_byte_identical(self, engine):
        prefix = sample_prefixes(engine, 1)[0]
        history = engine.delegations._by_asn  # pick a real ASN
        asn = sorted(history)[0] if history else 0
        paths = {
            f"/delegations/{prefix}":
                engine.delegations_lookup(prefix),
            f"/as/{asn}/delegations": engine.as_history(asn),
            f"/transfers/{prefix}": engine.transfers_lookup(prefix),
            "/market/summary": engine.market_summary(),
        }
        results = self.get(engine, list(paths))
        for (path, expected), (status, _h, body) in zip(
            paths.items(), results
        ):
            assert status == 200, path
            assert body == render_json(expected), path

    def test_health_and_metrics(self, engine):
        results = self.get(engine, ["/health", "/metrics"])
        (status, _h, body), (mstatus, _mh, mbody) = results
        assert status == 200 and mstatus == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["loaded"]["inetnums"] > 0
        assert health["connections"]["live"] >= 1
        json.loads(mbody)  # valid JSON document

    def test_status_codes(self, engine):
        results = self.get(engine, [
            "/ip/1.2.3.4",        # resolvable space only in-db: maybe 404
            "/ip/not-a-prefix",   # 400
            "/nope",              # 404 (no route)
        ])
        assert results[0][0] in (200, 404)
        if results[0][0] == 404:
            assert json.loads(results[0][2])["errorCode"] == 404
        assert results[1][0] == 400
        assert json.loads(results[1][2])["errorCode"] == 400
        assert results[2][0] == 404

    def test_method_not_allowed(self, engine):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.http_port
            )
            writer.write(
                b"POST /market/summary HTTP/1.1\r\nHost: x\r\n"
                b"Connection: close\r\nContent-Length: 2\r\n\r\nhi"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw

        raw = serve(engine, scenario)
        assert raw.startswith(b"HTTP/1.1 405 ")

    def test_malformed_head_is_400(self, engine):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.http_port
            )
            writer.write(b"THIS IS NOT HTTP\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw

        assert serve(engine, scenario).startswith(b"HTTP/1.1 400 ")

    def test_head_request_has_no_body(self, engine):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.http_port
            )
            writer.write(
                b"HEAD /health HTTP/1.1\r\nHost: x\r\n"
                b"Connection: close\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw

        raw = serve(engine, scenario)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 ")
        assert body == b""

    def test_429_with_retry_after(self, tight_engine):
        prefix = sample_prefixes(tight_engine, 1)[0]
        results = self.get(
            tight_engine,
            [f"/ip/{prefix}"] * 4,
            client_id="hammer",
        )
        assert [status for status, _h, _b in results[:2]] == [200, 200]
        status, headers, body = results[2]
        assert status == 429
        assert int(headers["retry-after"]) >= 1
        assert headers["content-type"] == "application/rdap+json"
        assert json.loads(body)["errorCode"] == 429

    def test_health_never_throttled(self, tight_engine):
        results = self.get(
            tight_engine, ["/health"] * 10, client_id="probe"
        )
        assert all(status == 200 for status, _h, _b in results)


class TestCrossProtocol:
    def test_shared_buckets_across_frontends(self, tight_engine):
        """HTTP traffic drains the same bucket the whois line uses."""
        prefix = sample_prefixes(tight_engine, 1)[0]

        async def scenario(server):
            session = HttpSession(
                server.host, server.http_port, client_id="127.0.0.1"
            )
            await session.connect()
            try:
                for _ in range(2):  # burst=2: exhaust via HTTP
                    status, _h, _b = await session.get(f"/ip/{prefix}")
                    assert status == 200
            finally:
                await session.close()
            # Whois connects from 127.0.0.1 — the same client id.
            return await whois_request(
                server.host, server.whois_port, str(prefix)
            )

        raw = serve(tight_engine, scenario)
        assert raw.startswith(b"%ERROR:201:")


class TestConcurrency:
    def test_concurrent_clients_byte_identical(self, engine):
        """N simultaneous whois + HTTP clients, every answer exact."""
        prefixes = sample_prefixes(engine, 8)
        whois_expected = {
            str(p): engine.whois_query(str(p)) for p in prefixes
        }
        http_expected = {
            str(p): render_json(engine.rdap_ip(p)) for p in prefixes
        }

        async def one_whois(server, prefix):
            session = WhoisSession(server.host, server.whois_port)
            await session.connect()
            try:
                return [await session.query(str(prefix)) for _ in range(5)]
            finally:
                await session.close()

        async def one_http(server, index, prefix):
            session = HttpSession(
                server.host, server.http_port, client_id=f"c{index}"
            )
            await session.connect()
            try:
                out = []
                for _ in range(5):
                    _status, _h, body = await session.get(f"/ip/{prefix}")
                    out.append(body)
                return out
            finally:
                await session.close()

        async def scenario(server):
            tasks = [
                one_whois(server, p) for p in prefixes
            ] + [
                one_http(server, i, p) for i, p in enumerate(prefixes)
            ]
            return await asyncio.gather(*tasks)

        results = serve(engine, scenario)
        whois_results = results[:len(prefixes)]
        http_results = results[len(prefixes):]
        for prefix, answers in zip(prefixes, whois_results):
            assert answers == [whois_expected[str(prefix)]] * 5
        for prefix, bodies in zip(prefixes, http_results):
            assert bodies == [http_expected[str(prefix)]] * 5


class TestGracefulShutdown:
    def test_in_flight_request_drains(self, engine):
        """Shutdown waits for a mid-request connection to finish."""
        prefix = str(sample_prefixes(engine, 1)[0])
        expected = (engine.whois_query(prefix) + "\n").encode()

        async def _main():
            gate = asyncio.Event()
            entered = asyncio.Event()

            async def hook():
                entered.set()
                await gate.wait()

            server = ReproServeServer(
                engine, request_hook=hook, drain_grace=10.0
            )
            await server.start()
            request = asyncio.ensure_future(
                whois_request(server.host, server.whois_port, prefix)
            )
            await entered.wait()
            shutdown = asyncio.ensure_future(server.shutdown())
            await asyncio.sleep(0.05)
            # Still draining: the in-flight request holds it open.
            assert not shutdown.done()
            assert server.draining
            gate.set()
            raw = await request
            await shutdown
            # Listeners are gone after the drain completes.
            with pytest.raises(OSError):
                await asyncio.open_connection(
                    server.host, server.whois_port
                )
            return raw

        assert asyncio.run(_main()) == expected

    def test_stuck_request_cancelled_after_grace(self, engine):
        prefix = str(sample_prefixes(engine, 1)[0])

        async def _main():
            gate = asyncio.Event()  # never set: the request hangs
            entered = asyncio.Event()

            async def hook():
                entered.set()
                await gate.wait()

            server = ReproServeServer(
                engine, request_hook=hook, drain_grace=0.1
            )
            await server.start()
            request = asyncio.ensure_future(
                whois_request(server.host, server.whois_port, prefix)
            )
            await entered.wait()
            await server.shutdown()
            raw = await request
            return raw

        # The stuck connection was cancelled: no response bytes.
        assert asyncio.run(_main()) == b""

    def test_idle_keep_alive_closed_immediately(self, engine):
        async def _main():
            server = ReproServeServer(engine, drain_grace=10.0)
            await server.start()
            session = HttpSession(server.host, server.http_port)
            await session.connect()
            status, _h, _b = await session.get("/health")
            assert status == 200
            # The session is idle between requests; shutdown must not
            # wait the full grace period for it.
            await asyncio.wait_for(server.shutdown(), timeout=5.0)
            await session.close()
            return True

        assert asyncio.run(_main())

    def test_draining_refuses_new_connections(self, engine):
        async def _main():
            server = ReproServeServer(engine)
            await server.start()
            host, port = server.host, server.http_port
            await server.shutdown()
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                return True  # listener closed: connection refused
            # Accepted by a race with the closing listener: the
            # server must hang up without serving.
            writer.write(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw == b""

        assert asyncio.run(_main())


class TestObservability:
    def test_request_counters_and_trace_lanes(self, world):
        from repro.obs import TracingRegistry
        from repro.rdap.server import RdapServer
        from repro.serve import QueryEngine
        from repro.whois.server import WhoisServer

        registry = TracingRegistry(lane="main")
        database = world.whois()
        engine = QueryEngine(
            whois=WhoisServer(database),
            rdap=RdapServer(
                database, rate_limit_per_second=1e6, burst=1_000_000
            ),
            metrics=registry,
        )
        prefix = str(sample_prefixes(engine, 1)[0])

        async def scenario(server):
            await whois_request(server.host, server.whois_port, prefix)
            session = HttpSession(server.host, server.http_port)
            await session.connect()
            await session.get(f"/ip/{prefix}")
            await session.close()

        serve(engine, scenario)
        snapshot = registry.to_json()
        counters = snapshot["counters"]
        assert counters["serve.whois.requests"] == 1
        assert counters["serve.http.requests"] == 1
        assert counters["serve.connections.total"] == 2
        # Connection lanes merged into the main timeline.
        lanes = registry.trace.lanes()
        assert any(lane.startswith("whois-") for lane in lanes)
        assert any(lane.startswith("http-") for lane in lanes)


class TestTelemetry:
    """The PR-9 surfaces: histograms, windows, request ids, /metrics."""

    def _engine(self, world):
        from repro.obs import MetricsRegistry
        from repro.rdap.server import RdapServer
        from repro.serve import QueryEngine
        from repro.whois.server import WhoisServer

        database = world.whois()
        return QueryEngine(
            whois=WhoisServer(database),
            rdap=RdapServer(
                database, rate_limit_per_second=1e6, burst=1_000_000
            ),
            metrics=MetricsRegistry(),
        )

    def test_per_route_and_per_protocol_histograms(self, world):
        engine = self._engine(world)
        prefix = str(sample_prefixes(engine, 1)[0])

        async def scenario(server):
            await whois_request(server.host, server.whois_port, prefix)
            session = HttpSession(server.host, server.http_port)
            await session.connect()
            await session.get(f"/ip/{prefix}")
            await session.get("/market/summary")
            await session.close()

        serve(engine, scenario)
        metrics = engine.metrics
        assert metrics.histogram("serve.whois.request").count == 1
        assert metrics.histogram("serve.http.request").count == 2
        assert metrics.histogram("serve.http.route.ip").count == 1
        assert metrics.histogram("serve.http.route.market").count == 1
        # Engine-side query timings isolate lookup cost from protocol.
        assert metrics.histogram("engine.query.whois").count == 1
        assert metrics.histogram("engine.query.rdap_ip").count == 1
        # Status-class counters alongside exact statuses.
        assert metrics.counter("serve.http.status_class.2xx") == 2

    def test_request_ids_in_headers_and_trace(self, world):
        from repro.obs import TracingRegistry
        from repro.rdap.server import RdapServer
        from repro.serve import QueryEngine
        from repro.whois.server import WhoisServer

        registry = TracingRegistry(lane="main")
        database = world.whois()
        engine = QueryEngine(
            whois=WhoisServer(database),
            rdap=RdapServer(
                database, rate_limit_per_second=1e6, burst=1_000_000
            ),
            metrics=registry,
        )
        prefix = str(sample_prefixes(engine, 1)[0])

        async def scenario(server):
            session = HttpSession(server.host, server.http_port)
            await session.connect()
            results = [
                await session.get(f"/ip/{prefix}"),
                await session.get("/health"),
            ]
            await session.close()
            return results

        results = serve(engine, scenario)
        ids = [headers["x-request-id"] for _s, headers, _b in results]
        assert len(set(ids)) == 2
        assert all(rid.startswith("req-") for rid in ids)
        # Each request became one trace event named after its id.
        names = [event.name for event in registry.trace.events()]
        for rid in ids:
            assert any(name.endswith(f"#{rid}") for name in names)
        assert any(f"http.ip#{ids[0]}" in name for name in names)

    def test_health_window_rollup(self, world):
        engine = self._engine(world)
        prefix = str(sample_prefixes(engine, 1)[0])

        async def scenario(server):
            session = HttpSession(server.host, server.http_port)
            await session.connect()
            for _ in range(3):
                await session.get(f"/ip/{prefix}")
            _status, _h, body = await session.get("/health")
            await session.close()
            return json.loads(body)

        health = serve(engine, scenario)
        window = health["window"]
        assert set(window) == {"1m", "5m"}
        one_minute = window["1m"]
        assert one_minute["windowSeconds"] == 60
        assert one_minute["requests"] >= 3
        assert one_minute["errorRate"] == 0.0
        assert one_minute["p99Seconds"] > 0.0
        # Everything in the 1m window is inside the 5m window too.
        assert window["5m"]["requests"] >= one_minute["requests"]

    def test_metrics_prom_negotiation(self, world):
        from repro.obs.telemetry import parse_prometheus_text

        engine = self._engine(world)
        prefix = str(sample_prefixes(engine, 1)[0])

        async def scenario(server):
            session = HttpSession(server.host, server.http_port)
            await session.connect()
            await session.get(f"/ip/{prefix}")
            results = [
                await session.get("/metrics"),
                await session.get("/metrics?format=prom"),
            ]
            await session.close()
            return results

        json_result, prom_result = serve(engine, scenario)
        status, headers, body = json_result
        assert status == 200
        assert headers["content-type"] == "application/json"
        json.loads(body)  # the PR-6 JSON document is unchanged
        status, headers, body = prom_result
        assert status == 200
        assert headers["content-type"].startswith(
            "text/plain; version=0.0.4"
        )
        families = parse_prometheus_text(body.decode("utf-8"))
        histogram = families["repro_serve_http_route_ip_seconds"]
        assert histogram["type"] == "histogram"

    def test_metrics_prom_accept_header(self, world):
        engine = self._engine(world)

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.http_port
            )
            writer.write(
                b"GET /metrics HTTP/1.1\r\nHost: x\r\n"
                b"Accept: text/plain\r\nConnection: close\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw

        raw = serve(engine, scenario)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"text/plain; version=0.0.4" in head
        assert body.lstrip().startswith(b"# TYPE repro_")

    def test_ready_file_written_atomically(self, world, tmp_path):
        from repro.serve import run_server

        engine = self._engine(world)
        target = tmp_path / "ready.txt"
        server = ReproServeServer(engine)
        run_server(
            server,
            serve_seconds=0.01,
            ready_path=str(target),
            install_signal_handlers=False,
        )
        host, whois_port, http_port = target.read_text().split()
        assert int(whois_port) > 0 and int(http_port) > 0
        # The temp sibling was renamed into place, never left behind.
        assert sorted(tmp_path.iterdir()) == [target]
