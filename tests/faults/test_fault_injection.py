"""The deterministic fault-injection suite (``pytest -m faults``).

Proves the acceptance criterion of the fault-tolerance work: with a
fixed seed, a pipeline fed ~5 % corrupt records and a flaky RDAP
schedule completes end-to-end, and the quarantine accounting equals
*exactly* the number of injected faults.
"""

import json

import pytest

from repro.cli import main
from repro.datasets import generate_all
from repro.delegation.rdap_extract import (
    RdapExtractionStats,
    extract_rdap_delegations,
)
from repro.errors import RdapRateLimitError, RdapTimeoutError
from repro.faults import (
    FaultSchedule,
    FlakyRdapServer,
    corrupt_scrape_csv,
    corrupt_snapshot_text,
    corrupt_transfer_feed,
)
from repro.ingest import ErrorPolicy, QuarantineReport, SweepJournal
from repro.netbase.prefix import IPv4Prefix, parse_address
from repro.obs.metrics import MetricsRegistry
from repro.rdap.client import RdapClient
from repro.rdap.server import RdapServer
from repro.simulation import World, small_scenario
from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject, InetnumStatus

pytestmark = pytest.mark.faults

SEED = 20200625  # the paper's RIPE snapshot date; any fixed seed works


def inet(first, last, status, org, admin):
    return InetnumObject(
        first=parse_address(first),
        last=parse_address(last),
        netname="NET",
        status=status,
        org_handle=org,
        admin_handle=admin,
    )


@pytest.fixture
def database():
    db = WhoisDatabase()
    db.add_inetnum(inet("193.0.0.0", "193.0.255.255",
                        InetnumStatus.ALLOCATED_PA, "ORG-LIR", "AC-LIR"))
    for octet in range(1, 41):
        db.add_inetnum(inet(f"193.0.{octet}.0", f"193.0.{octet}.255",
                            InetnumStatus.ASSIGNED_PA,
                            f"ORG-C{octet}", f"AC-C{octet}"))
    return db


class TestFlakyRdapServer:
    def test_same_seed_same_schedule(self, database):
        schedule = FaultSchedule(
            seed=SEED, timeout_rate=0.2, throttle_rate=0.2,
            corrupt_rate=0.1,
        )
        outcomes = []
        for _ in range(2):
            flaky = FlakyRdapServer(
                RdapServer(database, rate_limit_per_second=1e6,
                           burst=10**6),
                schedule,
            )
            run = []
            for octet in range(1, 41):
                prefix = IPv4Prefix.parse(f"193.0.{octet}.0/24")
                try:
                    payload = flaky.lookup_ip(prefix)
                    run.append(
                        "corrupt" if isinstance(payload, list) else "ok"
                    )
                except RdapTimeoutError:
                    run.append("timeout")
                except RdapRateLimitError:
                    run.append("throttle")
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
        assert "timeout" in outcomes[0]
        assert "throttle" in outcomes[0]
        assert "corrupt" in outcomes[0]

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSchedule(timeout_rate=1.5)
        with pytest.raises(ValueError):
            FaultSchedule(timeout_rate=0.6, throttle_rate=0.6)

    def test_sweep_completes_under_faults_and_accounts_exactly(
        self, database
    ):
        """The flagship check: end-to-end sweep under a flaky schedule
        completes, and quarantined == corruptions + gave-up retries."""
        schedule = FaultSchedule(
            seed=SEED, timeout_rate=0.1, throttle_rate=0.1,
            corrupt_rate=0.05,
        )
        real = RdapServer(database, rate_limit_per_second=1e6, burst=10**6)
        flaky = FlakyRdapServer(real, schedule)
        metrics = MetricsRegistry()
        client = RdapClient(
            flaky, pace_seconds=0.0, max_retries=8,
            max_backoff_seconds=2.0, metrics=metrics,
        )
        report = QuarantineReport()
        stats = RdapExtractionStats()
        delegations = extract_rdap_delegations(
            database.inetnums(), client,
            policy=ErrorPolicy.QUARANTINE, report=report, stats=stats,
        )
        clean = extract_rdap_delegations(
            database.inetnums(),
            RdapClient(
                RdapServer(database, rate_limit_per_second=1e6,
                           burst=10**6),
                pace_seconds=0.0,
            ),
        )
        # Completed end-to-end, losing only the quarantined blocks.
        assert stats.quarantined == report.count()
        assert len(delegations) + stats.quarantined >= len(clean)
        assert set(delegations) <= set(clean)
        # Every injected corruption and every exhausted retry chain
        # quarantined exactly one block — nothing dropped silently.
        gave_up = metrics.counter("rdap.gave_up")
        assert report.kind_count("rdap") == (
            flaky.corruptions_injected + gave_up
        )
        assert report.count() > 0

    def test_strict_mode_still_fails_fast(self, database):
        schedule = FaultSchedule(seed=SEED, corrupt_rate=1.0)
        flaky = FlakyRdapServer(
            RdapServer(database, rate_limit_per_second=1e6, burst=10**6),
            schedule,
        )
        client = RdapClient(flaky, pace_seconds=0.0)
        from repro.errors import RdapError

        with pytest.raises(RdapError, match="malformed RDAP payload"):
            extract_rdap_delegations(database.inetnums(), client)

    def test_resume_after_flaky_crash(self, database, tmp_path):
        """Journal + quarantine compose: a sweep interrupted by faults
        resumes without re-querying its completed lookups."""
        schedule = FaultSchedule(seed=SEED, timeout_rate=0.15)
        flaky = FlakyRdapServer(
            RdapServer(database, rate_limit_per_second=1e6, burst=10**6),
            schedule,
        )
        client = RdapClient(
            flaky, pace_seconds=0.0, max_retries=6,
            max_backoff_seconds=1.0,
        )
        inetnums = list(database.inetnums())
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            extract_rdap_delegations(
                inetnums[: len(inetnums) // 2], client,
                journal=journal, policy=ErrorPolicy.QUARANTINE,
                report=QuarantineReport(),
            )
        with SweepJournal(path) as journal:
            resumed_client = RdapClient(
                FlakyRdapServer(
                    RdapServer(database, rate_limit_per_second=1e6,
                               burst=10**6),
                    FaultSchedule(seed=SEED + 1, timeout_rate=0.15),
                ),
                pace_seconds=0.0, max_retries=6,
                max_backoff_seconds=1.0,
            )
            stats = RdapExtractionStats()
            resumed = extract_rdap_delegations(
                inetnums, resumed_client, journal=journal,
                policy=ErrorPolicy.QUARANTINE,
                report=QuarantineReport(), stats=stats,
            )
        clean = extract_rdap_delegations(
            inetnums,
            RdapClient(
                RdapServer(database, rate_limit_per_second=1e6,
                           burst=10**6),
                pace_seconds=0.0,
            ),
        )
        assert stats.replayed > 0
        # Faults may quarantine some blocks, but everything that
        # completed matches the clean sweep.
        assert set(resumed) <= set(clean)
        assert len(resumed) + stats.quarantined == len(clean)


class TestCorruptDatasetEndToEnd:
    @pytest.fixture(scope="class")
    def dataset(self, tmp_path_factory):
        world = World(small_scenario())
        directory = tmp_path_factory.mktemp("faulty-dataset")
        manifest = generate_all(
            world, directory, include_rpki=False, collector_days=1
        )
        return manifest

    @pytest.fixture(scope="class")
    def corrupted(self, dataset):
        """Corrupt ~5 % of every record-level source; returns the
        exact number of injected faults."""
        injected = 0
        for path in sorted(dataset.transfer_feeds.values()):
            with open(path, encoding="utf-8") as handle:
                feed = json.load(handle)
            feed, count = corrupt_transfer_feed(
                feed, rate=0.05, seed=SEED
            )
            injected += count
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(feed, handle, indent=1)
        with open(dataset.leasing_scrapes, encoding="utf-8") as handle:
            text = handle.read()
        text, count = corrupt_scrape_csv(text, rate=0.05, seed=SEED)
        injected += count
        with open(dataset.leasing_scrapes, "w", encoding="utf-8") as fh:
            fh.write(text)
        with open(dataset.whois_snapshot, encoding="utf-8") as handle:
            text = handle.read()
        text, count = corrupt_snapshot_text(text, rate=0.05, seed=SEED)
        injected += count
        with open(dataset.whois_snapshot, "w", encoding="utf-8") as fh:
            fh.write(text)
        assert injected > 0
        return injected

    def test_quarantine_counts_equal_injected_faults(
        self, dataset, corrupted, tmp_path, capsys
    ):
        """The acceptance criterion: a degraded run completes and the
        manifest's quarantine counts equal the injected fault count."""
        manifest_path = tmp_path / "ingest.json"
        code = main([
            "ingest", dataset.root,
            "--error-policy", "quarantine",
            "--metrics-out", str(manifest_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "quarantine mode" in out
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        degradation = payload["degradation"]
        assert degradation["quarantined_total"] == corrupted
        assert sum(degradation["by_source"].values()) == corrupted
        assert sum(degradation["by_kind"].values()) == corrupted
        counters = payload["metrics"]["counters"]
        assert counters["ingest.quarantined"] == corrupted

    def test_strict_mode_aborts_on_corrupt_dataset(
        self, dataset, corrupted, capsys
    ):
        code = main(["ingest", dataset.root])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("repro: error:")
        assert len(captured.err.strip().splitlines()) == 1
