"""Malformed-RPSL handling in both strict and quarantine modes."""

import pytest

from repro.errors import DatasetError
from repro.ingest import ErrorPolicy, QuarantineReport
from repro.whois.snapshot import (
    parse_snapshot,
    read_snapshot_file,
    render_snapshot,
)
from repro.netbase.prefix import parse_address
from repro.whois.inetnum import InetnumObject, InetnumStatus
from repro.whois.snapshot import _parse_block

GOOD_BLOCK = """\
inetnum:        193.0.4.0 - 193.0.4.255
netname:        GOOD-NET
status:         ASSIGNED PA
org:            ORG-A
admin-c:        AC-1
source:         RIPE"""

MISSING_COLON = """\
inetnum         193.0.5.0 - 193.0.5.255
netname:        BAD-NET
status:         ASSIGNED PA"""

UNKNOWN_STATUS = """\
inetnum:        193.0.6.0 - 193.0.6.255
netname:        BAD-STATUS
status:         TOTALLY BOGUS
org:            ORG-B
admin-c:        AC-2"""

TRUNCATED = """\
netname:        NO-RANGE
status:         ASSIGNED PA"""


class TestParseBlockStrict:
    def test_good_block(self):
        obj = _parse_block(GOOD_BLOCK)
        assert obj.netname == "GOOD-NET"
        assert obj.status is InetnumStatus.ASSIGNED_PA

    def test_missing_colon_line(self):
        with pytest.raises(DatasetError, match="malformed RPSL line"):
            _parse_block(MISSING_COLON)

    def test_unknown_status(self):
        with pytest.raises(DatasetError, match="bad inetnum block"):
            _parse_block(UNKNOWN_STATUS)

    def test_truncated_block_missing_inetnum(self):
        with pytest.raises(DatasetError, match="missing"):
            _parse_block(TRUNCATED)

    def test_bad_address_wrapped(self):
        block = GOOD_BLOCK.replace(
            "193.0.4.0 - 193.0.4.255", "193.0.4.0 - not.an.address"
        )
        with pytest.raises(DatasetError):
            _parse_block(block)


def _snapshot(*blocks):
    return "\n\n".join(blocks) + "\n"


class TestParseSnapshotPolicies:
    def test_strict_default_aborts_on_first_bad_block(self):
        text = _snapshot(GOOD_BLOCK, MISSING_COLON, GOOD_BLOCK)
        with pytest.raises(DatasetError):
            list(parse_snapshot(text))

    def test_quarantine_keeps_good_blocks(self):
        text = _snapshot(
            GOOD_BLOCK, MISSING_COLON, UNKNOWN_STATUS, TRUNCATED
        )
        report = QuarantineReport()
        objects = list(
            parse_snapshot(
                text,
                policy=ErrorPolicy.QUARANTINE,
                report=report,
                source="ripe.db.inetnum",
            )
        )
        assert [o.netname for o in objects] == ["GOOD-NET"]
        assert report.count("ripe.db.inetnum") == 3
        indices = [r.index for r in report.records()]
        assert indices == [1, 2, 3]
        assert all(r.kind == "rpsl" for r in report.records())

    def test_quarantine_without_report_still_continues(self):
        text = _snapshot(MISSING_COLON, GOOD_BLOCK)
        objects = list(
            parse_snapshot(text, policy=ErrorPolicy.QUARANTINE)
        )
        assert len(objects) == 1

    def test_round_trip_unaffected(self):
        obj = InetnumObject(
            first=parse_address("193.0.4.0"),
            last=parse_address("193.0.4.255"),
            netname="NET",
            status=InetnumStatus.ASSIGNED_PA,
            org_handle="ORG-A",
            admin_handle="AC-1",
        )
        text = render_snapshot([obj])
        strict = list(parse_snapshot(text))
        lenient = list(
            parse_snapshot(text, policy=ErrorPolicy.QUARANTINE)
        )
        assert strict == lenient

    def test_read_snapshot_file_quarantine(self, tmp_path):
        path = tmp_path / "ripe.db.inetnum"
        path.write_text(
            _snapshot(GOOD_BLOCK, UNKNOWN_STATUS), encoding="utf-8"
        )
        report = QuarantineReport()
        objects = read_snapshot_file(
            path, policy=ErrorPolicy.QUARANTINE, report=report
        )
        assert len(objects) == 1
        assert report.count(str(path)) == 1

    def test_read_snapshot_file_missing_named(self, tmp_path):
        with pytest.raises(DatasetError, match="absent"):
            read_snapshot_file(tmp_path / "absent")
