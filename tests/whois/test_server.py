"""Tests for the WHOIS query server."""

import pytest

from repro.netbase.prefix import parse_address
from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject, InetnumStatus
from repro.whois.server import WhoisServer


def inet(first, last, status, netname):
    return InetnumObject(
        first=parse_address(first),
        last=parse_address(last),
        netname=netname,
        status=status,
        org_handle="ORG-A",
        admin_handle="AC-1",
    )


@pytest.fixture
def server():
    db = WhoisDatabase()
    db.add_inetnum(inet("193.0.0.0", "193.0.255.255",
                        InetnumStatus.ALLOCATED_PA, "TOP"))
    db.add_inetnum(inet("193.0.4.0", "193.0.7.255",
                        InetnumStatus.SUB_ALLOCATED_PA, "MIDDLE"))
    db.add_inetnum(inet("193.0.4.0", "193.0.4.255",
                        InetnumStatus.ASSIGNED_PA, "LEAF"))
    return WhoisServer(db)


class TestQueries:
    def test_bare_address_returns_most_specific(self, server):
        response = server.query("193.0.4.10")
        assert "netname:        LEAF" in response
        assert "MIDDLE" not in response

    def test_bare_prefix(self, server):
        response = server.query("193.0.4.0/22")
        assert "netname:        MIDDLE" in response

    def test_exact_flag(self, server):
        assert "LEAF" in server.query("-x 193.0.4.0/24")
        assert server.query("-x 193.0.4.0/25").startswith("%ERROR:101")

    def test_less_specific_chain(self, server):
        response = server.query("-L 193.0.4.10")
        # Outermost first: TOP, MIDDLE, LEAF.
        top = response.index("TOP")
        middle = response.index("MIDDLE")
        leaf = response.index("LEAF")
        assert top < middle < leaf

    def test_more_specific(self, server):
        response = server.query("-m 193.0.4.0/22")
        assert "LEAF" in response
        assert "TOP" not in response

    def test_no_match(self, server):
        assert server.query("8.8.8.8").startswith("%ERROR:101")

    def test_bad_syntax(self, server):
        assert server.query("").startswith("%ERROR:108")
        assert server.query("one two").startswith("%ERROR:108")
        assert server.query("not.an.ip").startswith("%ERROR:108")

    def test_query_count(self, server):
        server.query("193.0.4.10")
        server.query("8.8.8.8")
        assert server.query_count == 2

    def test_response_is_parseable_rpsl(self, server):
        from repro.whois.snapshot import parse_snapshot

        response = server.query("-L 193.0.4.10")
        objects = list(parse_snapshot(response))
        assert len(objects) == 3

    def test_whois_and_rdap_agree(self, server):
        """Both protocol frontends resolve the same object."""
        from repro.netbase.prefix import IPv4Prefix
        from repro.rdap.server import RdapServer

        rdap = RdapServer(server.database, rate_limit_per_second=1e6,
                          burst=10**6)
        rdap_response = rdap.lookup_ip(IPv4Prefix.parse("193.0.4.0/24"))
        whois_response = server.query("193.0.4.0/24")
        assert rdap_response["name"] in whois_response
