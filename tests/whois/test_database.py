"""Unit tests for :mod:`repro.whois.database` and snapshots."""

import pytest

from repro.errors import ObjectNotFoundError, WhoisError
from repro.netbase.prefix import IPv4Prefix, parse_address
from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject, InetnumStatus, OrgObject
from repro.whois.snapshot import (
    database_from_snapshot,
    parse_snapshot,
    read_snapshot_file,
    render_snapshot,
    write_snapshot_file,
)


def make(first, last, status=InetnumStatus.ASSIGNED_PA, org="ORG-A",
         admin="AC-1", netname="NET"):
    return InetnumObject(
        first=parse_address(first),
        last=parse_address(last),
        netname=netname,
        status=status,
        org_handle=org,
        admin_handle=admin,
    )


@pytest.fixture
def database():
    db = WhoisDatabase()
    db.add_org(OrgObject("ORG-LIR", "Big LIR"))
    db.add_org(OrgObject("ORG-CUST", "Customer"))
    db.add_inetnum(make("193.0.0.0", "193.0.255.255",
                        status=InetnumStatus.ALLOCATED_PA, org="ORG-LIR"))
    db.add_inetnum(make("193.0.4.0", "193.0.7.255",
                        status=InetnumStatus.SUB_ALLOCATED_PA,
                        org="ORG-CUST", admin="AC-2"))
    db.add_inetnum(make("193.0.4.0", "193.0.4.255",
                        status=InetnumStatus.ASSIGNED_PA,
                        org="ORG-CUST", admin="AC-2"))
    return db


class TestStore:
    def test_len_and_contains(self, database):
        assert len(database) == 3
        assert make("193.0.4.0", "193.0.4.255") in database

    def test_duplicate_rejected(self, database):
        with pytest.raises(WhoisError):
            database.add_inetnum(make("193.0.4.0", "193.0.4.255"))

    def test_remove(self, database):
        obj = database.inetnum(
            parse_address("193.0.4.0"), parse_address("193.0.4.255")
        )
        database.remove_inetnum(obj)
        assert len(database) == 2
        with pytest.raises(ObjectNotFoundError):
            database.inetnum(
                parse_address("193.0.4.0"), parse_address("193.0.4.255")
            )

    def test_org_lookup(self, database):
        assert database.org("ORG-LIR").name == "Big LIR"
        with pytest.raises(ObjectNotFoundError):
            database.org("ORG-NONE")
        with pytest.raises(WhoisError):
            database.add_org(OrgObject("ORG-LIR", "dup"))

    def test_by_status(self, database):
        assert len(database.by_status(InetnumStatus.ASSIGNED_PA)) == 1
        assert len(database.by_status(InetnumStatus.SUB_ALLOCATED_PA)) == 1
        assert len(database.by_status(InetnumStatus.LEGACY)) == 0

    def test_inetnums_sorted(self, database):
        firsts = [o.first for o in database.inetnums()]
        assert firsts == sorted(firsts)


class TestHierarchy:
    def test_parent_of(self, database):
        child = database.inetnum(
            parse_address("193.0.4.0"), parse_address("193.0.4.255")
        )
        parent = database.parent_of(child)
        assert parent is not None
        assert parent.status is InetnumStatus.SUB_ALLOCATED_PA

    def test_parent_skips_levels_correctly(self, database):
        mid = database.inetnum(
            parse_address("193.0.4.0"), parse_address("193.0.7.255")
        )
        parent = database.parent_of(mid)
        assert parent is not None
        assert parent.status is InetnumStatus.ALLOCATED_PA

    def test_top_has_no_parent(self, database):
        top = database.inetnum(
            parse_address("193.0.0.0"), parse_address("193.0.255.255")
        )
        assert database.parent_of(top) is None

    def test_children_of(self, database):
        top = database.inetnum(
            parse_address("193.0.0.0"), parse_address("193.0.255.255")
        )
        children = database.children_of(top)
        assert len(children) == 1
        assert children[0].status is InetnumStatus.SUB_ALLOCATED_PA

    def test_unaligned_parent(self):
        db = WhoisDatabase()
        db.add_inetnum(make("10.0.0.0", "10.0.3.255",
                            status=InetnumStatus.ALLOCATED_PA))
        odd = make("10.0.0.16", "10.0.0.47")  # unaligned child
        db.add_inetnum(odd)
        parent = db.parent_of(odd)
        assert parent is not None
        assert parent.status is InetnumStatus.ALLOCATED_PA

    def test_find_exact_prefix(self, database):
        found = database.find_exact_prefix(IPv4Prefix.parse("193.0.4.0/24"))
        assert found is not None
        assert found.status is InetnumStatus.ASSIGNED_PA
        assert database.find_exact_prefix(
            IPv4Prefix.parse("193.0.5.0/24")
        ) is None

    def test_most_specific_containing(self, database):
        obj = database.most_specific_containing(
            IPv4Prefix.parse("193.0.4.128/25")
        )
        assert obj is not None
        assert obj.status is InetnumStatus.ASSIGNED_PA
        outside = database.most_specific_containing(
            IPv4Prefix.parse("8.8.8.0/24")
        )
        assert outside is None


class TestSnapshot:
    def test_render_parse_round_trip(self, database):
        text = render_snapshot(database.inetnums())
        parsed = list(parse_snapshot(text))
        assert len(parsed) == 3
        assert {o.key() for o in parsed} == {
            o.key() for o in database.inetnums()
        }
        assert all(
            a.status is b.status
            for a, b in zip(parsed, database.inetnums())
        )

    def test_file_round_trip(self, database, tmp_path):
        path = write_snapshot_file(
            database.inetnums(), tmp_path / "ripe.db.inetnum"
        )
        loaded = read_snapshot_file(path)
        assert len(loaded) == 3

    def test_database_from_snapshot(self, database):
        objs = list(database.inetnums())
        rebuilt = database_from_snapshot(objs, database.orgs())
        assert len(rebuilt) == len(database)
        assert rebuilt.org("ORG-LIR").name == "Big LIR"

    def test_parse_skips_comments(self):
        text = (
            "% RIPE database dump\n"
            "inetnum:        193.0.0.0 - 193.0.0.255\n"
            "netname:        TEST\n"
            "status:         ASSIGNED PA\n"
            "org:            ORG-A\n"
            "admin-c:        AC-1\n"
        )
        objs = list(parse_snapshot(text))
        assert len(objs) == 1
        assert objs[0].netname == "TEST"

    def test_parse_malformed(self):
        from repro.errors import DatasetError
        with pytest.raises(DatasetError):
            list(parse_snapshot("inetnum 193.0.0.0\nstatus ASSIGNED PA"))
