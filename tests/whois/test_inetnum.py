"""Unit tests for :mod:`repro.whois.inetnum`."""

import pytest

from repro.errors import WhoisError
from repro.netbase.prefix import IPv4Prefix, parse_address
from repro.whois.inetnum import InetnumObject, InetnumStatus, OrgObject


def make(first, last, status=InetnumStatus.ASSIGNED_PA, org="ORG-A",
         admin="AC-1", netname="NET"):
    return InetnumObject(
        first=parse_address(first),
        last=parse_address(last),
        netname=netname,
        status=status,
        org_handle=org,
        admin_handle=admin,
    )


class TestStatus:
    def test_delegation_related(self):
        assert InetnumStatus.ASSIGNED_PA.is_delegation_related
        assert InetnumStatus.SUB_ALLOCATED_PA.is_delegation_related
        assert not InetnumStatus.ALLOCATED_PA.is_delegation_related
        assert not InetnumStatus.LEGACY.is_delegation_related

    def test_parse(self):
        assert InetnumStatus.parse("ASSIGNED PA") is InetnumStatus.ASSIGNED_PA
        assert (
            InetnumStatus.parse("sub-allocated pa")
            is InetnumStatus.SUB_ALLOCATED_PA
        )
        with pytest.raises(WhoisError):
            InetnumStatus.parse("NONSENSE")


class TestGeometry:
    def test_aligned_range(self):
        obj = make("193.0.0.0", "193.0.0.255")
        assert obj.is_cidr_aligned
        assert obj.prefixes() == [IPv4Prefix.parse("193.0.0.0/24")]
        assert obj.primary_prefix() == IPv4Prefix.parse("193.0.0.0/24")
        assert obj.num_addresses == 256

    def test_unaligned_range(self):
        obj = make("193.0.0.16", "193.0.0.47")  # 32 addresses, unaligned
        assert not obj.is_cidr_aligned
        assert len(obj.prefixes()) == 2
        assert obj.primary_prefix() == IPv4Prefix.parse("193.0.0.0/26")

    def test_smaller_than(self):
        small = make("193.0.0.0", "193.0.0.127")  # /25-sized
        full = make("193.0.0.0", "193.0.0.255")
        assert small.smaller_than(24)
        assert not full.smaller_than(24)

    def test_handle_format(self):
        obj = make("193.0.0.0", "193.0.0.255")
        assert obj.handle == "193.0.0.0 - 193.0.0.255"

    def test_empty_range_rejected(self):
        with pytest.raises(WhoisError):
            make("193.0.0.10", "193.0.0.5")


class TestRelations:
    def test_contains(self):
        parent = make("193.0.0.0", "193.0.3.255")
        child = make("193.0.1.0", "193.0.1.255")
        assert parent.contains(child)
        assert parent.properly_contains(child)
        assert not child.contains(parent)
        assert parent.contains(parent)
        assert not parent.properly_contains(parent)

    def test_same_registrant_via_org(self):
        a = make("193.0.0.0", "193.0.0.255", org="ORG-X", admin="AC-1")
        b = make("193.0.1.0", "193.0.1.255", org="ORG-X", admin="AC-2")
        assert a.same_registrant(b)

    def test_same_registrant_via_admin(self):
        a = make("193.0.0.0", "193.0.0.255", org="ORG-X", admin="AC-9")
        b = make("193.0.1.0", "193.0.1.255", org="ORG-Y", admin="AC-9")
        assert a.same_registrant(b)

    def test_different_registrants(self):
        a = make("193.0.0.0", "193.0.0.255", org="ORG-X", admin="AC-1")
        b = make("193.0.1.0", "193.0.1.255", org="ORG-Y", admin="AC-2")
        assert not a.same_registrant(b)


class TestOrgObject:
    def test_basic(self):
        org = OrgObject(handle="ORG-A", name="Example Org")
        assert org.handle == "ORG-A"

    def test_empty_handle_rejected(self):
        with pytest.raises(WhoisError):
            OrgObject(handle="", name="x")
