"""Unit tests for the statistics helpers."""

import random

import pytest

from repro.analysis.stats import (
    BoxStats,
    box_stats,
    coefficient_of_variation,
    kruskal_wallis,
)


class TestBoxStats:
    def test_simple(self):
        stats = box_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.count == 5
        assert stats.minimum == 1.0 and stats.maximum == 5.0
        assert stats.median == 3.0
        assert stats.q1 == 2.0 and stats.q3 == 4.0
        assert stats.mean == 3.0
        assert stats.iqr == 2.0

    def test_single_value(self):
        stats = box_stats([7.0])
        assert stats.median == stats.q1 == stats.q3 == 7.0

    def test_even_count_interpolates(self):
        stats = box_stats([1.0, 2.0, 3.0, 4.0])
        assert stats.median == 2.5

    def test_unsorted_input(self):
        assert box_stats([5.0, 1.0, 3.0]).median == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            box_stats([])


class TestCV:
    def test_zero_variance(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        cv = coefficient_of_variation([8.0, 12.0])
        assert cv == pytest.approx((8.0 ** 0.5) / 10.0, rel=1e-9)

    def test_degenerate(self):
        assert coefficient_of_variation([1.0]) == 0.0
        assert coefficient_of_variation([]) == 0.0


class TestKruskalWallis:
    def test_identical_groups_not_significant(self):
        rng = random.Random(1)
        groups = [
            [rng.gauss(10, 1) for _ in range(100)] for _ in range(3)
        ]
        _h, p = kruskal_wallis(groups)
        assert p > 0.05

    def test_shifted_group_significant(self):
        rng = random.Random(2)
        a = [rng.gauss(10, 1) for _ in range(100)]
        b = [rng.gauss(14, 1) for _ in range(100)]
        _h, p = kruskal_wallis([a, b])
        assert p < 0.001

    def test_requires_two_groups(self):
        with pytest.raises(ValueError):
            kruskal_wallis([[1.0, 2.0]])
        with pytest.raises(ValueError):
            kruskal_wallis([[1.0], []])

    def test_fallback_matches_scipy(self):
        """The pure-python fallback tracks scipy's H and p closely."""
        scipy_stats = pytest.importorskip("scipy.stats")
        from repro.analysis import stats as stats_module

        rng = random.Random(3)
        groups = [
            [rng.gauss(10 + shift, 2) for _ in range(60)]
            for shift in (0.0, 0.3, 1.0)
        ]
        expected = scipy_stats.kruskal(*groups)
        # Force the fallback by hiding scipy from the module.
        pooled = []
        for g in groups:
            pooled.extend(g)
        ranks = stats_module._ranks(pooled)
        h = 0.0
        offset = 0
        n = len(pooled)
        for g in groups:
            size = len(g)
            rank_sum = sum(ranks[offset:offset + size])
            h += rank_sum * rank_sum / size
            offset += size
        h = 12.0 / (n * (n + 1)) * h - 3.0 * (n + 1)
        assert h == pytest.approx(expected.statistic, rel=1e-9)
        p = stats_module._chi2_sf(h, 2)
        assert p == pytest.approx(expected.pvalue, rel=1e-6)

    def test_chi2_sf_sanity(self):
        from repro.analysis.stats import _chi2_sf

        assert _chi2_sf(0.0, 2) == 1.0
        assert _chi2_sf(5.991, 2) == pytest.approx(0.05, abs=0.001)
        assert _chi2_sf(100.0, 2) < 1e-20
