"""Tests for the figure-data CSV exporter."""

import csv
import datetime

import pytest

from repro.analysis.fig_data import (
    export_fig1_prices,
    export_fig2_transfers,
    export_fig4_leasing,
    export_fig5_rules,
    export_fig6_series,
)
from repro.delegation import (
    DelegationInference,
    InferenceConfig,
    evaluate_rules_on_rpki,
)
from repro.market.leasing import FIRST_SCRAPE, SECOND_WAVE
from repro.simulation import World, small_scenario

D = datetime.date


@pytest.fixture(scope="module")
def world():
    return World(small_scenario())


def read_csv(path):
    with open(path, encoding="utf-8") as handle:
        return list(csv.DictReader(handle))


class TestExports:
    def test_fig1(self, world, tmp_path):
        path = export_fig1_prices(
            world.priced_transactions(), tmp_path / "fig1.csv"
        )
        rows = read_csv(path)
        assert rows
        assert {"year", "bucket", "region", "median"} <= set(rows[0])
        for row in rows:
            assert float(row["q1"]) <= float(row["median"]) <= float(row["q3"])

    def test_fig2(self, world, tmp_path):
        path = export_fig2_transfers(
            world.transfer_ledger(), tmp_path / "fig2.csv"
        )
        rows = read_csv(path)
        regions = {row["region"] for row in rows}
        assert "ripencc" in regions
        assert all(int(row["transfers"]) >= 0 for row in rows)

    def test_fig4(self, world, tmp_path):
        path = export_fig4_leasing(
            world.scrape_log(), FIRST_SCRAPE, SECOND_WAVE,
            tmp_path / "fig4.csv",
        )
        rows = read_csv(path)
        providers = {row["provider"] for row in rows}
        assert len(providers) == 21
        prices = [float(row["price_per_ip_month"]) for row in rows]
        assert min(prices) == pytest.approx(0.30)

    def test_fig5(self, world, tmp_path):
        evaluations = evaluate_rules_on_rpki(world.rpki(), [5, 10], [0, 1])
        path = export_fig5_rules(evaluations, tmp_path / "fig5.csv")
        rows = read_csv(path)
        assert len(rows) == 4
        assert all(0.0 <= float(row["fail_rate"]) <= 1.0 for row in rows)

    def test_fig6(self, world, tmp_path):
        start = world.config.bgp_start
        end = start + datetime.timedelta(days=10)
        extended = DelegationInference(
            InferenceConfig.extended(), world.as2org()
        ).infer_range(world.stream(), start, end)
        baseline = DelegationInference(
            InferenceConfig.baseline()
        ).infer_range(world.stream(), start, end)
        path = export_fig6_series(
            extended, baseline, tmp_path / "fig6.csv"
        )
        rows = read_csv(path)
        assert len(rows) == 10
        for row in rows:
            assert int(row["baseline_count"]) >= int(row["extended_count"])
