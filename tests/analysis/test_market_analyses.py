"""Tests for the Fig. 1/2/3/4 analyses on the small world."""

import datetime

import pytest

from repro.analysis.interrir import (
    blocks_shrink,
    counts_increase,
    inter_rir_flows,
    inter_rir_trend,
    net_flow_by_rir,
)
from repro.analysis.leasing_prices import (
    price_changes,
    provider_series,
    summarize_leasing_prices,
)
from repro.analysis.prices import (
    consolidation_quarter,
    doubling_factor,
    mean_price_per_ip,
    quarterly_price_stats,
    regional_price_difference,
)
from repro.analysis.report import render_comparison, render_table
from repro.analysis.transfers import (
    market_start_dates,
    market_starts_after_last_slash8,
    seasonal_ratio,
    transfer_counts,
)
from repro.registry.rir import RIR
from repro.simulation import World, small_scenario

D = datetime.date


@pytest.fixture(scope="module")
def world():
    return World(small_scenario())


class TestFig1Prices:
    def test_quarterly_stats_cover_buckets(self, world):
        stats = quarterly_price_stats(world.priced_transactions())
        assert stats
        buckets = {s.bucket for s in stats}
        assert "/24" in buckets and "/16" in buckets
        for s in stats:
            assert s.stats.minimum <= s.stats.median <= s.stats.maximum

    def test_no_regional_difference(self, world):
        # No true regional effect exists, so the p-value is uniform
        # noise; assert it is not decisively significant.
        _h, p = regional_price_difference(world.priced_transactions())
        assert p > 0.01

    def test_prices_doubled(self, world):
        factor = doubling_factor(world.priced_transactions())
        assert 1.7 < factor < 2.4

    def test_mean_2020_price(self, world):
        mean = mean_price_per_ip(
            world.priced_transactions(), D(2020, 1, 1), D(2020, 6, 25)
        )
        assert mean == pytest.approx(22.5, rel=0.08)

    def test_consolidation_detected_spring_2019(self, world):
        quarter = consolidation_quarter(world.priced_transactions())
        assert quarter is not None
        year, q = quarter
        assert (year, q) in [(2019, 1), (2019, 2), (2019, 3)]

    def test_small_blocks_cost_more(self, world):
        dataset = world.priced_transactions().in_window(
            D(2019, 6, 1), D(2020, 6, 1)
        )
        small = dataset.for_lengths([24]).prices()
        large = dataset.for_lengths([17, 18, 19, 20]).prices()
        assert sum(small) / len(small) > sum(large) / len(large)


class TestFig2Transfers:
    def test_counts_by_region(self, world):
        counts = transfer_counts(world.transfer_ledger())
        assert counts[RIR.RIPE]
        assert counts[RIR.ARIN]
        total_ripe = sum(c for _d, c in counts[RIR.RIPE])
        total_lacnic = sum(c for _d, c in counts[RIR.LACNIC])
        assert total_ripe > 10 * max(1, total_lacnic)

    def test_market_starts_align_with_last_slash8(self, world):
        verdict = market_starts_after_last_slash8(world.transfer_ledger())
        assert all(verdict.values())

    def test_market_start_dates(self, world):
        starts = market_start_dates(world.transfer_ledger())
        # RIPE's market exists and starts no earlier than its last /8.
        assert starts[RIR.RIPE] is not None
        assert starts[RIR.RIPE] >= D(2012, 7, 1)

    def test_ripe_q4_seasonality(self, world):
        counts = transfer_counts(world.transfer_ledger())
        ratio = seasonal_ratio(counts[RIR.RIPE])
        assert ratio > 1.15

    def test_mna_removal_reduces_counts(self, world):
        ledger = world.transfer_ledger()
        market_only = transfer_counts(ledger)
        ripe_market = sum(c for _d, c in market_only[RIR.RIPE])
        ripe_all = len(ledger.intra_rir(RIR.RIPE))
        assert ripe_market < ripe_all  # labelled M&A removed


class TestFig3InterRir:
    def test_flows_dominated_by_arin_outflow(self, world):
        flows = inter_rir_flows(world.transfer_ledger())
        arin_out = sum(
            count for (src, _dst), count in flows.items() if src is RIR.ARIN
        )
        total = sum(flows.values())
        assert arin_out > total * 0.5

    def test_trend_claims(self, world):
        trend = inter_rir_trend(world.transfer_ledger())
        assert counts_increase(trend)
        assert blocks_shrink(trend)

    def test_net_flow(self, world):
        net = net_flow_by_rir(world.transfer_ledger())
        assert net[RIR.ARIN] < 0
        assert sum(net.values()) == 0


class TestFig4Leasing:
    def test_summary(self, world):
        summary = summarize_leasing_prices(
            world.scrape_log(), D(2019, 10, 26), D(2020, 6, 1)
        )
        assert summary.provider_count == 21
        assert summary.min_price == pytest.approx(0.30)
        assert summary.max_price == pytest.approx(3.90)
        assert set(summary.changed_providers) == {
            "Heficed", "IPv4Mall", "IP-AS"
        }
        assert summary.max_spike_ratio > 10
        assert not summary.converged
        assert summary.bundled_vs_pure_pvalue > 0.05  # no structural gap

    def test_provider_series_and_changes(self, world):
        records = world.scrape_log().scrape_series(
            D(2019, 10, 26), D(2020, 6, 1), 7
        )
        series = provider_series(records)
        assert len(series["Heficed"]) > 20
        changes = price_changes(records)
        heficed = changes["Heficed"]
        assert heficed[0][1] == 0.65 and heficed[0][2] == 0.40


class TestReport:
    def test_render_table(self):
        text = render_table(
            ["a", "bb"], [["1", "2"], ["333", "4"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_render_comparison(self):
        text = render_comparison("X", [["m", 1, 2]])
        assert "paper" in text and "measured" in text
