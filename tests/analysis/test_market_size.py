"""Direct tests for the §4 market-size estimator."""

import pytest

from repro.analysis.market_size import estimate_market_size
from repro.delegation.model import RdapDelegation
from repro.netbase.prefix import IPv4Prefix


def p(text):
    return IPv4Prefix.parse(text)


def rdap(prefix_text):
    prefix = p(prefix_text)
    return RdapDelegation(
        child_first=prefix.network,
        child_last=prefix.broadcast,
        child_handle=str(prefix),
        parent_handle="parent",
        status="ASSIGNED PA",
    )


class TestEstimate:
    def test_disjoint_sources_sum(self):
        estimate = estimate_market_size(
            [p("193.0.4.0/24")], [rdap("193.0.64.0/20")]
        )
        assert estimate.combined_addresses == 256 + 4096
        assert estimate.bgp_only_addresses == 256
        assert estimate.rdap_only_addresses == 4096

    def test_nested_sources_no_double_count(self):
        estimate = estimate_market_size(
            [p("193.0.64.0/24")], [rdap("193.0.64.0/20")]
        )
        assert estimate.combined_addresses == 4096
        assert estimate.bgp_only_addresses == 0
        assert estimate.rdap_only_addresses == 4096 - 256

    def test_underestimate_factor(self):
        estimate = estimate_market_size(
            [p("193.0.4.0/24")], [rdap("193.0.64.0/20")]
        )
        assert estimate.bgp_alone_underestimates_by == pytest.approx(
            (256 + 4096) / 256
        )

    def test_empty_bgp_gives_infinite_factor(self):
        estimate = estimate_market_size([], [rdap("193.0.64.0/20")])
        assert estimate.bgp_alone_underestimates_by == float("inf")

    def test_duplicate_bgp_prefixes_collapse(self):
        estimate = estimate_market_size(
            [p("193.0.4.0/24"), p("193.0.4.0/24")], []
        )
        assert estimate.coverage.bgp_delegations == 1

    def test_summary_lines(self):
        estimate = estimate_market_size(
            [p("193.0.4.0/24")], [rdap("193.0.64.0/20")]
        )
        lines = estimate.summary_lines()
        assert any("Combined market size" in line for line in lines)
        assert len(lines) == 5
