"""Tests for the M&A-inference heuristic and its evaluation."""

import datetime

import pytest

from repro.analysis.mna_heuristic import (
    HeuristicEvaluation,
    MnaHeuristic,
    MnaHeuristicConfig,
    corrected_market_counts,
    evaluate_heuristic,
    parameter_sensitivity,
)
from repro.netbase.prefix import IPv4Prefix
from repro.registry.rir import RIR
from repro.registry.transfers import TransferLedger, TransferType
from repro.simulation import World, small_scenario

D = datetime.date


def p(text):
    return IPv4Prefix.parse(text)


def make_ledger():
    ledger = TransferLedger()
    # Single-block market sale.
    ledger.record(D(2020, 1, 1), [p("1.0.0.0/24")], "a", "b",
                  RIR.APNIC, RIR.APNIC, TransferType.MARKET)
    # Three-block M&A consolidation.
    ledger.record(D(2020, 1, 2),
                  [p("1.0.4.0/24"), p("1.0.8.0/23"), p("1.0.16.0/22")],
                  "c", "d", RIR.APNIC, RIR.APNIC,
                  TransferType.MERGER_ACQUISITION)
    # Two-block market sale (the hard case).
    ledger.record(D(2020, 1, 3), [p("1.1.0.0/24"), p("1.1.2.0/24")],
                  "e", "f", RIR.APNIC, RIR.APNIC, TransferType.MARKET)
    return ledger


class TestClassifier:
    def test_block_count_rule(self):
        ledger = make_ledger()
        heuristic = MnaHeuristic(MnaHeuristicConfig(min_blocks=3))
        records = ledger.records()
        assert heuristic.classify(records[0]) is TransferType.MARKET
        assert (
            heuristic.classify(records[1])
            is TransferType.MERGER_ACQUISITION
        )
        assert heuristic.classify(records[2]) is TransferType.MARKET

    def test_address_rule(self):
        ledger = make_ledger()
        heuristic = MnaHeuristic(
            MnaHeuristicConfig(min_blocks=10, min_addresses=1024)
        )
        records = ledger.records()
        assert heuristic.classify(records[0]) is TransferType.MARKET
        assert (
            heuristic.classify(records[1])
            is TransferType.MERGER_ACQUISITION
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MnaHeuristicConfig(min_blocks=0)
        with pytest.raises(ValueError):
            MnaHeuristicConfig(min_addresses=0)


class TestEvaluation:
    def test_confusion_matrix(self):
        ledger = make_ledger()
        heuristic = MnaHeuristic(MnaHeuristicConfig(min_blocks=2))
        evaluation = evaluate_heuristic(ledger.records(), heuristic)
        # min_blocks=2 catches the M&A but also the 2-block market sale.
        assert evaluation.true_positive == 1
        assert evaluation.false_positive == 1
        assert evaluation.true_negative == 1
        assert evaluation.false_negative == 0
        assert evaluation.precision == pytest.approx(0.5)
        assert evaluation.recall == 1.0
        assert 0 < evaluation.f1 < 1

    def test_strict_threshold_improves_precision(self):
        ledger = make_ledger()
        loose = evaluate_heuristic(
            ledger.records(), MnaHeuristic(MnaHeuristicConfig(min_blocks=2))
        )
        strict = evaluate_heuristic(
            ledger.records(), MnaHeuristic(MnaHeuristicConfig(min_blocks=3))
        )
        assert strict.precision > loose.precision

    def test_degenerate_metrics(self):
        empty = HeuristicEvaluation(0, 0, 0, 0)
        assert empty.precision == 0.0
        assert empty.recall == 0.0
        assert empty.f1 == 0.0

    def test_region_filter(self):
        ledger = make_ledger()
        ledger.record(D(2020, 2, 1), [p("193.0.0.0/24")], "x", "y",
                      RIR.RIPE, RIR.RIPE, TransferType.MARKET)
        heuristic = MnaHeuristic()
        apnic_only = evaluate_heuristic(
            ledger.records(), heuristic, regions=[RIR.APNIC]
        )
        assert apnic_only.total == 3


class TestOnWorld:
    @pytest.fixture(scope="class")
    def world(self):
        return World(small_scenario())

    def test_heuristic_works_on_generated_market(self, world):
        ledger = world.transfer_ledger()
        heuristic = MnaHeuristic(MnaHeuristicConfig(min_blocks=2))
        evaluation = evaluate_heuristic(
            ledger.records(), heuristic,
            regions=[RIR.APNIC, RIR.LACNIC],
        )
        assert evaluation.recall > 0.95          # all M&A is multi-block
        assert evaluation.precision > 0.6        # 2-block market tail hurts
        assert evaluation.f1 > 0.75

    def test_sensitivity_sweep_shape(self, world):
        sweep = parameter_sensitivity(
            world.transfer_ledger(), (1, 2, 3, 5),
            regions=[RIR.APNIC, RIR.LACNIC],
        )
        by_param = {param: ev for param, ev in sweep}
        # min_blocks=1 flags everything: recall 1, terrible precision.
        assert by_param[1].recall == 1.0
        assert by_param[1].precision < 0.5
        # Precision grows monotonically with the threshold.
        precisions = [by_param[k].precision for k in (1, 2, 3)]
        assert precisions == sorted(precisions)
        # Recall decays once the threshold passes real M&A sizes.
        assert by_param[5].recall < by_param[2].recall

    def test_corrected_counts(self, world):
        heuristic = MnaHeuristic(MnaHeuristicConfig(min_blocks=2))
        counts = corrected_market_counts(
            world.transfer_ledger(), heuristic, RIR.APNIC
        )
        assert counts["raw"] == (
            counts["classified_mna"] + counts["corrected_market"]
        )
        assert 0 < counts["classified_mna"] < counts["raw"]
