"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures from
the paper-scale world, asserts its shape matches the paper's reported
numbers, and writes a paper-vs-measured comparison table under
``benchmarks/results/`` (the source for ``EXPERIMENTS.md``).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.simulation import World, paper_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def world() -> World:
    """The paper-scale world, shared across all benchmarks."""
    return World(paper_scenario())


@pytest.fixture(scope="session")
def record_result():
    """Write a named result file and echo it to stdout."""

    def _record(name: str, text: str) -> str:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[written to {path}]")
        return str(path)

    return _record


@pytest.fixture(scope="session")
def record_bench_json():
    """Write machine-readable timings as ``BENCH_<name>.json``.

    Sits next to the human-readable ``.txt`` table; CI uploads these
    as artifacts so wall-clock history (cold/warm, before/after
    speedups) survives across runs without parsing prose.
    """

    def _record(name: str, payload: dict) -> str:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"[bench json written to {path}]")
        return str(path)

    return _record
