"""Fan-in smoke benchmark: shared-memory results at internet scale.

Runs the internet preset's multi-year window (subsampled with
``step_days``) through every result-transport combination — pickled
fan-in on both kernels, shared-memory fan-in, per-/8 day shards, and
the incremental delta sweep under both transports — and asserts all
of them byte-identical to the PR 8 pickled baseline.

The perf claim is measured on the warm store: the pickled path serves
warm *input* shards but still re-runs the kernel every day, while the
shared-memory path serves warm *result* shards off mmap and never
touches the kernel.  The warm shm sweep must beat the warm pickled
sweep by ``SPEEDUP_FLOOR`` wall-clock, and its parent-process heap
peak (tracemalloc, parent only — segment views are mapped, not
allocated) must come in strictly below the pickled run's.

Timings, transport gauges, and parent heap peaks land in
``BENCH_fanin.json``; a final ``/dev/shm`` sweep asserts the run
leaked no segments.
"""

import pathlib
import time

from repro.delegation import (
    InferenceConfig,
    WorldStreamFactory,
    run_inference,
    write_daily_delegations,
)
from repro.obs.metrics import MetricsRegistry
from repro.simulation import World, internet_scenario

#: Sample the 882-day window every N days (10 sampled days).
STEP_DAYS = 90

#: Warm shm (result shards, kernel skipped) vs warm pickle (input
#: shards, kernel re-run) wall-clock floor.
SPEEDUP_FLOOR = 1.3

SHM_DIR = pathlib.Path("/dev/shm")


def _daily_bytes(result, path):
    write_daily_delegations(result.daily, path)
    return path.read_bytes()


def _segments():
    if not SHM_DIR.is_dir():
        return set()
    return {path.name for path in SHM_DIR.glob("rpfi*")}


def _max_peak_kb(metrics):
    peaks = {
        name: value
        for name, value in metrics.gauges().items()
        if name.startswith("profile.") and name.endswith(".peak_kb")
    }
    return max(peaks.values()), peaks


def test_fanin_internet_sweep(record_bench_json, tmp_path):
    scenario = internet_scenario()
    factory = WorldStreamFactory(scenario)
    as2org = World(scenario).as2org()
    start, end = scenario.bgp_start, scenario.bgp_end
    days = len(range(0, (end - start).days, STEP_DAYS))
    store_dir = tmp_path / "store"
    segments_before = _segments()

    def sweep(*, profile=False, **kwargs):
        metrics = MetricsRegistry()
        if profile:
            metrics.enable_memory_profile()
        t0 = time.perf_counter()
        result = run_inference(
            factory, start, end, InferenceConfig.extended(),
            as2org=as2org, step_days=STEP_DAYS, jobs=2,
            metrics=metrics, **kwargs,
        )
        return result, time.perf_counter() - t0, metrics

    timings = {}

    # The PR 8 baseline: pickled fan-in, whole days, columnar kernel.
    baseline, timings["pickle_columnar"], _ = sweep(fanin="pickle")
    expected = _daily_bytes(baseline, tmp_path / "baseline.jsonl")

    # Byte-identity across the whole transport/scheduling matrix.
    matrix = {
        "pickle_object": dict(fanin="pickle", kernel="object"),
        "shm_columnar": dict(fanin="shm"),
        "shm_day_shards4": dict(fanin="shm", day_shards=4),
        "incremental_pickle": dict(fanin="pickle", incremental=True),
        "incremental_shm": dict(fanin="shm", incremental=True),
    }
    shm_metrics = None
    for label, kwargs in matrix.items():
        result, timings[label], metrics = sweep(**kwargs)
        assert _daily_bytes(
            result, tmp_path / f"{label}.jsonl"
        ) == expected, label
        if label == "shm_columnar":
            shm_metrics = metrics
    assert shm_metrics.gauge("fanin.shm_kb") > 0
    assert shm_metrics.gauge("fanin.pickled_kb") == 0

    # Warm-store perf: one cold shm sweep writes input *and* result
    # shards; the warm pickled sweep then re-runs the kernel off warm
    # input shards while the warm shm sweep serves mapped result
    # shards and never computes a day.
    _, timings["cold_store_shm"], cold_metrics = sweep(
        fanin="shm", store_dir=store_dir
    )
    assert cold_metrics.counter("store.result_writes") == days

    warm_pickle, timings["warm_store_pickle"], wp_metrics = sweep(
        fanin="pickle", store_dir=store_dir
    )
    assert _daily_bytes(
        warm_pickle, tmp_path / "warm-pickle.jsonl"
    ) == expected
    assert wp_metrics.counter("store.hits") == days

    warm_shm, timings["warm_store_shm"], ws_metrics = sweep(
        fanin="shm", store_dir=store_dir
    )
    assert _daily_bytes(
        warm_shm, tmp_path / "warm-shm.jsonl"
    ) == expected
    assert ws_metrics.counter("store.result_hits") == days

    speedup = timings["warm_store_pickle"] / timings["warm_store_shm"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm shm sweep only {speedup:.2f}x over warm pickle "
        f"(floor {SPEEDUP_FLOOR}x)"
    )

    # Parent heap peaks, profiled runs (kept out of the timed pair —
    # tracemalloc skews wall-clock).
    _, _, pp_metrics = sweep(
        fanin="pickle", store_dir=store_dir, profile=True
    )
    _, _, sp_metrics = sweep(
        fanin="shm", store_dir=store_dir, profile=True
    )
    pickle_peak, pickle_peaks = _max_peak_kb(pp_metrics)
    shm_peak, shm_peaks = _max_peak_kb(sp_metrics)
    assert shm_peak < pickle_peak, (
        f"warm shm parent peak {shm_peak} kB not below "
        f"warm pickle's {pickle_peak} kB"
    )

    # Every exit path above unlinked its segments.
    assert _segments() == segments_before

    record_bench_json("fanin", {
        "scenario": "internet",
        "window_days": (end - start).days,
        "step_days": STEP_DAYS,
        "sampled_days": days,
        "jobs": 2,
        "byte_identity": sorted(matrix) + ["warm_store_pickle",
                                           "warm_store_shm"],
        "timings_s": {
            key: round(value, 3) for key, value in timings.items()
        },
        "warm_speedup_shm_vs_pickle": round(speedup, 2),
        "transport": {
            "shm_kb": shm_metrics.gauge("fanin.shm_kb"),
            "pickled_kb_under_shm": shm_metrics.gauge(
                "fanin.pickled_kb"
            ),
            "result_shard_writes": cold_metrics.counter(
                "store.result_writes"
            ),
            "result_shard_hits": ws_metrics.counter(
                "store.result_hits"
            ),
        },
        "parent_peak_kb": {
            "warm_pickle": pickle_peak,
            "warm_shm": shm_peak,
            "warm_pickle_stages": pickle_peaks,
            "warm_shm_stages": shm_peaks,
        },
    })
