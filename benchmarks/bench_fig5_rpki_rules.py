"""Fig. 5: consistency-rule validation on RPKI delegations.

Asserted shapes (appendix A): fail rate below 5 % at (M=10, N=0) — the
rule the paper adopts; the fail rate never reaches 30 % even at
M=100; at M=90 roughly 90 % of delegations are visible except for at
most 3 days; fail rates grow with M and shrink with N.

Also exercises the parallel M-sweep: a fanned-out evaluation must
return exactly the sequential result.
"""

import os
import time

from repro.analysis.report import render_comparison
from repro.delegation.rpki_eval import evaluate_rules_on_rpki, fail_rate_curves

SPAN_VALUES = (2, 5, 10, 15, 20, 30, 40, 50, 60, 70, 80, 90, 100)


def test_fig5_consistency_rules(benchmark, world, record_result):
    database = world.rpki()
    jobs = min(4, os.cpu_count() or 1)
    timings = {}

    def run_both():
        t0 = time.perf_counter()
        sequential = evaluate_rules_on_rpki(
            database, SPAN_VALUES, (0, 1, 2, 3)
        )
        timings["sequential"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = evaluate_rules_on_rpki(
            database, SPAN_VALUES, (0, 1, 2, 3), jobs=jobs
        )
        timings["parallel"] = time.perf_counter() - t0
        return sequential, parallel

    evaluations, parallel = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    # Sharding the M sweep must not change a single count.
    assert parallel == evaluations
    curves = fail_rate_curves(evaluations)

    by_key = {
        (e.max_span_days, e.allowed_missing): e.fail_rate
        for e in evaluations
    }
    assert by_key[(10, 0)] < 0.05            # the adopted rule
    assert max(by_key.values()) < 0.30       # never reaches 30 %
    assert 1.0 - by_key[(90, 3)] > 0.80      # ~90 % visible at 90 days
    # Monotone: fail rate grows with M, shrinks with N.
    for n, series in curves.items():
        rates = [rate for _m, rate in series]
        assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
    for m in SPAN_VALUES:
        by_n = [by_key[(m, n)] for n in (0, 1, 2, 3)]
        assert by_n == sorted(by_n, reverse=True)

    record_result(
        "fig5_rpki_rules",
        render_comparison(
            "Fig. 5 — (M, N) consistency-rule fail rates on RPKI",
            [
                ["fail rate at (M=10, N=0)", "~5% (below 5%)",
                 f"{by_key[(10, 0)]:.3f}"],
                ["max fail rate (any M<=100)", "< 30%",
                 f"{max(by_key.values()):.3f}"],
                ["visible at M=90 within N=3", "~90%",
                 f"{1.0 - by_key[(90, 3)]:.1%}"],
                ["monotone in M and N", "yes", "yes"],
                ["sequential sweep", "(before)",
                 f"{timings['sequential']:.2f}s"],
                [f"parallel sweep, jobs={jobs}", "matches sequential",
                 f"{timings['parallel']:.2f}s"],
            ],
        ),
    )
