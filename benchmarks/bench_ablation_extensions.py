"""Ablation A1: contribution of each inference extension.

Runs the pipeline with each extension toggled independently over a
sub-window and quantifies what it removes: the same-organization
filter cuts the delegation count; the consistency rule cuts the daily
variance.  (DESIGN.md §6, design-choice 3.)
"""

import datetime
import statistics

from repro.analysis.report import render_table
from repro.delegation import ConsistencyRule, DelegationInference, InferenceConfig

#: A shorter window keeps four full pipeline runs affordable, but long
#: enough that unfillable edge-of-window gaps do not dominate the
#: roughness comparison.
WINDOW_DAYS = 200


def _run(world, config):
    start = world.config.bgp_start
    end = start + datetime.timedelta(days=WINDOW_DAYS)
    as2org = world.as2org() if config.same_org_filter else None
    inference = DelegationInference(config, as2org)
    result = inference.infer_range(world.stream(), start, end)
    counts = [c for _d, c in result.counts_series()]
    deltas = [abs(b - a) for a, b in zip(counts, counts[1:])]
    # Roughness (mean day-over-day jump / level): isolates the on-off
    # jitter from slow growth, like the Fig. 6 benchmark.
    roughness = (sum(deltas) / len(deltas)) / statistics.mean(counts)
    return statistics.mean(counts), roughness


def test_ablation_extensions(benchmark, world, record_result):
    configs = {
        "baseline (i-iii)": InferenceConfig.baseline(),
        "+ same-org (iv)": InferenceConfig(consistency_rule=None),
        "+ consistency (v)": InferenceConfig(
            same_org_filter=False,
            consistency_rule=ConsistencyRule(10, 0),
        ),
        "extended (iv+v)": InferenceConfig.extended(),
    }

    def run_all():
        return {name: _run(world, cfg) for name, cfg in configs.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    base_mean, base_rough = results["baseline (i-iii)"]
    orgf_mean, _orgf_rough = results["+ same-org (iv)"]
    _cons_mean, cons_rough = results["+ consistency (v)"]
    ext_mean, ext_rough = results["extended (iv+v)"]

    # The same-org filter is what removes delegations ...
    assert orgf_mean < 0.85 * base_mean
    # ... and the consistency rule is what removes variance.
    assert cons_rough < base_rough / 2
    # Full extension stack combines both effects.  (The same-org filter
    # removes only *steady* intra-org delegations, which shrinks the
    # roughness denominator — hence the softer bound than for (v) alone.)
    assert ext_mean < 0.85 * base_mean and ext_rough < base_rough * 0.75

    rows = [
        [name, f"{mean:.1f}", f"{rough:.4f}"]
        for name, (mean, rough) in results.items()
    ]
    record_result(
        "ablation_extensions",
        render_table(
            ["configuration", "mean #delegations", "daily roughness"],
            rows,
            title="A1 — per-extension contribution "
                  f"(first {WINDOW_DAYS} days)",
        ),
    )
