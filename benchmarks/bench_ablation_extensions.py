"""Ablation A1: contribution of each inference extension.

Runs the pipeline with each extension toggled independently over a
sub-window and quantifies what it removes: the same-organization
filter cuts the delegation count; the consistency rule cuts the daily
variance.  (DESIGN.md §6, design-choice 3.)

The four configurations share one runner cache: the pairs differing
only in the consistency rule (v) — which runs after the fan-in — hit
the same per-day entries, so the sweep computes each (same-org, day)
combination exactly once.
"""

import datetime
import statistics

from repro.analysis.report import render_table
from repro.delegation import (
    ConsistencyRule,
    InferenceConfig,
    WorldStreamFactory,
    run_inference,
)

#: A shorter window keeps four full pipeline runs affordable, but long
#: enough that unfillable edge-of-window gaps do not dominate the
#: roughness comparison.
WINDOW_DAYS = 200


def _run(world, config, cache_dir):
    start = world.config.bgp_start
    end = start + datetime.timedelta(days=WINDOW_DAYS)
    as2org = world.as2org() if config.same_org_filter else None
    result = run_inference(
        WorldStreamFactory(world.config), start, end, config,
        as2org=as2org, jobs=1, cache_dir=cache_dir,
    )
    counts = [c for _d, c in result.counts_series()]
    deltas = [abs(b - a) for a, b in zip(counts, counts[1:])]
    # Roughness (mean day-over-day jump / level): isolates the on-off
    # jitter from slow growth, like the Fig. 6 benchmark.
    roughness = (sum(deltas) / len(deltas)) / statistics.mean(counts)
    return statistics.mean(counts), roughness, result.runner_stats


def test_ablation_extensions(benchmark, world, record_result, tmp_path):
    cache_dir = tmp_path / "cache"
    configs = {
        "baseline (i-iii)": InferenceConfig.baseline(),
        "+ same-org (iv)": InferenceConfig(consistency_rule=None),
        "+ consistency (v)": InferenceConfig(
            same_org_filter=False,
            consistency_rule=ConsistencyRule(10, 0),
        ),
        "extended (iv+v)": InferenceConfig.extended(),
    }

    def run_all():
        return {
            name: _run(world, cfg, cache_dir)
            for name, cfg in configs.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    base_mean, base_rough, base_stats = results["baseline (i-iii)"]
    orgf_mean, _orgf_rough, orgf_stats = results["+ same-org (iv)"]
    _cons_mean, cons_rough, cons_stats = results["+ consistency (v)"]
    ext_mean, ext_rough, ext_stats = results["extended (iv+v)"]

    # Config pairs differing only in rule (v) share per-day entries:
    # the later run of each pair must be served from cache entirely.
    assert base_stats.days_from_cache == 0   # first of the (iv)=off pair
    assert cons_stats.days_computed == 0     # reuses the baseline days
    assert orgf_stats.days_from_cache == 0   # first of the (iv)=on pair
    assert ext_stats.days_computed == 0      # reuses the same-org days

    # The same-org filter is what removes delegations ...
    assert orgf_mean < 0.85 * base_mean
    # ... and the consistency rule is what removes variance.
    assert cons_rough < base_rough / 2
    # Full extension stack combines both effects.  (The same-org filter
    # removes only *steady* intra-org delegations, which shrinks the
    # roughness denominator — hence the softer bound than for (v) alone.)
    assert ext_mean < 0.85 * base_mean and ext_rough < base_rough * 0.75

    rows = [
        [name, f"{mean:.1f}", f"{rough:.4f}"]
        for name, (mean, rough, _stats) in results.items()
    ]
    record_result(
        "ablation_extensions",
        render_table(
            ["configuration", "mean #delegations", "daily roughness"],
            rows,
            title="A1 — per-extension contribution "
                  f"(first {WINDOW_DAYS} days)",
        ),
    )
