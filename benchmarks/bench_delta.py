"""Multi-day sweep benchmark: full vs. v2 cache vs. incremental.

The question the delta subsystem exists to answer: once a sweep has
run once, what is the cheapest way to run it again (and to extend it
by a few days)?  Four contenders over the full ≥30-day small-scenario
window:

- ``full_cold`` — the columnar kernel, every day from the stream,
- ``cache_warm`` — the per-day v2 result cache, fully primed (the
  previous fastest re-run path: one file open + key hash per day),
- ``incremental_cold`` — the delta sweep, journaled, from nothing,
- ``incremental_warm`` — a pure journal replay (parse + row fold per
  day; no stream, no classification, no cover pass).

All four must be byte-identical; the acceptance bar is
``incremental_warm`` strictly beating ``cache_warm``.  Timings land
in ``BENCH_delta.json``.
"""

import time

from repro.delegation import (
    InferenceConfig,
    WorldStreamFactory,
    run_inference,
    write_daily_delegations,
)
from repro.simulation import World, small_scenario


def _counters(result):
    return {
        "pairs_seen": result.pairs_seen,
        "pairs_dropped_visibility": result.pairs_dropped_visibility,
        "pairs_dropped_origin": result.pairs_dropped_origin,
        "delegations_dropped_same_org":
            result.delegations_dropped_same_org,
        "bogon_prefix": result.sanitize_stats.bogon_prefix,
    }


def _daily_bytes(result, path):
    write_daily_delegations(result.daily, path)
    return path.read_bytes()


def test_bench_delta_sweep(record_bench_json, tmp_path):
    scenario = small_scenario()
    world = World(scenario)
    as2org = world.as2org()
    start, end = scenario.bgp_start, scenario.bgp_end
    days = (end - start).days
    assert days >= 30, "acceptance requires a >=30-day sweep"
    factory = WorldStreamFactory(scenario)
    config = InferenceConfig.extended()
    timings = {}

    def run(label, **kwargs):
        t0 = time.perf_counter()
        result = run_inference(
            factory, start, end, config, as2org=as2org, jobs=1,
            **kwargs,
        )
        timings[label] = time.perf_counter() - t0
        return result

    cache_dir = tmp_path / "cache"
    journal_dir = tmp_path / "journal"

    full_cold = run("full_cold")
    run("cache_cold", cache_dir=cache_dir)
    cache_warm = run("cache_warm", cache_dir=cache_dir)
    incremental_cold = run(
        "incremental_cold", incremental=True, journal_dir=journal_dir
    )
    incremental_warm = run(
        "incremental_warm", incremental=True, journal_dir=journal_dir
    )

    # Byte-identity across every path, counters in exact agreement.
    reference = _daily_bytes(full_cold, tmp_path / "full.jsonl")
    for label, result in [
        ("cache_warm", cache_warm),
        ("incremental_cold", incremental_cold),
        ("incremental_warm", incremental_warm),
    ]:
        assert _daily_bytes(
            result, tmp_path / f"{label}.jsonl"
        ) == reference, label
        assert _counters(result) == _counters(full_cold), label
    assert cache_warm.runner_stats.days_computed == 0
    assert incremental_warm.runner_stats.days_computed == 0
    assert incremental_warm.runner_stats.days_replayed == days

    # The acceptance bar: a warm journal replay beats the warm v2
    # cache (it skips per-day file opens, key hashing and payload
    # decode in favour of one sequential journal read).
    assert timings["incremental_warm"] < timings["cache_warm"], (
        f"warm replay {timings['incremental_warm']:.4f}s not faster "
        f"than warm v2 cache {timings['cache_warm']:.4f}s"
    )

    record_bench_json("delta", {
        "benchmark": "delta_sweep",
        "scenario": "small",
        "days": days,
        "byte_identical": True,
        "counters": _counters(full_cold),
        "delta_stats": {
            "days_replayed_warm":
                incremental_warm.runner_stats.days_replayed,
            "days_fastpathed_cold":
                incremental_cold.runner_stats.days_fastpathed,
            "journal": incremental_warm.runner_stats.journal,
        },
        "timings_seconds": {
            key: round(value, 4) for key, value in timings.items()
        },
        "speedups": {
            "incremental_warm_vs_cache_warm": round(
                timings["cache_warm"] / timings["incremental_warm"], 2
            ),
            "incremental_warm_vs_full_cold": round(
                timings["full_cold"] / timings["incremental_warm"], 2
            ),
            "incremental_cold_vs_full_cold": round(
                timings["full_cold"] / timings["incremental_cold"], 2
            ),
        },
    })
