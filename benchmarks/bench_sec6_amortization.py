"""§6: buy-versus-lease amortization.

Asserted shapes: with the measured 2020 buy price and the Fig. 4 lease
price range, amortization spans from under a year to multiple tens of
years, with a broker-typical case of two to three years.
"""

import datetime
import math

from repro.analysis.prices import mean_price_per_ip
from repro.analysis.report import render_comparison
from repro.market.amortization import amortization_grid, summarize_grid
from repro.market.leasing import SECOND_WAVE

D = datetime.date


def test_sec6_amortization(benchmark, world, record_result):
    buy_price = mean_price_per_ip(
        world.priced_transactions(), D(2020, 1, 1), D(2020, 6, 25)
    )
    lease_prices = [
        provider.advertised_price(SECOND_WAVE)
        for provider in world.leasing_providers()
    ]

    def analyze():
        grid = amortization_grid(buy_price, lease_prices)
        return grid, summarize_grid(grid)

    grid, summary = benchmark.pedantic(analyze, rounds=1, iterations=1)

    assert summary["min_months"] < 12            # "less than a year"
    assert summary["max_months"] > 240           # "multiple tens of years"
    assert summary["max_months"] / 12 > 20
    assert 12 < summary["median_months"] < 60    # brokers: 2-3 years typical
    never = sum(1 for s in grid if math.isinf(s.months()))
    assert never > 0  # cheap leases + small-holder fees never amortize

    record_result(
        "sec6_amortization",
        render_comparison(
            "§6 — buy-vs-lease amortization",
            [
                ["buy price used ($/IP)", "~22.50", f"{buy_price:.2f}"],
                ["fastest amortization", "< 1 year",
                 f"{summary['min_months']:.1f} months"],
                ["slowest finite amortization", "up to ~36 years",
                 f"{summary['max_months'] / 12:.1f} years"],
                ["median scenario", "2-3 years (broker average)",
                 f"{summary['median_months'] / 12:.1f} years"],
                ["scenarios that never amortize", "> 0", never],
            ],
        ),
    )
