"""Fig. 4: advertised leasing prices (2019-10-26 .. 2020-06-01).

Asserted shapes (§4): 12 providers initially, 21 at the final scrape;
prices span $0.30–$2.33 per IP per month; exactly Heficed, IPv4Mall,
and IP-AS changed prices; IP-AS's January test exceeded the floor by
more than 10x; no structural difference between pure leasing and
hosting-bundled providers.
"""

import datetime

from repro.analysis.leasing_prices import summarize_leasing_prices
from repro.analysis.report import render_comparison
from repro.market.leasing import FIRST_SCRAPE, SECOND_WAVE


def test_fig4_leasing_prices(benchmark, world, record_result):
    log = world.scrape_log()

    summary = benchmark.pedantic(
        summarize_leasing_prices,
        args=(log, FIRST_SCRAPE, SECOND_WAVE),
        rounds=1,
        iterations=1,
    )

    assert summary.provider_count == 21
    assert abs(summary.min_price - 0.30) < 1e-9
    assert summary.max_price == 3.90  # the January market test peak
    final_prices = [
        p.advertised_price(SECOND_WAVE) for p in log.providers()
    ]
    assert max(final_prices) == 2.33
    assert set(summary.changed_providers) == {"Heficed", "IPv4Mall", "IP-AS"}
    assert summary.max_spike_ratio > 10
    assert summary.bundled_vs_pure_pvalue > 0.05
    assert not summary.converged

    record_result(
        "fig4_leasing",
        render_comparison(
            "Fig. 4 — advertised leasing prices (/24, one month)",
            [
                ["providers scraped", "12 -> 21", summary.provider_count],
                ["price range ($/IP/month)", "0.30 - 2.33",
                 f"{summary.min_price:.2f} - {max(final_prices):.2f}"],
                ["providers that changed price",
                 "Heficed, IPv4Mall, IP-AS",
                 ", ".join(summary.changed_providers)],
                ["IP-AS January test vs floor", "> 10x",
                 f"{summary.max_spike_ratio:.1f}x"],
                ["bundled vs pure difference", "none (market unconverged)",
                 f"p={summary.bundled_vs_pure_pvalue:.3f}"],
            ],
        ),
    )
