"""Load benchmark for the serving layer.

Drives ≥100 concurrent client connections — half persistent WHOIS
sessions, half keep-alive HTTP sessions — against a live
``ReproServeServer`` on ephemeral ports, asserting byte-identical
answers under concurrency, then records per-frontend p50/p99 request
latency and aggregate throughput in ``BENCH_serve.json``.

A second, tightly-limited server verifies throttling under load: a
hammering client must see HTTP 429 with a usable ``Retry-After``.
"""

import asyncio
import json
import time

from repro.rdap.server import RdapServer
from repro.serve import QueryEngine, ReproServeServer
from repro.serve.client import HttpSession, WhoisSession
from repro.serve.protocol import render_json
from repro.simulation import World, small_scenario
from repro.whois.server import WhoisServer

CONNECTIONS = 100          # 50 whois + 50 http, all simultaneous
REQUESTS_PER_CONNECTION = 20


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
    return ordered[index]


def _stats(samples):
    return {
        "requests": len(samples),
        "p50_ms": round(_percentile(samples, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(samples, 0.99) * 1e3, 3),
        "max_ms": round(max(samples) * 1e3, 3),
    }


def test_serve_load(record_bench_json):
    world = World(small_scenario(seed=42))
    engine = QueryEngine.from_world(
        world,
        step_days=7,
        rate_limit_per_second=1e6,
        burst=1_000_000,
    )
    prefixes = []
    for obj in engine.whois.database.inetnums():
        prefixes.append(obj.primary_prefix())
        if len(prefixes) == 25:
            break
    whois_expected = {
        str(p): engine.whois_query(str(p)) for p in prefixes
    }
    http_expected = {
        str(p): render_json(engine.rdap_ip(p)) for p in prefixes
    }

    whois_latencies = []
    http_latencies = []

    async def whois_worker(server, worker, ready, go):
        prefix = str(prefixes[worker % len(prefixes)])
        session = WhoisSession(server.host, server.whois_port)
        await session.connect()
        try:
            ready()
            await go.wait()
            for _ in range(REQUESTS_PER_CONNECTION):
                t0 = time.perf_counter()
                answer = await session.query(prefix)
                whois_latencies.append(time.perf_counter() - t0)
                assert answer == whois_expected[prefix]
        finally:
            await session.close()

    async def http_worker(server, worker, ready, go):
        prefix = str(prefixes[worker % len(prefixes)])
        session = HttpSession(
            server.host, server.http_port, client_id=f"bench-{worker}"
        )
        await session.connect()
        try:
            ready()
            await go.wait()
            for _ in range(REQUESTS_PER_CONNECTION):
                t0 = time.perf_counter()
                status, _headers, body = await session.get(
                    f"/ip/{prefix}"
                )
                http_latencies.append(time.perf_counter() - t0)
                assert status == 200
                assert body == http_expected[prefix]
        finally:
            await session.close()

    async def run_load():
        server = ReproServeServer(engine)
        await server.start()
        half = CONNECTIONS // 2
        # Start gate (3.9-compatible, no asyncio.Barrier): every
        # worker connects first, then all fire simultaneously.
        connected = {"count": 0}
        all_connected = asyncio.Event()
        go = asyncio.Event()

        def ready():
            connected["count"] += 1
            if connected["count"] == CONNECTIONS:
                all_connected.set()

        try:
            workers = [
                asyncio.ensure_future(
                    whois_worker(server, n, ready, go)
                )
                for n in range(half)
            ] + [
                asyncio.ensure_future(
                    http_worker(server, n, ready, go)
                )
                for n in range(half)
            ]
            await all_connected.wait()
            live = server.health()["connections"]["live"]
            assert live >= CONNECTIONS, live
            t0 = time.perf_counter()
            go.set()
            await asyncio.gather(*workers)
            elapsed = time.perf_counter() - t0
            health = server.health()
        finally:
            await server.shutdown()
        return elapsed, health

    elapsed, health = asyncio.run(run_load())

    total_requests = len(whois_latencies) + len(http_latencies)
    assert total_requests == CONNECTIONS * REQUESTS_PER_CONNECTION
    assert health["connections"]["total"] == CONNECTIONS
    assert health["queries"]["throttled"] == 0
    qps = total_requests / elapsed
    assert qps > 0

    # Throttling under load: a tight server answers 429 + Retry-After.
    database = world.whois()
    tight = QueryEngine(
        whois=WhoisServer(database),
        rdap=RdapServer(database, rate_limit_per_second=1.0, burst=5),
    )
    target = str(prefixes[0])

    async def hammer():
        server = ReproServeServer(tight)
        await server.start()
        session = HttpSession(
            server.host, server.http_port, client_id="hammer"
        )
        await session.connect()
        try:
            statuses, retry_after = [], None
            for _ in range(10):
                status, headers, _body = await session.get(
                    f"/ip/{target}"
                )
                statuses.append(status)
                if status == 429 and retry_after is None:
                    retry_after = int(headers["retry-after"])
            return statuses, retry_after
        finally:
            await session.close()
            await server.shutdown()

    statuses, retry_after = asyncio.run(hammer())
    assert statuses.count(429) >= 1
    assert retry_after is not None and retry_after >= 1

    payload = {
        "connections": CONNECTIONS,
        "requests_per_connection": REQUESTS_PER_CONNECTION,
        "total_requests": total_requests,
        "elapsed_seconds": round(elapsed, 3),
        "qps": round(qps, 1),
        "whois": _stats(whois_latencies),
        "http": _stats(http_latencies),
        "throttle_check": {
            "statuses_429": statuses.count(429),
            "retry_after_seconds": retry_after,
        },
    }
    path = record_bench_json("serve", payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
    assert json.loads(open(path).read())["qps"] == payload["qps"]


def _build_engine():
    world = World(small_scenario(seed=42))
    return QueryEngine.from_world(
        world,
        step_days=7,
        rate_limit_per_second=1e6,
        burst=1_000_000,
    )


def _swap_metrics(engine, registry):
    engine.metrics = registry
    engine.rdap.set_metrics(registry)


def test_serve_instrumentation_overhead(record_bench_json):
    """Histograms + windows + per-route timers cost <5% warm qps.

    The same engine serves two identical warm loads, once with the
    no-op registry and once fully instrumented; only the registry is
    swapped between runs.  Wall-clock noise on a tiny load is real, so
    the gate retries a few times and passes on any attempt.
    """
    from repro.obs import NULL, MetricsRegistry

    engine = _build_engine()
    prefixes = []
    for obj in engine.whois.database.inetnums():
        prefixes.append(str(obj.primary_prefix()))
        if len(prefixes) == 10:
            break

    connections = 10
    requests = 40

    async def _load():
        server = ReproServeServer(engine)
        await server.start()

        async def worker(n):
            session = HttpSession(
                server.host, server.http_port, client_id=f"ovh-{n}"
            )
            await session.connect()
            try:
                for i in range(requests):
                    status, _h, _b = await session.get(
                        f"/ip/{prefixes[(n + i) % len(prefixes)]}"
                    )
                    assert status == 200
            finally:
                await session.close()

        try:
            # One warmup pass primes caches and the event loop.
            await worker(0)
            t0 = time.perf_counter()
            await asyncio.gather(
                *(worker(n) for n in range(connections))
            )
            return connections * requests / (time.perf_counter() - t0)
        finally:
            await server.shutdown()

    def measure(registry):
        _swap_metrics(engine, registry)
        return asyncio.run(_load())

    attempts = []
    for _ in range(3):
        null_qps = measure(NULL)
        real_qps = measure(MetricsRegistry())
        overhead = 1.0 - real_qps / null_qps
        attempts.append({
            "null_qps": round(null_qps, 1),
            "instrumented_qps": round(real_qps, 1),
            "overhead_fraction": round(overhead, 4),
        })
        if overhead < 0.05:
            break
    payload = {"attempts": attempts, "limit_fraction": 0.05}
    record_bench_json("serve_overhead", payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
    best = min(a["overhead_fraction"] for a in attempts)
    assert best < 0.05, (
        f"instrumentation overhead {best:.1%} over 3 attempts"
    )


def test_client_and_server_p99_agree(record_bench_json):
    """The server's histogram p99 matches what clients experienced.

    A 5 ms artificial floor (via the server's request hook) puts every
    request deep into one factor-2 bucket, so the client-side measured
    p99 and the server's exact-bucket estimate must land within one
    bucket of each other — the cross-check that the for-free
    histograms describe reality, not just themselves.
    """
    from repro.obs import MetricsRegistry
    from repro.obs.telemetry import bucket_index

    engine = _build_engine()
    registry = MetricsRegistry()
    _swap_metrics(engine, registry)
    target = str(next(iter(engine.whois.database.inetnums()))
                 .primary_prefix())
    samples = []

    async def _run():
        async def floor():
            await asyncio.sleep(0.005)

        server = ReproServeServer(engine, request_hook=floor)
        await server.start()
        session = HttpSession(
            server.host, server.http_port, client_id="p99"
        )
        await session.connect()
        try:
            for _ in range(80):
                t0 = time.perf_counter()
                status, _h, _b = await session.get(f"/ip/{target}")
                samples.append(time.perf_counter() - t0)
                assert status == 200
        finally:
            await session.close()
            await server.shutdown()

    asyncio.run(_run())

    histogram = registry.histogram("serve.http.request")
    assert histogram.count == 80
    client_p99 = _percentile(samples, 0.99)
    server_p99 = histogram.quantile(0.99)
    client_bucket = bucket_index(client_p99)
    server_bucket = bucket_index(server_p99)
    payload = {
        "requests": len(samples),
        "client_p99_ms": round(client_p99 * 1e3, 3),
        "server_p99_ms": round(server_p99 * 1e3, 3),
        "client_bucket": client_bucket,
        "server_bucket": server_bucket,
    }
    record_bench_json("serve_p99_agreement", payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
    assert abs(client_bucket - server_bucket) <= 1, payload
