"""Out-of-core smoke benchmark: the shard store at internet scale.

Runs a multi-year sweep (the internet preset's full 2018–2020 window,
subsampled with ``step_days`` to bound wall-clock) three ways — in
RAM, against a cold shard store, and against the warm store — with
per-stage memory profiling on, and asserts

- all three sweeps produce byte-identical daily delegations,
- the warm store serves every day as a hit (the stream is never
  rebuilt),
- peak traced memory is *flat*: the warm mmap-fed sweep peaks no
  higher over the full window than over a third of it, and no higher
  than the in-RAM sweep (mapped pages are the kernel's problem, not
  the process heap's).

Wall-clocks, store counters, and every ``profile.*.peak_kb`` gauge
land in ``BENCH_outofcore.json`` so CI archives the memory floor
alongside the timing trend.
"""

import datetime
import time

from repro.delegation import (
    InferenceConfig,
    WorldStreamFactory,
    run_inference,
    write_daily_delegations,
)
from repro.obs.metrics import MetricsRegistry
from repro.simulation import World, internet_scenario

#: Sample the 882-day window every N days: multi-year coverage at
#: smoke-test cost (10 sampled days).
STEP_DAYS = 90

#: Warm-run flatness bar: the full-window peak may exceed the
#: third-of-window peak by at most this factor.  Per-day maps are
#: released as the sweep advances, so the peak must not scale with
#: the number of days.
FLATNESS_SLACK = 1.5


def _daily_bytes(result, path):
    write_daily_delegations(result.daily, path)
    return path.read_bytes()


def _profile_peaks(metrics):
    return {
        name: value
        for name, value in metrics.gauges().items()
        if name.startswith("profile.") and name.endswith(".peak_kb")
    }


def test_outofcore_internet_sweep(record_bench_json, tmp_path):
    scenario = internet_scenario()
    factory = WorldStreamFactory(scenario)
    as2org = World(scenario).as2org()
    start, end = scenario.bgp_start, scenario.bgp_end
    days = len(range(0, (end - start).days, STEP_DAYS))
    store_dir = tmp_path / "store"

    def sweep(label, *, store=False, until=None, jobs=2):
        metrics = MetricsRegistry()
        metrics.enable_memory_profile()
        t0 = time.perf_counter()
        result = run_inference(
            factory, start, until or end, InferenceConfig.extended(),
            as2org=as2org, step_days=STEP_DAYS, jobs=jobs,
            store_dir=store_dir if store else None, metrics=metrics,
        )
        elapsed = time.perf_counter() - t0
        return result, elapsed, metrics

    in_ram, in_ram_s, in_ram_metrics = sweep("in_ram")
    cold, cold_s, cold_metrics = sweep("cold_store", store=True)
    warm, warm_s, warm_metrics = sweep("warm_store", store=True)

    # Byte-identical through every data plane.
    expected = _daily_bytes(in_ram, tmp_path / "in_ram.jsonl")
    assert _daily_bytes(cold, tmp_path / "cold.jsonl") == expected
    assert _daily_bytes(warm, tmp_path / "warm.jsonl") == expected

    # The warm store served the whole window without a stream build.
    assert cold_metrics.counter("store.writes") == days
    assert warm_metrics.counter("store.hits") == days
    assert warm_metrics.counter("store.misses") == 0
    assert warm_metrics.counter("store.malformed") == 0

    # Flatness: a warm sweep over a third of the window peaks within
    # FLATNESS_SLACK of the full window (per-day maps are released),
    # and mmap-fed days never out-peak the in-RAM stream build.
    partial_end = start + datetime.timedelta(days=(days // 3) * STEP_DAYS)
    _, _, partial_metrics = sweep(
        "warm_partial", store=True, until=partial_end
    )
    warm_peak = max(_profile_peaks(warm_metrics).values())
    partial_peak = max(_profile_peaks(partial_metrics).values())
    in_ram_peak = max(_profile_peaks(in_ram_metrics).values())
    assert warm_peak <= partial_peak * FLATNESS_SLACK
    assert warm_peak <= in_ram_peak

    shards = sorted(store_dir.rglob("*.shard"))
    record_bench_json("outofcore", {
        "scenario": "internet",
        "window_days": (end - start).days,
        "step_days": STEP_DAYS,
        "sampled_days": days,
        "jobs": 2,
        "timings_s": {
            "in_ram": round(in_ram_s, 3),
            "cold_store": round(cold_s, 3),
            "warm_store": round(warm_s, 3),
        },
        "store": {
            "shards": len(shards),
            "bytes": sum(path.stat().st_size for path in shards),
            "cold_writes": cold_metrics.counter("store.writes"),
            "warm_hits": warm_metrics.counter("store.hits"),
            "warm_mapped_kb": warm_metrics.gauge("store.mapped_kb"),
        },
        "profile_peak_kb": {
            "in_ram": _profile_peaks(in_ram_metrics),
            "warm_store": _profile_peaks(warm_metrics),
            "warm_store_partial": _profile_peaks(partial_metrics),
        },
    })
