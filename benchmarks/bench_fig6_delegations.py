"""Fig. 6: BGP delegations with and without the paper's extensions.

Asserted shapes (§4 + appendix): the extensions significantly reduce
the number of inferred delegations; they almost completely eliminate
the baseline's day-to-day variance; the extended algorithm yields a
~7 % increase in delegations over the window with a negligible change
in delegated addresses; the /20 share falls ~7 %→~3 % while the /24
share rises ~66 %→~72 %.
"""

import statistics

from repro.analysis.report import render_comparison
from repro.delegation import DelegationInference, InferenceConfig


def _series_stats(result):
    """(counts, roughness): mean day-over-day jump relative to level.

    Roughness isolates the on-off jitter Fig. 6 shows from the slow
    +7 % growth trend (which would dominate a plain CV).
    """
    counts = [c for _d, c in result.counts_series()]
    deltas = [abs(b - a) for a, b in zip(counts, counts[1:])]
    roughness = (sum(deltas) / len(deltas)) / statistics.mean(counts)
    return counts, roughness


def test_fig6_delegations(benchmark, world, record_result):
    config = world.config
    as2org = world.as2org()

    def run_both():
        extended = DelegationInference(InferenceConfig.extended(), as2org)
        ext_result = extended.infer_range(
            world.stream(), config.bgp_start, config.bgp_end
        )
        baseline = DelegationInference(InferenceConfig.baseline())
        base_result = baseline.infer_range(
            world.stream(), config.bgp_start, config.bgp_end
        )
        return ext_result, base_result

    ext_result, base_result = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    ext_counts, ext_rough = _series_stats(ext_result)
    base_counts, base_rough = _series_stats(base_result)

    # Extensions significantly reduce the delegation count ...
    assert statistics.mean(ext_counts) < 0.85 * statistics.mean(base_counts)
    # ... and collapse the daily variance.
    assert ext_rough < base_rough / 2

    growth = ext_counts[-1] / ext_counts[0]
    assert 1.04 <= growth <= 1.10          # "+~7 %"

    addresses = [a for _d, a in ext_result.addresses_series()]
    address_change = addresses[-1] / addresses[0]
    assert 0.90 <= address_change <= 1.10  # "negligible change"

    first_day = ext_result.observation_dates[0]
    last_day = ext_result.observation_dates[-1]
    dist_first = ext_result.daily.length_distribution(first_day)
    dist_last = ext_result.daily.length_distribution(last_day)
    assert 0.62 <= dist_first.get(24, 0.0) <= 0.70   # ~66 %
    assert 0.68 <= dist_last.get(24, 0.0) <= 0.76    # ~72 %
    assert 0.05 <= dist_first.get(20, 0.0) <= 0.09   # ~7 %
    assert 0.01 <= dist_last.get(20, 0.0) <= 0.05    # ~3 %

    record_result(
        "fig6_delegations",
        render_comparison(
            "Fig. 6 — BGP delegations w/wo extensions (2018-01..2020-06)",
            [
                ["extended vs baseline count", "significantly fewer",
                 f"{statistics.mean(ext_counts):.0f} vs "
                 f"{statistics.mean(base_counts):.0f}"],
                ["daily roughness", "almost eliminated",
                 f"{ext_rough:.4f} vs {base_rough:.4f}"],
                ["delegation growth", "+~7%", f"{(growth - 1):+.1%}"],
                ["delegated-address change", "negligible",
                 f"{(address_change - 1):+.1%}"],
                ["/24 share", "66% -> 72%",
                 f"{dist_first.get(24, 0):.1%} -> {dist_last.get(24, 0):.1%}"],
                ["/20 share", "7% -> 3%",
                 f"{dist_first.get(20, 0):.1%} -> {dist_last.get(20, 0):.1%}"],
            ],
        ),
    )
