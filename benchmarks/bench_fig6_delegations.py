"""Fig. 6: BGP delegations with and without the paper's extensions.

Asserted shapes (§4 + appendix): the extensions significantly reduce
the number of inferred delegations; they almost completely eliminate
the baseline's day-to-day variance; the extended algorithm yields a
~7 % increase in delegations over the window with a negligible change
in delegated addresses; the /20 share falls ~7 %→~3 % while the /24
share rises ~66 %→~72 %.

The run also exercises the columnar-vs-object kernel differential
(byte-identical output, >=3x sequential speedup) and the parallel,
cached runner end to end: sequential vs. fanned-out wall-clock,
byte-identical output, a warm-cache re-run that must clearly beat the
cold one, and an instrumented warm re-run whose absolute overhead
must stay negligible next to the cold compute cost.
"""

import os
import statistics
import time

from repro.analysis.report import render_comparison
from repro.delegation import (
    DelegationInference,
    InferenceConfig,
    WorldStreamFactory,
    run_inference,
    write_daily_delegations,
)
from repro.obs import MetricsRegistry, TracingRegistry, load_trace


def _series_stats(result):
    """(counts, roughness): mean day-over-day jump relative to level.

    Roughness isolates the on-off jitter Fig. 6 shows from the slow
    +7 % growth trend (which would dominate a plain CV).
    """
    counts = [c for _d, c in result.counts_series()]
    deltas = [abs(b - a) for a, b in zip(counts, counts[1:])]
    roughness = (sum(deltas) / len(deltas)) / statistics.mean(counts)
    return counts, roughness


def _daily_bytes(result, path):
    write_daily_delegations(result.daily, path)
    return path.read_bytes()


def test_fig6_delegations(
    benchmark, world, record_result, record_bench_json, tmp_path
):
    config = world.config
    as2org = world.as2org()
    factory = WorldStreamFactory(config)
    cache_dir = tmp_path / "cache"
    jobs = min(4, os.cpu_count() or 1)
    timings = {}

    def run_all():
        # The object/trie reference kernel is the "before" of the
        # columnar fast path — timed first, on a cold interpreter.
        t0 = time.perf_counter()
        reference = DelegationInference(
            InferenceConfig.extended(), as2org, kernel="object"
        ).infer_range(world.stream(), config.bgp_start, config.bgp_end)
        timings["sequential_object"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        sequential = DelegationInference(
            InferenceConfig.extended(), as2org
        ).infer_range(world.stream(), config.bgp_start, config.bgp_end)
        timings["sequential"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        ext_result = run_inference(
            factory, config.bgp_start, config.bgp_end,
            InferenceConfig.extended(), as2org=as2org,
            jobs=jobs, cache_dir=cache_dir,
        )
        timings["parallel_cold"] = time.perf_counter() - t0

        def warm_run(metrics_registry=None):
            kwargs = {}
            if metrics_registry is not None:
                kwargs["metrics"] = metrics_registry
            t0 = time.perf_counter()
            result = run_inference(
                factory, config.bgp_start, config.bgp_end,
                InferenceConfig.extended(), as2org=as2org,
                jobs=jobs, cache_dir=cache_dir, **kwargs,
            )
            return result, time.perf_counter() - t0

        warm, timings["warm_cache"] = warm_run()
        # Instrumentation overhead on the warm-cache path, best of 3
        # each so a single scheduler hiccup cannot decide the verdict.
        plain_times, metered_times = [], []
        for _ in range(3):
            _result, elapsed = warm_run()
            plain_times.append(elapsed)
            registry = MetricsRegistry()
            instrumented, elapsed = warm_run(registry)
            metered_times.append(elapsed)
        timings["warm_plain"] = min(plain_times)
        timings["warm_metered"] = min(metered_times)
        assert registry.counter("runner.cache.hits") == \
            registry.counter("runner.days_total")

        # Full tracing on the warm path: every span lands on the
        # timeline and the workers' lanes fan back into the parent.
        tracing = TracingRegistry(lane="main")
        traced, timings["warm_traced"] = warm_run(tracing)
        timings["trace_events"] = len(tracing.trace)
        tracing.trace.write(tmp_path / "warm.trace.json")

        base_result = run_inference(
            factory, config.bgp_start, config.bgp_end,
            InferenceConfig.baseline(), jobs=jobs, cache_dir=cache_dir,
        )
        return (reference, sequential, ext_result, warm, instrumented,
                traced, base_result)

    (reference, sequential, ext_result, warm, instrumented, traced,
     base_result) = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # The columnar kernel is a pure perf change: byte-identical to the
    # object reference, with every attrition counter in agreement ...
    seq_bytes = _daily_bytes(sequential, tmp_path / "seq.jsonl")
    assert _daily_bytes(reference, tmp_path / "ref.jsonl") == seq_bytes
    assert (
        sequential.pairs_seen,
        sequential.pairs_dropped_visibility,
        sequential.pairs_dropped_origin,
        sequential.delegations_dropped_same_org,
        sequential.sanitize_stats.bogon_prefix,
    ) == (
        reference.pairs_seen,
        reference.pairs_dropped_visibility,
        reference.pairs_dropped_origin,
        reference.delegations_dropped_same_org,
        reference.sanitize_stats.bogon_prefix,
    )
    # ... and at least 3x faster on the cold sequential path.
    kernel_speedup = timings["sequential_object"] / timings["sequential"]
    assert kernel_speedup >= 3.0, \
        f"columnar kernel speedup only {kernel_speedup:.1f}x"

    # The runner must reproduce the sequential pipeline byte for byte.
    assert _daily_bytes(ext_result, tmp_path / "par.jsonl") == seq_bytes
    assert _daily_bytes(warm, tmp_path / "warm.jsonl") == seq_bytes
    # Instrumented runs produce the identical result ...
    assert _daily_bytes(instrumented, tmp_path / "obs.jsonl") == seq_bytes
    # ... at negligible absolute overhead.  (Measured against the
    # cold compute cost: the binary v2 cache shrank the warm path so
    # far that the registry's fixed per-day cost — unchanged in
    # seconds — is no longer a meaningful *fraction* of it.)
    overhead = timings["warm_metered"] - timings["warm_plain"]
    assert overhead < 0.05 * timings["parallel_cold"], \
        f"instrumentation overhead {overhead:.3f}s on a " \
        f"{timings['parallel_cold']:.2f}s cold run"
    # Tracing, too, is inert — and the Chrome export round-trips.
    assert _daily_bytes(traced, tmp_path / "traced.jsonl") == seq_bytes
    assert timings["trace_events"] > 0
    exported = load_trace(tmp_path / "warm.trace.json")
    assert len([
        e for e in exported["traceEvents"] if e.get("ph") == "X"
    ]) == timings["trace_events"]

    # The second run is a pure cache read ...
    assert warm.runner_stats.days_computed == 0
    assert warm.runner_stats.cache_hit_rate == 1.0
    # ... and clearly faster than computing from scratch.  (The old
    # 10x floor predates the columnar kernel — cold compute shrank
    # ~4x, so the cache's headroom over it is structurally smaller.)
    assert timings["warm_cache"] * 2 <= timings["parallel_cold"]
    if (os.cpu_count() or 1) >= 4:
        # With real cores available the fan-out must at least halve the
        # wall-clock (skipped on smaller machines where forking four
        # workers onto one core can only add overhead).
        assert timings["parallel_cold"] * 2 <= timings["sequential"]

    ext_counts, ext_rough = _series_stats(ext_result)
    base_counts, base_rough = _series_stats(base_result)

    # Extensions significantly reduce the delegation count ...
    assert statistics.mean(ext_counts) < 0.85 * statistics.mean(base_counts)
    # ... and collapse the daily variance.
    assert ext_rough < base_rough / 2

    growth = ext_counts[-1] / ext_counts[0]
    assert 1.04 <= growth <= 1.10          # "+~7 %"

    addresses = [a for _d, a in ext_result.addresses_series()]
    address_change = addresses[-1] / addresses[0]
    assert 0.90 <= address_change <= 1.10  # "negligible change"

    first_day = ext_result.observation_dates[0]
    last_day = ext_result.observation_dates[-1]
    dist_first = ext_result.daily.length_distribution(first_day)
    dist_last = ext_result.daily.length_distribution(last_day)
    assert 0.62 <= dist_first.get(24, 0.0) <= 0.70   # ~66 %
    assert 0.68 <= dist_last.get(24, 0.0) <= 0.76    # ~72 %
    assert 0.05 <= dist_first.get(20, 0.0) <= 0.09   # ~7 %
    assert 0.01 <= dist_last.get(20, 0.0) <= 0.05    # ~3 %

    record_result(
        "fig6_delegations",
        render_comparison(
            "Fig. 6 — BGP delegations w/wo extensions (2018-01..2020-06)",
            [
                ["extended vs baseline count", "significantly fewer",
                 f"{statistics.mean(ext_counts):.0f} vs "
                 f"{statistics.mean(base_counts):.0f}"],
                ["daily roughness", "almost eliminated",
                 f"{ext_rough:.4f} vs {base_rough:.4f}"],
                ["delegation growth", "+~7%", f"{(growth - 1):+.1%}"],
                ["delegated-address change", "negligible",
                 f"{(address_change - 1):+.1%}"],
                ["/24 share", "66% -> 72%",
                 f"{dist_first.get(24, 0):.1%} -> {dist_last.get(24, 0):.1%}"],
                ["/20 share", "7% -> 3%",
                 f"{dist_first.get(20, 0):.1%} -> {dist_last.get(20, 0):.1%}"],
                ["sequential, object kernel", "(before)",
                 f"{timings['sequential_object']:.2f}s"],
                ["sequential, columnar kernel", ">=3x faster",
                 f"{timings['sequential']:.2f}s "
                 f"({kernel_speedup:.1f}x)"],
                [f"runner cold, jobs={jobs}", "(after)",
                 f"{timings['parallel_cold']:.2f}s"],
                ["runner warm cache", ">=2x faster than cold",
                 f"{timings['warm_cache']:.2f}s "
                 f"({timings['parallel_cold'] / timings['warm_cache']:.0f}x)"],
                ["instrumentation overhead (warm)", "<5% of cold",
                 f"{(timings['warm_metered'] - timings['warm_plain']):.3f}s "
                 f"({timings['warm_plain']:.3f}s -> "
                 f"{timings['warm_metered']:.3f}s)"],
                ["traced warm run", "byte-identical output",
                 f"{timings['warm_traced']:.3f}s, "
                 f"{timings['trace_events']} trace events"],
            ],
        ),
    )
    record_bench_json("fig6", {
        "benchmark": "fig6_delegations",
        "jobs": jobs,
        "kernel_differential": "byte-identical",
        "timings_seconds": {
            key: round(value, 4)
            for key, value in timings.items()
            if key != "trace_events"
        },
        "speedups": {
            "columnar_vs_object_sequential":
                round(kernel_speedup, 2),
            "warm_cache_vs_cold": round(
                timings["parallel_cold"] / timings["warm_cache"], 2
            ),
        },
    })
