"""§4: RDAP-delegation statistics and the BGP-vs-RDAP comparison.

Asserted shapes (all at the 1:100 scale of DESIGN.md):

- SUB-ALLOCATED:ASSIGNED object ratio ≈ 4.5k : 3.96M,
- 91.4 % of ASSIGNED PA entries are smaller than /24,
- after the ≥/24 and intra-org filters, ≈1.8k (→ "181k") RDAP
  delegations remain,
- BGP delegations cover ≈1.85 % of RDAP-delegated IPs while RDAP
  delegations cover ≈65.7 % of BGP-delegated IPs.
"""

import datetime

from repro.analysis.market_size import estimate_market_size
from repro.analysis.report import render_comparison
from repro.delegation import (
    DelegationInference,
    InferenceConfig,
    RdapExtractionStats,
    compare_delegations,
    extract_rdap_delegations,
)


def test_sec4_rdap_pipeline(benchmark, world, record_result):
    config = world.config

    def run_pipeline():
        server = world.rdap_server()
        client = world.rdap_client(server)
        stats = RdapExtractionStats()
        delegations = extract_rdap_delegations(
            world.whois().inetnums(), client, stats=stats
        )
        return delegations, stats, client

    rdap_delegations, stats, client = benchmark.pedantic(
        run_pipeline, rounds=1, iterations=1
    )

    # §4 snapshot statistics (1:100 scale).
    assert 30 <= stats.sub_allocated_total <= 60            # "~4.5k"/100
    assert 30_000 <= stats.assigned_total <= 50_000         # "~3.96M"/100
    assert abs(stats.assigned_smaller_than_24_fraction - 0.914) < 0.01
    assert 1_500 <= stats.delegations + stats.intra_org <= 4_500
    assert 1_400 <= len(rdap_delegations) <= 2_400          # "181k"/100
    assert stats.intra_org > 0                              # filter bites
    assert client.queries_sent >= stats.queried             # RDAP exercised

    # BGP delegations on the comparison date (end of the window).
    comparison_date = config.bgp_end - datetime.timedelta(days=1)
    inference = DelegationInference(InferenceConfig.extended(), world.as2org())
    pairs = world.stream().pairs_on(comparison_date)
    bgp = inference.infer_day_from_pairs(
        pairs, world.stream().monitor_count(), comparison_date
    )
    bgp_prefixes = [d.prefix for d in bgp]
    report = compare_delegations(bgp_prefixes, rdap_delegations)

    assert 0.01 <= report.bgp_over_rdap <= 0.035   # "~1.85 %"
    assert 0.55 <= report.rdap_over_bgp <= 0.75    # "~65.7 %"

    estimate = estimate_market_size(bgp_prefixes, rdap_delegations)
    assert estimate.combined_addresses > report.bgp_addresses * 10

    record_result(
        "sec4_rdap",
        render_comparison(
            "§4 — RDAP delegations and BGP/RDAP coverage (1:100 scale)",
            [
                ["SUB-ALLOCATED PA objects", "~4.5k/100",
                 stats.sub_allocated_total],
                ["ASSIGNED PA objects", "~3.96M/100", stats.assigned_total],
                ["ASSIGNED PA smaller than /24", "91.4%",
                 f"{stats.assigned_smaller_than_24_fraction:.1%}"],
                ["RDAP delegations after filters", "181k/100",
                 len(rdap_delegations)],
                ["BGP covers of RDAP IPs", "~1.85%",
                 f"{report.bgp_over_rdap:.2%}"],
                ["RDAP covers of BGP IPs", "~65.7%",
                 f"{report.rdap_over_bgp:.1%}"],
                ["combined vs BGP-only market size", ">> 1x",
                 f"{estimate.bgp_alone_underestimates_by:.1f}x"],
            ],
        ),
    )
