"""Ablation A3: the M&A-inference heuristic, evaluated.

The paper declines Giotsas et al.'s heuristics because they lack "an
evaluation [and] an analysis of the output's sensibility to the input
parameters".  Against the simulator's ground truth both are possible:
the structure-based heuristic is scored with precision/recall on the
unlabeled feeds (APNIC, LACNIC) and swept across its block-count
threshold.
"""

from repro.analysis.mna_heuristic import (
    MnaHeuristic,
    MnaHeuristicConfig,
    corrected_market_counts,
    parameter_sensitivity,
)
from repro.analysis.report import render_table
from repro.registry.rir import RIR

UNLABELED = (RIR.APNIC, RIR.LACNIC)


def test_ablation_mna_heuristic(benchmark, world, record_result):
    ledger = world.transfer_ledger()

    def analyze():
        sweep = parameter_sensitivity(
            ledger, (1, 2, 3, 4, 5), regions=UNLABELED
        )
        corrected = corrected_market_counts(
            ledger, MnaHeuristic(MnaHeuristicConfig(min_blocks=2)),
            RIR.APNIC,
        )
        return sweep, corrected

    sweep, corrected = benchmark.pedantic(analyze, rounds=1, iterations=1)
    by_param = {param: evaluation for param, evaluation in sweep}

    # Evaluation: the 2-block rule recovers essentially all M&A
    # (multi-block consolidations) at reasonable precision.
    assert by_param[2].recall > 0.95
    assert by_param[2].precision > 0.6
    assert by_param[2].f1 > 0.75
    # Sensitivity: precision grows with the threshold, recall falls
    # past the real consolidation sizes — the sweep exposes exactly
    # the parameter dependence the paper worried about.
    precisions = [by_param[k].precision for k in (1, 2, 3)]
    assert precisions == sorted(precisions)
    assert by_param[5].recall < by_param[2].recall
    # Applying the heuristic meaningfully corrects APNIC's raw counts.
    assert 0 < corrected["classified_mna"] < corrected["raw"]

    record_result(
        "ablation_mna_heuristic",
        render_table(
            ["min_blocks", "precision", "recall", "F1"],
            [
                [param, f"{ev.precision:.3f}", f"{ev.recall:.3f}",
                 f"{ev.f1:.3f}"]
                for param, ev in sweep
            ],
            title="A3 — M&A heuristic on unlabeled feeds "
                  "(evaluation the paper found missing)",
        ),
    )
