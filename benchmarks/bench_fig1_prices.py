"""Fig. 1: evolution of price per IP by prefix size, region, quarter.

Asserted shapes (§3): ≈2.9k transactions with the paper's per-quarter
regional counts; prices doubled since 2016 to ≈$22.50; /24 blocks
trade above /16 blocks; no statistically significant regional
difference; consolidation begins in spring 2019.
"""

import datetime

from repro.analysis.prices import (
    consolidation_quarter,
    doubling_factor,
    mean_price_per_ip,
    quarterly_price_stats,
    regional_price_difference,
)
from repro.analysis.report import render_comparison
from repro.registry.rir import RIR

D = datetime.date


def test_fig1_price_evolution(benchmark, world, record_result):
    dataset = world.priced_transactions()

    def analyze():
        return (
            quarterly_price_stats(dataset),
            regional_price_difference(dataset),
            doubling_factor(dataset),
            mean_price_per_ip(dataset, D(2020, 1, 1), D(2020, 6, 25)),
            consolidation_quarter(dataset),
        )

    stats, (h_stat, p_value), doubling, mean_2020, consolidation = (
        benchmark.pedantic(analyze, rounds=1, iterations=1)
    )

    # Dataset size and per-quarter regional counts (paper: 2.9k total;
    # APNIC 8-23, ARIN 83-196, RIPE 12-19 per quarter).
    total = len(dataset)
    assert 2500 <= total <= 3400
    for (_year, _q), quarter_data in dataset.by_quarter().items():
        counts = quarter_data.count_by_region()
        assert 8 <= counts.get(RIR.APNIC, 8) <= 23
        assert 83 <= counts.get(RIR.ARIN, 83) <= 196
        assert 12 <= counts.get(RIR.RIPE, 12) <= 19

    assert 1.8 <= doubling <= 2.3          # "prices have doubled since 2016"
    assert abs(mean_2020 - 22.5) < 1.5     # "average ... around $22.50"
    assert p_value > 0.01                  # no significant regional effect
    assert consolidation is not None and consolidation[0] == 2019
    # Size effect: /24 boxes sit above /16 boxes in 2020.
    recent = [s for s in stats if s.year == 2020]
    small = [s.stats.median for s in recent if s.bucket == "/24"]
    large = [s.stats.median for s in recent if s.bucket == "/16"]
    assert small and large
    assert min(small) > max(large) * 0.95

    record_result(
        "fig1_prices",
        render_comparison(
            "Fig. 1 — price per IP (2016-01 .. 2020-06)",
            [
                ["transactions", "2.9k", total],
                ["doubling factor since 2016", "~2.0", f"{doubling:.2f}"],
                ["mean price 2020 ($/IP)", "22.50", f"{mean_2020:.2f}"],
                ["regional difference p-value", "> 0.05 (n.s.)",
                 f"{p_value:.3f}"],
                ["consolidation starts", "spring 2019",
                 f"{consolidation[0]} Q{consolidation[1]}"],
                ["/24 vs /16 median (2020)", "/24 higher",
                 f"{min(small):.2f} vs {max(large):.2f}"],
            ],
        ),
    )
