"""CI smoke benchmark: the kernel differential at reduced scale.

Runs the full small-scenario BGP window (two months) through both
per-day kernels, sequentially and through the parallel runner, and
asserts the columnar fast path is byte-identical to the object/trie
reference — outputs and attrition counters alike.  The incremental
delta sweep rides along (cold journaled run + warm journal replay),
held to the same byte-identity bar.  Wall-clocks land in
``BENCH_smoke_kernel.json`` so CI can archive the trend without
paying the paper-scale fig6 run.

Scale note: small-scenario days are far too cheap for the 3x kernel
speedup floor to be meaningful (fixed per-day overhead dominates), so
this smoke run asserts correctness only and merely *records* the
ratio; the floor is enforced by ``bench_fig6_delegations``.
"""

import random
import time

from repro.delegation import (
    DelegationInference,
    InferenceConfig,
    WorldStreamFactory,
    run_inference,
    write_daily_delegations,
)
from repro.netbase.lpm import SortedPrefixMap, pack
from repro.netbase.prefix import IPv4Prefix
from repro.simulation import World, small_scenario


def _lpm_fixture(entries, queries, seed=40):
    """A dense synthetic map plus a mixed-length query batch."""
    rng = random.Random(seed)
    seen = {}
    while len(seen) < entries:
        length = rng.randint(8, 28)
        network = rng.randrange(1 << 32) & ~((1 << (32 - length)) - 1)
        seen[pack(network, length)] = len(seen)
    spm = SortedPrefixMap(
        (IPv4Prefix(key >> 6, key & 0x3F), value)
        for key, value in seen.items()
    )
    batch = []
    for _ in range(queries):
        length = rng.randint(0, 32)
        network = rng.randrange(1 << 32) & ~((1 << (32 - length)) - 1)
        batch.append(IPv4Prefix(network, length))
    return spm, batch


def _longest_match_linear(spm, prefix):
    """Reference lookup scanning every stored length.

    The pre-bisect implementation: walk all distinct lengths and skip
    the too-long ones one comparison at a time.  Kept inline here (via
    the map's private columns) purely as the "before" side of the
    recorded speedup.
    """
    network = prefix.network
    length = prefix.length
    for candidate in reversed(spm._lengths):
        if candidate > length:
            continue
        masked = network & ~((1 << (32 - candidate)) - 1)
        index = spm._find((masked << 6) | candidate)
        if index >= 0:
            return IPv4Prefix(masked, candidate), spm._values[index]
    return None


def _counters(result):
    return {
        "pairs_seen": result.pairs_seen,
        "pairs_dropped_visibility": result.pairs_dropped_visibility,
        "pairs_dropped_origin": result.pairs_dropped_origin,
        "delegations_dropped_same_org":
            result.delegations_dropped_same_org,
        "bogon_prefix": result.sanitize_stats.bogon_prefix,
    }


def _daily_bytes(result, path):
    write_daily_delegations(result.daily, path)
    return path.read_bytes()


def test_smoke_kernel_differential(record_bench_json, tmp_path):
    scenario = small_scenario()
    world = World(scenario)
    as2org = world.as2org()
    start, end = scenario.bgp_start, scenario.bgp_end
    timings = {}

    sequential = {}
    for kernel in ("object", "columnar"):
        t0 = time.perf_counter()
        sequential[kernel] = DelegationInference(
            InferenceConfig.extended(), as2org, kernel=kernel
        ).infer_range(world.stream(), start, end)
        timings[f"sequential_{kernel}"] = time.perf_counter() - t0

    # Byte-identical sequential outputs, counters in exact agreement.
    object_bytes = _daily_bytes(
        sequential["object"], tmp_path / "object.jsonl"
    )
    assert _daily_bytes(
        sequential["columnar"], tmp_path / "columnar.jsonl"
    ) == object_bytes
    assert _counters(sequential["columnar"]) == \
        _counters(sequential["object"])

    # Same through the parallel runner, both kernels.
    factory = WorldStreamFactory(scenario)
    for kernel in ("object", "columnar"):
        t0 = time.perf_counter()
        parallel = run_inference(
            factory, start, end, InferenceConfig.extended(),
            as2org=as2org, jobs=2, kernel=kernel,
        )
        timings[f"runner_jobs2_{kernel}"] = time.perf_counter() - t0
        assert _daily_bytes(
            parallel, tmp_path / f"runner-{kernel}.jsonl"
        ) == object_bytes
        assert _counters(parallel) == _counters(sequential["object"])

    # And the incremental delta sweep: a cold journaled run, then a
    # pure warm journal replay — both byte-identical, the replay
    # recomputing nothing.
    journal_dir = tmp_path / "journal"
    t0 = time.perf_counter()
    inc_cold = run_inference(
        factory, start, end, InferenceConfig.extended(),
        as2org=as2org, jobs=1, incremental=True,
        journal_dir=journal_dir,
    )
    timings["incremental_cold"] = time.perf_counter() - t0
    assert _daily_bytes(
        inc_cold, tmp_path / "inc-cold.jsonl"
    ) == object_bytes
    assert _counters(inc_cold) == _counters(sequential["object"])

    t0 = time.perf_counter()
    inc_warm = run_inference(
        factory, start, end, InferenceConfig.extended(),
        as2org=as2org, jobs=1, incremental=True,
        journal_dir=journal_dir,
    )
    timings["incremental_warm_replay"] = time.perf_counter() - t0
    assert _daily_bytes(
        inc_warm, tmp_path / "inc-warm.jsonl"
    ) == object_bytes
    assert _counters(inc_warm) == _counters(sequential["object"])
    assert inc_warm.runner_stats.days_computed == 0

    # LPM lookup micro-timing: the bisect-bounded candidate-length
    # walk against the old scan-every-length reference, same queries.
    spm, queries = _lpm_fixture(entries=20_000, queries=30_000)
    t0 = time.perf_counter()
    bisect_hits = [spm.longest_match(q) for q in queries]
    timings["lpm_longest_match_bisect"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    linear_hits = [_longest_match_linear(spm, q) for q in queries]
    timings["lpm_longest_match_linear"] = time.perf_counter() - t0
    assert bisect_hits == linear_hits

    record_bench_json("smoke_kernel", {
        "benchmark": "smoke_kernel_differential",
        "scenario": "small",
        "days": (end - start).days,
        "kernel_differential": "byte-identical",
        "counters": _counters(sequential["columnar"]),
        "timings_seconds": {
            key: round(value, 4) for key, value in timings.items()
        },
        "speedups": {
            "columnar_vs_object_sequential": round(
                timings["sequential_object"]
                / timings["sequential_columnar"], 2
            ),
            "incremental_cold_vs_sequential_columnar": round(
                timings["sequential_columnar"]
                / timings["incremental_cold"], 2
            ),
            "warm_replay_vs_incremental_cold": round(
                timings["incremental_cold"]
                / timings["incremental_warm_replay"], 2
            ),
            "lpm_bisect_vs_linear_scan": round(
                timings["lpm_longest_match_linear"]
                / timings["lpm_longest_match_bisect"], 2
            ),
        },
    })
