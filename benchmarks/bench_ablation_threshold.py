"""Ablation A2: the monitor visibility threshold.

Footnote 2 of the paper: "As long as the monitor threshold is chosen
between 10 % and 90 % the difference in inferred delegations is
negligible."  Sweeping the threshold on one comparison day must show a
flat plateau across 10–90 % (globally visible routes are seen by all
monitors; local noise by very few), with a drop only at 0 %.
"""

import datetime

from repro.analysis.report import render_table
from repro.delegation import DelegationInference, InferenceConfig

THRESHOLDS = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9)
SAMPLE_DAYS = 14


def test_ablation_visibility_threshold(benchmark, world, record_result):
    as2org = world.as2org()
    stream = world.stream()
    total_monitors = stream.monitor_count()
    start = world.config.bgp_start
    dates = [
        start + datetime.timedelta(days=30 * i) for i in range(SAMPLE_DAYS)
    ]
    day_pairs = {date: stream.pairs_on(date) for date in dates}

    def sweep():
        results = {}
        for threshold in THRESHOLDS:
            config = InferenceConfig(
                visibility_threshold=threshold,
                consistency_rule=None,
            )
            inference = DelegationInference(config, as2org)
            counts = [
                len(inference.infer_day_from_pairs(
                    pairs, total_monitors, date
                ))
                for date, pairs in day_pairs.items()
            ]
            results[threshold] = sum(counts) / len(counts)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    plateau = [results[t] for t in THRESHOLDS if t >= 0.1]
    # Negligible difference across 10..90 %.
    assert max(plateau) - min(plateau) <= 0.02 * max(plateau) + 1
    # Threshold 0 admits locally-visible noise (hijacks): not smaller.
    assert results[0.0] >= results[0.5]

    record_result(
        "ablation_threshold",
        render_table(
            ["visibility threshold", "mean #delegations"],
            [[f"{t:.0%}", f"{results[t]:.1f}"] for t in THRESHOLDS],
            title="A2 — monitor visibility threshold sweep "
                  "(paper footnote 2: flat from 10% to 90%)",
        ),
    )
