"""Fig. 3: inter-RIR transactions by origin and destination.

Asserted shapes (§3): only APNIC/ARIN/RIPE participate; counts grow
continuously while blocks shrink; ARIN is the dominant source, feeding
APNIC and RIPE.
"""

from repro.analysis.interrir import (
    blocks_shrink,
    counts_increase,
    inter_rir_flows,
    inter_rir_trend,
    net_flow_by_rir,
)
from repro.analysis.report import render_comparison
from repro.registry.rir import RIR


def test_fig3_inter_rir(benchmark, world, record_result):
    ledger = world.transfer_ledger()

    def analyze():
        return (
            inter_rir_flows(ledger),
            inter_rir_trend(ledger),
            net_flow_by_rir(ledger),
        )

    flows, trend, net = benchmark.pedantic(analyze, rounds=1, iterations=1)

    participants = {r for pair in flows for r in pair}
    assert participants <= {RIR.APNIC, RIR.ARIN, RIR.RIPE}
    assert counts_increase(trend)
    assert blocks_shrink(trend)
    arin_out = sum(c for (src, _dst), c in flows.items() if src is RIR.ARIN)
    assert arin_out > sum(flows.values()) * 0.5
    assert net[RIR.ARIN] < 0 < net[RIR.RIPE]

    record_result(
        "fig3_interrir",
        render_comparison(
            "Fig. 3 — inter-RIR transfers (2012..2020)",
            [
                ["participants", "APNIC/ARIN/RIPE only",
                 "/".join(sorted(r.display_name for r in participants))],
                ["yearly counts", "continuously increase",
                 f"{trend[0].count} -> {trend[-1].count}"],
                ["mean block length", "blocks get smaller",
                 f"/{trend[0].mean_block_length:.1f} -> "
                 f"/{trend[-1].mean_block_length:.1f}"],
                ["dominant source", "ARIN",
                 f"ARIN {arin_out}/{sum(flows.values())}"],
                ["ARIN net addresses", "strongly negative", net[RIR.ARIN]],
            ],
        ),
    )
