"""Table 1: the IPv4 exhaustion timeline of the five RIRs.

The pool-drawdown simulator (calibrated demand, genuine pool/policy
machinery) must land each RIR's last-/8 and depletion dates within a
month of the historical record.
"""

from repro.analysis.report import render_table
from repro.registry.rir import RIR, profile_for
from repro.simulation.exhaustion import simulate_all


def test_table1_exhaustion_timeline(benchmark, record_result):
    reports = benchmark.pedantic(simulate_all, rounds=1, iterations=1)

    rows = []
    for rir in RIR:
        profile = profile_for(rir)
        report = reports[rir]
        assert report.matches_profile(profile, tolerance_days=31), (
            f"{rir.display_name}: simulated {report.last_slash8_date} / "
            f"{report.depletion_date} vs Table 1 "
            f"{profile.last_slash8_date} / {profile.depletion_date}"
        )
        rows.append([
            profile.rir.display_name,
            profile.last_slash8_date,
            report.last_slash8_date,
            profile.depletion_date or "- (not depleted)",
            report.depletion_date or "- (not depleted)",
        ])
    # The two non-depleted RIRs must still hold roughly the space the
    # paper reports (APNIC part of a /10, AFRINIC part of a /11).
    assert reports[RIR.APNIC].remaining_addresses > (1 << 21)
    assert reports[RIR.AFRINIC].remaining_addresses > (1 << 20)

    record_result(
        "table1_exhaustion",
        render_table(
            ["RIR", "last /8 (paper)", "last /8 (sim)",
             "depleted (paper)", "depleted (sim)"],
            rows,
            title="Table 1 — IPv4 exhaustion timeline",
        ),
    )
