"""Fig. 2: number of market transfers per region (3-month bins).

Asserted shapes: each regional market starts once its RIR reaches the
last /8; AFRINIC/LACNIC stay negligible; RIPE shows year-end peaks;
the M&A filter only bites where the feed labels M&A.
"""

from repro.analysis.report import render_comparison
from repro.analysis.transfers import (
    market_starts_after_last_slash8,
    seasonal_ratio,
    transfer_counts,
)
from repro.registry.rir import RIR


def test_fig2_market_transfers(benchmark, world, record_result):
    ledger = world.transfer_ledger()

    def analyze():
        return (
            transfer_counts(ledger),
            market_starts_after_last_slash8(ledger),
        )

    counts, alignment = benchmark.pedantic(analyze, rounds=1, iterations=1)

    assert all(alignment.values()), f"market-start misalignment: {alignment}"
    totals = {
        rir: sum(c for _d, c in series) for rir, series in counts.items()
    }
    # AFRINIC and LACNIC negligible next to the big three.
    assert totals[RIR.AFRINIC] + totals[RIR.LACNIC] < totals[RIR.ARIN] / 10
    ripe_q4 = seasonal_ratio(counts[RIR.RIPE])
    assert ripe_q4 > 1.2, "RIPE year-end pattern missing"
    # Counts fluctuate (the market is in flux): non-trivial spread.
    arin_series = [c for _d, c in counts[RIR.ARIN] if c > 0]
    assert max(arin_series) > 1.3 * min(arin_series)

    record_result(
        "fig2_transfers",
        render_comparison(
            "Fig. 2 — market transfers per region (3-month bins)",
            [
                ["market starts at last /8", "all regions", "all regions"],
                ["AFRINIC+LACNIC total", "negligible",
                 totals[RIR.AFRINIC] + totals[RIR.LACNIC]],
                ["APNIC total", "-", totals[RIR.APNIC]],
                ["ARIN total", "-", totals[RIR.ARIN]],
                ["RIPE total", "-", totals[RIR.RIPE]],
                ["RIPE Q4/other ratio", "> 1 (year-end peaks)",
                 f"{ripe_q4:.2f}"],
            ],
        ),
    )
