"""Extension X1: BGP + RPKI + RDAP fusion (the paper's future work).

§7 proposes combining routing information, RPKI data, and the RDAP
databases "to obtain a better picture of the leasing ecosystem".
This benchmark runs all three pipelines on the paper-scale world and
fuses them, asserting the structural claims §4 makes about the
sources' complementarity.
"""

import datetime

from repro.analysis.report import render_comparison
from repro.delegation import (
    DelegationInference,
    InferenceConfig,
    Source,
    extract_rdap_delegations,
    fuse_delegations,
)


def test_x1_three_source_fusion(benchmark, world, record_result):
    config = world.config
    date = config.bgp_end - datetime.timedelta(days=1)

    def run_fusion():
        inference = DelegationInference(
            InferenceConfig.extended(), world.as2org()
        )
        bgp = inference.infer_day_from_pairs(
            world.stream().pairs_on(date),
            world.stream().monitor_count(),
            date,
        )
        rpki_date = world.rpki().dates()[-1]
        rpki = world.rpki().delegations_on(rpki_date)
        client = world.rdap_client()
        rdap = extract_rdap_delegations(world.whois().inetnums(), client)
        return fuse_delegations(bgp, rpki, rdap), bgp, rpki, rdap

    report, bgp, rpki, rdap = benchmark.pedantic(
        run_fusion, rounds=1, iterations=1
    )

    by_source = report.addresses_by_source
    # RDAP dominates by addresses (the administrative record sees the
    # reserved majority); RPKI is an order of magnitude below BGP
    # (paper appendix: "an order of magnitude less delegations").
    assert by_source[Source.RDAP] > 10 * by_source[Source.BGP]
    assert len(rpki) < len(bgp) / 5  # "an order of magnitude less"
    # The combined picture strictly exceeds every single source.
    for addresses in by_source.values():
        assert report.combined_addresses >= addresses
    # Corroboration exists at every level.
    corroboration = report.count_by_corroboration()
    assert corroboration.get(1, 0) > 0
    assert corroboration.get(2, 0) > 0

    record_result(
        "x1_fusion",
        render_comparison(
            "X1 — three-source delegation fusion (future work of §7)",
            [
                ["BGP delegations", "-", len(bgp)],
                ["RPKI delegations", "~10x fewer than BGP", len(rpki)],
                ["RDAP delegations", "-", len(rdap)],
                ["BGP addresses", "-", by_source[Source.BGP]],
                ["RDAP addresses", ">> BGP addresses",
                 by_source[Source.RDAP]],
                ["combined addresses", "the full ecosystem",
                 report.combined_addresses],
                ["corroboration levels",
                 "singly- and multi-source delegations",
                 str(dict(sorted(corroboration.items())))],
            ],
        ),
    )
