#!/usr/bin/env python3
"""The §4 leasing study: BGP vs RDAP delegations, end to end.

Reproduces the paper's core methodological point — neither routing
data nor registration data alone sees the whole leasing market — on a
small world, exercising the real pipelines: route collectors →
inference; WHOIS snapshot → RDAP queries → delegation extraction; then
the mutual-coverage comparison and the combined market-size estimate.

Run with::

    python examples/leasing_study.py
"""

import datetime

from repro.analysis.market_size import estimate_market_size
from repro.delegation import (
    DelegationInference,
    InferenceConfig,
    RdapExtractionStats,
    extract_rdap_delegations,
)
from repro.simulation import World, small_scenario


def main() -> None:
    world = World(small_scenario())
    config = world.config
    comparison_date = config.bgp_end - datetime.timedelta(days=1)

    # --- the routing view -------------------------------------------
    inference = DelegationInference(
        InferenceConfig.extended(), world.as2org()
    )
    result = inference.infer_range(
        world.stream(), config.bgp_start, config.bgp_end
    )
    bgp_prefixes = sorted(result.daily.prefixes_on(comparison_date))
    print(f"BGP view ({comparison_date}): "
          f"{len(bgp_prefixes)} delegated prefixes")
    print(f"  route sanitization: {result.sanitize_stats.as_dict()}")
    print(f"  dropped for visibility: {result.pairs_dropped_visibility}, "
          f"for AS_SET/MOAS: {result.pairs_dropped_origin}, "
          f"same-org: {result.delegations_dropped_same_org}")

    # --- the registration view ------------------------------------------
    server = world.rdap_server()
    client = world.rdap_client(server)
    stats = RdapExtractionStats()
    rdap_delegations = extract_rdap_delegations(
        world.whois().inetnums(), client, stats=stats
    )
    print(f"\nRDAP view: {len(rdap_delegations)} registered delegations")
    print(f"  snapshot: {stats.assigned_total} ASSIGNED PA "
          f"({stats.assigned_smaller_than_24_fraction:.1%} smaller than /24), "
          f"{stats.sub_allocated_total} SUB-ALLOCATED PA")
    print(f"  RDAP queries sent: {client.queries_sent} "
          f"(throttled {client.throttle_events} times), intra-org "
          f"filtered: {stats.intra_org}")

    # --- neither alone is enough -------------------------------------------
    estimate = estimate_market_size(bgp_prefixes, rdap_delegations)
    print()
    for line in estimate.summary_lines():
        print(line)


if __name__ == "__main__":
    main()
