#!/usr/bin/env python3
"""An RIR registry walkthrough: §2's lifecycle on a live registry.

Follows three organizations through the RIPE NCC of 2019/2020:
membership, the last pre-exhaustion allocation, the waiting list,
recovery + quarantine, an intra-RIR purchase, and an inter-RIR
transfer from ARIN.

Run with::

    python examples/registry_lifecycle.py
"""

import datetime

from repro.netbase.prefix import IPv4Prefix
from repro.registry import RIR, RegistrySystem
from repro.registry.transfers import TransferType

D = datetime.date


def main() -> None:
    system = RegistrySystem({
        RIR.RIPE: [IPv4Prefix.parse("185.0.0.0/22")],  # nearly empty pool
        RIR.ARIN: [IPv4Prefix.parse("8.0.0.0/16")],
    })
    ripe = system[RIR.RIPE]
    arin = system[RIR.ARIN]

    # 2019: a hoster joins while RIPE still has crumbs.
    ripe.open_membership("hoster-eu", D(2019, 10, 1))
    decision, block = ripe.request_allocation("hoster-eu", D(2019, 10, 2))
    print(f"2019-10-02 hoster-eu: {decision.reason} -> {block}")

    # Late 2019: RIPE depletes; a startup lands on the waiting list.
    for _ in range(3):
        ripe.open_membership(f"filler-{_}", D(2019, 10, 3))
        ripe.request_allocation(f"filler-{_}", D(2019, 10, 4))
    ripe.open_membership("startup", D(2020, 1, 10))
    decision, block = ripe.request_allocation("startup", D(2020, 1, 11))
    print(f"2020-01-11 startup:  {decision.reason} -> {block}")
    print(f"           waiting list length: {len(ripe.waiting_list)}")

    # An old LIR closes; its space is recovered into quarantine.
    ripe.open_membership("legacy-org", D(2015, 1, 1))
    ripe.register_external_block(
        "legacy-org", IPv4Prefix.parse("193.5.0.0/24")
    )
    recovered = ripe.close_membership("legacy-org", D(2020, 1, 20))
    print(f"2020-01-20 legacy-org closed; recovered {recovered}, "
          f"quarantined for {ripe.quarantine.holding_days} days")

    # Quarantine matures ~6 months later; the waiting list drains.
    fulfilled = ripe.tick(D(2020, 7, 25))
    for org, block in fulfilled:
        print(f"2020-07-25 waiting list fulfilled: {org} <- {block}")

    # Meanwhile the startup buys more space on the market.
    ripe.open_membership("seller", D(2018, 1, 1))
    ripe.register_external_block("seller", IPv4Prefix.parse("194.10.0.0/23"))
    record = ripe.transfer(
        D(2020, 8, 1), [IPv4Prefix.parse("194.10.0.0/23")],
        "seller", "startup",
        true_type=TransferType.MARKET,
        price_per_address=22.5,
    )
    print(f"2020-08-01 market transfer {record.transfer_id}: "
          f"{record.addresses} addresses at ${record.price_per_address}/IP")

    # And an ARIN org moves space into the RIPE region.
    arin.open_membership("us-seller", D(2015, 1, 1))
    arin.register_external_block("us-seller", IPv4Prefix.parse("8.0.4.0/24"))
    record = system.inter_rir_transfer(
        D(2020, 9, 1), [IPv4Prefix.parse("8.0.4.0/24")],
        "us-seller", RIR.ARIN, "startup", RIR.RIPE,
    )
    region = system.maintaining_rir(IPv4Prefix.parse("8.0.4.0/24"))
    print(f"2020-09-01 inter-RIR transfer: 8.0.4.0/24 now maintained by "
          f"{region.display_name}")

    # The published feeds carry everything, with the M&A labels RIPE uses.
    feed = system.ledger.feed_for(RIR.RIPE)
    print(f"\nRIPE transfer feed now lists {len(feed['transfers'])} records")
    annual = ripe.members.annual_fee("startup")
    print(f"startup's annual RIPE bill: ${annual:,.0f}")


if __name__ == "__main__":
    main()
