#!/usr/bin/env python3
"""Quickstart: build a world, infer delegations, summarize the market.

Run with::

    python examples/quickstart.py

Everything is deterministic; the whole script takes a few seconds.
"""

import datetime

from repro.analysis.prices import doubling_factor, mean_price_per_ip
from repro.delegation import DelegationInference, InferenceConfig
from repro.simulation import World, small_scenario


def main() -> None:
    # 1. A synthetic internet: orgs, topology, markets, registries.
    world = World(small_scenario())
    config = world.config
    print(f"world: {len(world.lirs())} LIRs, "
          f"{len(world.customers())} customer orgs, "
          f"{len(world.topology())} ASes, "
          f"{world.stream().monitor_count()} BGP monitors")

    # 2. Run the paper's delegation-inference pipeline over the window.
    inference = DelegationInference(InferenceConfig.extended(), world.as2org())
    result = inference.infer_range(
        world.stream(), config.bgp_start, config.bgp_end
    )
    first_date = result.observation_dates[0]
    last_date = result.observation_dates[-1]
    print(f"\nBGP delegations ({first_date} .. {last_date}):")
    print(f"  first day: {result.daily.count_on(first_date)} delegations, "
          f"{result.daily.addresses_on(first_date)} addresses")
    print(f"  last day:  {result.daily.count_on(last_date)} delegations, "
          f"{result.daily.addresses_on(last_date)} addresses")

    # 3. What does buying cost right now?
    dataset = world.priced_transactions()
    mean_2020 = mean_price_per_ip(
        dataset, datetime.date(2020, 1, 1), datetime.date(2020, 6, 25)
    )
    print(f"\ntransfer market: {len(dataset)} priced transactions")
    print(f"  mean 2020 price: ${mean_2020:.2f} per IP "
          f"({doubling_factor(dataset):.1f}x the 2016 level)")

    # 4. And leasing?
    prices = [
        provider.advertised_price(datetime.date(2020, 6, 1))
        for provider in world.leasing_providers()
    ]
    print(f"leasing market: {len(prices)} providers, "
          f"${min(prices):.2f} - ${max(prices):.2f} per IP per month")


if __name__ == "__main__":
    main()
