#!/usr/bin/env python3
"""Buy-or-lease advisor: the paper's §6 economics, made actionable.

Given a needed block size and a time horizon, compares buying (market
price + RIR maintenance fees) against every leasing provider's current
offer, and prints the break-even horizon per provider.

Run with::

    python examples/buy_or_lease.py [prefix_length] [horizon_years]
"""

import datetime
import math
import sys

from repro.analysis.prices import mean_price_per_ip
from repro.analysis.report import render_table
from repro.market.amortization import AmortizationScenario
from repro.registry.rir import RIR
from repro.simulation import World, small_scenario

D = datetime.date


def main() -> None:
    prefix_length = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    horizon_years = float(sys.argv[2]) if len(sys.argv) > 2 else 3.0

    world = World(small_scenario())
    buy_price = mean_price_per_ip(
        world.priced_transactions(), D(2020, 1, 1), D(2020, 6, 25)
    )
    addresses = 1 << (32 - prefix_length)
    today = D(2020, 6, 1)

    print(f"need: a /{prefix_length} ({addresses} addresses) "
          f"for {horizon_years:.0f} years")
    print(f"buying: ${buy_price:.2f}/IP -> "
          f"${buy_price * addresses:,.0f} up front (plus RIR fees)\n")

    rows = []
    for provider in sorted(
        world.leasing_providers(),
        key=lambda p: p.advertised_price(today) or math.inf,
    ):
        price = provider.advertised_price(today)
        if price is None:
            continue
        scenario = AmortizationScenario(
            rir=RIR.RIPE,
            block_length=prefix_length,
            buy_price_per_ip=buy_price,
            lease_price_per_ip_month=price,
        )
        months = scenario.months()
        monthly = provider.monthly_cost(prefix_length, today)
        if math.isinf(months):
            breakeven = "never (fees eat the saving)"
            verdict = "lease"
        else:
            breakeven = f"{months / 12:.1f} years"
            verdict = "buy" if months <= horizon_years * 12 else "lease"
        rows.append([
            provider.name,
            f"${price:.2f}",
            f"${monthly:,.0f}",
            "hosting bundle" if provider.bundles_hosting else "pure lease",
            breakeven,
            verdict,
        ])

    print(render_table(
        ["provider", "$/IP/mo", "monthly", "model", "break-even vs buy",
         f"verdict @{horizon_years:.0f}y"],
        rows,
        title="Leasing offers vs buying (RIPE fee schedule)",
    ))


if __name__ == "__main__":
    main()
