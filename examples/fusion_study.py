#!/usr/bin/env python3
"""Three-source fusion: the paper's §7 future work, implemented.

"We argue that future research efforts should combine routing
information, RPKI data, as well as the RDAP databases to obtain a
better picture of the leasing ecosystem" — this example does exactly
that: it runs the BGP inference, reads the RPKI delegations, extracts
the RDAP delegations, fuses all three, and interprets the provenance
combinations.

Run with::

    python examples/fusion_study.py
"""

import datetime

from repro.delegation import (
    DelegationInference,
    InferenceConfig,
    Source,
    extract_rdap_delegations,
    fuse_delegations,
)
from repro.simulation import World, small_scenario


def main() -> None:
    world = World(small_scenario())
    date = world.config.bgp_end - datetime.timedelta(days=1)

    # Source 1: routing (BGP collectors -> inference pipeline).
    inference = DelegationInference(
        InferenceConfig.extended(), world.as2org()
    )
    bgp = inference.infer_day_from_pairs(
        world.stream().pairs_on(date),
        world.stream().monitor_count(),
        date,
    )

    # Source 2: RPKI (ROA-implied delegations on the last snapshot).
    rpki = world.rpki().delegations_on(world.rpki().dates()[-1])

    # Source 3: registration (WHOIS snapshot -> RDAP queries).
    rdap = extract_rdap_delegations(
        world.whois().inetnums(), world.rdap_client()
    )

    report = fuse_delegations(bgp, rpki, rdap)
    print(f"sources on {date}: BGP={len(bgp)}, RPKI={len(rpki)}, "
          f"RDAP={len(rdap)}")
    print()
    for line in report.summary_lines():
        print(line)

    # Interpret the provenance classes.
    unrouted = [f for f in report.fused if f.registered_but_unrouted]
    unregistered = [f for f in report.fused if f.routed_but_unregistered]
    corroborated = [f for f in report.fused if f.corroboration >= 2]
    print()
    print(f"registered but unrouted (reserved for future customers): "
          f"{len(unrouted)}")
    print(f"routed but unregistered (no WHOIS entry required): "
          f"{len(unregistered)}")
    print(f"corroborated by 2+ sources: {len(corroborated)}")

    rpki_backed = [
        f for f in report.fused
        if Source.RPKI in f.sources and Source.BGP in f.sources
    ]
    print(f"routed with ROA continuity (operationally serious): "
          f"{len(rpki_backed)}")


if __name__ == "__main__":
    main()
