#!/usr/bin/env python3
"""A full market report: the paper's §3 analyses as readable tables.

Run with::

    python examples/market_report.py
"""

import datetime

from repro.analysis.interrir import inter_rir_flows, inter_rir_trend
from repro.analysis.prices import (
    consolidation_quarter,
    quarterly_price_stats,
    regional_price_difference,
)
from repro.analysis.report import render_table
from repro.analysis.transfers import market_start_dates, transfer_counts
from repro.registry.rir import RIR, profile_for
from repro.simulation import World, small_scenario

D = datetime.date


def price_section(world: World) -> None:
    dataset = world.priced_transactions()
    print(render_table(
        ["quarter", "bucket", "n", "median $/IP", "IQR"],
        [
            [f"{s.year} Q{s.quarter}", s.bucket, s.stats.count,
             f"{s.stats.median:.2f}",
             f"{s.stats.q1:.2f}-{s.stats.q3:.2f}"]
            for s in quarterly_price_stats(dataset)
            if s.year >= 2019
        ],
        title="Prices per IP by size bucket (2019+)",
    ))
    h_stat, p_value = regional_price_difference(dataset)
    print(f"\nregional price difference: H={h_stat:.2f}, p={p_value:.3f} "
          f"({'not ' if p_value > 0.05 else ''}significant)")
    quarter = consolidation_quarter(dataset)
    if quarter:
        print(f"consolidation phase detected from: {quarter[0]} Q{quarter[1]}")


def transfer_section(world: World) -> None:
    ledger = world.transfer_ledger()
    counts = transfer_counts(ledger)
    starts = market_start_dates(ledger)
    rows = []
    for rir in RIR:
        total = sum(c for _d, c in counts[rir])
        rows.append([
            rir.display_name,
            profile_for(rir).last_slash8_date,
            starts[rir] or "- (no market)",
            total,
        ])
    print("\n" + render_table(
        ["RIR", "last /8", "market start", "market transfers"],
        rows,
        title="Regional transfer markets",
    ))


def inter_rir_section(world: World) -> None:
    ledger = world.transfer_ledger()
    flows = inter_rir_flows(ledger)
    print("\n" + render_table(
        ["flow", "transfers"],
        [
            [f"{src.display_name} -> {dst.display_name}", count]
            for (src, dst), count in sorted(
                flows.items(), key=lambda kv: -kv[1]
            )
        ],
        title="Inter-RIR flows",
    ))
    trend = inter_rir_trend(ledger)
    print("\n" + render_table(
        ["year", "count", "mean block"],
        [[t.year, t.count, f"/{t.mean_block_length:.1f}"] for t in trend],
        title="Inter-RIR trend (counts up, blocks down)",
    ))


def main() -> None:
    world = World(small_scenario())
    price_section(world)
    transfer_section(world)
    inter_rir_section(world)


if __name__ == "__main__":
    main()
