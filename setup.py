"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs fail with ``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e . --no-build-isolation --config-settings editable_mode=compat``
(or plain ``python setup.py develop``) work offline.  All metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
