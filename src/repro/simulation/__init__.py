"""The synthetic internet world.

Generates every data feed the paper's pipelines consume, with the
statistical shapes its evaluation reports:

- :mod:`~repro.simulation.scenario` — scenario configuration presets,
- :mod:`~repro.simulation.addressplan` — per-RIR address space pools,
- :mod:`~repro.simulation.orgs` — organizations with the §6 business
  models and their ASes,
- :mod:`~repro.simulation.delegation_plan` — BGP-visible delegation
  lifecycles (composition drift, on-off announcement patterns),
- :mod:`~repro.simulation.market_history` — transfer ledger (Fig. 2,
  Fig. 3) and the priced transaction dataset (Fig. 1),
- :mod:`~repro.simulation.whois_gen` — the WHOIS database (§4 RDAP
  statistics),
- :mod:`~repro.simulation.rpki_gen` — daily ROA snapshots (Fig. 5),
- :mod:`~repro.simulation.announce` — the per-day announcement source
  feeding the BGP collectors (Fig. 6),
- :mod:`~repro.simulation.exhaustion` — RIR pool-drawdown simulation
  (Table 1),
- :mod:`~repro.simulation.world` — the :class:`World` tying it all
  together, deterministically from one seed.
"""

from repro.simulation.scenario import (
    ScenarioConfig,
    internet_scenario,
    paper_scenario,
    small_scenario,
)
from repro.simulation.world import World

__all__ = [
    "ScenarioConfig",
    "World",
    "internet_scenario",
    "paper_scenario",
    "small_scenario",
]
