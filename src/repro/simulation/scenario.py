"""Scenario configuration for the world generator.

Three presets matter:

- :func:`small_scenario` — seconds-fast, for tests and examples;
- :func:`paper_scenario` — the benchmark configuration whose outputs
  reproduce the paper's figures at a 1:100 scale of the real RIPE
  database (all *proportions* preserved; see DESIGN.md);
- :func:`internet_scenario` — the paper composition scaled ~15× (so
  ~1:7 of the real database) to exercise the out-of-core data plane:
  days too large to comfortably pickle between processes, sized for
  the memory-mapped shard store.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.bgp.topology import TopologyConfig
from repro.errors import ScenarioError


@dataclass(frozen=True)
class DelegationComposition:
    """Prefix-length composition of BGP-visible delegations.

    ``start`` and ``end`` map prefix length → delegation count at the
    window's first and last day; the generator interpolates lifecycles
    in between.  The paper's Fig. 6 endpoints: /24 share 66 % → 72 %,
    /20 share 7 % → 3 %, total +7 %, delegated addresses ≈ flat.
    """

    start: Dict[int, int] = field(
        default_factory=lambda: {24: 396, 23: 60, 22: 60, 21: 38, 20: 42, 19: 4}
    )
    end: Dict[int, int] = field(
        default_factory=lambda: {24: 462, 23: 58, 22: 62, 21: 27, 20: 19, 19: 14}
    )

    def validate(self) -> None:
        for mapping in (self.start, self.end):
            if not mapping:
                raise ScenarioError("empty delegation composition")
            for length, count in mapping.items():
                if not 8 <= length <= 24 or count < 0:
                    raise ScenarioError(
                        f"bad composition entry /{length}: {count}"
                    )


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything the world generator needs, in one frozen object."""

    seed: int = 42

    # -- population ---------------------------------------------------
    lir_count: int = 60
    customer_count: int = 220
    #: Fraction of LIRs with a second AS (feeds intra-org delegations).
    second_as_fraction: float = 0.35

    # -- topology / collectors -----------------------------------------
    topology: TopologyConfig = field(
        default_factory=lambda: TopologyConfig(
            tier1_count=6, mid_count=80, stub_count=400
        )
    )
    collector_names: Tuple[str, ...] = ("rrc00", "route-views2", "isolario")
    monitors_per_collector: int = 8

    # -- BGP measurement window (Fig. 6) ---------------------------------
    bgp_start: datetime.date = datetime.date(2018, 1, 1)
    bgp_end: datetime.date = datetime.date(2020, 6, 1)
    delegations: DelegationComposition = field(
        default_factory=DelegationComposition
    )
    #: Fraction of BGP delegations with on-off announcement patterns.
    onoff_fraction: float = 0.55
    #: Fraction of intra-organization more-specific announcements,
    #: relative to the cross-org delegation count (removed by ext. iv).
    intra_org_fraction: float = 0.40
    #: VPN-provider rotation chains (§6): customers that continuously
    #: lease but "rotate" the actual prefixes every few weeks.  Each
    #: chain contributes one active /24 delegation at all times, with
    #: the prefix itself changing.
    vpn_rotation_chains: int = 20
    #: Days between prefix rotations (mean; jittered per segment).
    vpn_rotation_period_days: int = 45
    #: Daily probability of a localized more-specific hijack.
    hijack_rate: float = 0.15
    #: Daily probability of an AS_SET-origin artifact.
    as_set_rate: float = 0.10

    # -- WHOIS / RDAP (§4) -----------------------------------------------
    #: Registered-only leases (in RDAP, invisible in BGP): prefix
    #: length → object count.  Sized so BGP delegations cover ≈1.85 %
    #: of RDAP-delegated IPs at the paper's 1:100 scale.
    registered_only_composition: Dict[int, int] = field(
        default_factory=lambda: {17: 200, 18: 420, 19: 350, 20: 280, 21: 90}
    )
    #: ≥/24 ASSIGNED PA objects that are intra-organization (filtered
    #: by the RDAP pipeline's registrant/admin test).
    assigned_intra_org_large_count: int = 1300
    #: Fraction of ASSIGNED PA smaller than /24 (paper: 91.4 %) — the
    #: generator derives the small-object count from this.
    assigned_small_fraction: float = 0.914
    #: SUB-ALLOCATED PA objects (paper: ~4.5k; 1:100 scale).
    sub_allocated_count: int = 45
    #: Fraction of BGP-delegated addresses also registered in RDAP
    #: (paper: ~65.7 %).
    rdap_overlap_fraction: float = 0.657
    #: Prefix length of each LIR's allocation (holding).
    lir_holding_length: int = 12

    # -- RPKI (Fig. 5) --------------------------------------------------------
    #: RPKI-visible delegations — "an order of magnitude less ...
    #: compared to BGP" (appendix A), i.e. ~a tenth of the ~600 BGP
    #: delegations.
    rpki_delegation_count: int = 64
    #: Fraction of RPKI delegations with flappy ROA continuity.
    rpki_flappy_fraction: float = 0.18
    rpki_stable_absence_rate: float = 0.001
    rpki_flappy_absence_rate: float = 0.06

    # -- market (Fig. 1, 2, 3) ----------------------------------------------------
    market_start: datetime.date = datetime.date(2009, 10, 1)
    market_end: datetime.date = datetime.date(2020, 6, 25)
    pricing_start: datetime.date = datetime.date(2016, 1, 1)
    #: Mean per-quarter *priced* transactions by region (paper ranges:
    #: APNIC 8–23, ARIN 83–196, RIPE 12–19 → ≈2.9k total).
    priced_per_quarter: Dict[str, Tuple[int, int]] = field(
        default_factory=lambda: {
            "apnic": (8, 23),
            "arin": (83, 196),
            "ripencc": (12, 19),
        }
    )
    #: Total priced AFRINIC+LACNIC transactions in the whole window
    #: (paper: 31, excluded from the analysis).
    priced_minor_regions_total: int = 31
    #: Mean per-quarter transfer-ledger counts at market maturity.
    transfers_per_quarter: Dict[str, int] = field(
        default_factory=lambda: {
            "apnic": 160, "arin": 260, "ripencc": 520,
            "afrinic": 3, "lacnic": 4,
        }
    )
    #: Fraction of intra-RIR transfers that are M&A consolidations.
    mna_fraction: float = 0.22
    #: RIPE's year-end seasonal factor (Fig. 2 pattern).
    ripe_q4_factor: float = 1.6

    def validate(self) -> None:
        if self.lir_count < 2 or self.customer_count < 1:
            raise ScenarioError("need at least two LIRs and one customer")
        for fraction in (
            self.second_as_fraction,
            self.onoff_fraction,
            self.intra_org_fraction,
            self.hijack_rate,
            self.as_set_rate,
            self.assigned_small_fraction,
            self.rdap_overlap_fraction,
            self.rpki_flappy_fraction,
            self.mna_fraction,
        ):
            if not 0.0 <= fraction <= 1.0:
                raise ScenarioError(f"fraction out of range: {fraction}")
        if self.bgp_start >= self.bgp_end:
            raise ScenarioError("empty BGP window")
        if self.market_start >= self.market_end:
            raise ScenarioError("empty market window")
        self.delegations.validate()
        self.topology.validate()


def small_scenario(seed: int = 42) -> ScenarioConfig:
    """A fast scenario for tests and examples (seconds, not minutes)."""
    return ScenarioConfig(
        seed=seed,
        lir_count=16,
        customer_count=40,
        topology=TopologyConfig(tier1_count=4, mid_count=12, stub_count=70),
        monitors_per_collector=4,
        bgp_start=datetime.date(2020, 1, 1),
        bgp_end=datetime.date(2020, 3, 1),
        delegations=DelegationComposition(
            start={24: 20, 23: 4, 22: 4, 21: 2, 20: 3, 19: 1},
            end={24: 24, 23: 4, 22: 4, 21: 2, 20: 2, 19: 1},
        ),
        registered_only_composition={18: 6, 19: 8, 20: 10, 21: 6},
        assigned_intra_org_large_count=20,
        vpn_rotation_chains=3,
        vpn_rotation_period_days=15,  # short window -> faster rotation
        sub_allocated_count=8,
        rpki_delegation_count=40,
        market_start=datetime.date(2015, 1, 1),
        market_end=datetime.date(2020, 6, 25),
        transfers_per_quarter={
            "apnic": 12, "arin": 20, "ripencc": 30,
            "afrinic": 1, "lacnic": 1,
        },
        priced_per_quarter={
            "apnic": (3, 6), "arin": (10, 20), "ripencc": (4, 8),
        },
        priced_minor_regions_total=5,
    )


def paper_scenario(seed: int = 42) -> ScenarioConfig:
    """The benchmark scenario (1:100 scale of the real datasets)."""
    return ScenarioConfig(seed=seed)


#: How much larger the internet preset's BGP composition is than the
#: paper preset's (the ROADMAP asks for 10–50×).
INTERNET_SCALE_FACTOR = 15


def internet_scenario(seed: int = 42) -> ScenarioConfig:
    """The out-of-core stress preset: ~15× the paper's prefix counts.

    Every BGP-visible delegation count is multiplied by
    :data:`INTERNET_SCALE_FACTOR` (≈9–10k concurrent delegations, ~1:7
    of the real 2020 RIPE view), with the LIR population raised to the
    full 96 ``/12`` holdings the RIPE region's planned ``/8`` space
    can carve.  The WHOIS-side populations grow only 2–3× — they don't
    sit on the per-day hot path, and keeping them moderate leaves
    carve-pool headroom for the delegation churn.  The BGP window stays
    the paper's full 882 days so multi-year sweeps are honest;
    benchmarks subsample with ``step_days`` to bound wall-clock.
    """
    factor = INTERNET_SCALE_FACTOR
    base = DelegationComposition()
    return ScenarioConfig(
        seed=seed,
        # 6 RIPE /8s × 16 /12s each = 96 possible LIR holdings.
        lir_count=96,
        customer_count=600,
        topology=TopologyConfig(
            tier1_count=6, mid_count=120, stub_count=800
        ),
        delegations=DelegationComposition(
            start={
                length: count * factor
                for length, count in base.start.items()
            },
            end={
                length: count * factor
                for length, count in base.end.items()
            },
        ),
        vpn_rotation_chains=40,
        registered_only_composition={
            17: 400, 18: 840, 19: 700, 20: 560, 21: 180
        },
        assigned_intra_org_large_count=2600,
        sub_allocated_count=90,
        rpki_delegation_count=640,
    )
