"""The :class:`World`: one seed → every data feed.

Components are built lazily and cached; each draws from its own
deterministic RNG stream (seed, component-name), so generating the
WHOIS database never perturbs the market history and vice versa.
"""

from __future__ import annotations

import datetime
import random
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.asorg.as2org import As2OrgDataset, As2OrgSnapshot, Organization
from repro.bgp.collector import Collector, CollectorSystem
from repro.bgp.propagation import PropagationModel
from repro.bgp.stream import RouteStream
from repro.bgp.topology import ASTopology
from repro.errors import SimulationError
from repro.market.leasing import LeasingProvider, ScrapeLog, default_leasing_providers
from repro.market.pricing import PriceModel
from repro.market.transactions import TransactionDataset
from repro.netbase.prefix import IPv4Prefix
from repro.rdap.client import RdapClient
from repro.rdap.server import RdapServer
from repro.registry.pool import FreePool
from repro.registry.rir import RIR
from repro.registry.transfers import TransferLedger
from repro.rpki.database import RoaDatabase
from repro.simulation.addressplan import AddressPlan
from repro.simulation.announce import AnnouncementSource
from repro.simulation.delegation_plan import (
    DelegationPlan,
    build_delegation_plan,
)
from repro.simulation.market_history import (
    generate_priced_transactions,
    generate_transfer_ledger,
)
from repro.simulation.orgs import SimOrg, generate_orgs
from repro.simulation.rpki_gen import build_rpki_database
from repro.simulation.scenario import ScenarioConfig
from repro.simulation.whois_gen import WhoisBuildReport, build_whois_database
from repro.whois.database import WhoisDatabase


class World:
    """Deterministic synthetic internet for one scenario."""

    def __init__(self, config: ScenarioConfig):
        config.validate()
        self._config = config
        self._plan = AddressPlan()
        # Lazy caches.
        self._topology: Optional[ASTopology] = None
        self._propagation: Optional[PropagationModel] = None
        self._collector_system: Optional[CollectorSystem] = None
        self._orgs: Optional[Tuple[List[SimOrg], List[SimOrg]]] = None
        self._carve_pools: Optional[Dict[str, FreePool]] = None
        self._delegation_plan: Optional[DelegationPlan] = None
        self._announcement_source: Optional[AnnouncementSource] = None
        self._whois: Optional[Tuple[WhoisDatabase, WhoisBuildReport]] = None
        self._rpki: Optional[RoaDatabase] = None
        self._as2org: Optional[As2OrgDataset] = None
        self._ledger: Optional[TransferLedger] = None
        self._priced: Optional[TransactionDataset] = None
        self._price_model = PriceModel()

    @property
    def config(self) -> ScenarioConfig:
        return self._config

    @property
    def price_model(self) -> PriceModel:
        return self._price_model

    def _rng(self, component: str) -> random.Random:
        return random.Random(f"{self._config.seed}:{component}")

    # -- topology and collectors -----------------------------------------

    def topology(self) -> ASTopology:
        if self._topology is None:
            self._topology = ASTopology.generate(self._config.topology)
        return self._topology

    def propagation(self) -> PropagationModel:
        if self._propagation is None:
            self._propagation = PropagationModel(self.topology())
        return self._propagation

    def collector_system(self) -> CollectorSystem:
        if self._collector_system is None:
            config = self._config
            total = (
                len(config.collector_names) * config.monitors_per_collector
            )
            monitor_asns = self.topology().well_connected_asns(
                total, seed=config.seed
            )
            collectors = []
            for i, name in enumerate(config.collector_names):
                share = monitor_asns[
                    i * config.monitors_per_collector:
                    (i + 1) * config.monitors_per_collector
                ]
                collectors.append(Collector(name, share))
            self._collector_system = CollectorSystem(
                collectors, self.propagation()
            )
        return self._collector_system

    def monitors(self) -> FrozenSet[int]:
        return self.collector_system().all_monitors()

    # -- organizations ---------------------------------------------------------

    def orgs(self) -> Tuple[List[SimOrg], List[SimOrg]]:
        """(lirs, customers), with ASes and holdings wired in."""
        if self._orgs is None:
            config = self._config
            topology = self.topology()
            rng = self._rng("orgs")
            mids = topology.tier_members(2)
            stubs = topology.tier_members(3)
            spare_needed = max(
                0,
                round(config.lir_count * config.second_as_fraction)
                - max(0, len(mids) - config.lir_count),
            )
            lir_asns = mids + stubs[:spare_needed]
            customer_asns = stubs[spare_needed:]
            lirs, customers = generate_orgs(
                rng,
                config.lir_count,
                config.customer_count,
                lir_asns,
                customer_asns,
                config.second_as_fraction,
            )
            for org in lirs:
                org.holdings.append(
                    self._plan.take(RIR.RIPE, config.lir_holding_length)
                )
            self._orgs = (lirs, customers)
        return self._orgs

    def lirs(self) -> List[SimOrg]:
        return self.orgs()[0]

    def customers(self) -> List[SimOrg]:
        return self.orgs()[1]

    def carve_pools(self) -> Dict[str, FreePool]:
        """Per-LIR pools over their holdings (for carving sub-blocks)."""
        if self._carve_pools is None:
            self._carve_pools = {
                org.org_id: FreePool(list(org.holdings))
                for org in self.lirs()
            }
        return self._carve_pools

    # -- delegations ------------------------------------------------------------

    def delegation_plan(self) -> DelegationPlan:
        if self._delegation_plan is None:
            config = self._config
            self._delegation_plan = build_delegation_plan(
                self._rng("delegations"),
                config.delegations,
                self.lirs(),
                self.customers(),
                config.bgp_start,
                config.bgp_end,
                onoff_fraction=config.onoff_fraction,
                intra_org_fraction=config.intra_org_fraction,
                rdap_overlap_fraction=config.rdap_overlap_fraction,
                carve_pools=self.carve_pools(),
                vpn_rotation_chains=config.vpn_rotation_chains,
                vpn_rotation_period_days=config.vpn_rotation_period_days,
            )
        return self._delegation_plan

    def announcement_source(self) -> AnnouncementSource:
        if self._announcement_source is None:
            config = self._config
            self._announcement_source = AnnouncementSource(
                config.seed,
                self.lirs(),
                self.customers(),
                self.delegation_plan(),
                self.monitors(),
                hijack_rate=config.hijack_rate,
                as_set_rate=config.as_set_rate,
            )
        return self._announcement_source

    def stream(self) -> RouteStream:
        """The BGPStream-like view of the world's routing data."""
        return RouteStream(
            self.collector_system(), source=self.announcement_source()
        )

    def true_delegated_prefixes_on(
        self, date: datetime.date
    ) -> List[IPv4Prefix]:
        """Ground truth: cross-org delegated prefixes active on a day."""
        return [
            spec.prefix
            for spec in self.delegation_plan().cross_org()
            if spec.active_on(date)
        ]

    # -- registration data ---------------------------------------------------------

    def whois(self) -> WhoisDatabase:
        return self._whois_built()[0]

    def whois_report(self) -> WhoisBuildReport:
        return self._whois_built()[1]

    def _whois_built(self) -> Tuple[WhoisDatabase, WhoisBuildReport]:
        if self._whois is None:
            self._whois = build_whois_database(
                self._rng("whois"),
                self._config,
                self.lirs(),
                self.customers(),
                self.delegation_plan(),
                self.carve_pools(),
            )
        return self._whois

    def rdap_server(self) -> RdapServer:
        """A fresh RDAP server over the WHOIS database."""
        return RdapServer(
            self.whois(), rate_limit_per_second=50.0, burst=100
        )

    def rdap_client(self, server: Optional[RdapServer] = None) -> RdapClient:
        return RdapClient(
            server or self.rdap_server(),
            pace_seconds=0.02,
        )

    def as2org(self) -> As2OrgDataset:
        """Quarterly AS-to-organization snapshots over the BGP window."""
        if self._as2org is None:
            dataset = As2OrgDataset()
            date = datetime.date(
                self._config.bgp_start.year,
                ((self._config.bgp_start.month - 1) // 3) * 3 + 1,
                1,
            )
            while date <= self._config.bgp_end + datetime.timedelta(days=92):
                snapshot = As2OrgSnapshot(date)
                for org in self.lirs() + self.customers():
                    snapshot.add_organization(
                        Organization(org.whois_org_handle, org.name)
                    )
                    for asn in org.asns:
                        snapshot.assign(asn, org.whois_org_handle)
                dataset.add_snapshot(snapshot)
                year, month = date.year, date.month + 3
                if month > 12:
                    year, month = year + 1, month - 12
                date = datetime.date(year, month, 1)
            self._as2org = dataset
        return self._as2org

    def rpki(self) -> RoaDatabase:
        if self._rpki is None:
            self._rpki = build_rpki_database(
                self._rng("rpki"),
                self._config,
                self.lirs(),
                self.customers(),
                self.carve_pools(),
                plan=self.delegation_plan(),
            )
        return self._rpki

    # -- markets -------------------------------------------------------------------

    def transfer_ledger(self) -> TransferLedger:
        """The 2009–2020 transfer history (Fig. 2 / Fig. 3 input).

        The ledger draws from its *own* address plan: at the world's
        1:100 scale, a decade of transfers would otherwise exhaust the
        region space the LIR holdings need (and the two populations
        are never cross-referenced).  This also keeps world
        construction order-independent.
        """
        if self._ledger is None:
            self._ledger = generate_transfer_ledger(
                self._rng("transfers"), self._config, AddressPlan()
            )
        return self._ledger

    def priced_transactions(self) -> TransactionDataset:
        if self._priced is None:
            self._priced = generate_priced_transactions(
                self._rng("pricing"), self._config, self._price_model
            )
        return self._priced

    def leasing_providers(self) -> List[LeasingProvider]:
        return default_leasing_providers()

    def scrape_log(self) -> ScrapeLog:
        return ScrapeLog(self.leasing_providers())

    def __repr__(self) -> str:
        return f"<World seed={self._config.seed}>"
