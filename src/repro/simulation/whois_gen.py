"""WHOIS database generation (§4's RDAP input).

Builds the RIPE-style database for the world:

- one ``ALLOCATED PA`` inetnum per LIR holding,
- ``ASSIGNED PA`` objects for registered-only leases (the part of the
  leasing market invisible in BGP), for the RDAP-registered BGP
  delegations, for intra-organization assignments, and for the mass of
  sub-/24 customer assignments (91.4 % of all ASSIGNED PA in the real
  June 2020 snapshot),
- a small set of cross-org ``SUB-ALLOCATED PA`` objects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import SimulationError
from repro.netbase.prefix import IPv4Prefix
from repro.registry.pool import FreePool
from repro.simulation.delegation_plan import DelegationPlan
from repro.simulation.orgs import SimOrg
from repro.simulation.scenario import ScenarioConfig
from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject, InetnumStatus, OrgObject


@dataclass
class WhoisBuildReport:
    """What the generator put into the database."""

    allocated: int = 0
    assigned_large_cross_org: int = 0
    assigned_large_intra_org: int = 0
    assigned_small: int = 0
    sub_allocated: int = 0
    registered_bgp_delegations: int = 0

    @property
    def assigned_total(self) -> int:
        return (
            self.assigned_large_cross_org
            + self.assigned_large_intra_org
            + self.assigned_small
        )


def _inetnum_for_prefix(
    prefix: IPv4Prefix,
    netname: str,
    status: InetnumStatus,
    org_handle: str,
    admin_handle: str,
) -> InetnumObject:
    return InetnumObject(
        first=prefix.network,
        last=prefix.broadcast,
        netname=netname,
        status=status,
        org_handle=org_handle,
        admin_handle=admin_handle,
    )


def _pick_lir_with_space(
    rng: random.Random,
    lirs: Sequence[SimOrg],
    pools: Dict[str, FreePool],
    length: int,
) -> SimOrg:
    # Fast path: random probes (the common case — pools rarely fill up).
    for _ in range(6):
        org = rng.choice(list(lirs)) if not isinstance(lirs, list) else rng.choice(lirs)
        if pools[org.org_id].can_allocate(length):
            return org
    candidates = [
        org for org in lirs if pools[org.org_id].can_allocate(length)
    ]
    if not candidates:
        raise SimulationError(f"no LIR pool can carve a /{length}")
    return rng.choice(candidates)


def build_whois_database(
    rng: random.Random,
    config: ScenarioConfig,
    lirs: Sequence[SimOrg],
    customers: Sequence[SimOrg],
    plan: DelegationPlan,
    carve_pools: Dict[str, FreePool],
) -> "tuple[WhoisDatabase, WhoisBuildReport]":
    """Build the WHOIS database for the world's RIPE region."""
    database = WhoisDatabase("RIPE")
    report = WhoisBuildReport()

    for org in list(lirs) + list(customers):
        database.add_org(OrgObject(org.whois_org_handle, org.name))

    lir_by_holding: Dict[IPv4Prefix, SimOrg] = {}
    for org in lirs:
        for holding in org.holdings:
            database.add_inetnum(
                _inetnum_for_prefix(
                    holding,
                    netname=f"{org.org_id.upper()}-NET",
                    status=InetnumStatus.ALLOCATED_PA,
                    org_handle=org.whois_org_handle,
                    admin_handle=org.admin_handle,
                )
            )
            lir_by_holding[holding] = org
            report.allocated += 1

    # -- registered BGP delegations (the §4 overlap) ----------------------
    for spec in plan.cross_org():
        if not spec.rdap_registered or spec.delegatee_org is None:
            continue
        database.add_inetnum(
            _inetnum_for_prefix(
                spec.prefix,
                netname=f"LEASE-{spec.delegatee_org.org_id.upper()}",
                status=InetnumStatus.ASSIGNED_PA,
                org_handle=spec.delegatee_org.whois_org_handle,
                admin_handle=spec.delegatee_org.admin_handle,
            )
        )
        report.registered_bgp_delegations += 1
        report.assigned_large_cross_org += 1

    # -- registered-only leases (invisible in BGP) ---------------------------
    for length, count in sorted(config.registered_only_composition.items()):
        for _ in range(count):
            lir = _pick_lir_with_space(rng, lirs, carve_pools, length)
            prefix = carve_pools[lir.org_id].allocate(length)
            customer = rng.choice(customers)
            database.add_inetnum(
                _inetnum_for_prefix(
                    prefix,
                    netname=f"RESERVED-{customer.org_id.upper()}",
                    status=InetnumStatus.ASSIGNED_PA,
                    org_handle=customer.whois_org_handle,
                    admin_handle=customer.admin_handle,
                )
            )
            report.assigned_large_cross_org += 1

    # -- sub-allocations (cross-org, /20../22) ----------------------------------
    for _ in range(config.sub_allocated_count):
        length = rng.choice([20, 21, 22])
        lir = _pick_lir_with_space(rng, lirs, carve_pools, length)
        prefix = carve_pools[lir.org_id].allocate(length)
        customer = rng.choice(customers)
        database.add_inetnum(
            _inetnum_for_prefix(
                prefix,
                netname=f"SUBALLOC-{customer.org_id.upper()}",
                status=InetnumStatus.SUB_ALLOCATED_PA,
                org_handle=customer.whois_org_handle,
                admin_handle=customer.admin_handle,
            )
        )
        report.sub_allocated += 1

    # -- intra-organization ≥/24 assignments -----------------------------------
    for index in range(config.assigned_intra_org_large_count):
        lir = _pick_lir_with_space(rng, lirs, carve_pools, 24)
        prefix = carve_pools[lir.org_id].allocate(24)
        database.add_inetnum(
            _inetnum_for_prefix(
                prefix,
                netname=f"INFRA-{lir.org_id.upper()}-{index}",
                status=InetnumStatus.ASSIGNED_PA,
                org_handle=f"ORG-DIV-{index % 7}",  # a division handle
                admin_handle=lir.admin_handle,      # same admin: intra-org
            )
        )
        report.assigned_large_intra_org += 1

    # -- the mass of sub-/24 customer assignments -------------------------------
    large_total = (
        report.assigned_large_cross_org + report.assigned_large_intra_org
    )
    fraction = config.assigned_small_fraction
    small_total = round(large_total * fraction / (1.0 - fraction))
    for index in range(small_total):
        lir = _pick_lir_with_space(rng, lirs, carve_pools, 29)
        prefix = carve_pools[lir.org_id].allocate(29)
        database.add_inetnum(
            _inetnum_for_prefix(
                prefix,
                netname=f"CUST-{index}",
                status=InetnumStatus.ASSIGNED_PA,
                org_handle=f"ORG-END-{index}",
                admin_handle=lir.admin_handle,
            )
        )
        report.assigned_small += 1

    return database, report
