"""Market history generation: transfer ledger and priced transactions.

Reproduces the three market shapes the paper reports:

- **Fig. 2** — regional transfer markets start when their RIR reaches
  its last /8, then fluctuate; RIPE shows year-end peaks; AFRINIC and
  LACNIC stay negligible.
- **Fig. 3** — inter-RIR transfers (APNIC/ARIN/RIPE only) grow in
  count while block sizes shrink; ARIN is the dominant source.
- **Fig. 1** — the priced transaction dataset: per-quarter counts in
  the paper's ranges (APNIC 8–23, ARIN 83–196, RIPE 12–19, ≈2.9k
  total), prices from the calibrated
  :class:`~repro.market.pricing.PriceModel`.
"""

from __future__ import annotations

import datetime
import random
from typing import Dict, Iterator, List, Tuple

from repro.market.broker import default_brokers
from repro.market.pricing import PriceModel
from repro.market.transactions import Transaction, TransactionDataset
from repro.registry.rir import RIR, profile_for
from repro.registry.transfers import TransferLedger, TransferType
from repro.simulation.addressplan import AddressPlan
from repro.simulation.scenario import ScenarioConfig

#: Inter-RIR flows and their rough share of all inter-RIR transfers.
#: ARIN is the big source (§3: "Most transfers move address space away
#: from ARIN and either to APNIC or RIPE").
_INTER_RIR_FLOWS: Tuple[Tuple[RIR, RIR, float], ...] = (
    (RIR.ARIN, RIR.APNIC, 0.38),
    (RIR.ARIN, RIR.RIPE, 0.34),
    (RIR.APNIC, RIR.ARIN, 0.07),
    (RIR.APNIC, RIR.RIPE, 0.06),
    (RIR.RIPE, RIR.ARIN, 0.08),
    (RIR.RIPE, RIR.APNIC, 0.07),
)

#: The inter-RIR policy became usable in late 2012.
_INTER_RIR_START_YEAR = 2012


def quarters(
    start: datetime.date, end: datetime.date
) -> Iterator[Tuple[datetime.date, datetime.date]]:
    """Yield (first_day, first_day_of_next) quarter windows."""
    year, quarter = start.year, (start.month - 1) // 3
    while True:
        first = datetime.date(year, quarter * 3 + 1, 1)
        if quarter == 3:
            nxt = datetime.date(year + 1, 1, 1)
        else:
            nxt = datetime.date(year, quarter * 3 + 4, 1)
        if first >= end:
            return
        yield max(first, start), min(nxt, end)
        year, quarter = (year + 1, 0) if quarter == 3 else (year, quarter + 1)


def _market_intensity(
    rir: RIR, date: datetime.date, config: ScenarioConfig
) -> float:
    """Relative market activity of ``rir`` on ``date`` (0 = closed).

    Zero before the RIR's last-/8 date (no market without scarcity),
    then a saturating ramp over ~three years, with RIPE's Q4 seasonal
    factor on top.
    """
    profile = profile_for(rir)
    if date < profile.last_slash8_date:
        return 0.0
    ramp_days = (date - profile.last_slash8_date).days
    level = min(1.0, ramp_days / (3 * 365))
    if rir is RIR.RIPE and date.month in (10, 11, 12):
        level *= config.ripe_q4_factor
    return level


def _transfer_length(rng: random.Random) -> int:
    """Block size of one transfer (mostly /24..//22, some larger)."""
    roll = rng.random()
    if roll < 0.45:
        return 24
    if roll < 0.65:
        return 23
    if roll < 0.80:
        return 22
    if roll < 0.90:
        return 21
    if roll < 0.96:
        return 20
    return rng.choice([19, 18, 17, 16])


def generate_transfer_ledger(
    rng: random.Random,
    config: ScenarioConfig,
    plan: AddressPlan,
) -> TransferLedger:
    """Generate the full 2009–2020 transfer ledger (Fig. 2 + Fig. 3)."""
    ledger = TransferLedger()
    org_counter = 0

    def next_orgs() -> Tuple[str, str]:
        nonlocal org_counter
        org_counter += 1
        return (f"seller-{org_counter:05d}", f"buyer-{org_counter:05d}")

    # -- intra-RIR transfers quarter by quarter -----------------------------
    for first, nxt in quarters(config.market_start, config.market_end):
        mid = first + (nxt - first) / 2
        for rir in RIR:
            base = config.transfers_per_quarter.get(rir.value, 0)
            intensity = _market_intensity(rir, mid, config)
            expected = base * intensity
            if expected <= 0:
                continue
            count = max(0, round(rng.gauss(expected, expected * 0.18)))
            span = max(1, (nxt - first).days)
            for _ in range(count):
                date = first + datetime.timedelta(days=rng.randrange(span))
                seller, buyer = next_orgs()
                is_mna = rng.random() < config.mna_fraction
                if is_mna:
                    # M&A moves a whole company's holdings at once:
                    # several blocks in a single transfer record.
                    blocks = [
                        plan.take(rir, _transfer_length(rng))
                        for _ in range(rng.randint(2, 4))
                    ]
                else:
                    # Market sales are almost always single blocks; a
                    # small tail of two-block deals keeps any
                    # count-based M&A heuristic honestly imperfect.
                    block_count = 2 if rng.random() < 0.07 else 1
                    blocks = [
                        plan.take(rir, _transfer_length(rng))
                        for _ in range(block_count)
                    ]
                ledger.record(
                    date=date,
                    prefixes=blocks,
                    source_org=seller,
                    recipient_org=buyer,
                    source_rir=rir,
                    recipient_rir=rir,
                    true_type=(
                        TransferType.MERGER_ACQUISITION
                        if is_mna
                        else TransferType.MARKET
                    ),
                )

    # -- inter-RIR transfers year by year -------------------------------------
    for year in range(_INTER_RIR_START_YEAR, config.market_end.year + 1):
        years_in = year - _INTER_RIR_START_YEAR
        # Counts grow steadily (paper: "continuously increases").
        yearly_total = 6 + 9 * years_in
        # Sizes shrink: average length moves from ~/18 to ~/22.
        mean_length = min(22.0, 18.0 + 0.55 * years_in)
        for source, dest, share in _INTER_RIR_FLOWS:
            flow_count = max(0, round(
                rng.gauss(yearly_total * share, 1.0)
            ))
            for _ in range(flow_count):
                day_of_year = rng.randrange(1, 360)
                date = (
                    datetime.date(year, 1, 1)
                    + datetime.timedelta(days=day_of_year)
                )
                if not (config.market_start <= date < config.market_end):
                    continue
                length = int(
                    min(24, max(16, round(rng.gauss(mean_length, 1.2))))
                )
                block = plan.take(source, length)
                seller, buyer = next_orgs()
                ledger.record(
                    date=date,
                    prefixes=[block],
                    source_org=seller,
                    recipient_org=buyer,
                    source_rir=source,
                    recipient_rir=dest,
                )
    return ledger


def generate_priced_transactions(
    rng: random.Random,
    config: ScenarioConfig,
    price_model: PriceModel,
) -> TransactionDataset:
    """Generate the broker pricing dataset (Fig. 1's input)."""
    brokers = default_brokers()
    broker_names = [b.name for b in brokers]
    dataset = TransactionDataset()
    for first, nxt in quarters(config.pricing_start, config.market_end):
        span = max(1, (nxt - first).days)
        for region_value, (low, high) in config.priced_per_quarter.items():
            rir = RIR(region_value)
            count = rng.randint(low, high)
            for _ in range(count):
                date = first + datetime.timedelta(days=rng.randrange(span))
                length = _transfer_length(rng)
                dataset.add(
                    Transaction(
                        date=date,
                        region=rir,
                        block_length=length,
                        price_per_address=price_model.sample_price(
                            rng, date, length, rir
                        ),
                        broker=rng.choice(broker_names),
                    )
                )
    # The handful of AFRINIC/LACNIC transactions (excluded from Fig. 1).
    window_days = (config.market_end - config.pricing_start).days
    for _ in range(config.priced_minor_regions_total):
        rir = rng.choice([RIR.AFRINIC, RIR.LACNIC])
        date = config.pricing_start + datetime.timedelta(
            days=rng.randrange(window_days)
        )
        length = _transfer_length(rng)
        dataset.add(
            Transaction(
                date=date,
                region=rir,
                block_length=length,
                price_per_address=price_model.sample_price(
                    rng, date, length, rir
                ),
                broker=rng.choice(broker_names),
            )
        )
    return dataset
