"""Per-RIR address space for the world generator.

Each RIR draws from /8s that really belong to its region, so generated
prefixes look right and never collide across regions (or with bogon
space).  The plan is just a :class:`~repro.registry.pool.FreePool` per
RIR plus convenience allocation helpers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import SimulationError
from repro.netbase.prefix import IPv4Prefix
from repro.registry.pool import FreePool
from repro.registry.rir import RIR

#: Representative /8s per region (abridged but genuine).
REGION_SLASH8S: Dict[RIR, tuple] = {
    RIR.AFRINIC: ("41.0.0.0/8", "102.0.0.0/8", "105.0.0.0/8"),
    RIR.APNIC: ("1.0.0.0/8", "27.0.0.0/8", "36.0.0.0/8", "101.0.0.0/8",
                "103.0.0.0/8", "110.0.0.0/8"),
    RIR.ARIN: ("8.0.0.0/8", "23.0.0.0/8", "50.0.0.0/8", "63.0.0.0/8",
               "64.0.0.0/8", "66.0.0.0/8", "96.0.0.0/8"),
    RIR.LACNIC: ("177.0.0.0/8", "179.0.0.0/8", "181.0.0.0/8",
                 "186.0.0.0/8", "200.0.0.0/8"),
    RIR.RIPE: ("185.0.0.0/8", "193.0.0.0/8", "194.0.0.0/8",
               "195.0.0.0/8", "151.0.0.0/8", "62.0.0.0/8"),
}


class AddressPlan:
    """Non-overlapping block allocation across the five regions."""

    def __init__(self) -> None:
        self._pools: Dict[RIR, FreePool] = {
            rir: FreePool([IPv4Prefix.parse(text) for text in slash8s])
            for rir, slash8s in REGION_SLASH8S.items()
        }

    def pool(self, rir: RIR) -> FreePool:
        return self._pools[rir]

    def take(self, rir: RIR, length: int) -> IPv4Prefix:
        """Allocate one block of ``length`` from the region's space."""
        try:
            return self._pools[rir].allocate(length)
        except Exception as exc:
            raise SimulationError(
                f"{rir.display_name} address plan exhausted at /{length}"
            ) from exc

    def take_many(
        self, rir: RIR, length: int, count: int
    ) -> List[IPv4Prefix]:
        return [self.take(rir, length) for _ in range(count)]

    def region_of(self, prefix: IPv4Prefix) -> RIR:
        """The region whose /8 space contains ``prefix``."""
        for rir, slash8s in REGION_SLASH8S.items():
            for text in slash8s:
                if IPv4Prefix.parse(text).covers(prefix):
                    return rir
        raise SimulationError(f"{prefix} is outside every planned region")
