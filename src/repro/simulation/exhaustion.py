"""RIR pool-drawdown simulation (Table 1).

A genuine free-pool machine: demand draws addresses from the pool day
by day; when the pool falls to its final /8 the RIR switches to its
soft-landing policy (tiny, capped allocations), and when it hits zero
it is exhausted.  Demand is *calibrated* per RIR — exponential growth
with the base rate solved analytically so the pool reaches the final
/8 on the historically observed date — which makes the simulation a
consistency check of the whole pool/policy machinery against Table 1
rather than a forecast.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.registry.rir import RIR, RIRProfile, profile_for

#: A /8 in addresses.
SLASH8 = 1 << 24

#: Common simulation start: before any RIR reached its last /8.
SIMULATION_START = datetime.date(2005, 1, 1)

#: Approximate total IPv4 space each RIR ended up administering, in
#: /8 equivalents (order-of-magnitude realistic; drawdown shape is what
#: matters).
INITIAL_POOL_SLASH8S: Dict[RIR, float] = {
    RIR.AFRINIC: 5.0,
    RIR.APNIC: 45.0,
    RIR.ARIN: 36.0,
    RIR.LACNIC: 10.0,
    RIR.RIPE: 35.0,
}

#: Space left in mid-2020 for the two RIRs that had not depleted:
#: APNIC still held part of a /10, AFRINIC part of a /11 (§2).
RESIDUAL_ADDRESSES: Dict[RIR, int] = {
    RIR.APNIC: 1 << 22,
    RIR.AFRINIC: 1 << 21,
}

#: End of the simulated window.
SIMULATION_END = datetime.date(2021, 1, 1)

#: Annual demand growth during the open-allocation era.
ANNUAL_GROWTH = 1.22


@dataclass(frozen=True)
class ExhaustionReport:
    """What the drawdown simulation observed for one RIR."""

    rir: RIR
    last_slash8_date: Optional[datetime.date]
    depletion_date: Optional[datetime.date]
    remaining_addresses: int

    def matches_profile(
        self, profile: RIRProfile, tolerance_days: int = 31
    ) -> bool:
        """True if observed dates land within ``tolerance_days`` of
        Table 1."""
        if self.last_slash8_date is None:
            return False
        drift = abs(
            (self.last_slash8_date - profile.last_slash8_date).days
        )
        if drift > tolerance_days:
            return False
        if profile.depletion_date is None:
            return self.depletion_date is None
        if self.depletion_date is None:
            return False
        return abs(
            (self.depletion_date - profile.depletion_date).days
        ) <= tolerance_days


def _calibrated_base_rate(
    pool_addresses: float,
    days: int,
    annual_growth: float,
) -> float:
    """Solve for the day-0 rate of an exponential demand curve.

    With daily growth ``g = annual_growth ** (1/365)``, the cumulative
    demand over D days is ``base * (g**D - 1) / (g - 1)``; the base is
    chosen so that equals ``pool_addresses``.
    """
    if days <= 0:
        raise SimulationError("calibration window must be positive")
    daily_growth = annual_growth ** (1.0 / 365.0)
    geometric_sum = (daily_growth ** days - 1.0) / (daily_growth - 1.0)
    return pool_addresses / geometric_sum


class ExhaustionSimulator:
    """Drawdown simulation for one RIR."""

    def __init__(
        self,
        rir: RIR,
        *,
        initial_pool_slash8s: Optional[float] = None,
        annual_growth: float = ANNUAL_GROWTH,
        start: datetime.date = SIMULATION_START,
        end: datetime.date = SIMULATION_END,
    ):
        self._rir = rir
        self._profile = profile_for(rir)
        self._pool = (
            initial_pool_slash8s
            if initial_pool_slash8s is not None
            else INITIAL_POOL_SLASH8S[rir]
        ) * SLASH8
        self._growth = annual_growth
        self._start = start
        self._end = end

    def run(self) -> ExhaustionReport:
        """Run the day loop and report the observed milestone dates."""
        profile = self._profile
        open_days = (profile.last_slash8_date - self._start).days
        open_demand = self._pool - SLASH8
        base_rate = _calibrated_base_rate(
            open_demand, open_days, self._growth
        )
        # Soft-landing rate: drain the final /8 to the known endpoint.
        if profile.depletion_date is not None:
            soft_days = (
                profile.depletion_date - profile.last_slash8_date
            ).days
            soft_target = float(SLASH8)
        else:
            soft_days = (
                datetime.date(2020, 6, 1) - profile.last_slash8_date
            ).days
            soft_target = float(SLASH8 - RESIDUAL_ADDRESSES[self._rir])
        soft_rate = soft_target / max(1, soft_days)

        pool = self._pool
        daily_growth = self._growth ** (1.0 / 365.0)
        rate = base_rate
        last_slash8_date: Optional[datetime.date] = None
        depletion_date: Optional[datetime.date] = None
        date = self._start
        # RIRs that had not depleted are observed at the paper's
        # mid-2020 vantage point; simulating further would "predict"
        # a depletion Table 1 does not contain.
        end = self._end
        if profile.depletion_date is None:
            end = min(end, datetime.date(2020, 6, 1))
        while date < end:
            if last_slash8_date is None:
                pool -= rate
                rate *= daily_growth
                if pool <= SLASH8:
                    last_slash8_date = date
            else:
                pool -= soft_rate
                if pool <= 0 and depletion_date is None:
                    depletion_date = date
                    pool = 0.0
                    break
            date += datetime.timedelta(days=1)
        return ExhaustionReport(
            rir=self._rir,
            last_slash8_date=last_slash8_date,
            depletion_date=depletion_date,
            remaining_addresses=int(max(0.0, pool)),
        )


def simulate_all() -> Dict[RIR, ExhaustionReport]:
    """Run the drawdown for all five RIRs (the Table 1 benchmark)."""
    return {rir: ExhaustionSimulator(rir).run() for rir in RIR}
