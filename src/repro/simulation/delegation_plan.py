"""BGP-visible delegation lifecycles.

Turns a :class:`~repro.simulation.scenario.DelegationComposition`
(per-length counts at the window's start and end) into concrete
delegation *specs*: who delegates which prefix to whom, from when to
when, with what announcement pattern.  The composition drift produces
Fig. 6's +7 % count growth, the /24-share rise and /20-share fall, and
the ≈ flat delegated-address curve; the on-off patterns produce the
variance the consistency rule must remove.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.netbase.prefix import IPv4Prefix
from repro.registry.pool import FreePool
from repro.simulation.orgs import SimOrg
from repro.simulation.scenario import DelegationComposition


@dataclass(frozen=True)
class OnOffPattern:
    """Deterministic duty cycle: off for ``off_days`` per period."""

    period_days: int
    off_days: int
    phase: int

    def __post_init__(self) -> None:
        if self.period_days < 2 or not 0 < self.off_days < self.period_days:
            raise SimulationError("invalid on-off pattern")

    def is_on(self, day_index: int) -> bool:
        position = (day_index + self.phase) % self.period_days
        return position < self.period_days - self.off_days


@dataclass(frozen=True)
class DelegationSpec:
    """One planned delegation: P' from delegator to delegatee."""

    prefix: IPv4Prefix
    covering_prefix: IPv4Prefix
    delegator: SimOrg
    delegatee_asn: int
    delegatee_org: Optional[SimOrg]
    active_from: datetime.date
    active_until: Optional[datetime.date]
    onoff: Optional[OnOffPattern]
    rdap_registered: bool
    intra_org: bool

    def active_on(self, date: datetime.date) -> bool:
        if date < self.active_from:
            return False
        if self.active_until is not None and date >= self.active_until:
            return False
        return True

    def announced_on(self, date: datetime.date) -> bool:
        if not self.active_on(date):
            return False
        if self.onoff is None:
            return True
        return self.onoff.is_on(date.toordinal())


class DelegationPlan:
    """All delegation specs of the world plus daily queries."""

    def __init__(self, specs: Sequence[DelegationSpec]):
        self._specs = list(specs)

    @property
    def specs(self) -> List[DelegationSpec]:
        return list(self._specs)

    def cross_org(self) -> List[DelegationSpec]:
        return [s for s in self._specs if not s.intra_org]

    def intra_org(self) -> List[DelegationSpec]:
        return [s for s in self._specs if s.intra_org]

    def announced_on(self, date: datetime.date) -> List[DelegationSpec]:
        return [s for s in self._specs if s.announced_on(date)]

    def active_on(self, date: datetime.date) -> List[DelegationSpec]:
        return [s for s in self._specs if s.active_on(date)]

    def __len__(self) -> int:
        return len(self._specs)


def _spread_dates(
    rng: random.Random,
    start: datetime.date,
    end: datetime.date,
    count: int,
) -> List[datetime.date]:
    """``count`` dates spread roughly uniformly across (start, end)."""
    span = (end - start).days
    if span <= 2 or count == 0:
        return [start] * count
    return sorted(
        start + datetime.timedelta(days=rng.randint(1, span - 1))
        for _ in range(count)
    )


def build_delegation_plan(
    rng: random.Random,
    composition: DelegationComposition,
    lirs: Sequence[SimOrg],
    customers: Sequence[SimOrg],
    window_start: datetime.date,
    window_end: datetime.date,
    *,
    onoff_fraction: float,
    intra_org_fraction: float,
    rdap_overlap_fraction: float,
    carve_pools: Dict[str, FreePool],
    vpn_rotation_chains: int = 0,
    vpn_rotation_period_days: int = 45,
) -> DelegationPlan:
    """Build the world's delegation plan.

    ``carve_pools`` maps LIR org-ids to pools over their holdings;
    delegated prefixes are carved from them so specs never overlap.
    RDAP registration is assigned greedily on shuffled specs until the
    registered *address* share reaches ``rdap_overlap_fraction`` —
    coverage in the paper's §4 comparison is measured in IPs, not in
    delegation counts.

    Delegators are drawn preferentially from LIRs whose §6 business
    model leases space out (ISPs and hosters).
    """
    delegator_candidates = [org for org in lirs if org.holdings]
    if not delegator_candidates:
        raise SimulationError("no LIR has holdings to delegate from")
    # Model-aware weighting: lease-out businesses delegate 3x as often.
    weighted_delegators = [
        org
        for org in delegator_candidates
        for _ in range(3 if org.model.leases_out else 1)
    ]
    two_as_lirs = [org for org in lirs if len(org.asns) >= 2]

    specs: List[DelegationSpec] = []

    def carve(delegator: SimOrg, length: int) -> IPv4Prefix:
        pool = carve_pools[delegator.org_id]
        return pool.allocate(length)

    def covering_of(delegator: SimOrg, prefix: IPv4Prefix) -> IPv4Prefix:
        for holding in delegator.holdings:
            if holding.covers(prefix):
                return holding
        raise SimulationError(
            f"carved prefix {prefix} outside {delegator.org_id} holdings"
        )

    def make_spec(
        length: int,
        active_from: datetime.date,
        active_until: Optional[datetime.date],
    ) -> DelegationSpec:
        delegator = rng.choice(weighted_delegators)
        delegatee = rng.choice(customers)
        prefix = carve(delegator, length)
        onoff = None
        if rng.random() < onoff_fraction:
            period = rng.randint(8, 20)
            # Mostly short gaps (fillable by the (10, 0) rule), a few
            # long ones that survive and leave residual variance.
            if rng.random() < 0.90:
                off = rng.randint(1, min(6, period - 1))
            else:
                off = rng.randint(
                    min(12, period - 1), max(min(12, period - 1), period - 1)
                )
            onoff = OnOffPattern(period, off, rng.randint(0, period - 1))
        return DelegationSpec(
            prefix=prefix,
            covering_prefix=covering_of(delegator, prefix),
            delegator=delegator,
            delegatee_asn=delegatee.primary_asn,
            delegatee_org=delegatee,
            active_from=active_from,
            active_until=active_until,
            onoff=onoff,
            rdap_registered=False,  # assigned after the fact
            intra_org=False,
        )

    # -- cross-org delegations per length ---------------------------------
    lengths = sorted(set(composition.start) | set(composition.end))
    for length in lengths:
        start_count = composition.start.get(length, 0)
        end_count = composition.end.get(length, 0)
        survivors = min(start_count, end_count)
        removals = max(0, start_count - end_count)
        additions = max(0, end_count - start_count)
        # Present the whole window.
        for _ in range(survivors):
            specs.append(make_spec(length, window_start, None))
        # Present at the start, retired mid-window.
        for retire_date in _spread_dates(
            rng, window_start, window_end, removals
        ):
            specs.append(make_spec(length, window_start, retire_date))
        # Added mid-window, open-ended.
        for add_date in _spread_dates(
            rng, window_start, window_end, additions
        ):
            specs.append(make_spec(length, add_date, None))

    # -- RDAP registration: greedy until the address share is met ---------
    shuffled = list(specs)
    rng.shuffle(shuffled)
    total_addresses = sum(s.prefix.num_addresses for s in specs)
    target = rdap_overlap_fraction * total_addresses
    registered_keys = set()
    covered = 0
    for spec in shuffled:
        if covered >= target:
            break
        registered_keys.add(spec.prefix)
        covered += spec.prefix.num_addresses
    specs = [
        DelegationSpec(
            prefix=s.prefix,
            covering_prefix=s.covering_prefix,
            delegator=s.delegator,
            delegatee_asn=s.delegatee_asn,
            delegatee_org=s.delegatee_org,
            active_from=s.active_from,
            active_until=s.active_until,
            onoff=s.onoff,
            rdap_registered=s.prefix in registered_keys,
            intra_org=False,
        )
        for s in specs
    ]

    # -- VPN-provider rotation chains (§6) ---------------------------------
    # A rotating lessee holds exactly one /24 at any time, but the
    # actual prefix changes every rotation period ("harder to block
    # their service").  Chains tile the whole window, so each one
    # contributes a constant +1 to the daily delegation count.
    from repro.simulation.orgs import BusinessModel

    rotators = [
        org for org in customers
        if org.model is BusinessModel.VPN_PROVIDER
    ] or list(customers)
    for chain_index in range(vpn_rotation_chains):
        delegatee = rotators[chain_index % len(rotators)]
        delegator = rng.choice(weighted_delegators)
        segment_start = window_start
        while segment_start < window_end:
            period = max(
                7,
                round(rng.gauss(
                    vpn_rotation_period_days,
                    vpn_rotation_period_days * 0.25,
                )),
            )
            segment_end = min(
                window_end,
                segment_start + datetime.timedelta(days=period),
            )
            prefix = carve(delegator, 24)
            specs.append(
                DelegationSpec(
                    prefix=prefix,
                    covering_prefix=covering_of(delegator, prefix),
                    delegator=delegator,
                    delegatee_asn=delegatee.primary_asn,
                    delegatee_org=delegatee,
                    active_from=segment_start,
                    active_until=(
                        None if segment_end >= window_end else segment_end
                    ),
                    onoff=None,
                    rdap_registered=False,  # rotators skip registration
                    intra_org=False,
                )
            )
            segment_start = segment_end

    # -- intra-organization more-specifics (removed by extension iv) ------
    intra_count = round(len(specs) * intra_org_fraction)
    if intra_count and not two_as_lirs:
        raise SimulationError(
            "intra-org delegations need LIRs with two ASes"
        )
    for _ in range(intra_count):
        delegator = rng.choice(two_as_lirs)
        prefix = carve_pools[delegator.org_id].allocate(24)
        specs.append(
            DelegationSpec(
                prefix=prefix,
                covering_prefix=covering_of(delegator, prefix),
                delegator=delegator,
                delegatee_asn=delegator.asns[1],
                delegatee_org=delegator,
                active_from=window_start,
                active_until=None,
                onoff=None,
                rdap_registered=False,
                intra_org=True,
            )
        )

    return DelegationPlan(specs)
