"""Organizations with the business models of §6.

The discussion section profiles how different businesses engage with
the markets: ISPs buy big and lease out, long-term customers buy small,
young businesses lease then buy, VPN providers rotate leases, spammers
churn short-lived leases, hosters bundle leases with infrastructure.
These models drive the world's leasing behaviour and make examples
meaningful.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.netbase.prefix import IPv4Prefix
from repro.registry.rir import RIR


class BusinessModel(enum.Enum):
    """§6 business archetypes."""

    ISP = "isp"
    HOSTER = "hoster"
    LONG_TERM_CUSTOMER = "long-term-customer"
    YOUNG_BUSINESS = "young-business"
    VPN_PROVIDER = "vpn-provider"
    SPAMMER = "spammer"

    @property
    def leases_out(self) -> bool:
        """Does this kind of org delegate space to others?"""
        return self in (BusinessModel.ISP, BusinessModel.HOSTER)

    @property
    def rotates_leases(self) -> bool:
        """VPN providers and spammers churn their leased prefixes."""
        return self in (BusinessModel.VPN_PROVIDER, BusinessModel.SPAMMER)


@dataclass
class SimOrg:
    """One organization in the world."""

    org_id: str
    name: str
    model: BusinessModel
    region: RIR
    asns: List[int] = field(default_factory=list)
    holdings: List[IPv4Prefix] = field(default_factory=list)
    whois_org_handle: str = ""
    admin_handle: str = ""

    def __post_init__(self) -> None:
        if not self.whois_org_handle:
            self.whois_org_handle = f"ORG-{self.org_id.upper()}"
        if not self.admin_handle:
            self.admin_handle = f"AC-{self.org_id.upper()}"

    @property
    def primary_asn(self) -> int:
        if not self.asns:
            raise SimulationError(f"{self.org_id} has no AS")
        return self.asns[0]

    @property
    def is_lir(self) -> bool:
        return bool(self.holdings)


#: Model mix for LIR-type orgs (delegators) and customer-type orgs.
_LIR_MODEL_WEIGHTS: Sequence[Tuple[BusinessModel, float]] = (
    (BusinessModel.ISP, 0.6),
    (BusinessModel.HOSTER, 0.4),
)
_CUSTOMER_MODEL_WEIGHTS: Sequence[Tuple[BusinessModel, float]] = (
    (BusinessModel.LONG_TERM_CUSTOMER, 0.35),
    (BusinessModel.YOUNG_BUSINESS, 0.35),
    (BusinessModel.VPN_PROVIDER, 0.18),
    (BusinessModel.SPAMMER, 0.12),
)


def _pick_model(
    rng: random.Random, weights: Sequence[Tuple[BusinessModel, float]]
) -> BusinessModel:
    total = sum(weight for _model, weight in weights)
    point = rng.random() * total
    for model, weight in weights:
        point -= weight
        if point <= 0:
            return model
    return weights[-1][0]  # pragma: no cover - float edge


def generate_orgs(
    rng: random.Random,
    lir_count: int,
    customer_count: int,
    lir_asns: Sequence[int],
    customer_asns: Sequence[int],
    second_as_fraction: float,
    region: RIR = RIR.RIPE,
) -> Tuple[List[SimOrg], List[SimOrg]]:
    """Generate (lirs, customers) with ASes wired in.

    LIRs that lease out space sit in the RIPE region (the paper's RDAP
    analysis is RIPE-only); they take mid-tier ASes.  Customers take
    stub ASes.  A configurable fraction of LIRs gets a second AS so
    intra-organization delegations exist for extension (iv) to remove.
    """
    if lir_count > len(lir_asns):
        raise SimulationError(
            f"need {lir_count} LIR ASes, have {len(lir_asns)}"
        )
    lirs: List[SimOrg] = []
    asn_iter = iter(lir_asns)
    spare_asns = list(lir_asns[lir_count:])
    rng.shuffle(spare_asns)
    for i in range(lir_count):
        org = SimOrg(
            org_id=f"lir-{i:04d}",
            name=f"LIR {i} Networks",
            model=_pick_model(rng, _LIR_MODEL_WEIGHTS),
            region=region,
            asns=[next(asn_iter)],
        )
        if spare_asns and rng.random() < second_as_fraction:
            org.asns.append(spare_asns.pop())
        lirs.append(org)

    needed = customer_count
    if needed > len(customer_asns):
        raise SimulationError(
            f"need {needed} customer ASes, have {len(customer_asns)}"
        )
    customers = [
        SimOrg(
            org_id=f"cust-{i:04d}",
            name=f"Customer {i}",
            model=_pick_model(rng, _CUSTOMER_MODEL_WEIGHTS),
            region=region,
            asns=[customer_asns[i]],
        )
        for i in range(customer_count)
    ]
    return lirs, customers
