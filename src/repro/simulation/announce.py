"""The per-day BGP announcement source.

Produces the world's routing intent for any date:

1. every LIR announces its holdings from its primary AS,
2. every delegation announced on that day contributes its
   more-specific from the delegatee AS (cross-org) or the LIR's second
   AS (intra-org),
3. noise events — localized more-specific hijacks (restricted monitor
   visibility, removed by the visibility filter), AS_SET-origin
   artifacts and MOAS conflicts (removed by the unique-origin filter).

All randomness is keyed on (seed, date) so any day can be regenerated
independently and reproducibly.
"""

from __future__ import annotations

import datetime
import random
from typing import FrozenSet, List, Sequence

from repro.bgp.message import Announcement
from repro.simulation.delegation_plan import DelegationPlan
from repro.simulation.orgs import SimOrg


class AnnouncementSource:
    """Callable day → announcements, for :class:`RouteStream`."""

    def __init__(
        self,
        seed: int,
        lirs: Sequence[SimOrg],
        customers: Sequence[SimOrg],
        plan: DelegationPlan,
        monitors: FrozenSet[int],
        *,
        hijack_rate: float = 0.15,
        as_set_rate: float = 0.10,
        moas_rate: float = 0.05,
    ):
        self._seed = seed
        self._lirs = list(lirs)
        self._customers = list(customers)
        self._plan = plan
        self._monitors = sorted(monitors)
        self._hijack_rate = hijack_rate
        self._as_set_rate = as_set_rate
        self._moas_rate = moas_rate
        # Stable base announcements: LIR holdings never churn.
        self._base = [
            Announcement(holding, org.primary_asn)
            for org in self._lirs
            for holding in org.holdings
        ]

    def _rng_for(self, date: datetime.date) -> random.Random:
        return random.Random(f"{self._seed}:{date.toordinal()}")

    def __call__(self, date: datetime.date) -> List[Announcement]:
        announcements = list(self._base)
        for spec in self._plan.announced_on(date):
            announcements.append(
                Announcement(spec.prefix, spec.delegatee_asn)
            )

        rng = self._rng_for(date)
        # Localized more-specific hijack: only a small monitor subset
        # sees it, so the visibility filter must drop it.
        if rng.random() < self._hijack_rate and self._base:
            victim = rng.choice(self._base)
            if victim.prefix.length <= 23:
                target = rng.choice(list(victim.prefix.subnets(24)))
                hijacker = rng.choice(self._customers)
                subset = frozenset(
                    rng.sample(
                        self._monitors,
                        max(1, len(self._monitors) // 5),
                    )
                )
                announcements.append(
                    Announcement(
                        target,
                        hijacker.primary_asn,
                        restricted_to_monitors=subset,
                    )
                )
        # AS_SET artifact: proxy aggregation leaves a set origin.
        if rng.random() < self._as_set_rate and self._plan.specs:
            spec = rng.choice(self._plan.specs)
            if spec.announced_on(date):
                announcements.append(
                    Announcement(
                        spec.prefix, spec.delegatee_asn, as_set_origin=True
                    )
                )
        # MOAS conflict: a second AS briefly originates the same prefix.
        if rng.random() < self._moas_rate:
            active = self._plan.announced_on(date)
            if active:
                spec = rng.choice(active)
                other = rng.choice(self._customers)
                if other.primary_asn != spec.delegatee_asn:
                    announcements.append(
                        Announcement(spec.prefix, other.primary_asn)
                    )
        return announcements
