"""Daily ROA snapshots with controlled continuity (Fig. 5's input).

Generates an :class:`~repro.rpki.database.RoaDatabase` whose inferred
delegation timelines have the continuity statistics the appendix
reports: most delegations keep their ROAs essentially continuously
(tiny daily absence probability), a small *flappy* minority drops out
much more often.  With the default rates the (M=10, N=0) rule fails on
≈5 % of premises and no rule in the swept family exceeds ≈30 %.
"""

from __future__ import annotations

import datetime
import random
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.netbase.prefix import IPv4Prefix
from repro.registry.pool import FreePool
from repro.rpki.database import RoaDatabase
from repro.rpki.roa import Roa
from repro.simulation.orgs import SimOrg
from repro.simulation.scenario import ScenarioConfig


def build_rpki_database(
    rng: random.Random,
    config: ScenarioConfig,
    lirs: Sequence[SimOrg],
    customers: Sequence[SimOrg],
    carve_pools: Dict[str, FreePool],
    plan=None,
) -> RoaDatabase:
    """Generate daily ROA snapshots over the BGP window.

    Every RPKI delegation consists of a covering ROA held by a
    delegator LIR (always present) and a more-specific ROA held by a
    customer AS, present per the absence process.

    When a delegation ``plan`` is given, most RPKI delegations are
    drawn from its routed, always-on specs — "in order to observe
    delegations in BGP data the delegated address space needs to be
    announced" (appendix A), so real ROA-covered delegations are
    largely a subset of the routed ones.
    """
    delegator_candidates = [org for org in lirs if org.holdings]
    if not delegator_candidates:
        raise SimulationError("no LIR available for RPKI delegations")

    base_roas: List[Roa] = []
    covering_done: Set[IPv4Prefix] = set()
    specifics: List[Tuple[Roa, float]] = []  # (roa, daily absence rate)

    def absence_rate() -> float:
        flappy = rng.random() < config.rpki_flappy_fraction
        return (
            config.rpki_flappy_absence_rate
            if flappy
            else config.rpki_stable_absence_rate
        )

    def add_covering(delegator: SimOrg, prefix: IPv4Prefix) -> None:
        covering = next(
            holding
            for holding in delegator.holdings
            if holding.covers(prefix)
        )
        if covering not in covering_done:
            covering_done.add(covering)
            base_roas.append(
                Roa(covering, delegator.primary_asn, max_length=24)
            )

    remaining = config.rpki_delegation_count
    if plan is not None:
        # ~2/3 of RPKI delegations cover routed, steady delegations.
        routed = [
            spec
            for spec in plan.cross_org()
            if spec.onoff is None and spec.active_until is None
        ]
        rng.shuffle(routed)
        take = min(len(routed), (remaining * 2) // 3)
        for spec in routed[:take]:
            add_covering(spec.delegator, spec.prefix)
            specifics.append(
                (Roa(spec.prefix, spec.delegatee_asn), absence_rate())
            )
        remaining -= take

    for _ in range(remaining):
        delegator = rng.choice(delegator_candidates)
        pool = carve_pools[delegator.org_id]
        length = rng.choice([24, 24, 24, 23, 22])
        if not pool.can_allocate(length):
            delegator = next(
                org
                for org in delegator_candidates
                if carve_pools[org.org_id].can_allocate(length)
            )
            pool = carve_pools[delegator.org_id]
        prefix = pool.allocate(length)
        add_covering(delegator, prefix)
        customer = rng.choice(customers)
        specifics.append((Roa(prefix, customer.primary_asn), absence_rate()))

    database = RoaDatabase()
    day_count = (config.bgp_end - config.bgp_start).days
    # Precompute absence days per specific: clustered short outages.
    absences: List[Set[int]] = []
    for _roa, rate in specifics:
        absent: Set[int] = set()
        # Outages average ~2 days, so halve the event rate to hit the
        # configured per-day absence probability.
        expected_events = rate * day_count / 2.0
        events = _poisson(rng, expected_events)
        for _ in range(events):
            start = rng.randrange(day_count)
            outage = rng.randint(1, 3)
            absent.update(range(start, min(day_count, start + outage)))
        absences.append(absent)

    for day_index in range(day_count):
        date = config.bgp_start + datetime.timedelta(days=day_index)
        present = list(base_roas)
        for (roa, _rate), absent in zip(specifics, absences):
            if day_index not in absent:
                present.append(roa)
        database.add_snapshot(date, present)
    return database


def _poisson(rng: random.Random, mean: float) -> int:
    """Sample a Poisson count (Knuth's method, fine for small means)."""
    if mean <= 0:
        return 0
    import math

    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count
