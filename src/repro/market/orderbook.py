"""A simple order book for the transfer market.

Models how brokers match buying and selling LIRs: sell listings carry
an asking price per IP, buy orders a bid ceiling and a wanted block
size.  Matching is price–time priority on compatible sizes.  During the
consolidation phase sellers anchor on the published reference price, so
the book exposes :meth:`OrderBook.anchor_asks` to pull outliers toward
it — the mechanism the brokers described in §3.
"""

from __future__ import annotations

import datetime
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import OrderError
from repro.netbase.prefix import IPv4Prefix


@dataclass
class SellOrder:
    """An LIR offering ``block`` at ``ask`` USD per IP."""

    order_id: int
    org_id: str
    block: IPv4Prefix
    ask: float
    placed: datetime.date
    withdrawn: bool = False

    def __post_init__(self) -> None:
        if self.ask <= 0:
            raise OrderError("ask must be positive")
        if self.block.length > 24:
            raise OrderError("blocks smaller than /24 are not transferable")


@dataclass
class BuyOrder:
    """An LIR wanting a block of ``wanted_length`` paying ≤ ``bid``."""

    order_id: int
    org_id: str
    wanted_length: int
    bid: float
    placed: datetime.date
    filled: bool = False

    def __post_init__(self) -> None:
        if self.bid <= 0:
            raise OrderError("bid must be positive")
        if not 8 <= self.wanted_length <= 24:
            raise OrderError(
                f"wanted length /{self.wanted_length} out of market range"
            )


@dataclass(frozen=True)
class Match:
    """A successful pairing, priced at the seller's ask."""

    sell: SellOrder
    buy: BuyOrder
    price_per_address: float
    date: datetime.date


class OrderBook:
    """Price–time-priority matching of sized sell/buy orders."""

    def __init__(self) -> None:
        self._sells: List[SellOrder] = []
        self._buys: List[BuyOrder] = []
        self._ids = itertools.count(1)

    # -- order entry ----------------------------------------------------

    def place_sell(
        self,
        org_id: str,
        block: IPv4Prefix,
        ask: float,
        date: datetime.date,
    ) -> SellOrder:
        order = SellOrder(next(self._ids), org_id, block, ask, date)
        self._sells.append(order)
        return order

    def place_buy(
        self,
        org_id: str,
        wanted_length: int,
        bid: float,
        date: datetime.date,
    ) -> BuyOrder:
        order = BuyOrder(next(self._ids), org_id, wanted_length, bid, date)
        self._buys.append(order)
        return order

    def withdraw_sell(self, order: SellOrder) -> None:
        order.withdrawn = True

    # -- views ------------------------------------------------------------

    def open_sells(self) -> List[SellOrder]:
        return [o for o in self._sells if not o.withdrawn]

    def open_buys(self) -> List[BuyOrder]:
        return [o for o in self._buys if not o.filled]

    def best_ask(self, wanted_length: int) -> Optional[float]:
        asks = [
            o.ask for o in self.open_sells()
            if o.block.length == wanted_length
        ]
        return min(asks) if asks else None

    # -- consolidation behaviour ----------------------------------------------

    def anchor_asks(
        self, reference_price: float, tolerance: float = 0.15
    ) -> int:
        """Pull asks toward the published reference price.

        Brokers told the authors they "strictly align their prices with
        those advertised by IPv4.Global" because pricing above the
        public reference loses customers.  Asks above
        ``reference * (1 + tolerance)`` are clipped down; the count of
        adjusted orders is returned.
        """
        if reference_price <= 0:
            raise OrderError("reference price must be positive")
        ceiling = reference_price * (1.0 + tolerance)
        adjusted = 0
        for order in self.open_sells():
            if order.ask > ceiling:
                order.ask = round(ceiling, 2)
                adjusted += 1
        return adjusted

    # -- matching -----------------------------------------------------------------

    def match(self, date: datetime.date) -> List[Match]:
        """Run one matching round.

        For each buy order (oldest first), the cheapest compatible sell
        (exact size match, ask ≤ bid) wins; ties break by placement
        date then order id.
        """
        matches: List[Match] = []
        for buy in sorted(self.open_buys(), key=lambda o: (o.placed, o.order_id)):
            candidates = [
                sell
                for sell in self.open_sells()
                if sell.block.length == buy.wanted_length
                and sell.ask <= buy.bid
            ]
            if not candidates:
                continue
            best = min(
                candidates, key=lambda s: (s.ask, s.placed, s.order_id)
            )
            best.withdrawn = True
            buy.filled = True
            matches.append(
                Match(
                    sell=best,
                    buy=buy,
                    price_per_address=best.ask,
                    date=date,
                )
            )
        return matches
