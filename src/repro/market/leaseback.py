"""The "buy and lease back" model (§6 discussion).

Organizations holding more IPv4 space than they use sell it to a
broker and lease back only what they need, with pre-agreed terms
should they ever need more: immediate cash flow plus a guaranteed
address supply.  This module models the deal's economics from the
seller's perspective.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import MarketError


@dataclass(frozen=True)
class LeaseBackDeal:
    """One buy-and-lease-back agreement, seller's view.

    The seller sells ``sold_addresses`` at ``sale_price_per_ip`` and
    immediately leases back ``leased_back_addresses`` of them at
    ``lease_price_per_ip_month``.  ``repurchase_price_per_ip``, when
    set, is the pre-agreed price at which the seller may buy space
    back later (the "previously agreed terms" of §6).
    """

    sold_addresses: int
    sale_price_per_ip: float
    leased_back_addresses: int
    lease_price_per_ip_month: float
    repurchase_price_per_ip: Optional[float] = None

    def __post_init__(self) -> None:
        if self.sold_addresses <= 0:
            raise MarketError("must sell a positive number of addresses")
        if not 0 <= self.leased_back_addresses <= self.sold_addresses:
            raise MarketError(
                "cannot lease back more than was sold"
            )
        if self.sale_price_per_ip <= 0:
            raise MarketError("sale price must be positive")
        if self.lease_price_per_ip_month < 0:
            raise MarketError("lease price cannot be negative")
        if (
            self.repurchase_price_per_ip is not None
            and self.repurchase_price_per_ip <= 0
        ):
            raise MarketError("repurchase price must be positive")

    # -- cash flow -----------------------------------------------------

    @property
    def cash_now(self) -> float:
        """Immediate proceeds of the sale."""
        return self.sold_addresses * self.sale_price_per_ip

    @property
    def monthly_cost(self) -> float:
        """Ongoing lease-back cost per month."""
        return self.leased_back_addresses * self.lease_price_per_ip_month

    def net_position(self, months: int) -> float:
        """Cumulative net cash after ``months`` (positive = ahead)."""
        if months < 0:
            raise MarketError("months cannot be negative")
        return self.cash_now - self.monthly_cost * months

    def months_until_negative(self) -> float:
        """When cumulative lease payments exceed the sale proceeds.

        Infinite when nothing is leased back (a plain sale).
        """
        if self.monthly_cost == 0:
            return math.inf
        return self.cash_now / self.monthly_cost

    # -- deal quality ------------------------------------------------------

    @property
    def effective_sale_fraction(self) -> float:
        """Share of the sold space the seller actually gave up."""
        return 1.0 - self.leased_back_addresses / self.sold_addresses

    def repurchase_cost(self, addresses: int) -> float:
        """Cost of exercising the repurchase option for ``addresses``."""
        if self.repurchase_price_per_ip is None:
            raise MarketError("deal has no repurchase option")
        if addresses < 0:
            raise MarketError("addresses cannot be negative")
        return addresses * self.repurchase_price_per_ip

    def is_rational_versus_plain_lease(
        self, market_lease_price: float
    ) -> bool:
        """Sanity check: the lease-back rate should not exceed what the
        open leasing market charges (else sell plainly and lease
        elsewhere)."""
        return self.lease_price_per_ip_month <= market_lease_price
