"""The calibrated price-per-IP process (the engine behind Fig. 1).

Calibration targets, straight from the paper:

- prices **doubled** between early 2016 (≈ $11) and 2020 (≈ $22.50),
- from **spring 2019** the market entered a *consolidation phase*:
  prices barely move (brokers anchor on IPv4.Global's published
  prices),
- small blocks (/24, /23) carry a **premium** over /17../16 blocks
  (per-transfer overhead amortizes worse), and very large blocks (
  less-specific than /16) get scarce and expensive again,
- **no statistically significant regional difference** (APNIC vs ARIN
  vs RIPE).
"""

from __future__ import annotations

import datetime
import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import MarketError
from repro.registry.rir import RIR

#: Consolidation start ("Starting from Spring 2019", §3).
CONSOLIDATION_START = datetime.date(2019, 3, 1)


@dataclass(frozen=True)
class PriceModelConfig:
    """Tunable calibration of the price process."""

    start_date: datetime.date = datetime.date(2016, 1, 1)
    start_price: float = 11.0
    consolidation_price: float = 22.5
    consolidation_start: datetime.date = CONSOLIDATION_START
    #: Lognormal sigma of per-transaction noise before/after
    #: consolidation — the variance collapse is the visible signature.
    noise_sigma_before: float = 0.16
    noise_sigma_after: float = 0.06
    #: Annual drift during consolidation (market "barely changes").
    consolidation_drift: float = 0.01

    def validate(self) -> None:
        if self.start_price <= 0 or self.consolidation_price <= 0:
            raise MarketError("prices must be positive")
        if self.consolidation_start <= self.start_date:
            raise MarketError("consolidation must start after start_date")


#: Multiplicative premium by prefix length.  The values are normalized
#: so the *traded-mix-weighted* mean premium is ≈1.0 — that way the
#: market-wide average price equals the trend's ≈$22.50 while /24s
#: still trade visibly above /16s (Fig. 1's size effect).
_SIZE_PREMIUM = {
    24: 1.049,
    23: 0.994,
    22: 0.957,
    21: 0.938,
    20: 0.920,
    19: 0.920,
    18: 0.911,
    17: 0.902,
    16: 0.892,
}


def size_premium(block_length: int) -> float:
    """Premium factor for a block of the given prefix length.

    Blocks less-specific than /16 are rare, so the per-IP price rises
    again (§3); blocks longer than /24 are not transferable at all.
    """
    if block_length > 24:
        raise MarketError(
            f"/{block_length} blocks are not transferable"
        )
    if block_length < 16:
        # Scarcity premium grows with how far above /16 the block is.
        return _SIZE_PREMIUM[16] * (1.0 + 0.08 * (16 - block_length))
    return _SIZE_PREMIUM[block_length]


class PriceModel:
    """Deterministic-by-seed price process for market transactions."""

    def __init__(self, config: Optional[PriceModelConfig] = None):
        self._config = config or PriceModelConfig()
        self._config.validate()

    @property
    def config(self) -> PriceModelConfig:
        return self._config

    # -- trend -----------------------------------------------------------

    def trend_price(self, date: datetime.date) -> float:
        """The market's mean price per IP on ``date`` (no size/noise).

        Grows geometrically from ``start_price`` to
        ``consolidation_price`` over the pre-consolidation window, then
        stays almost flat.
        """
        config = self._config
        if date <= config.start_date:
            return config.start_price
        rise_days = (config.consolidation_start - config.start_date).days
        if date < config.consolidation_start:
            progress = (date - config.start_date).days / rise_days
            ratio = config.consolidation_price / config.start_price
            return config.start_price * ratio ** progress
        flat_years = (date - config.consolidation_start).days / 365.25
        return config.consolidation_price * (
            (1.0 + config.consolidation_drift) ** flat_years
        )

    def noise_sigma(self, date: datetime.date) -> float:
        """Per-transaction lognormal sigma in force on ``date``."""
        if date < self._config.consolidation_start:
            return self._config.noise_sigma_before
        return self._config.noise_sigma_after

    # -- sampling -----------------------------------------------------------

    def expected_price(
        self,
        date: datetime.date,
        block_length: int,
        region: Optional[RIR] = None,
    ) -> float:
        """Mean price per IP for a block of ``block_length`` on ``date``.

        ``region`` is accepted — and deliberately ignored — because the
        paper finds no statistically significant regional difference.
        """
        del region  # no regional effect, by calibration
        return self.trend_price(date) * size_premium(block_length)

    def sample_price(
        self,
        rng: random.Random,
        date: datetime.date,
        block_length: int,
        region: Optional[RIR] = None,
    ) -> float:
        """Draw one transaction price (per IP, USD)."""
        mean = self.expected_price(date, block_length, region)
        sigma = self.noise_sigma(date)
        # Lognormal with unit mean: exp(N(-sigma^2/2, sigma)).
        noise = math.exp(rng.gauss(-0.5 * sigma * sigma, sigma))
        return round(mean * noise, 2)

    def reference_price(self, date: datetime.date) -> float:
        """The "IPv4.Global published price" brokers anchor on (§3)."""
        return round(self.trend_price(date), 2)
