"""Leasing providers, advertised prices, and lease agreements.

Reproduces the Fig. 4 input: 12 providers scraped from 2019-10-26 and
9 more added on 2020-06-01, with per-IP-per-month prices for a /24 on
a one-month contract.  The three advertised price changes the paper
reports are encoded on their providers:

- Heficed: $0.65 → $0.40,
- IPv4Mall: $0.35 → $0.56,
- IP-AS: $1.17 → $3.90 (a January market test) → $2.33.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import MarketError
from repro.netbase.prefix import IPv4Prefix

#: First scrape date of the paper's measurement (§4).
FIRST_SCRAPE = datetime.date(2019, 10, 26)
#: Date the nine additional providers were added.
SECOND_WAVE = datetime.date(2020, 6, 1)


@dataclass(frozen=True)
class LeasingProvider:
    """One leasing provider with an advertised price timeline.

    ``price_timeline`` is a sequence of (effective_date, price) steps;
    the advertised price on a date is the last step at or before it.
    ``listed_since`` is when the paper's scraper started covering the
    provider (not when the provider started operating).
    """

    name: str
    listed_since: datetime.date
    price_timeline: Tuple[Tuple[datetime.date, float], ...]
    bundles_hosting: bool = False
    discount_for_commitment: float = 0.0

    def __post_init__(self) -> None:
        if not self.price_timeline:
            raise MarketError(f"{self.name}: empty price timeline")
        dates = [step[0] for step in self.price_timeline]
        if dates != sorted(dates):
            raise MarketError(f"{self.name}: price timeline not sorted")
        if any(price <= 0 for _date, price in self.price_timeline):
            raise MarketError(f"{self.name}: non-positive price")
        if not 0.0 <= self.discount_for_commitment <= 0.5:
            raise MarketError(f"{self.name}: implausible discount")

    def advertised_price(self, date: datetime.date) -> Optional[float]:
        """Price per IP per month (for a /24, single month) on ``date``.

        ``None`` before the provider's first price step.
        """
        current: Optional[float] = None
        for effective, price in self.price_timeline:
            if effective <= date:
                current = price
            else:
                break
        return current

    def visible_on(self, date: datetime.date) -> bool:
        """Whether the scraper covered this provider on ``date``."""
        return date >= self.listed_since

    def monthly_cost(
        self,
        prefix_length: int,
        date: datetime.date,
        committed_months: int = 1,
    ) -> float:
        """Total monthly cost of leasing a block of ``prefix_length``.

        Commitments beyond one month earn the provider's advertised
        discount (up to 10 % in the paper's data).
        """
        price = self.advertised_price(date)
        if price is None:
            raise MarketError(
                f"{self.name} has no advertised price on {date}"
            )
        if committed_months < 1:
            raise MarketError("committed_months must be >= 1")
        addresses = 1 << (32 - prefix_length)
        total = price * addresses
        if committed_months > 1:
            total *= 1.0 - self.discount_for_commitment
        return round(total, 2)


@dataclass
class LeaseAgreement:
    """One active lease of a prefix from a provider to a customer."""

    provider: str
    customer_org: str
    prefix: IPv4Prefix
    start: datetime.date
    end: Optional[datetime.date] = None
    registers_whois: bool = True

    def active_on(self, date: datetime.date) -> bool:
        if date < self.start:
            return False
        return self.end is None or date < self.end


@dataclass(frozen=True)
class ScrapeRecord:
    """One (date, provider, price) observation."""

    date: datetime.date
    provider: str
    price: float
    bundles_hosting: bool


class ScrapeLog:
    """A periodic scrape of advertised prices (the Fig. 4 dataset)."""

    def __init__(self, providers: Iterable[LeasingProvider]):
        self._providers = {p.name: p for p in providers}
        if not self._providers:
            raise MarketError("need at least one provider")

    def providers(self) -> List[LeasingProvider]:
        return [self._providers[name] for name in sorted(self._providers)]

    def scrape(self, date: datetime.date) -> List[ScrapeRecord]:
        """Scrape every provider visible on ``date``."""
        records: List[ScrapeRecord] = []
        for provider in self.providers():
            if not provider.visible_on(date):
                continue
            price = provider.advertised_price(date)
            if price is None:
                continue
            records.append(
                ScrapeRecord(
                    date=date,
                    provider=provider.name,
                    price=price,
                    bundles_hosting=provider.bundles_hosting,
                )
            )
        return records

    def scrape_series(
        self,
        start: datetime.date,
        end: datetime.date,
        step_days: int = 7,
    ) -> List[ScrapeRecord]:
        """Scrape on a cadence from ``start`` to ``end`` inclusive."""
        if step_days <= 0:
            raise MarketError("step_days must be positive")
        records: List[ScrapeRecord] = []
        date = start
        while date <= end:
            records.extend(self.scrape(date))
            date += datetime.timedelta(days=step_days)
        return records


def default_leasing_providers() -> List[LeasingProvider]:
    """The 21 providers of Fig. 4 with the paper's price facts."""
    d = datetime.date
    first, second = FIRST_SCRAPE, SECOND_WAVE

    def flat(name, price, wave=first, hosting=False, discount=0.0):
        return LeasingProvider(
            name=name,
            listed_since=wave,
            price_timeline=((wave, price),),
            bundles_hosting=hosting,
            discount_for_commitment=discount,
        )

    return [
        # --- the original 12 (scraped since 2019-10-26) ---
        LeasingProvider(
            name="Heficed",
            listed_since=first,
            price_timeline=((first, 0.65), (d(2020, 3, 1), 0.40)),
            bundles_hosting=True,
        ),
        LeasingProvider(
            name="IPv4Mall",
            listed_since=first,
            price_timeline=((first, 0.35), (d(2020, 4, 1), 0.56)),
        ),
        LeasingProvider(
            name="IP-AS",
            listed_since=first,
            price_timeline=(
                (first, 1.17),
                (d(2020, 1, 10), 3.90),   # the January market test
                (d(2020, 2, 1), 2.33),
            ),
        ),
        flat("DevelApp", 0.60),
        flat("GetIPAddresses", 0.49, discount=0.10),
        flat("HostHoney", 0.75, hosting=True),
        flat("IPRoyal", 1.20),
        flat("IPv4Broker", 0.90),
        flat("LogicWeb", 1.00, hosting=True, discount=0.10),
        flat("Logosnet", 0.55),
        flat("Fork Networking", 1.50, hosting=True),
        flat("ProstoHost", 0.30, hosting=True),  # the $0.30 floor
        # --- the 9 added on 2020-06-01 ---
        flat("AnyIP", 0.45, wave=second),
        flat("CH-CENTER", 0.85, wave=second),
        flat("Deploymentcode", 0.70, wave=second, hosting=True),
        flat("Hetzner", 0.95, wave=second, hosting=True),
        flat("LIR.Services", 1.10, wave=second),
        flat("PrefixBroker", 0.80, wave=second),
        flat("RapidDedi", 0.50, wave=second, hosting=True),
        flat("RentIPv4", 0.65, wave=second),
        flat("Hostio Solutions", 1.25, wave=second),
    ]
