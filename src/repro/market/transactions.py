"""The anonymized transaction dataset (the paper's 2.9k records).

The brokers' data is anonymized exactly the way §3 describes: no
prefix, no organizations — just the date, the number of IPs (hence the
block size), the *region* (maintaining RIR), and the price per IP.
Because blocks less-specific than /16 would be identifiable, the
dataset only admits /16-or-longer blocks.
"""

from __future__ import annotations

import csv
import datetime
import io
import pathlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import DatasetError, MarketError
from repro.registry.rir import RIR


@dataclass(frozen=True)
class Transaction:
    """One anonymized brokered sale."""

    date: datetime.date
    region: RIR
    block_length: int
    price_per_address: float
    broker: str = ""

    def __post_init__(self) -> None:
        if not 16 <= self.block_length <= 24:
            raise MarketError(
                "anonymized dataset only contains /16../24 blocks "
                f"(got /{self.block_length})"
            )
        if self.price_per_address <= 0:
            raise MarketError("price must be positive")

    @property
    def addresses(self) -> int:
        return 1 << (32 - self.block_length)

    @property
    def total_value(self) -> float:
        return self.addresses * self.price_per_address

    def quarter(self) -> Tuple[int, int]:
        """(year, quarter) of the transaction date."""
        return (self.date.year, (self.date.month - 1) // 3 + 1)


class TransactionDataset:
    """A queryable collection of anonymized transactions."""

    def __init__(self, transactions: Iterable[Transaction] = ()):
        self._transactions: List[Transaction] = sorted(
            transactions, key=lambda t: (t.date, t.region.value)
        )

    def add(self, transaction: Transaction) -> None:
        self._transactions.append(transaction)
        self._transactions.sort(key=lambda t: (t.date, t.region.value))

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._transactions)

    # -- filters -----------------------------------------------------------

    def in_window(
        self, start: datetime.date, end: datetime.date
    ) -> "TransactionDataset":
        """Transactions with ``start <= date < end``."""
        return TransactionDataset(
            t for t in self._transactions if start <= t.date < end
        )

    def for_regions(self, regions: Iterable[RIR]) -> "TransactionDataset":
        regions = set(regions)
        return TransactionDataset(
            t for t in self._transactions if t.region in regions
        )

    def excluding_regions(
        self, regions: Iterable[RIR]
    ) -> "TransactionDataset":
        regions = set(regions)
        return TransactionDataset(
            t for t in self._transactions if t.region not in regions
        )

    def for_lengths(self, lengths: Iterable[int]) -> "TransactionDataset":
        lengths = set(lengths)
        return TransactionDataset(
            t for t in self._transactions if t.block_length in lengths
        )

    def prices(self) -> List[float]:
        return [t.price_per_address for t in self._transactions]

    def by_quarter(self) -> Dict[Tuple[int, int], "TransactionDataset"]:
        """Group into (year, quarter) buckets, ordered."""
        buckets: Dict[Tuple[int, int], List[Transaction]] = {}
        for transaction in self._transactions:
            buckets.setdefault(transaction.quarter(), []).append(transaction)
        return {
            quarter: TransactionDataset(buckets[quarter])
            for quarter in sorted(buckets)
        }

    def by_region(self) -> Dict[RIR, "TransactionDataset"]:
        buckets: Dict[RIR, List[Transaction]] = {}
        for transaction in self._transactions:
            buckets.setdefault(transaction.region, []).append(transaction)
        return {
            region: TransactionDataset(buckets[region])
            for region in sorted(buckets, key=lambda r: r.value)
        }

    def count_by_region(self) -> Dict[RIR, int]:
        counts: Dict[RIR, int] = {}
        for transaction in self._transactions:
            counts[transaction.region] = counts.get(transaction.region, 0) + 1
        return counts

    # -- CSV I/O --------------------------------------------------------------

    _FIELDS = ["date", "region", "block_length", "price_per_address", "broker"]

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self._FIELDS)
        writer.writeheader()
        for t in self._transactions:
            writer.writerow(
                {
                    "date": t.date.isoformat(),
                    "region": t.region.value,
                    "block_length": t.block_length,
                    "price_per_address": f"{t.price_per_address:.2f}",
                    "broker": t.broker,
                }
            )
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "TransactionDataset":
        reader = csv.DictReader(io.StringIO(text))
        transactions: List[Transaction] = []
        for row in reader:
            try:
                transactions.append(
                    Transaction(
                        date=datetime.date.fromisoformat(row["date"]),
                        region=RIR(row["region"]),
                        block_length=int(row["block_length"]),
                        price_per_address=float(row["price_per_address"]),
                        broker=row.get("broker", ""),
                    )
                )
            except (KeyError, ValueError, MarketError) as exc:
                raise DatasetError(f"bad transaction row {row!r}: {exc}") from exc
        return cls(transactions)

    def write_csv(self, path: Union[str, pathlib.Path]) -> str:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_csv(), encoding="utf-8")
        return str(path)

    @classmethod
    def read_csv(cls, path: Union[str, pathlib.Path]) -> "TransactionDataset":
        return cls.from_csv(pathlib.Path(path).read_text(encoding="utf-8"))
