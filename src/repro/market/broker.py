"""IPv4 brokers.

Certified brokers connect buying and selling LIRs, negotiate prices,
and handle the transfer formalities (§2).  Their commissions range
from ~5 % to ~10 % and can be charged to either party or split.  The
paper's pricing dataset comes from four of them — IPv4.Global (public
prices) plus three sharing private data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import MarketError


class CommissionSide(enum.Enum):
    """Who pays the broker's commission."""

    SELLER = "seller"
    BUYER = "buyer"
    SPLIT = "split"


@dataclass(frozen=True)
class Broker:
    """One certified IPv4 broker."""

    name: str
    commission_rate: float
    commission_side: CommissionSide = CommissionSide.SELLER
    publishes_prices: bool = False
    shares_private_data: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise MarketError("broker needs a name")
        if not 0.0 <= self.commission_rate <= 0.25:
            raise MarketError(
                f"implausible commission rate: {self.commission_rate}"
            )

    def commission_amounts(
        self, transaction_value: float
    ) -> Tuple[float, float]:
        """(seller_pays, buyer_pays) commission for a transaction."""
        if transaction_value < 0:
            raise MarketError("transaction value cannot be negative")
        total = transaction_value * self.commission_rate
        if self.commission_side is CommissionSide.SELLER:
            return (total, 0.0)
        if self.commission_side is CommissionSide.BUYER:
            return (0.0, total)
        return (total / 2.0, total / 2.0)

    def seller_net(self, transaction_value: float) -> float:
        """What the seller receives after commission."""
        seller_pays, _ = self.commission_amounts(transaction_value)
        return transaction_value - seller_pays

    def buyer_gross(self, transaction_value: float) -> float:
        """What the buyer pays in total including commission."""
        _, buyer_pays = self.commission_amounts(transaction_value)
        return transaction_value + buyer_pays


def default_brokers() -> List[Broker]:
    """The four pricing-data brokers of §3.

    IPv4.Global publishes prior-sale prices; Brander Group,
    IPTrading.com, and IPv4 Market Group shared private data.
    Commissions span the ~5–10 % range the 13 interviewed brokers
    reported.
    """
    return [
        Broker(
            name="IPv4.Global",
            commission_rate=0.08,
            commission_side=CommissionSide.SELLER,
            publishes_prices=True,
            shares_private_data=False,
        ),
        Broker(
            name="Brander Group",
            commission_rate=0.05,
            commission_side=CommissionSide.SPLIT,
            shares_private_data=True,
        ),
        Broker(
            name="IPTrading.com",
            commission_rate=0.10,
            commission_side=CommissionSide.SELLER,
            shares_private_data=True,
        ),
        Broker(
            name="IPv4 Market Group",
            commission_rate=0.07,
            commission_side=CommissionSide.BUYER,
            shares_private_data=True,
        ),
    ]
