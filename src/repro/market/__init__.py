"""The IPv4 transfer and leasing markets.

Implements both sides of the paper's economics:

- :mod:`~repro.market.pricing` — the calibrated price process behind
  Fig. 1 (doubling 2016→2019, /24–/23 size premium, no regional
  effect, consolidation from spring 2019),
- :mod:`~repro.market.broker` — broker entities and commissions,
- :mod:`~repro.market.orderbook` — listings and price-time matching,
- :mod:`~repro.market.transactions` — the anonymized transaction
  dataset (the stand-in for the 2.9k-transaction broker data),
- :mod:`~repro.market.leasing` — the 21 leasing providers of Fig. 4
  with their advertised price timelines and lease agreements,
- :mod:`~repro.market.amortization` — the §6 buy-vs-lease model.
"""

from repro.market.amortization import (
    AmortizationScenario,
    amortization_months,
    amortization_years,
)
from repro.market.broker import Broker, default_brokers
from repro.market.leaseback import LeaseBackDeal
from repro.market.leasing import (
    LeaseAgreement,
    LeasingProvider,
    ScrapeLog,
    default_leasing_providers,
)
from repro.market.orderbook import BuyOrder, OrderBook, SellOrder
from repro.market.pricing import PriceModel, PriceModelConfig
from repro.market.transactions import Transaction, TransactionDataset

__all__ = [
    "AmortizationScenario",
    "Broker",
    "BuyOrder",
    "LeaseAgreement",
    "LeaseBackDeal",
    "LeasingProvider",
    "OrderBook",
    "PriceModel",
    "PriceModelConfig",
    "ScrapeLog",
    "SellOrder",
    "Transaction",
    "TransactionDataset",
    "amortization_months",
    "amortization_years",
    "default_brokers",
    "default_leasing_providers",
]
