"""The §6 buy-versus-lease amortization model.

Buying address space costs ``buy_price`` per IP up front, plus the
RIR's annual maintenance fees forever; leasing costs ``lease_price``
per IP per month with no capital outlay.  Buying amortizes after

    buy_price / (lease_price - maintenance_per_month)

months — undefined (never) when maintenance eats the whole lease
saving.  With 2020 numbers (buy ≈ $22.50; lease $0.30–$2.33;
maintenance from near-zero for large holders to ≈ $0.50/IP/month for a
small RIPE LIR holding a single /24), the paper's "less than a year to
36 years" spread falls out of this formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import MarketError
from repro.registry.membership import DEFAULT_FEE_SCHEDULES, FeeSchedule
from repro.registry.rir import RIR


def amortization_months(
    buy_price_per_ip: float,
    lease_price_per_ip_month: float,
    maintenance_per_ip_month: float = 0.0,
) -> float:
    """Months until buying beats leasing; ``inf`` if it never does."""
    if buy_price_per_ip <= 0:
        raise MarketError("buy price must be positive")
    if lease_price_per_ip_month <= 0:
        raise MarketError("lease price must be positive")
    if maintenance_per_ip_month < 0:
        raise MarketError("maintenance cannot be negative")
    saving = lease_price_per_ip_month - maintenance_per_ip_month
    if saving <= 0:
        return math.inf
    return buy_price_per_ip / saving


def amortization_years(
    buy_price_per_ip: float,
    lease_price_per_ip_month: float,
    maintenance_per_ip_month: float = 0.0,
) -> float:
    """Same as :func:`amortization_months`, in years."""
    months = amortization_months(
        buy_price_per_ip,
        lease_price_per_ip_month,
        maintenance_per_ip_month,
    )
    return months / 12.0


@dataclass(frozen=True)
class AmortizationScenario:
    """One buy-vs-lease comparison for a concrete block holder."""

    rir: RIR
    block_length: int
    buy_price_per_ip: float
    lease_price_per_ip_month: float
    fee_schedule: Optional[FeeSchedule] = None

    def maintenance_per_ip_month(self) -> float:
        """The RIR maintenance cost attributable to this block.

        Assumes the buyer is a new LIR whose only holding is this
        block, which is the worst (most fee-burdened) case — exactly
        the situation of the small businesses §6 describes.
        """
        schedule = self.fee_schedule or DEFAULT_FEE_SCHEDULES[self.rir]
        addresses = 1 << (32 - self.block_length)
        return schedule.monthly_fee_per_address(addresses)

    def months(self) -> float:
        return amortization_months(
            self.buy_price_per_ip,
            self.lease_price_per_ip_month,
            self.maintenance_per_ip_month(),
        )

    def years(self) -> float:
        return self.months() / 12.0


def amortization_grid(
    buy_price_per_ip: float,
    lease_prices: Iterable[float],
    rirs: Iterable[RIR] = (RIR.ARIN, RIR.RIPE),
    block_lengths: Iterable[int] = (24, 22, 20, 16),
) -> List[AmortizationScenario]:
    """Cross product of lease prices × RIRs × block sizes.

    The benchmark reduces this grid to the paper's headline range
    ("somewhere between 10 months and multiple tens of years").
    """
    scenarios: List[AmortizationScenario] = []
    for rir in rirs:
        for length in block_lengths:
            for lease in lease_prices:
                scenarios.append(
                    AmortizationScenario(
                        rir=rir,
                        block_length=length,
                        buy_price_per_ip=buy_price_per_ip,
                        lease_price_per_ip_month=lease,
                    )
                )
    return scenarios


def summarize_grid(
    scenarios: Iterable[AmortizationScenario],
) -> Dict[str, float]:
    """Min / max / median finite amortization months over a grid."""
    finite = sorted(
        s.months() for s in scenarios if math.isfinite(s.months())
    )
    if not finite:
        raise MarketError("no scenario ever amortizes")
    return {
        "min_months": finite[0],
        "max_months": finite[-1],
        "median_months": finite[len(finite) // 2],
    }
