"""Deterministic fault injection for the ingestion pipelines.

Everything here is seeded: the same seed reproduces the same fault
schedule, so the fault-injection suite (``pytest -m faults``) can
assert *exact* quarantine accounting — the pipeline completes
end-to-end under injected faults and reports exactly what it dropped.

- :class:`FlakyRdapServer` / :class:`FaultSchedule` — timeout,
  throttle, and malformed-payload injection under an unmodified
  :class:`~repro.rdap.client.RdapClient`, against the virtual clock,
- :func:`corrupt_transfer_feed` / :func:`corrupt_scrape_csv` /
  :func:`corrupt_snapshot_text` — seeded record-level corruption of
  the on-disk dataset formats, returning the exact injected count.
"""

from repro.faults.corrupt import (
    corrupt_scrape_csv,
    corrupt_snapshot_text,
    corrupt_transfer_feed,
)
from repro.faults.rdap import (
    MALFORMED_PAYLOAD,
    FaultSchedule,
    FlakyRdapServer,
)

__all__ = [
    "FaultSchedule",
    "FlakyRdapServer",
    "MALFORMED_PAYLOAD",
    "corrupt_scrape_csv",
    "corrupt_snapshot_text",
    "corrupt_transfer_feed",
]
