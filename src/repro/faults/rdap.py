"""A deterministic flaky RDAP server for fault-injection tests.

:class:`FlakyRdapServer` wraps a real
:class:`~repro.rdap.server.RdapServer` and injects a seeded schedule
of faults — timeouts, synthetic throttles, malformed payloads —
against the same virtual clock the client paces itself with, so an
entire faulty sweep is reproducible from one seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro.errors import RdapRateLimitError, RdapTimeoutError
from repro.netbase.prefix import IPv4Prefix
from repro.rdap.server import RdapServer

#: A payload no RFC 7483 parser should accept (not even a JSON object).
MALFORMED_PAYLOAD: list = ["malformed rdap payload"]


@dataclass(frozen=True)
class FaultSchedule:
    """Per-query fault probabilities, decided by a seeded RNG.

    The decision sequence depends only on ``seed`` and the order of
    queries, so a rerun of the same sweep injects the same faults at
    the same points.  Rates are checked in order (timeout, throttle,
    corrupt) against one uniform draw per query.
    """

    seed: int = 0
    timeout_rate: float = 0.0
    throttle_rate: float = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("timeout_rate", "throttle_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.timeout_rate + self.throttle_rate + self.corrupt_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")


class FlakyRdapServer:
    """Drop-in :class:`~repro.rdap.server.RdapServer` stand-in.

    Duck-types the server's ``lookup_ip`` signature so it slots under
    an unmodified :class:`~repro.rdap.client.RdapClient`.  Injected
    throttles are *synthetic* (they do not consume rate-limiter
    tokens); everything else passes through to the wrapped server.
    """

    def __init__(self, server: RdapServer, schedule: FaultSchedule):
        self._server = server
        self._schedule = schedule
        self._rng = random.Random(schedule.seed)
        self.queries = 0
        self.timeouts_injected = 0
        self.throttles_injected = 0
        self.corruptions_injected = 0

    @property
    def database(self):
        return self._server.database

    @property
    def faults_injected(self) -> int:
        return (
            self.timeouts_injected
            + self.throttles_injected
            + self.corruptions_injected
        )

    def lookup_ip(
        self,
        prefix: IPv4Prefix,
        *,
        client_id: str = "anonymous",
        now: float = 0.0,
    ) -> Dict[str, object]:
        self.queries += 1
        draw = self._rng.random()
        schedule = self._schedule
        if draw < schedule.timeout_rate:
            self.timeouts_injected += 1
            raise RdapTimeoutError(f"injected timeout for {prefix}")
        draw -= schedule.timeout_rate
        if draw < schedule.throttle_rate:
            self.throttles_injected += 1
            raise RdapRateLimitError(f"injected throttle for {prefix}")
        draw -= schedule.throttle_rate
        if draw < schedule.corrupt_rate:
            self.corruptions_injected += 1
            return MALFORMED_PAYLOAD  # type: ignore[return-value]
        return self._server.lookup_ip(
            prefix, client_id=client_id, now=now
        )

    def __repr__(self) -> str:
        return (
            f"<FlakyRdapServer {self.queries} queries, "
            f"{self.faults_injected} faults injected>"
        )
