"""Seeded corruption injectors for the on-disk dataset formats.

Each injector takes a well-formed payload, corrupts a deterministic
subset of its records (one ``random.Random(seed)`` draw per record),
and returns the corrupted payload together with the exact number of
faults injected — the ground truth the fault-injection suite checks
quarantine accounting against: every injected fault must produce
exactly one quarantined record, no more, no fewer.
"""

from __future__ import annotations

import copy
import random
from typing import List, Tuple


def corrupt_transfer_feed(
    feed: dict, *, rate: float, seed: int = 0
) -> Tuple[dict, int]:
    """Corrupt ``rate`` of a transfer feed's records; returns
    ``(corrupted_feed, faults_injected)``.

    Rotates through three realistic failure shapes: a missing
    ``ip4nets`` section, an unparseable transfer date, and an unknown
    source RIR.
    """
    rng = random.Random(seed)
    corrupted = copy.deepcopy(feed)
    injected = 0
    for record in corrupted.get("transfers", []):
        if rng.random() >= rate:
            continue
        mode = injected % 3
        if mode == 0:
            record.pop("ip4nets", None)
        elif mode == 1:
            record["transfer_date"] = "not-a-date"
        else:
            record["source_rir"] = "ATLANTIS"
        injected += 1
    return corrupted, injected


def corrupt_scrape_csv(
    text: str, *, rate: float, seed: int = 0
) -> Tuple[str, int]:
    """Corrupt ``rate`` of a scrape CSV's data rows; returns
    ``(corrupted_text, faults_injected)``.

    Failure shapes: unparseable price, unparseable date, and a
    non-integer ``bundles_hosting`` flag.
    """
    rng = random.Random(seed)
    lines = text.splitlines()
    if not lines:
        return text, 0
    out: List[str] = [lines[0]]
    injected = 0
    for line in lines[1:]:
        if not line.strip() or rng.random() >= rate:
            out.append(line)
            continue
        fields = line.split(",")
        mode = injected % 3
        if mode == 0 and len(fields) > 2:
            fields[2] = "n/a"
        elif mode == 1 and len(fields) > 0:
            fields[0] = "someday"
        elif len(fields) > 3:
            fields[3] = "maybe"
        else:
            fields = ["someday"] + fields[1:]
        out.append(",".join(fields))
        injected += 1
    return "\n".join(out) + "\n", injected


def corrupt_snapshot_text(
    text: str, *, rate: float, seed: int = 0
) -> Tuple[str, int]:
    """Corrupt ``rate`` of an RPSL split file's blocks; returns
    ``(corrupted_text, faults_injected)``.

    Failure shapes: a missing-colon attribute line, an unknown
    ``status:`` value, and a truncated block with its ``inetnum:``
    line gone.
    """
    rng = random.Random(seed)
    blocks = text.split("\n\n")
    injected = 0
    out: List[str] = []
    for block in blocks:
        if not block.strip() or rng.random() >= rate:
            out.append(block)
            continue
        lines = block.splitlines()
        mode = injected % 3
        if mode == 0:
            lines[0] = lines[0].replace(":", " ", 1)
        elif mode == 1:
            lines = [
                "status:         TOTALLY BOGUS"
                if line.startswith("status:")
                else line
                for line in lines
            ]
        else:
            lines = [
                line for line in lines if not line.startswith("inetnum:")
            ]
        out.append("\n".join(lines))
        injected += 1
    return "\n\n".join(out), injected
