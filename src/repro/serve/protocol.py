"""Wire framing for the serving layer's two frontends.

Kept separate from the asyncio plumbing so tests (and the load
generator) can build and parse the exact bytes the server emits:

- the canonical JSON encoding (:func:`render_json`) — sorted keys,
  compact separators — which makes "byte-identical to the in-memory
  engine" a well-defined assertion,
- a minimal HTTP/1.1 request parser and response builder (the
  container has no HTTP dependency; GET-only RDAP needs very little),
- the WHOIS line-protocol error/throttle lines.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Protocol limits: one query line / request head must fit these.
MAX_LINE_BYTES = 1024
MAX_HEADER_BYTES = 8192

#: WHOIS throttle response (RIPE-style error line family).
WHOIS_THROTTLE_TEMPLATE = (
    "%ERROR:201: access control limit reached; retry after {seconds:.2f}s"
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def render_json(payload: object) -> bytes:
    """The canonical response encoding for every JSON endpoint."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def rdap_error_body(code: int, title: str, description: str) -> dict:
    """An RFC 7483 §6 error object (404s, 429s, bad queries)."""
    return {
        "errorCode": code,
        "title": title,
        "description": [description],
        "rdapConformance": ["rdap_level_0"],
    }


def whois_throttle_line(retry_after_seconds: float) -> str:
    return WHOIS_THROTTLE_TEMPLATE.format(seconds=retry_after_seconds)


@dataclass
class HttpRequest:
    """One parsed request head (bodies are read and discarded)."""

    method: str
    path: str
    version: str
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


class ProtocolError(Exception):
    """The peer sent bytes this frontend cannot parse."""


def parse_http_head(head: bytes) -> HttpRequest:
    """Parse the request head (request line + headers, no body)."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise ProtocolError("undecodable request head") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    request = HttpRequest(
        method=parts[0].upper(), path=parts[1], version=parts[2]
    )
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        request.headers[name.strip().lower()] = value.strip()
    return request


def http_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    retry_after_seconds: Optional[float] = None,
    head_only: bool = False,
    request_id: Optional[str] = None,
) -> bytes:
    """Serialize one HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    headers = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if request_id is not None:
        # The id the server assigned this request — the handle that
        # links a client-observed latency to its trace-lane event.
        headers.append(f"X-Request-Id: {request_id}")
    if retry_after_seconds is not None:
        # RFC 7231 delay-seconds is an integer; never round a positive
        # wait down to an instant retry.
        headers.append(
            f"Retry-After: {max(1, math.ceil(retry_after_seconds))}"
        )
    head = ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1")
    return head if head_only else head + body
