"""The always-on asyncio server: two frontends, one query core.

:class:`ReproServeServer` binds two listeners over one
:class:`~repro.serve.engine.QueryEngine`:

- a **WHOIS line protocol** (port-43 semantics): one query line per
  connection, answered with the exact bytes
  :class:`~repro.whois.server.WhoisServer` would produce, plus the
  RIPE-style ``-k`` keep-open mode for bulk clients,
- an **HTTP/JSON API** (RDAP-shaped): ``/ip/<prefix>`` answers with
  the exact :class:`~repro.rdap.server.RdapServer` response object,
  alongside ``/delegations``, ``/as/<n>/delegations``, ``/transfers``,
  ``/market/summary``, ``/health`` and ``/metrics``.

Both frontends charge the *same* per-client token buckets (the
eviction-bounded limiter table inside the RDAP server), so throttling
is protocol-independent: HTTP answers ``429`` with a real
``Retry-After`` header, WHOIS answers an ``%ERROR:201`` line.

Shutdown is graceful: listeners close first, idle keep-alive
connections are disconnected, and requests already in flight finish
writing their response before the loop stops (bounded by
``drain_grace``).

Observability rides the existing :mod:`repro.obs` machinery — counters
and latency timers per frontend, and, when the engine carries a
:class:`~repro.obs.trace.TracingRegistry`, one trace lane per
connection merged into the main timeline exactly like worker lanes
fan into the runner.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import os
import pathlib
import signal
import time
from typing import Awaitable, Callable, Optional, Tuple

from repro.errors import (
    PrefixError,
    RdapNotFoundError,
    RdapRateLimitError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import SlidingWindow, to_prometheus
from repro.obs.trace import TracingRegistry
from repro.serve.engine import QueryEngine, parse_prefix_text
from repro.serve.protocol import (
    MAX_HEADER_BYTES,
    MAX_LINE_BYTES,
    HttpRequest,
    ProtocolError,
    http_response,
    parse_http_head,
    rdap_error_body,
    render_json,
    whois_throttle_line,
)

logger = logging.getLogger(__name__)

_WHOIS_INTERNAL_ERROR = "%ERROR:100: internal software error"


class ReproServeServer:
    """Long-running server over one loaded :class:`QueryEngine`."""

    def __init__(
        self,
        engine: QueryEngine,
        *,
        host: str = "127.0.0.1",
        whois_port: int = 0,
        http_port: int = 0,
        drain_grace: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        request_hook: Optional[Callable[[], Awaitable[None]]] = None,
    ):
        self._engine = engine
        self._metrics: MetricsRegistry = engine.metrics
        self._host = host
        self._whois_port = whois_port
        self._http_port = http_port
        self._drain_grace = drain_grace
        self._clock = clock
        #: Awaited while each request is in flight — a seam for drain
        #: tests and latency-injection experiments.
        self._request_hook = request_hook
        self._whois_server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._connections: dict = {}   # task -> writer
        self._busy: set = set()        # tasks mid-request
        self._draining = False
        #: Serializes live delta applies: one engine swap at a time,
        #: created lazily on the running loop.
        self._apply_lock: Optional[asyncio.Lock] = None
        self._stopped: Optional[asyncio.Event] = None
        self._conn_seq = 0
        self._request_seq = 0
        #: Per-second ring buffer behind the ``/health`` rollup:
        #: qps / error rate / p99 over the trailing 1 m and 5 m.
        self._window = SlidingWindow(span_seconds=300)
        self._started_at: Optional[float] = None
        self.connections_total = 0
        self.whois_queries = 0
        self.http_requests = 0
        self.delta_applies = 0

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind both listeners (port 0 picks ephemeral ports)."""
        self._stopped = asyncio.Event()
        self._started_at = self._clock()
        self._whois_server = await asyncio.start_server(
            self._accept_whois,
            self._host,
            self._whois_port,
            limit=MAX_LINE_BYTES,
        )
        self._http_server = await asyncio.start_server(
            self._accept_http,
            self._host,
            self._http_port,
            limit=MAX_HEADER_BYTES,
        )
        self._whois_port = self._whois_server.sockets[0].getsockname()[1]
        self._http_port = self._http_server.sockets[0].getsockname()[1]
        logger.info(
            "serving whois on %s:%d, http on %s:%d",
            self._host, self._whois_port, self._host, self._http_port,
        )

    @property
    def host(self) -> str:
        return self._host

    @property
    def whois_port(self) -> int:
        return self._whois_port

    @property
    def http_port(self) -> int:
        return self._http_port

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def engine(self) -> QueryEngine:
        return self._engine

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown from sync context (signal handler)."""
        if not self._draining:
            asyncio.ensure_future(self.shutdown())

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight requests, stop the server.

        Idle connections (keep-alive sockets waiting for their next
        request) are closed immediately — there is nothing of theirs to
        drain.  Connections mid-request get up to ``drain_grace``
        seconds to finish writing, then are cancelled.
        """
        if self._draining:
            return
        self._draining = True
        for server in (self._whois_server, self._http_server):
            if server is not None:
                server.close()
        for server in (self._whois_server, self._http_server):
            if server is not None:
                await server.wait_closed()
        current = asyncio.current_task()
        for task, writer in list(self._connections.items()):
            if task not in self._busy and task is not current:
                writer.close()
        pending = [
            task for task in self._connections
            if task is not current
        ]
        if pending:
            _done, late = await asyncio.wait(
                pending, timeout=self._drain_grace
            )
            for task in late:
                task.cancel()
            if late:
                await asyncio.gather(*late, return_exceptions=True)
        if self._stopped is not None:
            self._stopped.set()

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, "server never started"
        await self._stopped.wait()

    # -- connection scaffolding ----------------------------------------

    def _connection_registry(
        self, kind: str
    ) -> Tuple[MetricsRegistry, Optional[Callable[[], None]]]:
        """Per-connection registry, merged back at connection close.

        With a tracing main registry every connection records into its
        own lane (``whois-3``, ``http-17``) and fans in on close —
        the same shape as worker lanes merging through the runner
        pool.  Otherwise the main registry is shared directly.
        """
        main = self._metrics
        if isinstance(main, TracingRegistry):
            child = TracingRegistry(lane=f"{kind}-{self._conn_seq}")
            return child, lambda: main.merge(child)
        return main, None

    async def _accept_whois(self, reader, writer) -> None:
        await self._run_connection(self._serve_whois, "whois", reader, writer)

    async def _accept_http(self, reader, writer) -> None:
        await self._run_connection(self._serve_http, "http", reader, writer)

    async def _run_connection(self, handler, kind, reader, writer) -> None:
        if self._draining:
            writer.close()
            return
        task = asyncio.current_task()
        self._conn_seq += 1
        self._connections[task] = writer
        self.connections_total += 1
        self._metrics.inc("serve.connections.total")
        self._metrics.inc(f"serve.{kind}.connections")
        self._metrics.set_gauge(
            "serve.connections.peak", float(len(self._connections))
        )
        registry, finalize = self._connection_registry(kind)
        try:
            await handler(reader, writer, registry)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        except Exception:  # noqa: BLE001 - one connection, not the server
            logger.exception("unhandled error on %s connection", kind)
            self._metrics.inc(f"serve.{kind}.connection_errors")
        finally:
            if finalize is not None:
                finalize()
            self._busy.discard(task)
            self._connections.pop(task, None)
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    def _client_id(self, writer, override: str = "") -> str:
        if override:
            return override
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if peer else "unknown"

    def _next_request_id(self) -> str:
        """One id per request, shared across both protocols.

        Returned to HTTP clients as ``X-Request-Id`` and stamped on
        the request's trace event, so a client-observed latency can be
        matched to the exact event in the server's timeline.
        """
        self._request_seq += 1
        return f"req-{self._request_seq}"

    def _observe_request(
        self,
        registry,
        *,
        kind: str,
        label: str,
        request_id: str,
        started_wall: float,
        elapsed: float,
        error: bool,
    ) -> None:
        """Fold one finished request into every telemetry surface.

        Per-protocol and per-route timers (each carrying a latency
        histogram for free), the sliding ``/health`` window, and —
        when the connection records into a trace lane — one event
        named after the request id.
        """
        registry.observe(f"serve.{kind}.request", elapsed)
        if kind == "http":
            registry.observe(f"serve.http.route.{label}", elapsed)
        self._window.record(self._clock(), elapsed, error=error)
        trace = getattr(registry, "trace", None)
        if trace is not None:
            trace.add(
                f"{kind}.{label}#{request_id}",
                started_wall,
                elapsed,
                failed=error,
            )

    async def _hook(self) -> None:
        if self._request_hook is not None:
            await self._request_hook()

    # -- the WHOIS frontend --------------------------------------------

    async def _serve_whois(self, reader, writer, registry) -> None:
        """Port-43 semantics: answer one query line, then close.

        A ``-k`` token switches the connection persistent (RIPE bulk
        convention): each response is terminated by *two* consecutive
        blank lines and the next query is awaited, until an empty
        line, EOF, or drain.  Two blanks — not one — because
        multi-object answers (``-L``, ``-m``) separate objects with a
        single blank line, so a single-blank terminator would be
        ambiguous and truncate them at the first object.
        """
        task = asyncio.current_task()
        client_id = self._client_id(writer)
        persistent = False
        first_line = True
        while True:
            try:
                raw = await reader.readline()
            except ValueError:
                writer.write((_WHOIS_INTERNAL_ERROR + "\n").encode())
                await writer.drain()
                break
            if not raw:
                break
            tokens = raw.decode("utf-8", "replace").split()
            if "-k" in tokens:
                persistent = True
                tokens = [t for t in tokens if t != "-k"]
            if not tokens:
                if first_line and persistent:
                    first_line = False
                    continue  # bare "-k" opener: hold the line open
                break  # blank line ends a persistent session
            first_line = False
            self._busy.add(task)
            request_id = self._next_request_id()
            started_wall = time.time()
            started = time.perf_counter()
            try:
                response = await self._answer_whois(
                    " ".join(tokens), client_id, registry
                )
                writer.write((response + "\n").encode("utf-8"))
                if persistent:
                    writer.write(b"\n\n")
                await writer.drain()
                self._observe_request(
                    registry,
                    kind="whois",
                    label="query",
                    request_id=request_id,
                    started_wall=started_wall,
                    elapsed=time.perf_counter() - started,
                    error=response.startswith(_WHOIS_INTERNAL_ERROR),
                )
            finally:
                self._busy.discard(task)
            if not persistent or self._draining:
                break

    async def _answer_whois(self, line, client_id, registry) -> str:
        # The request timer/histogram is recorded by the caller around
        # the full wall (hook, engine answer, socket write + drain).
        await self._hook()
        self.whois_queries += 1
        registry.inc("serve.whois.requests")
        try:
            self._engine.check_rate(client_id, self._clock())
        except RdapRateLimitError as exc:
            registry.inc("serve.whois.throttled")
            return whois_throttle_line(exc.retry_after_seconds or 0.0)
        try:
            return self._engine.whois_query(line)
        except Exception:  # noqa: BLE001 - protocol must answer
            logger.exception("whois query failed: %r", line)
            registry.inc("serve.whois.errors")
            return _WHOIS_INTERNAL_ERROR

    # -- the HTTP frontend ---------------------------------------------

    async def _serve_http(self, reader, writer, registry) -> None:
        """HTTP/1.1 with keep-alive; bodies are read and discarded."""
        task = asyncio.current_task()
        peer_id = self._client_id(writer)
        while True:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except asyncio.IncompleteReadError as exc:
                if exc.partial:
                    writer.write(http_response(
                        400,
                        render_json(rdap_error_body(
                            400, "bad request", "truncated request head"
                        )),
                        keep_alive=False,
                    ))
                    await writer.drain()
                break
            except (asyncio.LimitOverrunError, ValueError):
                writer.write(http_response(
                    400,
                    render_json(rdap_error_body(
                        400, "bad request", "request head too large"
                    )),
                    keep_alive=False,
                ))
                await writer.drain()
                break
            self._busy.add(task)
            try:
                try:
                    request = parse_http_head(head[:-4])
                except ProtocolError as exc:
                    writer.write(http_response(
                        400,
                        render_json(rdap_error_body(
                            400, "bad request", str(exc)
                        )),
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                length = int(request.header("content-length", "0") or 0)
                if length > 0:
                    await reader.readexactly(min(length, MAX_HEADER_BYTES))
                client_id = self._client_id(
                    writer, request.header("x-client-id")
                )
                request_id = self._next_request_id()
                started_wall = time.time()
                started = time.perf_counter()
                await self._hook()
                self.http_requests += 1
                registry.inc("serve.http.requests")
                status, body, content_type, retry_after, label = (
                    self._route(request, client_id, registry)
                )
                registry.inc(f"serve.http.status.{status}")
                registry.inc(f"serve.http.status_class.{status // 100}xx")
                keep = request.keep_alive and not self._draining
                writer.write(http_response(
                    status,
                    body,
                    content_type=content_type,
                    keep_alive=keep,
                    retry_after_seconds=retry_after,
                    head_only=request.method == "HEAD",
                    request_id=request_id,
                ))
                await writer.drain()
                self._observe_request(
                    registry,
                    kind="http",
                    label=label,
                    request_id=request_id,
                    started_wall=started_wall,
                    elapsed=time.perf_counter() - started,
                    error=status >= 500,
                )
            finally:
                self._busy.discard(task)
            if not keep:
                break

    #: Routes charged against the per-client rate limit.  ``/health``
    #: and ``/metrics`` stay free so orchestration probes never starve.
    _LIMITED_PREFIXES = (
        "/ip/", "/delegations/", "/as/", "/transfers/", "/market/",
    )

    def _route(
        self, request: HttpRequest, client_id: str, registry
    ) -> Tuple[int, bytes, str, Optional[float], str]:
        """Dispatch one request.

        Returns ``(status, body, content_type, retry_after, label)``;
        the label names the route in per-route latency histograms
        (``serve.http.route.<label>``) and trace-lane events.
        """
        path, _, query = request.path.partition("?")
        if request.method not in ("GET", "HEAD"):
            return (
                405,
                render_json(rdap_error_body(
                    405, "method not allowed", f"{request.method} {path}"
                )),
                "application/json",
                None,
                "method_not_allowed",
            )
        label = "unmatched"
        try:
            if path == "/health":
                with registry.span("serve.http.health"):
                    return (
                        200, render_json(self.health()),
                        "application/json", None, "health",
                    )
            if path == "/metrics":
                with registry.span("serve.http.metrics"):
                    if self._wants_prometheus(request, query):
                        return (
                            200,
                            self.prometheus_text().encode("utf-8"),
                            "text/plain; version=0.0.4; charset=utf-8",
                            None,
                            "metrics",
                        )
                    return (
                        200, render_json(self.metrics_snapshot()),
                        "application/json", None, "metrics",
                    )
            if any(path.startswith(p) for p in self._LIMITED_PREFIXES):
                try:
                    self._engine.check_rate(client_id, self._clock())
                except RdapRateLimitError as exc:
                    registry.inc("serve.http.throttled")
                    retry_after = exc.retry_after_seconds or 0.0
                    return (
                        429,
                        render_json(rdap_error_body(
                            429, "rate limit exceeded", str(exc)
                        )),
                        "application/rdap+json",
                        retry_after,
                        "throttled",
                    )
            if path.startswith("/ip/"):
                label = "ip"
                with registry.span("serve.http.ip"):
                    payload = self._engine.rdap_ip(
                        parse_prefix_text(path[len("/ip/"):])
                    )
                return (
                    200, render_json(payload),
                    "application/rdap+json", None, "ip",
                )
            if path.startswith("/delegations/"):
                label = "delegations"
                with registry.span("serve.http.delegations"):
                    payload = self._engine.delegations_lookup(
                        parse_prefix_text(path[len("/delegations/"):])
                    )
                return (
                    200, render_json(payload),
                    "application/json", None, "delegations",
                )
            if path.startswith("/as/") and path.endswith("/delegations"):
                label = "as"
                asn_text = path[len("/as/"):-len("/delegations")]
                with registry.span("serve.http.as"):
                    payload = self._engine.as_history(int(asn_text))
                return (
                    200, render_json(payload),
                    "application/json", None, "as",
                )
            if path.startswith("/transfers/"):
                label = "transfers"
                with registry.span("serve.http.transfers"):
                    payload = self._engine.transfers_lookup(
                        parse_prefix_text(path[len("/transfers/"):])
                    )
                return (
                    200, render_json(payload),
                    "application/json", None, "transfers",
                )
            if path == "/market/summary":
                label = "market"
                with registry.span("serve.http.market"):
                    payload = self._engine.market_summary()
                return (
                    200, render_json(payload),
                    "application/json", None, "market",
                )
        except RdapNotFoundError as exc:
            return (
                404,
                render_json(rdap_error_body(
                    404, "not found", f"no object for {exc}"
                )),
                "application/rdap+json",
                None,
                label,
            )
        except (PrefixError, ValueError) as exc:
            return (
                400,
                render_json(rdap_error_body(
                    400, "bad request", str(exc)
                )),
                "application/json",
                None,
                label,
            )
        return (
            404,
            render_json(rdap_error_body(
                404, "not found", f"no route for {path}"
            )),
            "application/json",
            None,
            "unmatched",
        )

    @staticmethod
    def _wants_prometheus(request: HttpRequest, query: str) -> bool:
        """Content negotiation for ``/metrics``.

        ``?format=prom`` (or ``format=prometheus``) forces the text
        exposition; otherwise an ``Accept`` header preferring
        ``text/plain`` or OpenMetrics gets it, and everything else —
        including the bare default — keeps the JSON document PR 6
        shipped.
        """
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == "format":
                return value in ("prom", "prometheus")
        accept = request.header("accept").lower()
        return "text/plain" in accept or "openmetrics" in accept

    # -- live delta apply -----------------------------------------------

    async def apply_delta_entries(self, entries) -> int:
        """Apply new-day journal entries to the running engine.

        Serialized under the apply lock so concurrent callers cannot
        interleave serials.  Each entry is applied synchronously —
        the engine builds the new index and swaps it in one attribute
        write, so queries in flight on this loop observe either the
        old delegation set or the new one, never a torn mixture.
        Returns the number of entries applied.
        """
        if self._apply_lock is None:
            self._apply_lock = asyncio.Lock()
        applied = 0
        async with self._apply_lock:
            for entry in entries:
                self._engine.apply_delta_entry(entry)
                self.delta_applies += 1
                applied += 1
                # Yield between entries so queries interleave with a
                # long catch-up instead of stalling behind it.
                await asyncio.sleep(0)
        return applied

    async def apply_journal(self, path) -> int:
        """Catch the engine up to a journal file (see
        :meth:`QueryEngine.apply_journal`), under the apply lock."""
        if self._apply_lock is None:
            self._apply_lock = asyncio.Lock()
        async with self._apply_lock:
            applied = self._engine.apply_journal(path)
            self.delta_applies += applied
            return applied

    # -- introspection --------------------------------------------------

    def health(self) -> dict:
        """The ``/health`` document (also the startup banner data)."""
        uptime = (
            self._clock() - self._started_at
            if self._started_at is not None else 0.0
        )
        document = {
            "status": "draining" if self._draining else "ok",
            "uptimeSeconds": round(uptime, 3),
            "loaded": self._engine.loaded_summary(),
            "connections": {
                "live": len(self._connections),
                "total": self.connections_total,
            },
            "queries": {
                "whois": self.whois_queries,
                "http": self.http_requests,
                "throttled": self._engine.rdap.throttled_count,
            },
            "limiters": {
                "live": self._engine.rdap.live_limiter_count,
                "evicted": self._engine.rdap.evicted_count,
            },
            "window": {
                "1m": self._window.snapshot(self._clock(), 60),
                "5m": self._window.snapshot(self._clock(), 300),
            },
        }
        if self._engine.delta is not None:
            document["delta"] = {
                "serial": self._engine.delta.serial,
                "snapshotDate": (
                    self._engine.delta.dates[-1].isoformat()
                    if self._engine.delta.dates else None
                ),
                "applied": self.delta_applies,
            }
        return document

    def metrics_snapshot(self) -> dict:
        """The ``/metrics`` document: the obs registry, as JSON."""
        snapshot = self._metrics.to_json()
        snapshot["enabled"] = self._metrics.enabled
        return snapshot

    def prometheus_text(self) -> str:
        """The ``/metrics`` document in Prometheus text exposition."""
        return to_prometheus(self._metrics.to_json())


def run_server(
    server: ReproServeServer,
    *,
    serve_seconds: Optional[float] = None,
    ready_path: Optional[str] = None,
    install_signal_handlers: bool = True,
    on_ready: Optional[Callable[[ReproServeServer], None]] = None,
) -> None:
    """Start ``server`` and block until it shuts down.

    ``SIGINT``/``SIGTERM`` trigger the graceful drain; with
    ``serve_seconds`` the server additionally drains itself after that
    long (the smoke-test mode).  ``ready_path`` gets one line —
    ``<host> <whois_port> <http_port>`` — written once both listeners
    are bound, so scripts can wait for ephemeral ports; ``on_ready``
    is called at the same moment (the CLI's startup banner).
    """

    async def _main() -> None:
        await server.start()
        if ready_path is not None:
            # Atomic publish (the store/cache temp convention): a
            # script polling for this file must never read a torn
            # half-line, so write a sibling and rename into place.
            target = pathlib.Path(ready_path)
            tmp = target.with_name(
                f"{target.name}.tmp.{os.getpid()}"
            )
            tmp.write_text(
                f"{server.host} {server.whois_port} "
                f"{server.http_port}\n",
                encoding="utf-8",
            )
            os.replace(tmp, target)
        if on_ready is not None:
            on_ready(server)
        loop = asyncio.get_running_loop()
        installed = []
        if install_signal_handlers:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(
                        signum, server.request_shutdown
                    )
                    installed.append(signum)
                except (NotImplementedError, RuntimeError):
                    pass  # platform without signal support in loops
        timer = None
        if serve_seconds is not None:
            timer = loop.call_later(
                serve_seconds, server.request_shutdown
            )
        try:
            await server.wait_stopped()
        finally:
            if timer is not None:
                timer.cancel()
            for signum in installed:
                loop.remove_signal_handler(signum)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        # Fallback when signal handlers could not be installed.
        pass
