"""The always-on query serving layer.

Turns the batch pipeline into a system: one
:class:`~repro.serve.engine.QueryEngine` loads the WHOIS database, the
inferred delegation set, the transfer ledger and the market statistics
into memory, and :class:`~repro.serve.server.ReproServeServer` answers
over a WHOIS line protocol and an HTTP/JSON (RDAP-shaped) API —
byte-identical to the in-memory engines, shared rate limiting, graceful
drain, obs-instrumented per request.
"""

from repro.serve.engine import (
    DelegationIndex,
    QueryEngine,
    TransferIndex,
    build_market_summary,
    parse_prefix_text,
)
from repro.serve.protocol import (
    HttpRequest,
    ProtocolError,
    http_response,
    parse_http_head,
    rdap_error_body,
    render_json,
    whois_throttle_line,
)
from repro.serve.server import ReproServeServer, run_server

__all__ = [
    "DelegationIndex",
    "HttpRequest",
    "ProtocolError",
    "QueryEngine",
    "ReproServeServer",
    "TransferIndex",
    "build_market_summary",
    "http_response",
    "parse_http_head",
    "parse_prefix_text",
    "rdap_error_body",
    "render_json",
    "run_server",
    "whois_throttle_line",
]
