"""The shared query core behind both serving frontends.

The paper's measurement plane talks to live registry interfaces; the
serving layer turns our in-memory reproductions of those interfaces
into a long-running system.  One :class:`QueryEngine` loads everything
a query can touch — the WHOIS database, the RDAP view over it, the
inferred delegation set (as a :class:`~repro.netbase.lpm.SortedPrefixMap`
for longest-prefix lookups), the transfer ledger, and the market
statistics — and both frontends (the port-43-style line protocol and
the HTTP/JSON API) answer *through* it.

Byte-identical answers are the design invariant: the engine does not
reimplement query semantics, it *wraps* the exact
:class:`~repro.whois.server.WhoisServer` and
:class:`~repro.rdap.server.RdapServer` instances the batch pipeline
uses, so a response served over a socket equals the response computed
in memory, byte for byte.
"""

from __future__ import annotations

import datetime
import time
from typing import Dict, List, Optional, Tuple

from repro.delegation.model import DailyDelegations
from repro.netbase.lpm import SortedPrefixMap
from repro.netbase.prefix import IPv4Prefix, parse_address
from repro.obs.metrics import NULL, MetricsRegistry
from repro.rdap.server import RdapServer
from repro.registry.rir import RIR
from repro.registry.transfers import TransferLedger, TransferRecord
from repro.whois.server import WhoisServer


def parse_prefix_text(text: str) -> IPv4Prefix:
    """Parse a query target: ``a.b.c.d`` or ``a.b.c.d/len``.

    Bare addresses become /32s, mirroring the WHOIS query parser; host
    bits below the mask are tolerated like real registry endpoints do.
    """
    if "/" in text:
        return IPv4Prefix.parse(text, strict=False)
    return IPv4Prefix(parse_address(text), 32)


class DelegationIndex:
    """The inferred delegation set, indexed for serving.

    Holds two read-optimized views of one
    :class:`~repro.delegation.model.DailyDelegations`:

    - a :class:`~repro.netbase.lpm.SortedPrefixMap` of the most recent
      observation day (the "current" delegation table) for
      longest-prefix and cover queries,
    - a per-AS history fold of the full timeline, answering "which
      delegations has AS N ever taken part in, and when".
    """

    def __init__(self, daily: Optional[DailyDelegations] = None):
        daily = daily or DailyDelegations()
        dates = daily.dates()
        self.snapshot_date: Optional[datetime.date] = (
            dates[-1] if dates else None
        )
        by_prefix: Dict[IPv4Prefix, List[Tuple[int, int]]] = {}
        if self.snapshot_date is not None:
            for prefix, delegator, delegatee in sorted(
                daily.on(self.snapshot_date)
            ):
                by_prefix.setdefault(prefix, []).append(
                    (delegator, delegatee)
                )
        self._map: SortedPrefixMap = SortedPrefixMap(
            (prefix, tuple(pairs)) for prefix, pairs in by_prefix.items()
        )
        self._by_asn: Dict[int, List[dict]] = {}
        for (prefix, delegator, delegatee), seen in sorted(
            daily.timeline().items()
        ):
            record = {
                "prefix": str(prefix),
                "delegatorAsn": delegator,
                "delegateeAsn": delegatee,
                "firstSeen": seen[0].isoformat(),
                "lastSeen": seen[-1].isoformat(),
                "daysSeen": len(seen),
                "active": seen[-1] == self.snapshot_date,
            }
            for asn, role in (
                (delegator, "delegator"), (delegatee, "delegatee")
            ):
                self._by_asn.setdefault(asn, []).append(
                    dict(record, role=role)
                )

    def __len__(self) -> int:
        return len(self._map)

    @staticmethod
    def _entry(prefix: IPv4Prefix, pairs: Tuple[Tuple[int, int], ...]) -> dict:
        return {
            "prefix": str(prefix),
            "delegations": [
                {"delegatorAsn": s, "delegateeAsn": t} for s, t in pairs
            ],
        }

    def lookup(self, prefix: IPv4Prefix) -> dict:
        """Covering delegations for ``prefix``, most-specific flagged.

        ``covering`` lists every delegated prefix on the snapshot day
        that contains the query (shortest first, like a registry
        hierarchy walk); ``longestMatch`` is the last of them.
        """
        covering = [
            self._entry(stored, pairs)
            for stored, pairs in self._map.covering(prefix)
        ]
        return {
            "query": str(prefix),
            "snapshotDate": (
                self.snapshot_date.isoformat()
                if self.snapshot_date else None
            ),
            "covering": covering,
            "longestMatch": covering[-1] if covering else None,
        }

    def as_history(self, asn: int) -> dict:
        """Every delegation AS ``asn`` ever appeared in, with dates."""
        history = self._by_asn.get(asn, [])
        return {
            "asn": asn,
            "snapshotDate": (
                self.snapshot_date.isoformat()
                if self.snapshot_date else None
            ),
            "count": len(history),
            "delegations": history,
        }


class TransferIndex:
    """The transfer ledger, indexed by prefix for serving."""

    def __init__(self, ledger: Optional[TransferLedger] = None):
        self._records: List[TransferRecord] = (
            ledger.records() if ledger is not None else []
        )
        by_prefix: Dict[IPv4Prefix, List[int]] = {}
        for index, record in enumerate(self._records):
            for prefix in record.prefixes:
                by_prefix.setdefault(prefix, []).append(index)
        self._map: SortedPrefixMap = SortedPrefixMap(
            (prefix, tuple(indices))
            for prefix, indices in by_prefix.items()
        )

    def __len__(self) -> int:
        return len(self._records)

    @staticmethod
    def record_json(record: TransferRecord) -> dict:
        published = record.published_type()
        return {
            "transferId": record.transfer_id,
            "date": record.date.isoformat(),
            "prefixes": [str(p) for p in record.prefixes],
            "addresses": record.addresses,
            "sourceOrg": record.source_org,
            "recipientOrg": record.recipient_org,
            "sourceRir": record.source_rir.value,
            "recipientRir": record.recipient_rir.value,
            "type": published.value if published else None,
            "pricePerAddress": record.price_per_address,
        }

    def _collect(self, indices) -> List[dict]:
        seen: List[int] = []
        for bucket in indices:
            for index in bucket:
                if index not in seen:
                    seen.append(index)
        return [self.record_json(self._records[i]) for i in sorted(seen)]

    def lookup(self, prefix: IPv4Prefix) -> dict:
        """Transfers that moved blocks covering or inside ``prefix``."""
        covering = self._collect(
            pairs for _stored, pairs in self._map.covering(prefix)
        )
        within = self._collect(
            pairs for _stored, pairs in self._map.covered(prefix)
        )
        return {
            "query": str(prefix),
            "covering": covering,
            "within": within,
        }


def build_market_summary(
    priced, ledger: TransferLedger, scrape_log
) -> dict:
    """Fold the market statistics the report CLI prints into one JSON
    document served at ``/market/summary``."""
    from repro.analysis.leasing_prices import summarize_leasing_prices
    from repro.analysis.prices import (
        consolidation_quarter,
        doubling_factor,
        mean_price_per_ip,
        regional_price_difference,
    )
    from repro.analysis.transfers import market_start_dates, transfer_counts
    from repro.market.leasing import FIRST_SCRAPE, SECOND_WAVE

    mean_2020 = mean_price_per_ip(
        priced, datetime.date(2020, 1, 1), datetime.date(2020, 6, 25)
    )
    _h, p_value = regional_price_difference(priced)
    quarter = consolidation_quarter(priced)
    starts = market_start_dates(ledger)
    counts = transfer_counts(ledger)
    leasing = summarize_leasing_prices(
        scrape_log, FIRST_SCRAPE, SECOND_WAVE
    )
    per_rir = {}
    for rir in RIR:
        start = starts[rir]
        per_rir[rir.value] = {
            "transfers": sum(c for _d, c in counts[rir]),
            "marketStart": start.isoformat() if start else None,
        }
    return {
        "pricedTransactions": len(priced),
        "meanPrice2020PerIp": round(mean_2020, 4),
        "doublingSince2016": round(doubling_factor(priced), 4),
        "regionalDifferencePValue": round(p_value, 6),
        "consolidationQuarter": (
            {"year": quarter[0], "quarter": quarter[1]} if quarter else None
        ),
        "leasing": {
            "providers": leasing.provider_count,
            "minPricePerIpMonth": round(leasing.min_price, 4),
            "maxPricePerIpMonth": round(leasing.max_price, 4),
        },
        "perRir": per_rir,
    }


class QueryEngine:
    """One in-memory query core shared by every serving frontend.

    All methods are synchronous and cheap (index lookups over data
    loaded at startup); the asyncio server calls straight into them
    from connection handlers.  Rate limiting lives here too — both
    frontends charge the *same* per-client token buckets via
    :meth:`check_rate`, so a client cannot dodge the limit by
    switching protocols.
    """

    def __init__(
        self,
        *,
        whois: WhoisServer,
        rdap: RdapServer,
        delegations: Optional[DelegationIndex] = None,
        transfers: Optional[TransferIndex] = None,
        market: Optional[dict] = None,
        delta: Optional[object] = None,
        metrics: MetricsRegistry = NULL,
    ):
        self.whois = whois
        self.rdap = rdap
        self.delegations = delegations or DelegationIndex()
        self.transfers = transfers or TransferIndex()
        self.market = market or {}
        #: :class:`~repro.delegation.delta.LiveDeltaHandle` when the
        #: inference sweep ran incrementally — enables live new-day
        #: applies via :meth:`apply_delta_entry`.
        self.delta = delta
        self.metrics = metrics
        rdap.set_metrics(metrics)

    # -- construction ---------------------------------------------------

    @classmethod
    def from_world(
        cls,
        world,
        *,
        include_inference: bool = True,
        step_days: int = 1,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        kernel: str = "columnar",
        incremental: bool = False,
        journal_dir: Optional[str] = None,
        store_dir: Optional[str] = None,
        day_shards: int = 1,
        rate_limit_per_second: float = 50.0,
        burst: int = 100,
        max_clients: int = 4096,
        metrics: MetricsRegistry = NULL,
    ) -> "QueryEngine":
        """Load every serveable dataset from a simulated world.

        The expensive part is the delegation inference sweep; it honors
        the same ``jobs``/``cache_dir``/``kernel``/``store_dir`` knobs
        as the batch CLI (``--no-infer`` on the CLI maps to
        ``include_inference=False`` for an instant, delegation-less
        start).  With ``incremental=True`` the sweep runs in
        day-over-day delta mode and the engine keeps the resulting
        :class:`~repro.delegation.delta.LiveDeltaHandle`, so new-day
        journal entries can be applied to the running server
        (:meth:`apply_delta_entry` / :meth:`apply_journal`).  With
        ``store_dir`` the sweep reads its per-day inputs from the
        memory-mapped shard store, so a warm server start never
        regenerates the world's BGP view.
        """
        from repro.delegation import (
            InferenceConfig,
            WorldStreamFactory,
            run_inference,
        )

        with metrics.span("serve.load.whois"):
            database = world.whois()
        delegations = None
        delta = None
        if include_inference:
            with metrics.span("serve.load.infer"):
                result = run_inference(
                    WorldStreamFactory(world.config),
                    world.config.bgp_start,
                    world.config.bgp_end,
                    InferenceConfig.extended(),
                    as2org=world.as2org(),
                    step_days=step_days,
                    jobs=jobs,
                    cache_dir=cache_dir,
                    metrics=metrics,
                    kernel=kernel,
                    incremental=incremental,
                    journal_dir=journal_dir,
                    store_dir=store_dir,
                    day_shards=day_shards,
                )
            delegations = DelegationIndex(result.daily)
            delta = result.delta_handle
        with metrics.span("serve.load.transfers"):
            transfers = TransferIndex(world.transfer_ledger())
        with metrics.span("serve.load.market"):
            market = build_market_summary(
                world.priced_transactions(),
                world.transfer_ledger(),
                world.scrape_log(),
            )
        return cls(
            whois=WhoisServer(database),
            rdap=RdapServer(
                database,
                rate_limit_per_second=rate_limit_per_second,
                burst=burst,
                max_clients=max_clients,
            ),
            delegations=delegations,
            transfers=transfers,
            market=market,
            delta=delta,
            metrics=metrics,
        )

    # -- live delta apply -----------------------------------------------

    @property
    def delta_serial(self) -> Optional[int]:
        """The journal serial the engine is current to (``None``
        when the sweep did not run incrementally)."""
        return self.delta.serial if self.delta is not None else None

    def apply_delta_entry(self, entry: dict) -> None:
        """Advance the served delegation set by one journal entry.

        Folds the entry's row delta into the live handle, re-runs the
        consistency rule (extension (v)) over the extended window,
        builds a fresh :class:`DelegationIndex`, and *then* swaps it
        in — all state changes commit together at the end, so a query
        dispatched at any point sees either the old day or the new
        day, never a mixture.  The method is synchronous on purpose:
        under asyncio nothing else can run mid-apply.

        Raises :class:`~repro.errors.ReproError` when the engine holds
        no delta handle, the serial does not continue the applied
        sequence, or the entry is not a ``delta`` record.
        """
        from repro.delegation.consistency import fill_gaps
        from repro.delegation.delta import fold_entry_rows
        from repro.errors import ReproError
        from repro.netbase.lpm import unpack

        live = self.delta
        if live is None:
            raise ReproError(
                "engine holds no delta handle "
                "(serve with incremental inference to enable applies)"
            )
        if entry.get("kind") != "delta":
            raise ReproError(
                f"cannot live-apply a {entry.get('kind')!r} entry"
            )
        serial = entry.get("serial")
        if serial != live.serial + 1:
            raise ReproError(
                f"delta serial gap: engine at {live.serial}, "
                f"entry carries {serial}"
            )
        with self.metrics.span("serve.delta.apply"):
            date = datetime.date.fromisoformat(str(entry["date"]))
            rows = fold_entry_rows(live.rows, entry)
            keys = []
            for key, delegator, delegatee in rows:
                network, length = unpack(key)
                keys.append(
                    (IPv4Prefix(network, length), delegator, delegatee)
                )
            base = live.base_daily.copy()
            base.record(date, keys)
            dates = list(live.dates) + [date]
            daily = base
            if live.rule is not None:
                daily = fill_gaps(base, live.rule, dates)
            index = DelegationIndex(daily)
        # Commit: plain attribute writes, atomic between awaits.
        self.delegations = index
        live.base_daily = base
        live.rows = rows
        live.dates = dates
        live.serial = serial
        self.metrics.inc("serve.delta.applied")

    def apply_journal(self, path) -> int:
        """Apply every journal entry newer than the engine's serial.

        The catch-up path: point it at the journal an incremental
        sweep extends and the running server advances to its tip.
        Returns the number of entries applied.
        """
        from repro.delegation.delta import DeltaJournal
        from repro.errors import ReproError

        live = self.delta
        if live is None:
            raise ReproError(
                "engine holds no delta handle "
                "(serve with incremental inference to enable applies)"
            )
        applied = 0
        for entry in DeltaJournal(path).read():
            if entry["serial"] <= live.serial:
                continue
            self.apply_delta_entry(entry)
            applied += 1
        return applied

    # -- rate limiting --------------------------------------------------

    def check_rate(self, client_id: str, now: float) -> None:
        """Charge one query to ``client_id``; raises on throttle.

        Delegates to the RDAP server's (eviction-bounded) limiter
        table so whois-line and HTTP traffic share the same buckets.
        """
        self.rdap.check_rate(client_id, now)

    # -- queries --------------------------------------------------------

    def _timed(self, kind: str, started: float) -> None:
        """Record one ``engine.query.<kind>`` observation.

        Pure lookup time — no socket write, no rate-limit charge — so
        the serve-side ``serve.*.request`` histograms can be compared
        against these to isolate protocol overhead.  Under the
        :data:`~repro.obs.metrics.NULL` default this is one no-op call.
        """
        self.metrics.observe(
            f"engine.query.{kind}", time.perf_counter() - started
        )

    def whois_query(self, line: str) -> str:
        """Answer one WHOIS query line — byte-identical to
        :meth:`repro.whois.server.WhoisServer.query`."""
        started = time.perf_counter()
        try:
            return self.whois.query(line)
        finally:
            self._timed("whois", started)

    def rdap_ip(self, prefix: IPv4Prefix) -> Dict[str, object]:
        """RDAP ``/ip`` lookup minus rate limiting (the frontends
        charge :meth:`check_rate` once per request themselves)."""
        started = time.perf_counter()
        try:
            return self.rdap.lookup_object(prefix)
        finally:
            self._timed("rdap_ip", started)

    def delegations_lookup(self, prefix: IPv4Prefix) -> dict:
        started = time.perf_counter()
        try:
            return self.delegations.lookup(prefix)
        finally:
            self._timed("delegations", started)

    def as_history(self, asn: int) -> dict:
        started = time.perf_counter()
        try:
            return self.delegations.as_history(asn)
        finally:
            self._timed("as_history", started)

    def transfers_lookup(self, prefix: IPv4Prefix) -> dict:
        started = time.perf_counter()
        try:
            return self.transfers.lookup(prefix)
        finally:
            self._timed("transfers", started)

    def market_summary(self) -> dict:
        started = time.perf_counter()
        try:
            return self.market
        finally:
            self._timed("market", started)

    def loaded_summary(self) -> dict:
        """Dataset sizes for ``/health`` and the startup banner."""
        summary = {
            "inetnums": len(self.rdap.database),
            "delegations": len(self.delegations),
            "transfers": len(self.transfers),
            "marketStats": len(self.market),
        }
        if self.delta is not None:
            summary["deltaSerial"] = self.delta.serial
        return summary

    def __repr__(self) -> str:
        loaded = self.loaded_summary()
        return (
            f"<QueryEngine {loaded['inetnums']} inetnums, "
            f"{loaded['delegations']} delegations, "
            f"{loaded['transfers']} transfers>"
        )
