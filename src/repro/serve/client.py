"""Minimal asyncio clients for the serving layer.

Used by the protocol test-suite and the load-generator benchmark; they
speak exactly the framing :mod:`repro.serve.protocol` defines and
nothing more.  (Production consumers would use a real whois or HTTP
client; these exist so the repo needs no HTTP dependency.)
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple


async def whois_request(host: str, port: int, line: str) -> bytes:
    """One classic port-43 exchange: send a line, read until close."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((line + "\r\n").encode("utf-8"))
        await writer.drain()
        return await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


class WhoisSession:
    """A persistent (``-k``) whois session: many queries, one socket."""

    def __init__(self, host: str, port: int):
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        self._writer.write(b"-k\r\n")
        await self._writer.drain()

    async def query(self, line: str) -> str:
        """Send one query; a response ends at two consecutive blank
        lines (single blanks separate objects in ``-L``/``-m``
        answers)."""
        assert self._writer is not None and self._reader is not None
        self._writer.write((line + "\r\n").encode("utf-8"))
        await self._writer.drain()
        chunks = []
        blanks = 0
        while True:
            raw = await self._reader.readline()
            if not raw:
                break
            if raw in (b"\n", b"\r\n"):
                blanks += 1
                if blanks == 2:
                    break
            else:
                blanks = 0
            chunks.append(raw.decode("utf-8"))
        return "".join(chunks).rstrip("\n")

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.write(b"\r\n")  # empty line: end of session
            with_suppress = (ConnectionResetError, BrokenPipeError)
            try:
                await self._writer.drain()
                self._writer.close()
                await self._writer.wait_closed()
            except with_suppress:
                pass


class HttpSession:
    """A keep-alive HTTP/1.1 session against the JSON frontend."""

    def __init__(
        self, host: str, port: int, *, client_id: Optional[str] = None
    ):
        self._host = host
        self._port = port
        self._client_id = client_id
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )

    async def get(
        self, path: str
    ) -> Tuple[int, Dict[str, str], bytes]:
        """GET ``path``; returns (status, headers, body)."""
        assert self._writer is not None and self._reader is not None
        lines = [
            f"GET {path} HTTP/1.1",
            f"Host: {self._host}:{self._port}",
        ]
        if self._client_id is not None:
            lines.append(f"X-Client-Id: {self._client_id}")
        request = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        self._writer.write(request)
        await self._writer.drain()
        head = await self._reader.readuntil(b"\r\n\r\n")
        head_lines = head.decode("latin-1").split("\r\n")
        status = int(head_lines[0].split(" ", 2)[1])
        headers: Dict[str, str] = {}
        for line in head_lines[1:]:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = (
            await self._reader.readexactly(length) if length else b""
        )
        return status, headers, body

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
