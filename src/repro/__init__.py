"""Reproduction of "When Wells Run Dry: The 2020 IPv4 Address Market".

The package is organized in three layers:

- **substrates** that stand in for the paper's data sources:
  :mod:`repro.netbase`, :mod:`repro.registry`, :mod:`repro.whois`,
  :mod:`repro.rdap`, :mod:`repro.bgp`, :mod:`repro.rpki`,
  :mod:`repro.asorg`, :mod:`repro.market`, :mod:`repro.simulation`;
- the paper's **core contribution**: :mod:`repro.delegation` (BGP/RDAP
  delegation inference) and :mod:`repro.analysis` (market analyses);
- :mod:`repro.datasets` glue that generates and loads every file format.

See ``DESIGN.md`` for the full system inventory and the per-experiment
index, and ``EXPERIMENTS.md`` for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
