"""Exception hierarchy for the :mod:`repro` package.

Every exception raised by this library derives from :class:`ReproError`,
so callers can catch the whole family with a single ``except`` clause while
still being able to distinguish subsystem-specific failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class PrefixError(ReproError, ValueError):
    """An IPv4 address or prefix is malformed or out of range."""


class ASNumberError(ReproError, ValueError):
    """An autonomous-system number is malformed or out of range."""


class ASPathError(ReproError, ValueError):
    """An AS path string or segment sequence cannot be parsed."""


class RegistryError(ReproError):
    """Base class for RIR registry errors."""


class PolicyError(RegistryError):
    """A registry request violates the active allocation policy."""


class PoolExhaustedError(RegistryError):
    """The registry's free pool cannot satisfy the requested size."""


class TransferError(RegistryError):
    """An address transfer is invalid (unknown holder, bad direction, ...)."""


class MembershipError(RegistryError):
    """An operation requires an active LIR membership that is missing."""


class WhoisError(ReproError):
    """Base class for WHOIS database errors."""


class ObjectNotFoundError(WhoisError, KeyError):
    """A WHOIS/RDAP object lookup found no matching object."""


class RdapError(ReproError):
    """Base class for RDAP protocol errors."""


class RdapRateLimitError(RdapError):
    """The RDAP server rejected a query because of rate limiting (HTTP 429).

    ``retry_after_seconds`` carries the server's retry hint as a number
    so callers (client backoff, the HTTP ``Retry-After`` header) never
    have to parse it back out of the message text.
    """

    def __init__(
        self,
        message: str = "rate limit exceeded",
        *,
        retry_after_seconds: "float | None" = None,
    ):
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class RdapNotFoundError(RdapError):
    """The RDAP server has no object for the queried resource (HTTP 404)."""


class RdapTimeoutError(RdapError):
    """An RDAP query timed out before the server answered."""


class BgpError(ReproError):
    """Base class for BGP data-plane and collector errors."""


class CollectorDataError(BgpError):
    """A collector archive is missing, truncated, or inconsistent."""


class RpkiError(ReproError):
    """Base class for RPKI database errors."""


class MarketError(ReproError):
    """Base class for transfer/leasing market errors."""


class OrderError(MarketError):
    """An order submitted to the market order book is invalid."""


class SimulationError(ReproError):
    """The world simulator was asked to do something inconsistent."""


class ScenarioError(SimulationError, ValueError):
    """A scenario configuration is invalid."""


class DatasetError(ReproError):
    """A dataset file cannot be parsed or written."""


class TelemetryError(ReproError):
    """Telemetry output (Prometheus exposition) is malformed."""
