"""RPKI substrate: ROAs, per-day snapshots, origin validation.

The appendix evaluates consistency rules against delegations inferred
from RPKI: if prefix *P* has a ROA for AS *S* and a more-specific *P'*
has a ROA for AS *T* ≠ *S*, that is an RPKI-visible delegation.  The
database stores per-day ROA snapshots (like the preprocessed snapshots
of Chung et al. the paper uses) and derives those delegation timelines.
"""

from repro.rpki.database import RoaDatabase, RpkiDelegation
from repro.rpki.roa import Roa, ValidationState, validate_origin

__all__ = [
    "Roa",
    "RoaDatabase",
    "RpkiDelegation",
    "ValidationState",
    "validate_origin",
]
