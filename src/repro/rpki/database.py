"""Per-day ROA snapshots and RPKI-visible delegations."""

from __future__ import annotations

import datetime
import pathlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Union

from repro.errors import RpkiError
from repro.netbase.prefix import IPv4Prefix
from repro.netbase.trie import PrefixTrie
from repro.rpki.roa import Roa


@dataclass(frozen=True)
class RpkiDelegation:
    """An RPKI-visible delegation: ``delegator`` holds a ROA for a
    covering prefix, ``delegatee`` one for the more-specific."""

    prefix: IPv4Prefix
    delegator_asn: int
    delegatee_asn: int

    def key(self) -> tuple:
        return (self.prefix, self.delegator_asn, self.delegatee_asn)


class RoaDatabase:
    """ROA snapshots keyed by date, with delegation extraction."""

    def __init__(self) -> None:
        self._snapshots: Dict[datetime.date, FrozenSet[Roa]] = {}

    # -- snapshots ------------------------------------------------------

    def add_snapshot(
        self, date: datetime.date, roas: Iterable[Roa]
    ) -> None:
        if date in self._snapshots:
            raise RpkiError(f"duplicate snapshot for {date}")
        self._snapshots[date] = frozenset(roas)

    def snapshot(self, date: datetime.date) -> FrozenSet[Roa]:
        try:
            return self._snapshots[date]
        except KeyError:
            raise RpkiError(f"no snapshot for {date}") from None

    def has_snapshot(self, date: datetime.date) -> bool:
        return date in self._snapshots

    def dates(self) -> List[datetime.date]:
        return sorted(self._snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)

    # -- delegation extraction ----------------------------------------------

    def delegations_on(self, date: datetime.date) -> List[RpkiDelegation]:
        """RPKI-visible delegations in the ``date`` snapshot.

        For every ROA (P', T), the delegator is the AS of the ROA for
        the most-specific strictly-covering prefix P with a different
        AS.  Same-AS pairs are ROA maxLength engineering, not
        delegations.
        """
        roas = self.snapshot(date)
        index: PrefixTrie[List[int]] = PrefixTrie()
        for roa in roas:
            bucket = index.get(roa.prefix)
            if bucket is None:
                bucket = []
                index.insert(roa.prefix, bucket)
            bucket.append(roa.asn)
        delegations: List[RpkiDelegation] = []
        seen = set()
        for roa in roas:
            best_asns: Optional[List[int]] = None
            for covering_prefix, asns in index.covering(roa.prefix):
                if covering_prefix.length < roa.prefix.length:
                    best_asns = asns  # most specific strict cover wins
            if best_asns is None:
                continue
            for delegator in best_asns:
                if delegator == roa.asn:
                    continue
                delegation = RpkiDelegation(
                    prefix=roa.prefix,
                    delegator_asn=delegator,
                    delegatee_asn=roa.asn,
                )
                if delegation.key() in seen:
                    continue
                seen.add(delegation.key())
                delegations.append(delegation)
        delegations.sort(key=lambda d: d.key())
        return delegations

    def delegation_timeline(
        self,
    ) -> Dict[tuple, List[datetime.date]]:
        """Map each delegation key to the snapshot dates it appears on.

        This is the input of the appendix's consistency-rule fail-rate
        evaluation (Fig. 5).
        """
        timeline: Dict[tuple, List[datetime.date]] = {}
        for date in self.dates():
            for delegation in self.delegations_on(date):
                timeline.setdefault(delegation.key(), []).append(date)
        return timeline

    # -- file I/O -------------------------------------------------------------

    def write_snapshots(
        self, directory: Union[str, pathlib.Path]
    ) -> List[str]:
        """One ``<date>.csv`` per snapshot; returns paths written."""
        base = pathlib.Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        paths: List[str] = []
        for date in self.dates():
            path = base / f"{date.isoformat()}.csv"
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("ASN,IP Prefix,Max Length\n")
                rows = sorted(
                    roa.to_csv_row() for roa in self._snapshots[date]
                )
                handle.write("\n".join(rows) + "\n")
            paths.append(str(path))
        return paths

    @classmethod
    def read_snapshots(
        cls, directory: Union[str, pathlib.Path]
    ) -> "RoaDatabase":
        """Load every ``<date>.csv`` under ``directory``."""
        base = pathlib.Path(directory)
        database = cls()
        for path in sorted(base.glob("*.csv")):
            try:
                date = datetime.date.fromisoformat(path.stem)
            except ValueError as exc:
                raise RpkiError(
                    f"snapshot filename is not a date: {path.name}"
                ) from exc
            roas: List[Roa] = []
            with open(path, encoding="utf-8") as handle:
                for i, line in enumerate(handle):
                    line = line.strip()
                    if not line or (i == 0 and line.startswith("ASN")):
                        continue
                    roas.append(Roa.from_csv_row(line))
            database.add_snapshot(date, roas)
        return database
