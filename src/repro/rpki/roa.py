"""Route Origin Authorizations and RFC 6811 validation."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import RpkiError
from repro.netbase.asnum import validate_asn
from repro.netbase.prefix import IPv4Prefix


@dataclass(frozen=True)
class Roa:
    """One ROA: ``asn`` may originate ``prefix`` up to ``max_length``."""

    prefix: IPv4Prefix
    asn: int
    max_length: Optional[int] = None

    def __post_init__(self) -> None:
        validate_asn(self.asn)
        max_length = self.max_length
        if max_length is None:
            object.__setattr__(self, "max_length", self.prefix.length)
        elif not self.prefix.length <= max_length <= 32:
            raise RpkiError(
                f"maxLength {max_length} invalid for {self.prefix}"
            )

    def authorizes(self, prefix: IPv4Prefix, origin: int) -> bool:
        """True if this ROA validates ``(prefix, origin)``."""
        assert self.max_length is not None
        return (
            origin == self.asn
            and self.prefix.covers(prefix)
            and prefix.length <= self.max_length
        )

    def covers(self, prefix: IPv4Prefix) -> bool:
        """True if ``prefix`` falls under this ROA (regardless of AS)."""
        return self.prefix.covers(prefix)

    def to_csv_row(self) -> str:
        """Serialize in the validated-ROA CSV convention."""
        return f"AS{self.asn},{self.prefix},{self.max_length}"

    @classmethod
    def from_csv_row(cls, row: str) -> "Roa":
        parts = [part.strip() for part in row.split(",")]
        if len(parts) != 3 or not parts[0].upper().startswith("AS"):
            raise RpkiError(f"malformed ROA row: {row!r}")
        try:
            return cls(
                prefix=IPv4Prefix.parse(parts[1]),
                asn=int(parts[0][2:]),
                max_length=int(parts[2]),
            )
        except (ValueError, RpkiError) as exc:
            if isinstance(exc, RpkiError):
                raise
            raise RpkiError(f"malformed ROA row: {row!r}") from exc


class ValidationState(enum.Enum):
    """RFC 6811 route-origin validation outcomes."""

    VALID = "valid"
    INVALID = "invalid"
    NOT_FOUND = "not-found"


def validate_origin(
    roas: Iterable[Roa], prefix: IPv4Prefix, origin: int
) -> ValidationState:
    """Validate ``(prefix, origin)`` against a set of ROAs.

    NOT_FOUND when no ROA covers the prefix; VALID when any covering
    ROA authorizes the pair; INVALID when covering ROAs exist but none
    authorizes it.
    """
    covered = False
    for roa in roas:
        if not roa.covers(prefix):
            continue
        covered = True
        if roa.authorizes(prefix, origin):
            return ValidationState.VALID
    return ValidationState.INVALID if covered else ValidationState.NOT_FOUND
