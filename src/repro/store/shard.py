"""Memory-mapped per-day shard files: the out-of-core pair store.

A shard holds one day's aggregated (prefix, origin) pairs in exactly
the columnar layout :class:`~repro.bgp.rib.PairTable` uses in RAM —
a 32-byte header followed by the four packed columns back-to-back
(``PairTable.to_bytes``).  Loading a shard therefore never parses or
copies anything on little-endian hosts: the file is mapped read-only
and the table's columns become cast memoryviews straight into the map
(:meth:`PairTable.from_buffer`), which the columnar kernel and the
:class:`~repro.netbase.lpm.SortedPrefixMap` LPM consume as-is.

Layout (all little-endian)::

    offset  size  field
    0       8     magic  b"RPSHARD3"
    8       2     schema (3)
    10      2     year
    12      1     month
    13      1     day
    14      4     total monitor count (the visibility denominator)
    18      8     pair count n
    26      6     zero padding (header is 32 bytes, so every column
                  start below is 8-byte aligned)
    32      8n    keys        u64  (network << 6 | length, sorted)
    32+8n   8n    origins     u64
    32+16n  4n    monitor_counts  u32
    32+20n  n     flags       u8

Shards are *pre-filter inputs* — the day's observed pairs before any
inference step runs — so the content address deliberately excludes the
inference config and kernel: every config sweep, both kernels, and the
incremental delta path all share one store.  That is also what
separates the store from the v2 result cache (which keys on the
config and stores post-filter quads): a store survives ablation
sweeps untouched, a result cache does not.

Writes are atomic (write to ``<name>.tmp.<pid>``, then
``os.replace``), so concurrent writers race benignly — both produce
identical bytes for the same key and readers only ever see a complete
file.  Anything else (torn tails, foreign magic, a v2 cache entry
dropped into the store, a truncated map) is detected by the header
and length checks, counted on ``store.malformed``, and treated as a
miss.
"""

from __future__ import annotations

import datetime
import logging
import mmap
import os
import pathlib
import struct
import time
from typing import Optional, Tuple, Union

from repro.bgp.rib import ROW_BYTES, PairTable
from repro.netbase.lpm import require_codec_itemsizes
from repro.obs.metrics import NULL, MetricsRegistry

require_codec_itemsizes()

logger = logging.getLogger(__name__)

#: Bump when the shard layout changes: old files become misses (the
#: schema is part of both the magic and the content address).
SHARD_SCHEMA = 3

_SHARD_MAGIC = b"RPSHARD3"
_SHARD_HEADER = struct.Struct("<8sHHBBIQ6x")
assert _SHARD_HEADER.size == 32  # keeps every column start 8-byte aligned

#: Temporaries older than this are presumed crash leftovers; younger
#: ones may belong to a live writer and are left alone.
STALE_TMP_SECONDS = 3600.0


def encode_shard_bytes(
    date: datetime.date, table: PairTable, total_monitors: int
) -> bytes:
    """One day's table in the RPSHARD3 on-disk/on-segment layout.

    The same bytes :meth:`ShardStore.write` persists — also what the
    runner's shared-memory seed hand-back puts in a segment, so the
    parent adopts it with :func:`decode_shard_buffer` /
    :meth:`PairTable.from_buffer` exactly as it would a mapped file.
    """
    header = _SHARD_HEADER.pack(
        _SHARD_MAGIC, SHARD_SCHEMA,
        date.year, date.month, date.day,
        total_monitors, len(table),
    )
    return header + table.to_bytes()


def decode_shard_buffer(
    buffer,
    *,
    expected_date: Optional[datetime.date] = None,
) -> Optional[Tuple[PairTable, int]]:
    """Adopt an RPSHARD3 buffer; ``(table, total_monitors)`` or ``None``.

    ``buffer`` is any byte buffer holding what :func:`encode_shard_bytes`
    produced — a read-only mmap over a shard file or a shared-memory
    segment's view.  The returned table is zero-copy (buffer-backed)
    on little-endian hosts; anything torn, foreign, or (when
    ``expected_date`` is given) misdated decodes to ``None``.
    """
    size = len(memoryview(buffer))
    if size < _SHARD_HEADER.size:
        return None
    magic, schema, year, month, day, total_monitors, count = (
        _SHARD_HEADER.unpack_from(buffer)
    )
    if magic != _SHARD_MAGIC or schema != SHARD_SCHEMA:
        return None
    if expected_date is not None and (year, month, day) != (
        expected_date.year, expected_date.month, expected_date.day
    ):
        return None
    if size != _SHARD_HEADER.size + count * ROW_BYTES:
        return None
    table = PairTable.from_buffer(
        buffer, count, offset=_SHARD_HEADER.size
    )
    return table, total_monitors


def atomic_write_bytes(path: pathlib.Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically.

    The temporary name *appends* ``.tmp.<pid>`` to the full file name
    (``with_name``, not ``with_suffix``) so entries differing only in
    their real suffix can never collide on the same temporary, and two
    pids writing the same entry use distinct temporaries.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)


def sweep_stale_temporaries(
    base: Union[str, pathlib.Path],
    *,
    metrics: MetricsRegistry = NULL,
    counter: str = "store.tmp_swept",
    max_age_seconds: float = STALE_TMP_SECONDS,
) -> int:
    """Delete orphaned atomic-write temporaries under ``base``.

    A crash between the temporary write and the ``os.replace`` leaks
    one ``*.tmp.<pid>`` file; this removes any such file older than
    ``max_age_seconds`` (young ones may belong to a concurrent live
    writer).  Returns the number removed and bumps ``counter``.
    """
    base = pathlib.Path(base)
    if not base.is_dir():
        return 0
    cutoff = time.time() - max_age_seconds
    removed = 0
    for path in base.rglob("*.tmp.*"):
        try:
            if path.stat().st_mtime > cutoff:
                continue
            path.unlink()
        except OSError:
            continue  # raced with the owner finishing or another sweep
        removed += 1
    if removed:
        metrics.inc(counter, removed)
        logger.info("swept %d stale temporaries under %s", removed, base)
    return removed


class ShardStore:
    """Content-addressed per-day shard files under one directory.

    ``input_fingerprint`` identifies the input data exactly as the v2
    result cache's key does (``StreamFactory.fingerprint()``); shard
    keys hash ``(schema, input, date)`` and nothing else, so the store
    is shared across inference configs and kernels.

    Loaded tables are zero-copy views over read-only maps; each view
    keeps its map (and file) alive for as long as the table is
    referenced, so a sweep holds at most a handful of day-maps open at
    a time regardless of how large the days are.
    """

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        input_fingerprint: str,
        *,
        metrics: MetricsRegistry = NULL,
        sweep: bool = True,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.input_fingerprint = input_fingerprint
        self.metrics = metrics
        self._mapped_bytes = 0
        if sweep:
            sweep_stale_temporaries(self.directory, metrics=metrics)

    # -- addressing ----------------------------------------------------

    def key(self, date: datetime.date) -> str:
        # Imported lazily: delegation's package __init__ pulls in the
        # runner, which imports this module — a top-level import here
        # would close that cycle before either side finished binding.
        from repro.delegation.io import content_digest

        return content_digest({
            "schema": SHARD_SCHEMA,
            "input": self.input_fingerprint,
            "date": date.isoformat(),
        })

    def path(self, date: datetime.date) -> pathlib.Path:
        key = self.key(date)
        # Same two-level fan-out as the result cache: multi-year
        # sweeps never pile thousands of files into one directory.
        return self.directory / key[:2] / f"{key}.shard"

    # -- read ----------------------------------------------------------

    def load(
        self, date: datetime.date
    ) -> Optional[Tuple[PairTable, int]]:
        """Map one day; ``(table, total_monitors)`` or ``None``.

        Missing days are plain misses; unreadable or malformed files
        are logged, counted on ``store.malformed``, and also treated
        as misses so a corrupt shard degrades to a recompute instead
        of poisoning the sweep.
        """
        path = self.path(date)
        try:
            handle = open(path, "rb")
        except FileNotFoundError:
            self.metrics.inc("store.misses")
            return None
        except OSError:
            logger.warning("discarding unreadable shard %s", path)
            self.metrics.inc("store.malformed")
            self.metrics.inc("store.misses")
            return None
        with handle:
            try:
                mapped = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            except (ValueError, OSError):
                # Zero-length files can't be mapped — a torn create.
                logger.warning("discarding unmappable shard %s", path)
                self.metrics.inc("store.malformed")
                self.metrics.inc("store.misses")
                return None
        loaded = self._decode(mapped, date, path)
        if loaded is None:
            mapped.close()
            self.metrics.inc("store.malformed")
            self.metrics.inc("store.misses")
            return None
        self.metrics.inc("store.hits")
        self._mapped_bytes += len(mapped)
        self.metrics.set_gauge(
            "store.mapped_kb", self._mapped_bytes // 1024
        )
        return loaded

    def _decode(
        self,
        mapped: mmap.mmap,
        date: datetime.date,
        path: pathlib.Path,
    ) -> Optional[Tuple[PairTable, int]]:
        # The content address embeds the date, so a date mismatch means
        # the file was renamed or the store mixed up — rejected like
        # torn or foreign bytes.
        loaded = decode_shard_buffer(mapped, expected_date=date)
        if loaded is None:
            logger.warning("discarding invalid shard %s", path)
        return loaded

    # -- write ---------------------------------------------------------

    def write(
        self,
        date: datetime.date,
        table: PairTable,
        total_monitors: int,
    ) -> pathlib.Path:
        """Persist one day's table atomically; returns the path."""
        path = self.path(date)
        atomic_write_bytes(
            path, encode_shard_bytes(date, table, total_monitors)
        )
        self.metrics.inc("store.writes")
        return path

    # -- result shards -------------------------------------------------
    #
    # A second namespace under the same directory: *post-filter* per-day
    # results in the runner's v2 cache payload layout (RPD2 quads), used
    # by the zero-copy fan-in as a write-through result cache.  Unlike
    # the input shards above — keyed on the input only — result shards
    # are keyed on the runner's config-hash digest (the same
    # ``_cache_key`` the v2 cache uses), because filter output depends
    # on the inference configuration.  The store treats the payload as
    # opaque bytes; the runner owns the codec and its validation.

    def result_path(self, key: str) -> pathlib.Path:
        """Where the result shard for one config-hash key lives."""
        return self.directory / "results" / key[:2] / f"{key}.rpd"

    def load_result(self, key: str) -> Optional[mmap.mmap]:
        """Map one result shard read-only; raw bytes or ``None``.

        Missing entries count as ``store.result_misses``; the caller
        decodes (and on malformed bytes bumps ``store.malformed`` +
        ``store.result_misses`` itself, then closes the map).
        """
        path = self.result_path(key)
        try:
            handle = open(path, "rb")
        except FileNotFoundError:
            self.metrics.inc("store.result_misses")
            return None
        except OSError:
            logger.warning("discarding unreadable result shard %s", path)
            self.metrics.inc("store.malformed")
            self.metrics.inc("store.result_misses")
            return None
        with handle:
            try:
                mapped = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            except (ValueError, OSError):
                logger.warning(
                    "discarding unmappable result shard %s", path
                )
                self.metrics.inc("store.malformed")
                self.metrics.inc("store.result_misses")
                return None
        self._mapped_bytes += len(mapped)
        self.metrics.set_gauge(
            "store.mapped_kb", self._mapped_bytes // 1024
        )
        return mapped

    def write_result(self, key: str, data: bytes) -> pathlib.Path:
        """Persist one result payload atomically; returns the path."""
        path = self.result_path(key)
        atomic_write_bytes(path, data)
        self.metrics.inc("store.result_writes")
        return path
