"""The out-of-core storage engine.

Per-day memory-mapped shard files whose on-disk layout *is* the
columnar :class:`~repro.bgp.rib.PairTable` layout, so loads are
zero-copy: the runner, the incremental delta path and the serving
layer all read internet-scale days without materializing them in RAM
(see :mod:`repro.store.shard` for the format and invariants).
"""

from repro.store.shard import (
    SHARD_SCHEMA,
    ShardStore,
    atomic_write_bytes,
    sweep_stale_temporaries,
)

__all__ = [
    "SHARD_SCHEMA",
    "ShardStore",
    "atomic_write_bytes",
    "sweep_stale_temporaries",
]
