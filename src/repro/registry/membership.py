"""LIR membership and fee schedules.

Membership matters to the reproduction for two reasons: (i) only
members can receive or transfer space, and (ii) the annual resource
maintenance fee enters the buy-versus-lease amortization model (§6 —
with cheap leases and non-trivial maintenance fees, buying can take
decades to amortize).

Fee numbers approximate the 2020 public schedules cited in §2 [3, 10,
12, 52, 86]; the amortization analysis only needs their order of
magnitude (tens of cents to ~a dollar per address per year for small
holders, dropping steeply with size).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import MembershipError
from repro.netbase.prefix import IPv4Prefix
from repro.registry.rir import RIR


@dataclass(frozen=True)
class FeeSchedule:
    """An RIR's annual charging model, simplified to two terms.

    ``base_fee`` is the flat annual membership fee in USD; the
    size-dependent term is a piecewise schedule over total held
    addresses: a list of ``(addresses_up_to, annual_fee)`` steps.
    """

    rir: RIR
    base_fee: float
    size_steps: Tuple[Tuple[int, float], ...]

    def annual_fee(self, held_addresses: int) -> float:
        """Total annual cost for a member holding ``held_addresses``."""
        if held_addresses < 0:
            raise ValueError("held_addresses must be non-negative")
        size_fee = 0.0
        for threshold, fee in self.size_steps:
            size_fee = fee
            if held_addresses <= threshold:
                break
        return self.base_fee + size_fee

    def monthly_fee_per_address(self, held_addresses: int) -> float:
        """Maintenance cost per address per month — the amortization
        model's input."""
        if held_addresses <= 0:
            return 0.0
        return self.annual_fee(held_addresses) / held_addresses / 12.0


#: Simplified 2020 fee schedules (USD/year).
DEFAULT_FEE_SCHEDULES: Dict[RIR, FeeSchedule] = {
    RIR.AFRINIC: FeeSchedule(
        RIR.AFRINIC,
        base_fee=950.0,
        size_steps=((2 ** 12, 1000.0), (2 ** 16, 3400.0), (2 ** 32, 13200.0)),
    ),
    RIR.APNIC: FeeSchedule(
        RIR.APNIC,
        base_fee=1180.0,
        size_steps=((2 ** 11, 0.0), (2 ** 16, 2480.0), (2 ** 32, 11800.0)),
    ),
    RIR.ARIN: FeeSchedule(
        RIR.ARIN,
        base_fee=0.0,
        size_steps=((2 ** 12, 1000.0), (2 ** 16, 2000.0), (2 ** 32, 8000.0)),
    ),
    RIR.LACNIC: FeeSchedule(
        RIR.LACNIC,
        base_fee=0.0,
        size_steps=((2 ** 12, 1050.0), (2 ** 16, 2750.0), (2 ** 32, 9100.0)),
    ),
    RIR.RIPE: FeeSchedule(
        RIR.RIPE,
        base_fee=1550.0,  # RIPE charges per LIR, flat (ripe-722)
        size_steps=((2 ** 32, 0.0),),
    ),
}


@dataclass
class LIRAccount:
    """One Local Internet Registry: a member of an RIR."""

    org_id: str
    rir: RIR
    joined_on: datetime.date
    closed_on: Optional[datetime.date] = None
    holdings: List[IPv4Prefix] = field(default_factory=list)
    allocation_count: int = 0

    @property
    def active(self) -> bool:
        return self.closed_on is None

    def held_addresses(self) -> int:
        return sum(prefix.num_addresses for prefix in self.holdings)

    def add_holding(self, block: IPv4Prefix) -> None:
        self.holdings.append(block)
        self.holdings.sort()

    def remove_holding(self, block: IPv4Prefix) -> None:
        try:
            self.holdings.remove(block)
        except ValueError:
            raise MembershipError(
                f"{self.org_id} does not hold {block}"
            ) from None


class MembershipRoster:
    """The member registry of one RIR."""

    def __init__(self, rir: RIR, fee_schedule: Optional[FeeSchedule] = None):
        self._rir = rir
        self._fees = fee_schedule or DEFAULT_FEE_SCHEDULES[rir]
        self._accounts: Dict[str, LIRAccount] = {}

    @property
    def rir(self) -> RIR:
        return self._rir

    @property
    def fee_schedule(self) -> FeeSchedule:
        return self._fees

    def open_account(self, org_id: str, date: datetime.date) -> LIRAccount:
        """Register ``org_id`` as a member; idempotent re-joins rejected."""
        existing = self._accounts.get(org_id)
        if existing is not None and existing.active:
            raise MembershipError(f"{org_id} is already a member")
        account = LIRAccount(org_id=org_id, rir=self._rir, joined_on=date)
        self._accounts[org_id] = account
        return account

    def close_account(self, org_id: str, date: datetime.date) -> LIRAccount:
        """Close a membership; the registry reclaims its holdings."""
        account = self.require(org_id)
        account.closed_on = date
        return account

    def get(self, org_id: str) -> Optional[LIRAccount]:
        return self._accounts.get(org_id)

    def require(self, org_id: str) -> LIRAccount:
        """Return the active account of ``org_id`` or raise."""
        account = self._accounts.get(org_id)
        if account is None or not account.active:
            raise MembershipError(
                f"{org_id} is not an active member of "
                f"{self._rir.display_name}"
            )
        return account

    def is_member(self, org_id: str) -> bool:
        account = self._accounts.get(org_id)
        return account is not None and account.active

    def annual_fee(self, org_id: str) -> float:
        """The member's current annual bill."""
        account = self.require(org_id)
        return self._fees.annual_fee(account.held_addresses())

    def active_accounts(self) -> List[LIRAccount]:
        return [a for a in self._accounts.values() if a.active]

    def __len__(self) -> int:
        return len(self.active_accounts())

    def __contains__(self, org_id: str) -> bool:
        return self.is_member(org_id)
