"""The NRO "delegated-extended" statistics file format.

Every RIR publishes a daily ``delegated-<rir>-extended-latest`` file —
the canonical public record of who holds which resources, and the
dataset behind every exhaustion tracker (including the "IPv4 Run Out"
pages the paper cites).  Lines are pipe-separated::

    ripencc|EU|ipv4|193.0.0.0|65536|19930901|allocated|<opaque-id>

with a version header and per-type summary lines.  This module renders
a registry's state in that format and parses it back, including the
quirk that IPv4 lines carry an address *count* (not a prefix length)
because early allocations were not CIDR aligned.
"""

from __future__ import annotations

import datetime
import enum
import pathlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import DatasetError
from repro.netbase.prefix import IPv4Prefix, format_address, parse_address
from repro.registry.rir import RIR


class DelegationStatus(enum.Enum):
    """Status column values for delegated-stats records."""

    ALLOCATED = "allocated"
    ASSIGNED = "assigned"
    AVAILABLE = "available"
    RESERVED = "reserved"

    @classmethod
    def parse(cls, text: str) -> "DelegationStatus":
        for status in cls:
            if status.value == text.strip().lower():
                return status
        raise DatasetError(f"unknown delegation status: {text!r}")


@dataclass(frozen=True)
class DelegatedRecord:
    """One IPv4 line of a delegated-extended file."""

    rir: RIR
    country: str
    start: int
    count: int
    date: Optional[datetime.date]
    status: DelegationStatus
    opaque_id: str = ""

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise DatasetError("record must cover at least one address")
        if not 0 <= self.start <= 0xFFFFFFFF:
            raise DatasetError("start address out of range")

    @property
    def last(self) -> int:
        return self.start + self.count - 1

    def prefixes(self) -> List[IPv4Prefix]:
        """The record as CIDR blocks (counts are not always powers of
        two)."""
        return IPv4Prefix.from_range(self.start, self.last)

    def to_line(self) -> str:
        date_text = (
            self.date.strftime("%Y%m%d") if self.date is not None else ""
        )
        return "|".join([
            self.rir.value,
            self.country,
            "ipv4",
            format_address(self.start),
            str(self.count),
            date_text,
            self.status.value,
            self.opaque_id,
        ])

    @classmethod
    def from_line(cls, line: str) -> "DelegatedRecord":
        fields = line.strip().split("|")
        if len(fields) < 7:
            raise DatasetError(f"short delegated-stats line: {line!r}")
        if fields[2] != "ipv4":
            raise DatasetError(f"not an ipv4 line: {line!r}")
        try:
            rir = RIR(fields[0])
            start = parse_address(fields[3])
            count = int(fields[4])
            date = None
            if fields[5]:
                date = datetime.datetime.strptime(
                    fields[5], "%Y%m%d"
                ).date()
            status = DelegationStatus.parse(fields[6])
        except (ValueError, DatasetError) as exc:
            if isinstance(exc, DatasetError):
                raise
            raise DatasetError(f"bad delegated-stats line: {line!r}") from exc
        return cls(
            rir=rir,
            country=fields[1],
            start=start,
            count=count,
            date=date,
            status=status,
            opaque_id=fields[7] if len(fields) > 7 else "",
        )


def render_file(
    rir: RIR,
    records: Iterable[DelegatedRecord],
    *,
    file_date: datetime.date,
) -> str:
    """Render a full delegated-extended file: header, summary, lines."""
    records = sorted(records, key=lambda r: r.start)
    lines = [
        # version|registry|serial|records|startdate|enddate|UTCoffset
        f"2|{rir.value}|{file_date.strftime('%Y%m%d')}|{len(records)}"
        f"|19830101|{file_date.strftime('%Y%m%d')}|+0000",
        f"{rir.value}|*|ipv4|*|{len(records)}|summary",
    ]
    lines.extend(record.to_line() for record in records)
    return "\n".join(lines) + "\n"


def parse_file(text: str) -> List[DelegatedRecord]:
    """Parse a delegated-extended file (header/summary/comments
    skipped)."""
    records: List[DelegatedRecord] = []
    declared: Optional[int] = None
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if fields[0] == "2":  # version header
            continue
        if len(fields) >= 6 and fields[5] == "summary":
            if fields[2] == "ipv4":
                declared = int(fields[4])
            continue
        records.append(DelegatedRecord.from_line(line))
    if declared is not None and declared != len(records):
        raise DatasetError(
            f"summary declares {declared} ipv4 records, found "
            f"{len(records)}"
        )
    return records


def available_addresses(records: Iterable[DelegatedRecord]) -> int:
    """Free-pool size: the sum of AVAILABLE record counts.

    This is how exhaustion trackers measure an RIR's remaining pool
    (e.g. RIPE's "around 340k addresses" in §2).
    """
    return sum(
        record.count
        for record in records
        if record.status is DelegationStatus.AVAILABLE
    )


def write_file(
    rir: RIR,
    records: Iterable[DelegatedRecord],
    path: Union[str, pathlib.Path],
    *,
    file_date: datetime.date,
) -> str:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        render_file(rir, records, file_date=file_date), encoding="utf-8"
    )
    return str(path)


def read_file(path: Union[str, pathlib.Path]) -> List[DelegatedRecord]:
    return parse_file(pathlib.Path(path).read_text(encoding="utf-8"))


def records_from_registry(
    registry,
    *,
    country: str = "ZZ",
    date: Optional[datetime.date] = None,
) -> Iterator[DelegatedRecord]:
    """Render a live :class:`~repro.registry.registry.RIRRegistry`'s
    state as delegated-stats records: holdings as ALLOCATED, the free
    pool as AVAILABLE, quarantined space as RESERVED."""
    for block, _org in sorted(registry.holdings().items()):
        yield DelegatedRecord(
            rir=registry.rir,
            country=country,
            start=block.network,
            count=block.num_addresses,
            date=date,
            status=DelegationStatus.ALLOCATED,
        )
    for block in registry.pool.blocks():
        yield DelegatedRecord(
            rir=registry.rir,
            country=country,
            start=block.network,
            count=block.num_addresses,
            date=date,
            status=DelegationStatus.AVAILABLE,
        )
    for entry in registry.quarantine.pending():
        yield DelegatedRecord(
            rir=registry.rir,
            country=country,
            start=entry.block.network,
            count=entry.block.num_addresses,
            date=date,
            status=DelegationStatus.RESERVED,
        )
