"""Waiting lists for approved-but-unfulfilled allocation requests.

After exhaustion, ARIN/LACNIC/RIPE queue approved requests and fulfill
them first-come-first-served from recovered space (§2: ARIN's list held
up to 202 requests with 130+-day waits; LACNIC 275; RIPE fulfilled all
110 after November 2019).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class WaitingRequest:
    """One approved request sitting on the waiting list."""

    org_id: str
    requested_length: int
    approved_on: datetime.date
    fulfilled_on: Optional[datetime.date] = None

    @property
    def pending(self) -> bool:
        return self.fulfilled_on is None

    def waiting_days(self, as_of: datetime.date) -> int:
        """Days spent waiting, up to fulfillment or ``as_of``."""
        end = self.fulfilled_on or as_of
        return (end - self.approved_on).days


@dataclass
class WaitingList:
    """FIFO waiting list of one RIR."""

    requests: List[WaitingRequest] = field(default_factory=list)
    abolished_on: Optional[datetime.date] = None

    def enqueue(
        self, org_id: str, requested_length: int, date: datetime.date
    ) -> WaitingRequest:
        """Append an approved request; returns the queued entry."""
        if self.abolished_on is not None and date >= self.abolished_on:
            raise ValueError("waiting list has been abolished")
        request = WaitingRequest(
            org_id=org_id,
            requested_length=requested_length,
            approved_on=date,
        )
        self.requests.append(request)
        return request

    def pending(self) -> List[WaitingRequest]:
        """Pending requests in queue order."""
        return [r for r in self.requests if r.pending]

    def next_pending(self) -> Optional[WaitingRequest]:
        """Head of the queue, or None."""
        for request in self.requests:
            if request.pending:
                return request
        return None

    def fulfill_next(self, date: datetime.date) -> Optional[WaitingRequest]:
        """Mark the head request fulfilled on ``date``; return it."""
        request = self.next_pending()
        if request is not None:
            request.fulfilled_on = date
        return request

    def abolish(self, date: datetime.date) -> List[WaitingRequest]:
        """Abolish the list (APNIC, July 2019); returns dropped entries."""
        self.abolished_on = date
        dropped = self.pending()
        self.requests = [r for r in self.requests if not r.pending]
        return dropped

    def max_waiting_days(self, as_of: datetime.date) -> int:
        """Longest wait experienced by any request, in days."""
        if not self.requests:
            return 0
        return max(r.waiting_days(as_of) for r in self.requests)

    def __len__(self) -> int:
        return len(self.pending())

    def __bool__(self) -> bool:
        return bool(self.pending())
