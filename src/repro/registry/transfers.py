"""Transfer records, the transfer ledger, and the RIR JSON feeds.

Every RIR publishes daily transfer statistics as JSON.  This module
models the records and reproduces the feed quirks the paper's analysis
must handle (§3):

- AFRINIC, ARIN, and RIPE NCC **label** merger-and-acquisition (M&A)
  transfers; APNIC and LACNIC publish them indistinguishable from
  market transfers, so M&A removal is only possible for the former.
- Inter-RIR transfers appear in the feeds of *both* endpoint RIRs, so a
  naive concatenation double counts them.
- The "region" of a transferred block is the RIR that maintains it, and
  is updated by inter-RIR transfers (footnote 1 of the paper).
"""

from __future__ import annotations

import datetime
import enum
import json
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import DatasetError, TransferError
from repro.ingest.quarantine import ErrorPolicy, QuarantineReport
from repro.netbase.prefix import IPv4Prefix, format_address, parse_address
from repro.registry.rir import RIR, profile_for

#: Feed label for market transfers (matches ARIN/RIPE publications).
_JSON_TYPE_MARKET = "RESOURCE_TRANSFER"
#: Feed label for M&A transfers, only used by the labelling RIRs.
_JSON_TYPE_MNA = "MERGER_ACQUISITION"

_RIR_JSON_NAMES: Dict[RIR, str] = {
    RIR.AFRINIC: "AFRINIC",
    RIR.APNIC: "APNIC",
    RIR.ARIN: "ARIN",
    RIR.LACNIC: "LACNIC",
    RIR.RIPE: "RIPE NCC",
}
_RIR_FROM_JSON = {name: rir for rir, name in _RIR_JSON_NAMES.items()}


class TransferType(enum.Enum):
    """The true nature of a transfer (ground truth, pre-labelling)."""

    MARKET = "market"
    MERGER_ACQUISITION = "merger-acquisition"


@dataclass(frozen=True)
class TransferRecord:
    """One completed IPv4 transfer.

    ``true_type`` is the ground-truth nature of the transfer;
    ``published_type`` (see :meth:`published_type`) is what the source
    RIR's feed discloses, which collapses to MARKET for non-labelling
    RIRs.
    """

    transfer_id: str
    date: datetime.date
    prefixes: Tuple[IPv4Prefix, ...]
    source_org: str
    recipient_org: str
    source_rir: RIR
    recipient_rir: RIR
    true_type: TransferType
    price_per_address: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.prefixes:
            raise TransferError("a transfer must move at least one block")

    @property
    def is_inter_rir(self) -> bool:
        return self.source_rir is not self.recipient_rir

    @property
    def addresses(self) -> int:
        return sum(prefix.num_addresses for prefix in self.prefixes)

    @property
    def largest_block_length(self) -> int:
        """Length of the largest (least-specific) block moved."""
        return min(prefix.length for prefix in self.prefixes)

    def published_type(self) -> Optional[TransferType]:
        """The transfer type as visible in the published feed.

        ``None`` means "unlabelled" — the reader cannot distinguish
        market from M&A (APNIC and LACNIC feeds).
        """
        if profile_for(self.source_rir).labels_mna_transfers:
            return self.true_type
        return None

    # -- JSON serialization ------------------------------------------

    def to_feed_json(self) -> Dict[str, object]:
        """Serialize in the published RIR transfer-statistics schema."""
        labelled = profile_for(self.source_rir).labels_mna_transfers
        if labelled and self.true_type is TransferType.MERGER_ACQUISITION:
            json_type = _JSON_TYPE_MNA
        else:
            json_type = _JSON_TYPE_MARKET
        return {
            "transfer_id": self.transfer_id,
            "transfer_date": self.date.isoformat() + "T00:00:00Z",
            "type": json_type,
            "source_organization": {"name": self.source_org},
            "recipient_organization": {"name": self.recipient_org},
            "source_rir": _RIR_JSON_NAMES[self.source_rir],
            "recipient_rir": _RIR_JSON_NAMES[self.recipient_rir],
            "ip4nets": {
                "transfer_set": [
                    {
                        "start_address": format_address(p.network),
                        "end_address": format_address(p.broadcast),
                    }
                    for p in self.prefixes
                ]
            },
        }

    @classmethod
    def from_feed_json(cls, data: Dict[str, object]) -> "TransferRecord":
        """Parse one feed record.

        The parsed ``true_type`` reflects only what the feed discloses:
        unlabelled feeds yield MARKET for everything, exactly the
        ambiguity the paper works around.
        """
        try:
            date_text = str(data["transfer_date"])[:10]
            date = datetime.date.fromisoformat(date_text)
            source_rir = _RIR_FROM_JSON[str(data["source_rir"])]
            recipient_rir = _RIR_FROM_JSON[str(data["recipient_rir"])]
            nets = data["ip4nets"]["transfer_set"]  # type: ignore[index]
            prefixes: List[IPv4Prefix] = []
            for net in nets:  # type: ignore[union-attr]
                start = parse_address(str(net["start_address"]))
                end = parse_address(str(net["end_address"]))
                prefixes.extend(IPv4Prefix.from_range(start, end))
            json_type = str(data.get("type", _JSON_TYPE_MARKET))
            true_type = (
                TransferType.MERGER_ACQUISITION
                if json_type == _JSON_TYPE_MNA
                else TransferType.MARKET
            )
            return cls(
                transfer_id=str(data.get("transfer_id", "")),
                date=date,
                prefixes=tuple(prefixes),
                source_org=str(data["source_organization"]["name"]),  # type: ignore[index]
                recipient_org=str(data["recipient_organization"]["name"]),  # type: ignore[index]
                source_rir=source_rir,
                recipient_rir=recipient_rir,
                true_type=true_type,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(f"malformed transfer record: {exc}") from exc


class TransferLedger:
    """Append-only record of all transfers, with feed export.

    The ledger stores ground truth; :meth:`feed_for` renders the
    *published* view of a single RIR (type labels collapsed for
    non-labelling RIRs, inter-RIR transfers present at both endpoints).
    """

    def __init__(self) -> None:
        self._records: List[TransferRecord] = []
        self._next_id = 1

    # -- recording ------------------------------------------------------

    def record(
        self,
        date: datetime.date,
        prefixes: Iterable[IPv4Prefix],
        source_org: str,
        recipient_org: str,
        source_rir: RIR,
        recipient_rir: RIR,
        true_type: TransferType = TransferType.MARKET,
        price_per_address: Optional[float] = None,
    ) -> TransferRecord:
        """Append a transfer and return the stored record."""
        record = TransferRecord(
            transfer_id=f"T{self._next_id:07d}",
            date=date,
            prefixes=tuple(prefixes),
            source_org=source_org,
            recipient_org=recipient_org,
            source_rir=source_rir,
            recipient_rir=recipient_rir,
            true_type=true_type,
            price_per_address=price_per_address,
        )
        self._next_id += 1
        self._records.append(record)
        return record

    def extend(self, records: Iterable[TransferRecord]) -> None:
        """Bulk-append pre-built records (e.g. parsed from feeds)."""
        for record in records:
            self._records.append(record)
            self._next_id = max(self._next_id, len(self._records) + 1)

    # -- queries ------------------------------------------------------------

    def records(self) -> List[TransferRecord]:
        """All records in chronological order."""
        return sorted(self._records, key=lambda r: (r.date, r.transfer_id))

    def intra_rir(self, rir: RIR) -> List[TransferRecord]:
        """Transfers entirely within ``rir``."""
        return [
            r
            for r in self.records()
            if r.source_rir is rir and r.recipient_rir is rir
        ]

    def inter_rir(self) -> List[TransferRecord]:
        """All transfers that moved space between RIRs."""
        return [r for r in self.records() if r.is_inter_rir]

    def between(
        self, start: datetime.date, end: datetime.date
    ) -> List[TransferRecord]:
        """Records with ``start <= date < end``."""
        return [r for r in self.records() if start <= r.date < end]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TransferRecord]:
        return iter(self.records())

    # -- feed export ------------------------------------------------------

    def feed_for(self, rir: RIR) -> Dict[str, object]:
        """Render the published JSON feed of one RIR.

        A record appears in an RIR's feed if the RIR is either endpoint
        (which is why naive cross-RIR concatenation double counts
        inter-RIR transfers).
        """
        involved = [
            r
            for r in self.records()
            if r.source_rir is rir or r.recipient_rir is rir
        ]
        return {
            "version": "1.0",
            "rir": _RIR_JSON_NAMES[rir],
            "transfers": [r.to_feed_json() for r in involved],
        }

    def write_feeds(self, directory) -> Dict[RIR, str]:
        """Write one ``transfers_latest.json`` per RIR under
        ``directory``; returns the file paths."""
        import pathlib

        base = pathlib.Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        paths: Dict[RIR, str] = {}
        for rir in RIR:
            path = base / f"{rir.value}_transfers_latest.json"
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(self.feed_for(rir), handle, indent=1)
            paths[rir] = str(path)
        return paths

    @classmethod
    def from_feeds(
        cls,
        feeds: Iterable[Dict[str, object]],
        *,
        policy: ErrorPolicy = ErrorPolicy.STRICT,
        report: Optional[QuarantineReport] = None,
        sources: Optional[List[str]] = None,
    ) -> "TransferLedger":
        """Rebuild a ledger from published feeds, de-duplicating the
        inter-RIR records that appear at both endpoints.

        With ``policy=STRICT`` (the default) the first malformed record
        raises :class:`~repro.errors.DatasetError`; with ``QUARANTINE``
        malformed records land in ``report`` (source, record index,
        reason) and parsing continues.  ``sources`` optionally labels
        each feed (e.g. its file path) for the report; otherwise the
        feed's ``rir`` field is used.

        The de-duplication key includes the published transfer type, so
        a labelled M&A transfer and a market transfer with otherwise
        identical endpoints, date, and prefixes stay distinct records;
        an inter-RIR transfer still collapses to one record because
        both endpoint feeds publish the same type label.
        """
        ledger = cls()
        seen: set = set()
        for feed_index, feed in enumerate(feeds):
            source = (
                sources[feed_index]
                if sources is not None and feed_index < len(sources)
                else str(feed.get("rir", f"feed[{feed_index}]"))
            )
            transfers = feed.get("transfers", [])
            if not isinstance(transfers, list):
                if policy is ErrorPolicy.STRICT:
                    raise DatasetError(
                        f"{source}: feed 'transfers' must be a list"
                    )
                if report is not None:
                    report.add(
                        source, -1, "feed 'transfers' must be a list",
                        kind="transfers",
                    )
                continue
            for index, raw in enumerate(transfers):
                try:
                    record = TransferRecord.from_feed_json(raw)
                except DatasetError as exc:
                    if policy is ErrorPolicy.STRICT:
                        raise DatasetError(
                            f"{source} record {index}: {exc}"
                        ) from exc
                    if report is not None:
                        report.add(
                            source, index, str(exc), kind="transfers"
                        )
                    continue
                key = (
                    record.date,
                    record.prefixes,
                    record.source_org,
                    record.recipient_org,
                    record.source_rir,
                    record.recipient_rir,
                    record.true_type,
                )
                if key in seen:
                    continue
                seen.add(key)
                ledger._records.append(record)
        ledger._next_id = len(ledger._records) + 1
        return ledger
