"""The orchestrating RIR registry and the five-registry system.

:class:`RIRRegistry` glues pool, policy, waiting list, quarantine,
membership, and the transfer ledger together into the request/recover/
transfer lifecycle of §2.  :class:`RegistrySystem` wires all five
registries to a *shared* transfer ledger so inter-RIR transfers appear
consistently in both endpoint feeds.
"""

from __future__ import annotations

import datetime
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import (
    MembershipError,
    PolicyError,
    PoolExhaustedError,
    TransferError,
)
from repro.netbase.prefix import IPv4Prefix
from repro.registry.membership import FeeSchedule, LIRAccount, MembershipRoster
from repro.registry.policy import AllocationDecision, AllocationPolicy
from repro.registry.pool import FreePool
from repro.registry.quarantine import QuarantineQueue
from repro.registry.rir import RIR, profile_for
from repro.registry.transfers import TransferLedger, TransferType
from repro.registry.waitlist import WaitingList


class RIRRegistry:
    """One RIR: members, free pool, policy, waiting list, quarantine."""

    def __init__(
        self,
        rir: RIR,
        initial_blocks: Optional[Iterable[IPv4Prefix]] = None,
        *,
        ledger: Optional[TransferLedger] = None,
        fee_schedule: Optional[FeeSchedule] = None,
    ):
        profile = profile_for(rir)
        self._rir = rir
        self._profile = profile
        self._policy = AllocationPolicy(profile)
        self._pool = FreePool(list(initial_blocks or []))
        self._members = MembershipRoster(rir, fee_schedule)
        self._waitlist = WaitingList()
        self._quarantine = QuarantineQueue(profile.quarantine_days)
        self._ledger = ledger if ledger is not None else TransferLedger()
        self._holder_by_block: Dict[IPv4Prefix, str] = {}

    # -- accessors ------------------------------------------------------

    @property
    def rir(self) -> RIR:
        return self._rir

    @property
    def policy(self) -> AllocationPolicy:
        return self._policy

    @property
    def pool(self) -> FreePool:
        return self._pool

    @property
    def members(self) -> MembershipRoster:
        return self._members

    @property
    def waiting_list(self) -> WaitingList:
        return self._waitlist

    @property
    def quarantine(self) -> QuarantineQueue:
        return self._quarantine

    @property
    def ledger(self) -> TransferLedger:
        return self._ledger

    def holder_of(self, block: IPv4Prefix) -> Optional[str]:
        """The org currently registered as holder of ``block``."""
        return self._holder_by_block.get(block)

    def holdings(self) -> Dict[IPv4Prefix, str]:
        """A copy of the full block → holder map."""
        return dict(self._holder_by_block)

    # -- membership ------------------------------------------------------

    def open_membership(self, org_id: str, date: datetime.date) -> LIRAccount:
        """Register a new LIR."""
        return self._members.open_account(org_id, date)

    def close_membership(self, org_id: str, date: datetime.date) -> List[IPv4Prefix]:
        """Close a membership; holdings are recovered into quarantine.

        Returns the recovered blocks ("currently all RIRs recover IP
        address space if an organization closes down", §2).
        """
        account = self._members.close_account(org_id, date)
        recovered = list(account.holdings)
        for block in recovered:
            account.remove_holding(block)
            del self._holder_by_block[block]
            self._quarantine.admit(block, date)
        return recovered

    # -- allocation --------------------------------------------------------

    def request_allocation(
        self,
        org_id: str,
        date: datetime.date,
        requested_length: Optional[int] = None,
    ) -> Tuple[AllocationDecision, Optional[IPv4Prefix]]:
        """Handle an allocation request end to end.

        Returns the policy decision plus the allocated block (None when
        denied or waitlisted).
        """
        account = self._members.require(org_id)
        if requested_length is None:
            requested_length = self._policy.max_allocation_length(date)
        decision = self._policy.evaluate_request(
            date,
            requested_length,
            existing_allocations=account.allocation_count,
            pool_can_satisfy=self._pool.can_allocate(requested_length),
        )
        if not decision.approved:
            return decision, None
        assert decision.granted_length is not None
        if decision.waitlisted:
            self._waitlist.enqueue(org_id, decision.granted_length, date)
            # RIPE-style behaviour: recovered space already in the pool
            # serves the queue immediately, FIFO (§2 — since Nov 2019
            # RIPE fulfilled all approved waiting-list requests).
            for fulfilled_org, block in self._drain_waitlist(date):
                if fulfilled_org == org_id:
                    return decision, block
            return decision, None
        block = self._allocate_to(account, decision.granted_length)
        return decision, block

    def _allocate_to(self, account: LIRAccount, length: int) -> IPv4Prefix:
        block = self._pool.allocate(length)
        account.add_holding(block)
        account.allocation_count += 1
        self._holder_by_block[block] = account.org_id
        return block

    # -- recovery and ticking ------------------------------------------------

    def recover(
        self, org_id: str, block: IPv4Prefix, date: datetime.date
    ) -> None:
        """Reclaim ``block`` from ``org_id`` into quarantine."""
        account = self._members.require(org_id)
        account.remove_holding(block)
        if self._holder_by_block.get(block) != org_id:
            raise TransferError(f"{org_id} is not registered for {block}")
        del self._holder_by_block[block]
        self._quarantine.admit(block, date)

    def tick(self, date: datetime.date) -> List[Tuple[str, IPv4Prefix]]:
        """Advance registry housekeeping to ``date``.

        Releases matured quarantine blocks into the pool, then fulfills
        waiting-list requests FIFO while the pool allows.  Returns the
        (org, block) fulfillments made.
        """
        for block in self._quarantine.release_due(date):
            self._pool.add(block)
        return self._drain_waitlist(date)

    def _drain_waitlist(
        self, date: datetime.date
    ) -> List[Tuple[str, IPv4Prefix]]:
        """Serve waiting-list requests FIFO while the pool allows."""
        fulfilled: List[Tuple[str, IPv4Prefix]] = []
        while True:
            request = self._waitlist.next_pending()
            if request is None:
                break
            if not self._pool.can_allocate(request.requested_length):
                break
            if not self._members.is_member(request.org_id):
                # Member left while waiting; drop the request.
                self._waitlist.fulfill_next(date)
                continue
            self._waitlist.fulfill_next(date)
            account = self._members.require(request.org_id)
            block = self._allocate_to(account, request.requested_length)
            fulfilled.append((request.org_id, block))
        return fulfilled

    # -- transfers -------------------------------------------------------------

    def transfer(
        self,
        date: datetime.date,
        blocks: Iterable[IPv4Prefix],
        source_org: str,
        recipient_org: str,
        *,
        true_type: TransferType = TransferType.MARKET,
        price_per_address: Optional[float] = None,
    ):
        """Execute an intra-RIR transfer and record it in the ledger."""
        blocks = list(blocks)
        source = self._members.require(source_org)
        recipient = self._members.require(recipient_org)
        for block in blocks:
            self._policy.validate_transfer_block(date, block.length)
            if self._holder_by_block.get(block) != source_org:
                raise TransferError(
                    f"{source_org} does not hold {block} at "
                    f"{self._rir.display_name}"
                )
        for block in blocks:
            source.remove_holding(block)
            recipient.add_holding(block)
            self._holder_by_block[block] = recipient_org
        return self._ledger.record(
            date=date,
            prefixes=blocks,
            source_org=source_org,
            recipient_org=recipient_org,
            source_rir=self._rir,
            recipient_rir=self._rir,
            true_type=true_type,
            price_per_address=price_per_address,
        )

    # -- bookkeeping helpers ---------------------------------------------------

    def register_external_block(
        self, org_id: str, block: IPv4Prefix
    ) -> None:
        """Register a block that arrived outside the allocation path
        (inter-RIR inbound transfers, legacy space)."""
        account = self._members.require(org_id)
        account.add_holding(block)
        self._holder_by_block[block] = org_id

    def deregister_block(self, org_id: str, block: IPv4Prefix) -> None:
        """Remove a block that left this registry (inter-RIR outbound)."""
        account = self._members.require(org_id)
        account.remove_holding(block)
        if self._holder_by_block.get(block) != org_id:
            raise TransferError(f"{org_id} is not registered for {block}")
        del self._holder_by_block[block]

    def __repr__(self) -> str:
        return (
            f"<RIRRegistry {self._rir.display_name}: "
            f"{len(self._members)} members, pool={self._pool!r}>"
        )


class RegistrySystem:
    """All five RIRs sharing one transfer ledger."""

    def __init__(
        self,
        initial_blocks: Optional[Dict[RIR, List[IPv4Prefix]]] = None,
    ):
        self._ledger = TransferLedger()
        initial_blocks = initial_blocks or {}
        self._registries: Dict[RIR, RIRRegistry] = {
            rir: RIRRegistry(
                rir, initial_blocks.get(rir, []), ledger=self._ledger
            )
            for rir in RIR
        }

    @property
    def ledger(self) -> TransferLedger:
        return self._ledger

    def registry(self, rir: RIR) -> RIRRegistry:
        return self._registries[rir]

    def __getitem__(self, rir: RIR) -> RIRRegistry:
        return self._registries[rir]

    def inter_rir_transfer(
        self,
        date: datetime.date,
        blocks: Iterable[IPv4Prefix],
        source_org: str,
        source_rir: RIR,
        recipient_org: str,
        recipient_rir: RIR,
        *,
        true_type: TransferType = TransferType.MARKET,
        price_per_address: Optional[float] = None,
    ):
        """Move blocks between RIRs under the common transfer policy.

        Only APNIC, ARIN, and the RIPE NCC participate (§3); the block's
        maintaining RIR — its "region" — changes with the transfer.
        """
        if source_rir is recipient_rir:
            raise TransferError("use RIRRegistry.transfer for intra-RIR moves")
        for rir in (source_rir, recipient_rir):
            if not profile_for(rir).inter_rir_enabled:
                raise PolicyError(
                    f"{rir.display_name} does not participate in "
                    "inter-RIR transfers"
                )
        blocks = list(blocks)
        source_registry = self._registries[source_rir]
        recipient_registry = self._registries[recipient_rir]
        source_registry.members.require(source_org)
        recipient_registry.members.require(recipient_org)
        for block in blocks:
            source_registry.policy.validate_transfer_block(date, block.length)
            if source_registry.holder_of(block) != source_org:
                raise TransferError(
                    f"{source_org} does not hold {block} at "
                    f"{source_rir.display_name}"
                )
        for block in blocks:
            source_registry.deregister_block(source_org, block)
            recipient_registry.register_external_block(recipient_org, block)
        return self._ledger.record(
            date=date,
            prefixes=blocks,
            source_org=source_org,
            recipient_org=recipient_org,
            source_rir=source_rir,
            recipient_rir=recipient_rir,
            true_type=true_type,
            price_per_address=price_per_address,
        )

    def tick(self, date: datetime.date) -> Dict[RIR, List[Tuple[str, IPv4Prefix]]]:
        """Tick every registry; returns per-RIR waiting-list fulfillments."""
        return {rir: reg.tick(date) for rir, reg in self._registries.items()}

    def maintaining_rir(self, block: IPv4Prefix) -> Optional[RIR]:
        """The RIR currently maintaining ``block`` (its market region)."""
        for rir, registry in self._registries.items():
            if registry.holder_of(block) is not None:
                return rir
        return None
