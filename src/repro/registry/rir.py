"""The five Regional Internet Registries and their exhaustion timelines.

All dates come from Table 1 of the paper and the policy references in
§2.  These constants drive both the registry simulator (policy phase
switching) and the analyses (e.g. Fig. 2 checks that each regional
transfer market starts once its RIR is down to the last /8).
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class RIR(enum.Enum):
    """A Regional Internet Registry."""

    AFRINIC = "afrinic"
    APNIC = "apnic"
    ARIN = "arin"
    LACNIC = "lacnic"
    RIPE = "ripencc"

    @property
    def display_name(self) -> str:
        """Human-readable name as used in the paper."""
        return _DISPLAY_NAMES[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.display_name


_DISPLAY_NAMES: Dict[RIR, str] = {
    RIR.AFRINIC: "AFRINIC",
    RIR.APNIC: "APNIC",
    RIR.ARIN: "ARIN",
    RIR.LACNIC: "LACNIC",
    RIR.RIPE: "RIPE NCC",
}


@dataclass(frozen=True)
class RIRProfile:
    """Static per-RIR facts used throughout the reproduction.

    Attributes mirror §2 and Table 1:

    - ``last_slash8_date`` — when the RIR reached its final /8 and
      entered soft landing.
    - ``depletion_date`` — when the free pool hit zero ("Start of
      Recovery" in Table 1); ``None`` for RIRs that still held space in
      mid-2020 (APNIC's /10, AFRINIC's /11).
    - ``max_allocation_length`` — the longest prefix (smallest block) an
      organization could receive in 2020: /22 for AFRINIC/ARIN/LACNIC,
      /23 for APNIC, /24 for RIPE.
    - ``labels_mna_transfers`` — whether the RIR's published transfer
      statistics label merger-and-acquisition transfers (AFRINIC, ARIN,
      RIPE do; APNIC and LACNIC do not).
    - ``inter_rir_enabled`` — whether the RIR participates in the common
      inter-RIR transfer policy (APNIC, ARIN, RIPE only).
    - ``quarantine_days`` — holding period for recovered space before
      re-issuing (about six months at most RIRs).
    """

    rir: RIR
    region: str
    last_slash8_date: datetime.date
    depletion_date: Optional[datetime.date]
    max_allocation_length: int
    labels_mna_transfers: bool
    inter_rir_enabled: bool
    quarantine_days: int = 183
    waiting_list_peak: int = 0


_PROFILES: Tuple[RIRProfile, ...] = (
    RIRProfile(
        rir=RIR.AFRINIC,
        region="Africa",
        last_slash8_date=datetime.date(2017, 3, 31),
        depletion_date=None,  # still allocating from its last /11
        max_allocation_length=22,
        labels_mna_transfers=True,
        inter_rir_enabled=False,
    ),
    RIRProfile(
        rir=RIR.APNIC,
        region="Asia Pacific",
        last_slash8_date=datetime.date(2011, 4, 15),
        depletion_date=None,  # still has part of a /10
        max_allocation_length=23,
        labels_mna_transfers=False,
        inter_rir_enabled=True,
    ),
    RIRProfile(
        rir=RIR.ARIN,
        region="North America",
        last_slash8_date=datetime.date(2014, 4, 23),
        depletion_date=datetime.date(2015, 9, 24),
        max_allocation_length=22,
        labels_mna_transfers=True,
        inter_rir_enabled=True,
        waiting_list_peak=202,
    ),
    RIRProfile(
        rir=RIR.LACNIC,
        region="Latin America and the Caribbean",
        last_slash8_date=datetime.date(2017, 2, 15),
        depletion_date=datetime.date(2020, 8, 19),
        max_allocation_length=22,
        labels_mna_transfers=False,
        inter_rir_enabled=False,
        waiting_list_peak=275,
    ),
    RIRProfile(
        rir=RIR.RIPE,
        region="Europe and the Middle East",
        last_slash8_date=datetime.date(2012, 9, 14),
        depletion_date=datetime.date(2019, 11, 25),
        max_allocation_length=24,
        labels_mna_transfers=True,
        inter_rir_enabled=True,
        waiting_list_peak=110,
    ),
)

_PROFILE_INDEX: Dict[RIR, RIRProfile] = {p.rir: p for p in _PROFILES}

#: Date IANA handed its last /8s to APNIC; no central replenishment after.
IANA_EXHAUSTION_DATE = datetime.date(2011, 1, 31)

#: The three RIRs that agreed on a common inter-RIR transfer policy.
INTER_RIR_PARTIES = frozenset(
    p.rir for p in _PROFILES if p.inter_rir_enabled
)


def profile_for(rir: RIR) -> RIRProfile:
    """Return the static profile of ``rir``."""
    return _PROFILE_INDEX[rir]


def all_profiles() -> Tuple[RIRProfile, ...]:
    """All five profiles in a stable order."""
    return _PROFILES


def exhaustion_table() -> Dict[RIR, Tuple[datetime.date, Optional[datetime.date]]]:
    """Table 1 of the paper: (down-to-last-/8, start-of-recovery)."""
    return {
        p.rir: (p.last_slash8_date, p.depletion_date) for p in _PROFILES
    }
