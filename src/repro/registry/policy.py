"""Phase-dependent IPv4 allocation policy.

Each RIR moves through three phases (§2 of the paper):

- **NORMAL** — need-based allocations up to a generous maximum.
- **SOFT_LANDING** — after reaching the last /8: one small block per
  member, tighter maximum sizes.
- **EXHAUSTED** — free pool empty: requests are approved onto a waiting
  list and fulfilled from recovered space only.

:class:`AllocationPolicy` answers "what is the largest block this
organization may receive on this date, and may it receive one at all?".
The per-RIR phase schedule is derived from the Table-1 dates in
:mod:`repro.registry.rir`.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import PolicyError
from repro.registry.rir import RIR, RIRProfile, profile_for

#: Block size cap during NORMAL phase (a /14 — generous, pre-scarcity).
NORMAL_PHASE_MAX_LENGTH = 14

#: APNIC abolished its waiting list on this date (§2).
APNIC_WAITLIST_ABOLISHED = datetime.date(2019, 7, 2)


class PolicyPhase(enum.Enum):
    """The lifecycle phase of an RIR's IPv4 pool."""

    NORMAL = "normal"
    SOFT_LANDING = "soft-landing"
    EXHAUSTED = "exhausted"


@dataclass(frozen=True)
class AllocationDecision:
    """Outcome of a policy check.

    ``approved`` means the request may proceed (immediately if
    ``waitlisted`` is False, else queued).  ``granted_length`` is the
    prefix length the policy allows, which may be smaller (longer) than
    requested.
    """

    approved: bool
    waitlisted: bool
    granted_length: Optional[int]
    reason: str


class AllocationPolicy:
    """The allocation policy of a single RIR over time."""

    def __init__(self, profile: RIRProfile):
        self._profile = profile

    @classmethod
    def for_rir(cls, rir: RIR) -> "AllocationPolicy":
        return cls(profile_for(rir))

    @property
    def profile(self) -> RIRProfile:
        return self._profile

    # -- phase ---------------------------------------------------------

    def phase_on(self, date: datetime.date) -> PolicyPhase:
        """The policy phase in force on ``date``."""
        if date < self._profile.last_slash8_date:
            return PolicyPhase.NORMAL
        depletion = self._profile.depletion_date
        if depletion is not None and date >= depletion:
            return PolicyPhase.EXHAUSTED
        return PolicyPhase.SOFT_LANDING

    def max_allocation_length(self, date: datetime.date) -> int:
        """Longest prefix (smallest block) allocatable on ``date``.

        Returned as a prefix *length*: during soft landing this is the
        RIR's 2020 cap (/22../24 depending on the RIR); before the last
        /8 it is the generous NORMAL-phase /14.
        """
        if self.phase_on(date) is PolicyPhase.NORMAL:
            return NORMAL_PHASE_MAX_LENGTH
        return self._profile.max_allocation_length

    def waiting_list_active(self, date: datetime.date) -> bool:
        """Whether unfulfillable approved requests queue on ``date``.

        APNIC abolished its list in July 2019; every other RIR queues
        once soft landing has begun.
        """
        if self.phase_on(date) is PolicyPhase.NORMAL:
            return False
        if (
            self._profile.rir is RIR.APNIC
            and date >= APNIC_WAITLIST_ABOLISHED
        ):
            return False
        return True

    # -- decisions ---------------------------------------------------------

    def evaluate_request(
        self,
        date: datetime.date,
        requested_length: int,
        *,
        existing_allocations: int = 0,
        pool_can_satisfy: bool = True,
    ) -> AllocationDecision:
        """Evaluate an allocation request under the active policy.

        ``existing_allocations`` is the number of blocks the requesting
        LIR already received from this RIR; during soft landing and
        exhaustion, members are limited to a single final block (this is
        the "only hands out addresses to new members" behaviour the
        paper describes for APNIC).
        """
        if not 0 <= requested_length <= 32:
            raise PolicyError(f"invalid prefix length: {requested_length}")
        phase = self.phase_on(date)
        cap = self.max_allocation_length(date)
        granted = max(requested_length, cap)
        if phase is PolicyPhase.NORMAL:
            return AllocationDecision(
                approved=True,
                waitlisted=False,
                granted_length=granted,
                reason="need-based allocation (normal phase)",
            )
        if existing_allocations >= 1:
            return AllocationDecision(
                approved=False,
                waitlisted=False,
                granted_length=None,
                reason="final-/8 policy: one block per member",
            )
        if phase is PolicyPhase.SOFT_LANDING and pool_can_satisfy:
            return AllocationDecision(
                approved=True,
                waitlisted=False,
                granted_length=granted,
                reason="soft-landing allocation from remaining pool",
            )
        if self.waiting_list_active(date):
            return AllocationDecision(
                approved=True,
                waitlisted=True,
                granted_length=granted,
                reason="approved; queued until space is recovered",
            )
        return AllocationDecision(
            approved=False,
            waitlisted=False,
            granted_length=None,
            reason="pool exhausted and no waiting list",
        )

    def validate_transfer_block(
        self, date: datetime.date, length: int
    ) -> None:
        """Check a to-be-transferred block against policy minima.

        All five RIRs require transferred blocks to be /24 or larger
        (shorter length); this guard rejects nonsense like /30 splits.
        """
        if length > 24:
            raise PolicyError(
                f"blocks smaller than /24 are not transferable (got /{length})"
            )

    def __repr__(self) -> str:
        return f"<AllocationPolicy {self._profile.rir.display_name}>"
