"""Five-RIR registry simulator.

Models the parts of the RIR system the paper measures (§2):

- :mod:`~repro.registry.rir` — the five RIRs with their Table-1
  exhaustion timelines and policy parameters,
- :mod:`~repro.registry.pool` — free-pool management with buddy-style
  block splitting,
- :mod:`~repro.registry.policy` — phase-dependent allocation policy
  (normal → soft landing → exhausted/recovery-only),
- :mod:`~repro.registry.waitlist` — waiting lists for approved but
  unfulfilled requests,
- :mod:`~repro.registry.quarantine` — the six-month quarantine applied
  to recovered space,
- :mod:`~repro.registry.membership` — LIR membership and fee schedules,
- :mod:`~repro.registry.transfers` — the transfer ledger and the daily
  transfer-statistics JSON feed,
- :mod:`~repro.registry.registry` — the orchestrating
  :class:`~repro.registry.registry.RIRRegistry`.
"""

from repro.registry.delegated_stats import (
    DelegatedRecord,
    DelegationStatus,
    records_from_registry,
)
from repro.registry.membership import FeeSchedule, LIRAccount, MembershipRoster
from repro.registry.policy import AllocationDecision, AllocationPolicy, PolicyPhase
from repro.registry.pool import FreePool
from repro.registry.quarantine import QuarantineQueue
from repro.registry.registry import RegistrySystem, RIRRegistry
from repro.registry.rir import RIR, RIRProfile, profile_for
from repro.registry.transfers import (
    TransferLedger,
    TransferRecord,
    TransferType,
)
from repro.registry.waitlist import WaitingList, WaitingRequest

__all__ = [
    "RIR",
    "AllocationDecision",
    "AllocationPolicy",
    "DelegatedRecord",
    "DelegationStatus",
    "records_from_registry",
    "FeeSchedule",
    "FreePool",
    "LIRAccount",
    "MembershipRoster",
    "PolicyPhase",
    "QuarantineQueue",
    "RIRProfile",
    "RIRRegistry",
    "RegistrySystem",
    "TransferLedger",
    "TransferRecord",
    "TransferType",
    "WaitingList",
    "WaitingRequest",
    "profile_for",
]
