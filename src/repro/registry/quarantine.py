"""The quarantine period applied to recovered address space.

"Upon recovering IP address space [...] most RIRs put the blocks into a
six month quarantine period before redistributing it again" (§2).  The
queue holds (block, release-date) pairs and releases matured blocks back
to the free pool on each tick.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import List, Tuple

from repro.netbase.prefix import IPv4Prefix


@dataclass(frozen=True)
class QuarantinedBlock:
    """One block sitting in quarantine."""

    block: IPv4Prefix
    recovered_on: datetime.date
    release_on: datetime.date


class QuarantineQueue:
    """Time-ordered queue of recovered blocks awaiting release."""

    def __init__(self, holding_days: int = 183):
        if holding_days < 0:
            raise ValueError("holding_days must be non-negative")
        self._holding_days = holding_days
        self._entries: List[QuarantinedBlock] = []

    @property
    def holding_days(self) -> int:
        return self._holding_days

    def admit(self, block: IPv4Prefix, date: datetime.date) -> QuarantinedBlock:
        """Put a recovered block into quarantine starting ``date``."""
        entry = QuarantinedBlock(
            block=block,
            recovered_on=date,
            release_on=date + datetime.timedelta(days=self._holding_days),
        )
        self._entries.append(entry)
        self._entries.sort(key=lambda e: (e.release_on, e.block))
        return entry

    def release_due(self, date: datetime.date) -> List[IPv4Prefix]:
        """Pop and return every block whose quarantine ended by ``date``."""
        released: List[IPv4Prefix] = []
        remaining: List[QuarantinedBlock] = []
        for entry in self._entries:
            if entry.release_on <= date:
                released.append(entry.block)
            else:
                remaining.append(entry)
        self._entries = remaining
        return released

    def pending(self) -> Tuple[QuarantinedBlock, ...]:
        """Blocks currently in quarantine, soonest release first."""
        return tuple(self._entries)

    def quarantined_addresses(self) -> int:
        """Total addresses currently held in quarantine."""
        return sum(entry.block.num_addresses for entry in self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)
