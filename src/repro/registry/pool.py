"""Free-pool management with buddy-style block splitting.

An RIR's unallocated pool is a set of CIDR blocks.  Allocation requests
ask for a prefix *length*; the pool hands out the smallest suitable
block, splitting a larger one if necessary (exactly how registries carve
/22s out of a reserved /8).  Returned space is re-merged opportunistically
via prefix aggregation, so a pool that gets everything back converges to
its original blocks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import PoolExhaustedError
from repro.netbase.prefix import IPv4Prefix
from repro.netbase.prefixset import aggregate


class FreePool:
    """A pool of free IPv4 blocks supporting sized allocation.

    >>> pool = FreePool([IPv4Prefix.parse("185.0.0.0/8")])
    >>> str(pool.allocate(24))
    '185.0.0.0/24'
    >>> pool.available_addresses()
    16776960
    """

    __slots__ = ("_by_length",)

    def __init__(self, blocks: Optional[List[IPv4Prefix]] = None):
        # length -> blocks of that length, kept sorted (lowest address
        # first) so allocation order is deterministic.
        self._by_length: Dict[int, List[IPv4Prefix]] = {}
        for block in blocks or []:
            self.add(block)

    # -- mutation ------------------------------------------------------

    def add(self, block: IPv4Prefix) -> None:
        """Return ``block`` to the pool and merge buddies if possible."""
        bucket = self._by_length.setdefault(block.length, [])
        if block in bucket:
            raise ValueError(f"block already in pool: {block}")
        # Buddy merge: recursively coalesce with the sibling while free.
        while block.length > 0:
            sibling = block.sibling()
            siblings = self._by_length.get(block.length, [])
            if sibling in siblings:
                siblings.remove(sibling)
                block = block.supernet()
            else:
                break
        self._by_length.setdefault(block.length, []).append(block)
        self._by_length[block.length].sort()

    def allocate(self, length: int) -> IPv4Prefix:
        """Allocate one block with the given prefix length.

        Picks the best-fit free block (the longest length ≤ requested)
        and splits it down to size; among equal fits the lowest network
        address wins, making pools fully deterministic.

        Raises :class:`~repro.errors.PoolExhaustedError` if no free
        block of length ≤ ``length`` exists.
        """
        source_length = None
        for candidate in range(length, -1, -1):
            if self._by_length.get(candidate):
                source_length = candidate
                break
        if source_length is None:
            raise PoolExhaustedError(
                f"no free block can satisfy a /{length} request"
            )
        block = self._by_length[source_length].pop(0)
        # Split down, returning the high halves to the pool.
        while block.length < length:
            low, high = block.halves()
            self._by_length.setdefault(high.length, []).append(high)
            self._by_length[high.length].sort()
            block = low
        return block

    def allocate_specific(self, block: IPv4Prefix) -> IPv4Prefix:
        """Carve out exactly ``block`` from the pool.

        Used by the world generator to hand out pre-planned blocks.
        Raises :class:`PoolExhaustedError` if the block is not fully
        free.
        """
        for length in range(block.length, -1, -1):
            bucket = self._by_length.get(length, [])
            for candidate in bucket:
                if candidate.covers(block):
                    bucket.remove(candidate)
                    # Split candidate around `block`, returning remainder.
                    current = candidate
                    while current.length < block.length:
                        low, high = current.halves()
                        if low.covers(block):
                            self.add(high)
                            current = low
                        else:
                            self.add(low)
                            current = high
                    return current
        raise PoolExhaustedError(f"block not free in pool: {block}")

    # -- queries ----------------------------------------------------------

    def can_allocate(self, length: int) -> bool:
        """True if :meth:`allocate` with ``length`` would succeed."""
        return any(
            self._by_length.get(candidate)
            for candidate in range(length, -1, -1)
        )

    def available_addresses(self) -> int:
        """Total number of free addresses in the pool."""
        return sum(
            prefix.num_addresses
            for bucket in self._by_length.values()
            for prefix in bucket
        )

    def blocks(self) -> Iterator[IPv4Prefix]:
        """Iterate all free blocks, sorted."""
        collected = [
            prefix
            for bucket in self._by_length.values()
            for prefix in bucket
        ]
        yield from sorted(collected)

    def aggregated(self) -> List[IPv4Prefix]:
        """The free space as a minimal prefix list."""
        return aggregate(self.blocks())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_length.values())

    def __bool__(self) -> bool:
        return any(self._by_length.values())

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        """True if ``prefix`` is fully contained in free space."""
        for length in range(prefix.length, -1, -1):
            for candidate in self._by_length.get(length, []):
                if candidate.covers(prefix):
                    return True
        return False

    def __repr__(self) -> str:
        return (
            f"<FreePool {len(self)} blocks, "
            f"{self.available_addresses()} addresses>"
        )
