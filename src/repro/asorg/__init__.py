"""CAIDA-style AS-to-organization mapping.

Extension (iv) of the paper's inference algorithm removes delegations
between ASes of the same organization, "relying on CAIDA's
AS-to-Organization mapping [...] within the next available snapshot".
This package models the dataset (quarterly snapshots), its file format,
and the next-available-snapshot join semantics.
"""

from repro.asorg.as2org import As2OrgDataset, As2OrgSnapshot, Organization

__all__ = ["As2OrgDataset", "As2OrgSnapshot", "Organization"]
