"""The AS-to-organization dataset (CAIDA as2org format).

CAIDA publishes quarterly snapshots with two pipe-separated sections::

    # format:org_id|changed|org_name|country|source
    ORG-1|20200101|Example Org|DE|SIM
    # format:aut|changed|aut_name|org_id|opaque_id|source
    64500|20200101|EXAMPLE-AS|ORG-1||SIM

:class:`As2OrgDataset` holds many dated snapshots and implements the
join rule the paper uses: a day's data is matched against the *next
available* snapshot (the first snapshot dated on or after that day;
days after the last snapshot fall back to the last one).
"""

from __future__ import annotations

import datetime
import hashlib
import pathlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import DatasetError


@dataclass(frozen=True)
class Organization:
    """One organization in the mapping."""

    org_id: str
    name: str
    country: str = "ZZ"

    def __post_init__(self) -> None:
        if not self.org_id:
            raise DatasetError("organization id cannot be empty")


class As2OrgSnapshot:
    """One dated snapshot: AS number → organization."""

    def __init__(
        self,
        date: datetime.date,
        organizations: Iterable[Organization] = (),
    ):
        self._date = date
        self._orgs: Dict[str, Organization] = {}
        self._as_to_org: Dict[int, str] = {}
        for org in organizations:
            self.add_organization(org)

    @property
    def date(self) -> datetime.date:
        return self._date

    def add_organization(self, org: Organization) -> None:
        if org.org_id in self._orgs:
            raise DatasetError(f"duplicate organization {org.org_id}")
        self._orgs[org.org_id] = org

    def assign(self, asn: int, org_id: str) -> None:
        """Map ``asn`` to ``org_id`` (org must exist; remap rejected)."""
        if org_id not in self._orgs:
            raise DatasetError(f"unknown organization {org_id}")
        if asn in self._as_to_org:
            raise DatasetError(f"AS{asn} already mapped")
        self._as_to_org[asn] = org_id

    def org_of(self, asn: int) -> Optional[str]:
        return self._as_to_org.get(asn)

    def same_org(self, asn_a: int, asn_b: int) -> bool:
        """True if both ASes map to the same organization.

        Unmapped ASes are never "the same organization" — the filter
        must not delete delegations out of ignorance.
        """
        org_a = self._as_to_org.get(asn_a)
        if org_a is None:
            return False
        return org_a == self._as_to_org.get(asn_b)

    def organizations(self) -> List[Organization]:
        return sorted(self._orgs.values(), key=lambda o: o.org_id)

    def mappings(self) -> Dict[int, str]:
        return dict(self._as_to_org)

    def __len__(self) -> int:
        return len(self._as_to_org)

    # -- CAIDA file format -------------------------------------------------

    def render(self) -> str:
        lines = ["# format:org_id|changed|org_name|country|source"]
        changed = self._date.strftime("%Y%m%d")
        for org in self.organizations():
            lines.append(
                f"{org.org_id}|{changed}|{org.name}|{org.country}|SIM"
            )
        lines.append("# format:aut|changed|aut_name|org_id|opaque_id|source")
        for asn in sorted(self._as_to_org):
            org_id = self._as_to_org[asn]
            lines.append(f"{asn}|{changed}|AS{asn}|{org_id}||SIM")
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, date: datetime.date, text: str) -> "As2OrgSnapshot":
        snapshot = cls(date)
        section = None
        for raw in text.splitlines():
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "org_id|" in line and line.index("org_id|") < 12:
                    section = "org"
                elif "aut|" in line:
                    section = "aut"
                continue
            fields = line.split("|")
            if section == "org":
                if len(fields) < 5:
                    raise DatasetError(f"bad org line: {line!r}")
                snapshot.add_organization(
                    Organization(
                        org_id=fields[0], name=fields[2], country=fields[3]
                    )
                )
            elif section == "aut":
                if len(fields) < 6:
                    raise DatasetError(f"bad aut line: {line!r}")
                try:
                    asn = int(fields[0])
                except ValueError as exc:
                    raise DatasetError(f"bad AS number: {fields[0]!r}") from exc
                snapshot.assign(asn, fields[3])
            else:
                raise DatasetError(f"line outside any section: {line!r}")
        return snapshot


class As2OrgDataset:
    """Many dated snapshots with next-available-snapshot lookup."""

    def __init__(self) -> None:
        self._snapshots: Dict[datetime.date, As2OrgSnapshot] = {}

    def add_snapshot(self, snapshot: As2OrgSnapshot) -> None:
        if snapshot.date in self._snapshots:
            raise DatasetError(f"duplicate snapshot for {snapshot.date}")
        self._snapshots[snapshot.date] = snapshot

    def dates(self) -> List[datetime.date]:
        return sorted(self._snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)

    def snapshot_for(self, date: datetime.date) -> As2OrgSnapshot:
        """The *next available* snapshot for ``date`` (paper §4, ext. iv).

        Returns the earliest snapshot dated on/after ``date``; if none
        exists (date past the last snapshot) the latest snapshot is
        used.
        """
        dates = self.dates()
        if not dates:
            raise DatasetError("dataset has no snapshots")
        for snapshot_date in dates:
            if snapshot_date >= date:
                return self._snapshots[snapshot_date]
        return self._snapshots[dates[-1]]

    def same_org(
        self, asn_a: int, asn_b: int, date: datetime.date
    ) -> bool:
        """Same-organization test against the next available snapshot."""
        return self.snapshot_for(date).same_org(asn_a, asn_b)

    def fingerprint(self) -> str:
        """Content hash of every snapshot (stable across processes).

        Used by :mod:`repro.delegation.runner` as the cache-key
        component for extension (iv): two datasets with identical
        snapshot dates and AS→org mappings share cached results, and
        any mapping change invalidates them.
        """
        digest = hashlib.sha256()
        for date in self.dates():
            digest.update(date.isoformat().encode("ascii"))
            digest.update(self._snapshots[date].render().encode("utf-8"))
        return digest.hexdigest()

    # -- file I/O ------------------------------------------------------------

    def write(self, directory: Union[str, pathlib.Path]) -> List[str]:
        """Write ``<YYYYMMDD>.as-org2info.txt`` files; returns paths."""
        base = pathlib.Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        paths: List[str] = []
        for date in self.dates():
            name = f"{date.strftime('%Y%m%d')}.as-org2info.txt"
            path = base / name
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(self._snapshots[date].render())
            paths.append(str(path))
        return paths

    @classmethod
    def read(cls, directory: Union[str, pathlib.Path]) -> "As2OrgDataset":
        base = pathlib.Path(directory)
        dataset = cls()
        for path in sorted(base.glob("*.as-org2info.txt")):
            stem = path.name.split(".")[0]
            try:
                date = datetime.datetime.strptime(stem, "%Y%m%d").date()
            except ValueError as exc:
                raise DatasetError(
                    f"snapshot filename is not a date: {path.name}"
                ) from exc
            with open(path, encoding="utf-8") as handle:
                dataset.add_snapshot(As2OrgSnapshot.parse(date, handle.read()))
        return dataset
