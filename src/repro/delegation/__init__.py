"""The paper's core contribution: delegation inference (§4 + appendix).

- :mod:`~repro.delegation.model` — delegation record types,
- :mod:`~repro.delegation.inference` — the Krenc–Feldmann base
  algorithm plus the paper's extensions (same-organization filter and
  consistency-rule gap filling), all independently toggleable, with
  two interchangeable per-day kernels (``columnar`` packed arrays and
  the ``object`` trie reference),
- :mod:`~repro.delegation.consistency` — the "(M, N)" consistency-rule
  family, gap filling, and fail-rate evaluation,
- :mod:`~repro.delegation.runner` — parallel day fan-out with an
  on-disk, content-addressed result cache and an ``--incremental``
  mode that replays / extends a day-over-day delta journal,
- :mod:`~repro.delegation.delta` — day-over-day :class:`PairTable`
  deltas, the incremental filter state machine, and the NRTM-style
  hash-chained delta journal,
- :mod:`~repro.delegation.rpki_eval` — Fig. 5: rule validation against
  RPKI delegation timelines,
- :mod:`~repro.delegation.rdap_extract` — the RDAP pipeline (§4),
- :mod:`~repro.delegation.compare` — BGP-vs-RDAP coverage statistics.
"""

from repro.delegation.compare import CoverageReport, compare_delegations
from repro.delegation.fusion import (
    FusedDelegation,
    FusionReport,
    Source,
    fuse_delegations,
)
from repro.delegation.consistency import (
    ConsistencyRule,
    evaluate_rule,
    fill_gaps,
)
from repro.delegation.delta import (
    DeltaJournal,
    DeltaState,
    LiveDeltaHandle,
    PairDelta,
    apply_delta,
    diff_pair_tables,
    journal_key,
    journal_path,
)
from repro.delegation.io import (
    read_daily_delegations,
    write_daily_delegations,
)
from repro.delegation.inference import (
    KERNELS,
    DelegationInference,
    InferenceConfig,
    InferenceResult,
)
from repro.delegation.model import BgpDelegation, DailyDelegations, RdapDelegation
from repro.delegation.rdap_extract import RdapExtractionStats, extract_rdap_delegations
from repro.delegation.rpki_eval import RuleEvaluation, evaluate_rules_on_rpki
from repro.delegation.runner import (
    ArchiveStreamFactory,
    RunnerStats,
    WorldStreamFactory,
    run_inference,
)

__all__ = [
    "ArchiveStreamFactory",
    "BgpDelegation",
    "ConsistencyRule",
    "CoverageReport",
    "DailyDelegations",
    "DelegationInference",
    "DeltaJournal",
    "DeltaState",
    "LiveDeltaHandle",
    "PairDelta",
    "apply_delta",
    "diff_pair_tables",
    "journal_key",
    "journal_path",
    "FusedDelegation",
    "FusionReport",
    "InferenceConfig",
    "InferenceResult",
    "KERNELS",
    "Source",
    "fuse_delegations",
    "RdapDelegation",
    "RdapExtractionStats",
    "RuleEvaluation",
    "RunnerStats",
    "WorldStreamFactory",
    "compare_delegations",
    "evaluate_rule",
    "evaluate_rules_on_rpki",
    "extract_rdap_delegations",
    "fill_gaps",
    "read_daily_delegations",
    "run_inference",
    "write_daily_delegations",
]
