"""BGP delegation inference: Krenc–Feldmann plus the paper's extensions.

The per-day pipeline (§4):

(i)    obtain all prefix-origin pairs from the collectors,
(ii)   drop pairs seen by fewer than half of all BGP monitors
       (*visibility threshold*, configurable — footnote 2 sweeps it),
(iii)  drop pairs whose prefix is originated by an AS_SET or by
       multiple ASes (MOAS),
(iv)+  drop delegations between ASes of the same organization, judged
       against the *next available* as2org snapshot,
(v)+   compensate for on-off announcement patterns with the (M=10,
       N=0) consistency rule (applied across days, after (i)–(iv)).

Steps marked ``+`` are the paper's extensions; both are independently
toggleable so Fig. 6's base-vs-extended comparison and the A1 ablation
fall out of one implementation.
"""

from __future__ import annotations

import datetime
import logging
import math
from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.asorg.as2org import As2OrgDataset
from repro.bgp.message import RouteRecord
from repro.bgp.rib import PairTable
from repro.bgp.sanitize import SanitizeStats, sanitize_records
from repro.bgp.stream import RouteStream, prefix_origin_pairs
from repro.delegation.consistency import ConsistencyRule, fill_gaps
from repro.delegation.model import (
    BgpDelegation,
    DailyDelegations,
    DelegationKey,
)
from repro.errors import ReproError
from repro.netbase.bogons import BOGON_PREFIXES
from repro.netbase.lpm import _HOST_BITS, nearest_strict_covers
from repro.netbase.prefix import IPv4Prefix
from repro.netbase.trie import PrefixTrie
from repro.obs.metrics import NULL, MetricsRegistry

logger = logging.getLogger(__name__)

#: The per-day kernels: ``columnar`` (packed-array fast path, the
#: default) and ``object`` (the original trie/dict reference path).
#: Both produce byte-identical results; differential tests enforce it.
KERNELS = ("columnar", "object")

#: The bogon list as sorted, disjoint ``(first, last)`` address
#: intervals — the batch bogon filter's two-pointer partner.  Overlap
#: with any interval is exactly :func:`~repro.netbase.bogons.is_bogon`
#: (covering either direction is an interval overlap).
_BOGON_INTERVALS: Tuple[Tuple[int, int], ...] = tuple(
    sorted((p.network, p.broadcast) for p in BOGON_PREFIXES)
)


def record_pipeline_counters(
    metrics: MetricsRegistry,
    result: "InferenceResult",
    delegations_total: int,
) -> None:
    """Bulk-record the pipeline's per-filter attrition into ``metrics``.

    Shared by the sequential :meth:`DelegationInference.infer_range`
    and the parallel :func:`repro.delegation.runner.run_inference`
    fan-in, so both report identical counts under identical names —
    the counters feed the run manifest's stage table.  Recording
    happens once per run (not per pair), so the hot per-day loops pay
    nothing for the instrumentation.
    """
    metrics.inc("pipeline.pairs_seen", result.pairs_seen)
    metrics.inc(
        "pipeline.dropped.bogon", result.sanitize_stats.bogon_prefix
    )
    metrics.inc(
        "pipeline.dropped.visibility", result.pairs_dropped_visibility
    )
    metrics.inc("pipeline.dropped.origin", result.pairs_dropped_origin)
    metrics.inc(
        "pipeline.dropped.same_org", result.delegations_dropped_same_org
    )
    metrics.inc("pipeline.delegations", delegations_total)


@dataclass(frozen=True)
class InferenceConfig:
    """Which steps of the pipeline run, and with which parameters.

    Visibility semantics (step (ii)): a prefix-origin pair is **kept**
    iff it was seen by *at least* ``visibility_threshold`` of all BGP
    monitors — the paper drops pairs "seen by fewer than half of all
    BGP monitors", so a pair seen by exactly half survives.  The
    boundary is evaluated in integer space (see
    :meth:`required_monitors`), so the same ``>=`` semantics hold
    everywhere the threshold is applied: the per-day pipeline, the
    parallel runner, and the A2 ablation sweep.
    """

    visibility_threshold: float = 0.5
    drop_non_unique_origins: bool = True
    same_org_filter: bool = True                 # extension (iv)
    consistency_rule: Optional[ConsistencyRule] = ConsistencyRule(10, 0)
    sanitize: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.visibility_threshold <= 1.0:
            raise ReproError("visibility threshold must be in [0, 1]")

    def required_monitors(self, total_monitors: int) -> int:
        """Minimum monitor count a pair needs to survive step (ii).

        ``ceil(threshold * total)``, with a tolerance so binary float
        rounding cannot flip the boundary: ``0.1 * 30`` evaluates to
        ``3.0000000000000004``, which a naive ``count < threshold *
        total`` comparison would wrongly round *up* — dropping a pair
        seen by exactly the threshold share of monitors.
        """
        exact = self.visibility_threshold * total_monitors
        return max(0, math.ceil(exact - 1e-9))

    @classmethod
    def baseline(cls) -> "InferenceConfig":
        """The previously proposed algorithm (steps (i)–(iii) only)."""
        return cls(same_org_filter=False, consistency_rule=None)

    @classmethod
    def extended(cls) -> "InferenceConfig":
        """The paper's full pipeline."""
        return cls()


@dataclass
class InferenceResult:
    """Delegations over a time window plus bookkeeping counters."""

    daily: DailyDelegations
    config: InferenceConfig
    observation_dates: List[datetime.date] = field(default_factory=list)
    pairs_seen: int = 0
    pairs_dropped_visibility: int = 0
    pairs_dropped_origin: int = 0
    delegations_dropped_same_org: int = 0
    sanitize_stats: SanitizeStats = field(default_factory=SanitizeStats)
    #: Populated by :mod:`repro.delegation.runner` (a
    #: :class:`~repro.delegation.runner.RunnerStats`); ``None`` for
    #: plain sequential runs.
    runner_stats: Optional[object] = None
    #: Populated by incremental runner sweeps (a
    #: :class:`~repro.delegation.delta.LiveDeltaHandle`): the journaled
    #: filter state the serving layer keeps to apply new-day deltas in
    #: place.  ``None`` for full recomputes.
    delta_handle: Optional[object] = None

    def counts_series(self) -> List[Tuple[datetime.date, int]]:
        """(date, #delegations) — the Fig. 6 top series."""
        return [
            (date, self.daily.count_on(date))
            for date in self.observation_dates
        ]

    def addresses_series(self) -> List[Tuple[datetime.date, int]]:
        """(date, delegated addresses) — the Fig. 6 bottom series."""
        return [
            (date, self.daily.addresses_on(date))
            for date in self.observation_dates
        ]


class DelegationInference:
    """The inference pipeline bound to a configuration."""

    def __init__(
        self,
        config: Optional[InferenceConfig] = None,
        as2org: Optional[As2OrgDataset] = None,
        kernel: str = "columnar",
    ):
        self._config = config or InferenceConfig()
        if self._config.same_org_filter and as2org is None:
            raise ReproError(
                "same_org_filter requires an as2org dataset"
            )
        if kernel not in KERNELS:
            raise ReproError(
                f"unknown inference kernel {kernel!r} "
                f"(choose from {', '.join(KERNELS)})"
            )
        self._as2org = as2org
        self._kernel = kernel
        # Packed key → IPv4Prefix, shared across days: consecutive days
        # delegate almost the same prefixes, so the columnar drivers
        # materialize each distinct prefix exactly once per run.
        self._prefix_cache: Dict[int, IPv4Prefix] = {}

    @property
    def config(self) -> InferenceConfig:
        return self._config

    @property
    def kernel(self) -> str:
        return self._kernel

    # -- single-day pipeline ------------------------------------------------

    def infer_day(
        self,
        records: Iterable[RouteRecord],
        total_monitors: int,
        date: datetime.date,
        result: Optional[InferenceResult] = None,
    ) -> List[BgpDelegation]:
        """Run steps (i)–(iv) on one day of route records."""
        config = self._config
        if config.sanitize:
            stats = result.sanitize_stats if result is not None else None
            records = sanitize_records(records, stats)
        pairs = prefix_origin_pairs(records)
        return self.infer_day_from_pairs(
            pairs, total_monitors, date, result, pre_sanitized=True
        )

    def infer_day_from_pairs(
        self,
        pairs: Dict[IPv4Prefix, tuple],
        total_monitors: int,
        date: datetime.date,
        result: Optional[InferenceResult] = None,
        *,
        pre_sanitized: bool = False,
    ) -> List[BgpDelegation]:
        """Run steps (ii)–(iv) on pre-aggregated prefix-origin pairs.

        ``pairs`` maps prefix → (OriginSet, monitor count) — the fast
        path produced by
        :meth:`repro.bgp.collector.CollectorSystem.pair_counts_for_day`.
        When the pairs did not pass through record-level sanitization,
        the bogon rule is applied here (the AS-path rules have no
        equivalent at pair granularity).

        Under the ``columnar`` kernel the dict is converted to a
        :class:`~repro.bgp.rib.PairTable` and handed to
        :meth:`infer_day_from_table`; the ``object`` kernel runs the
        original trie/dict reference path below.
        """
        from repro.netbase.bogons import is_bogon

        if total_monitors <= 0:
            raise ReproError("total_monitors must be positive")
        if self._kernel == "columnar":
            return self.infer_day_from_table(
                PairTable.from_pairs(pairs), total_monitors, date,
                result, pre_sanitized=pre_sanitized,
            )
        config = self._config
        if config.sanitize and not pre_sanitized:
            filtered = {}
            for prefix, value in pairs.items():
                if is_bogon(prefix):
                    if result is not None:
                        result.sanitize_stats.bogon_prefix += 1
                    continue
                filtered[prefix] = value
            pairs = filtered
        if result is not None:
            result.pairs_seen += len(pairs)

        # (ii) global-visibility filter.
        needed = config.required_monitors(total_monitors)
        visible: Dict[IPv4Prefix, object] = {}
        for prefix, (origin_set, monitor_count) in pairs.items():
            if monitor_count < needed:
                if result is not None:
                    result.pairs_dropped_visibility += 1
                continue
            visible[prefix] = origin_set

        # (iii) unique-origin filter.
        origin_of: Dict[IPv4Prefix, int] = {}
        for prefix, origin_set in visible.items():
            if config.drop_non_unique_origins and not origin_set.is_unique:
                if result is not None:
                    result.pairs_dropped_origin += 1
                continue
            if origin_set.is_unique:
                origin_of[prefix] = origin_set.sole_origin()
            else:
                # Base algorithm keeps MOAS pairs out anyway: a prefix
                # without a unique origin cannot appear on either side
                # of an (S, T) delegation, so it is skipped here too.
                if result is not None:
                    result.pairs_dropped_origin += 1

        # Core Krenc–Feldmann step: P' delegated iff its most-specific
        # strict cover P has a different origin.
        trie: PrefixTrie[int] = PrefixTrie()
        for prefix, origin in origin_of.items():
            trie.insert(prefix, origin)
        delegations: List[BgpDelegation] = []
        for prefix, delegatee in origin_of.items():
            cover: Optional[Tuple[IPv4Prefix, int]] = None
            for covering_prefix, origin in trie.covering(prefix):
                if covering_prefix.length < prefix.length:
                    cover = (covering_prefix, origin)
            if cover is None:
                continue
            covering_prefix, delegator = cover
            if delegator == delegatee:
                continue
            # (iv)+ same-organization filter.
            if config.same_org_filter:
                assert self._as2org is not None
                if self._as2org.same_org(delegator, delegatee, date):
                    if result is not None:
                        result.delegations_dropped_same_org += 1
                    continue
            delegations.append(
                BgpDelegation(
                    prefix=prefix,
                    delegator_asn=delegator,
                    delegatee_asn=delegatee,
                    covering_prefix=covering_prefix,
                )
            )
        return delegations

    def infer_day_from_table(
        self,
        table: PairTable,
        total_monitors: int,
        date: datetime.date,
        result: Optional[InferenceResult] = None,
        *,
        pre_sanitized: bool = False,
        metrics: MetricsRegistry = NULL,
    ) -> List[BgpDelegation]:
        """Steps (ii)–(iv) on a columnar day — the ``columnar`` kernel.

        Semantically identical to :meth:`infer_day_from_pairs`
        (differential tests pin byte-identical output and counter
        parity), but everything runs over the table's flat integer
        columns:

        - one fused pass applies bogon (two-pointer against the sorted
          interval list), visibility and unique-origin filters, with
          the same per-filter counting as the object path,
        - the Krenc–Feldmann core — each survivor's most-specific
          *strictly* covering survivor — is one O(n) stack pass over
          the already-sorted keys
          (:func:`~repro.netbase.lpm.nearest_strict_covers`) instead
          of n trie walks,
        - the as2org snapshot for ``date`` is resolved once, not per
          candidate delegation.

        ``IPv4Prefix`` objects are materialized only for the surviving
        delegations.  ``metrics`` receives the two kernel stage timers
        (``kernel.columnar.filter`` / ``kernel.columnar.cover``).
        """
        rows = self._table_delegation_rows(
            table, total_monitors, date, result,
            pre_sanitized=pre_sanitized, metrics=metrics,
        )
        return [
            BgpDelegation(
                prefix=IPv4Prefix(key >> 6, key & 0x3F),
                delegator_asn=delegator,
                delegatee_asn=delegatee,
                covering_prefix=IPv4Prefix(
                    cover_key >> 6, cover_key & 0x3F
                ),
            )
            for key, delegator, delegatee, cover_key in rows
        ]

    def _table_delegation_rows(
        self,
        table: PairTable,
        total_monitors: int,
        date: datetime.date,
        result: Optional[InferenceResult] = None,
        *,
        pre_sanitized: bool = False,
        metrics: MetricsRegistry = NULL,
    ) -> List[Tuple[int, int, int, int]]:
        """The columnar kernel proper, staying in integer space.

        Returns one ``(packed_key, delegator, delegatee,
        cover_packed_key)`` row per inferred delegation, sorted by
        packed key.  :meth:`infer_day_from_table` wraps rows into
        :class:`BgpDelegation` objects; the multi-day drivers consume
        them directly so hot paths never build per-record objects.
        """
        if total_monitors <= 0:
            raise ReproError("total_monitors must be positive")
        config = self._config
        keys = table.keys
        flags = table.flags
        monitor_counts = table.monitor_counts

        with metrics.span("kernel.columnar.filter"):
            needed = config.required_monitors(total_monitors)
            check_bogon = config.sanitize and not pre_sanitized
            intervals = _BOGON_INTERVALS
            interval_count = len(intervals)
            host_bits = _HOST_BITS
            origins = table.origins
            bogon_dropped = visibility_dropped = origin_dropped = 0
            surviving_keys = array("Q")
            surviving_origins: List[int] = []
            keep_key = surviving_keys.append
            keep_origin = surviving_origins.append
            j = 0
            for i, key in enumerate(keys):
                if check_bogon:
                    network = key >> 6
                    # Entry networks ascend with the sorted keys, so
                    # the interval cursor only ever moves forward.
                    while j < interval_count and intervals[j][1] < network:
                        j += 1
                    if j < interval_count and intervals[j][0] <= (
                        network | host_bits[key & 0x3F]
                    ):
                        bogon_dropped += 1
                        continue
                if monitor_counts[i] < needed:
                    visibility_dropped += 1
                    continue
                if not flags[i]:
                    # Non-unique origins (AS_SET or MOAS) never appear
                    # on either side of a delegation, so — matching the
                    # object path — they are dropped and counted under
                    # both settings of ``drop_non_unique_origins``.
                    origin_dropped += 1
                    continue
                keep_key(key)
                keep_origin(origins[i])
            if result is not None:
                result.sanitize_stats.bogon_prefix += bogon_dropped
                result.pairs_seen += len(keys) - bogon_dropped
                result.pairs_dropped_visibility += visibility_dropped
                result.pairs_dropped_origin += origin_dropped

        with metrics.span("kernel.columnar.cover"):
            covers = nearest_strict_covers(surviving_keys)
            same_org = None
            if config.same_org_filter:
                assert self._as2org is not None
                same_org = self._as2org.snapshot_for(date).same_org
            rows: List[Tuple[int, int, int, int]] = []
            same_org_dropped = 0
            for i, cover_index in enumerate(covers):
                if cover_index < 0:
                    continue
                delegator = surviving_origins[cover_index]
                delegatee = surviving_origins[i]
                if delegator == delegatee:
                    continue
                # (iv)+ same-organization filter.
                if same_org is not None and same_org(delegator, delegatee):
                    same_org_dropped += 1
                    continue
                rows.append(
                    (
                        surviving_keys[i], delegator, delegatee,
                        surviving_keys[cover_index],
                    )
                )
            if result is not None:
                result.delegations_dropped_same_org += same_org_dropped
        return rows

    # -- multi-day pipeline ----------------------------------------------------

    def infer_range(
        self,
        stream: RouteStream,
        start: datetime.date,
        end: datetime.date,
        step_days: int = 1,
        *,
        metrics: MetricsRegistry = NULL,
    ) -> InferenceResult:
        """Run the full pipeline over ``[start, end)``.

        Step (v) — consistency-rule gap filling — runs after the per-day
        passes, over the whole window.  ``metrics`` (when not the no-op
        default) receives per-day timings plus the per-filter attrition
        counters the run manifest reports.
        """
        from repro.bgp.stream import date_range

        result = InferenceResult(
            daily=DailyDelegations(), config=self._config
        )
        total_monitors = stream.monitor_count()
        delegations_total = 0
        use_table = (
            self._kernel == "columnar"
            and hasattr(stream, "pair_table_on")
        )
        prefix_cache = self._prefix_cache
        for date in date_range(start, end, step_days):
            result.observation_dates.append(date)
            with metrics.span("pipeline.day"):
                if use_table:
                    rows = self._table_delegation_rows(
                        stream.pair_table_on(date), total_monitors,
                        date, result, metrics=metrics,
                    )
                    keys = []
                    for key, delegator, delegatee, _cover in rows:
                        prefix = prefix_cache.get(key)
                        if prefix is None:
                            prefix = IPv4Prefix(key >> 6, key & 0x3F)
                            prefix_cache[key] = prefix
                        keys.append((prefix, delegator, delegatee))
                    day_count = len(rows)
                else:
                    delegations = self.infer_day_from_pairs(
                        stream.pairs_on(date), total_monitors, date,
                        result,
                    )
                    keys = [d.key() for d in delegations]
                    day_count = len(delegations)
                result.daily.record(date, keys)
            delegations_total += day_count
            if len(result.observation_dates) % 100 == 0:
                logger.debug(
                    "inference at %s: %d delegations",
                    date, day_count,
                )
        logger.info(
            "inferred delegations for %d days (%d pairs seen)",
            len(result.observation_dates), result.pairs_seen,
        )
        if self._config.consistency_rule is not None:
            with metrics.span("pipeline.consistency"):
                result.daily = fill_gaps(
                    result.daily,
                    self._config.consistency_rule,
                    result.observation_dates,
                    metrics=metrics,
                )
        record_pipeline_counters(metrics, result, delegations_total)
        return result
