"""Multi-source delegation fusion (the paper's proposed future work).

§7: "future research efforts should combine routing information, RPKI
data, as well as the RDAP databases to obtain a better picture of the
leasing ecosystem."  This module implements that combination: it takes
the three delegation views, matches them by address overlap, and
produces per-prefix provenance (which sources corroborate each
delegation) plus an ecosystem report.

Interpretation guide built into the data model:

- **RDAP only** — registered but unrouted: reserved chunks, future
  customers (the paper's "invisible in BGP" majority),
- **BGP only** — routed but unregistered: providers that do not
  require WHOIS entries (blacklist-risk-tolerant),
- **BGP + RPKI** — routed with ROA continuity: operationally serious,
- **all three** — fully corroborated delegations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.delegation.model import BgpDelegation, RdapDelegation
from repro.netbase.prefix import IPv4Prefix
from repro.netbase.prefixset import PrefixSet, address_count
from repro.rpki.database import RpkiDelegation


class Source(enum.Enum):
    """Where a delegation was observed."""

    BGP = "bgp"
    RPKI = "rpki"
    RDAP = "rdap"


@dataclass(frozen=True)
class FusedDelegation:
    """One delegated prefix with its observation provenance."""

    prefix: IPv4Prefix
    sources: FrozenSet[Source]

    @property
    def corroboration(self) -> int:
        """Number of independent sources that saw the delegation."""
        return len(self.sources)

    @property
    def registered_but_unrouted(self) -> bool:
        return self.sources == frozenset({Source.RDAP})

    @property
    def routed_but_unregistered(self) -> bool:
        return Source.BGP in self.sources and Source.RDAP not in self.sources


@dataclass(frozen=True)
class FusionReport:
    """Ecosystem-level summary of the fused view."""

    fused: Tuple[FusedDelegation, ...]
    addresses_by_source: Dict[Source, int]
    combined_addresses: int

    def count_by_corroboration(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for delegation in self.fused:
            level = delegation.corroboration
            counts[level] = counts.get(level, 0) + 1
        return counts

    def addresses_by_sources(self) -> Dict[FrozenSet[Source], int]:
        """Distinct addresses per exact source combination."""
        by_combo: Dict[FrozenSet[Source], List[IPv4Prefix]] = {}
        for delegation in self.fused:
            by_combo.setdefault(delegation.sources, []).append(
                delegation.prefix
            )
        return {
            combo: address_count(prefixes)
            for combo, prefixes in by_combo.items()
        }

    def summary_lines(self) -> List[str]:
        lines = [
            f"fused delegations: {len(self.fused)}",
            f"combined market size: {self.combined_addresses} addresses",
        ]
        names = {
            Source.BGP: "BGP", Source.RPKI: "RPKI", Source.RDAP: "RDAP"
        }
        for combo, addresses in sorted(
            self.addresses_by_sources().items(),
            key=lambda item: -item[1],
        ):
            label = "+".join(sorted(names[s] for s in combo))
            lines.append(f"  {label}: {addresses} addresses")
        return lines


def fuse_delegations(
    bgp: Iterable[BgpDelegation],
    rpki: Iterable[RpkiDelegation],
    rdap: Iterable[RdapDelegation],
) -> FusionReport:
    """Fuse the three views into per-prefix provenance.

    A prefix observed in one source is credited to another source when
    the other source's delegated space overlaps it (covering or
    covered): a /24 routed inside a registered /20 lease *is* the same
    underlying agreement seen at two granularities.
    """
    bgp_prefixes = sorted({d.prefix for d in bgp})
    rpki_prefixes = sorted({d.prefix for d in rpki})
    rdap_prefixes: List[IPv4Prefix] = []
    for delegation in rdap:
        rdap_prefixes.extend(delegation.prefixes())
    rdap_prefixes = sorted(set(rdap_prefixes))

    sets = {
        Source.BGP: PrefixSet(bgp_prefixes),
        Source.RPKI: PrefixSet(rpki_prefixes),
        Source.RDAP: PrefixSet(rdap_prefixes),
    }

    def overlaps(source: Source, prefix: IPv4Prefix) -> bool:
        return sets[source].overlap_addresses(prefix) > 0

    fused: List[FusedDelegation] = []
    seen = set()
    for own_source, prefixes in (
        (Source.BGP, bgp_prefixes),
        (Source.RPKI, rpki_prefixes),
        (Source.RDAP, rdap_prefixes),
    ):
        for prefix in prefixes:
            if prefix in seen:
                continue
            seen.add(prefix)
            sources = {
                source for source in Source if overlaps(source, prefix)
            }
            sources.add(own_source)
            fused.append(
                FusedDelegation(prefix=prefix, sources=frozenset(sources))
            )
    fused.sort(key=lambda d: d.prefix)

    return FusionReport(
        fused=tuple(fused),
        addresses_by_source={
            source: address_count(list(prefix_set))
            for source, prefix_set in sets.items()
        },
        combined_addresses=address_count(
            bgp_prefixes + rpki_prefixes + rdap_prefixes
        ),
    )
