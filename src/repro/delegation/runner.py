"""Parallel, cached execution of the delegation-inference pipeline.

The Fig. 6 measurement runs steps (i)–(iv) on ~880 independent daily
RIBs and applies the cross-day consistency rule (v) once over the
whole window.  The per-day passes are embarrassingly parallel and
fully determined by the inference configuration plus the input data,
so this module provides:

- **day fan-out** across a :class:`concurrent.futures.
  ProcessPoolExecutor` — the date range is sharded into contiguous
  chunks, each worker builds its route stream once (from a picklable
  *stream factory*) and reuses it for every day of its shard, and the
  as2org snapshots are shipped to each worker once at pool start-up
  instead of being re-loaded per day;
- **an on-disk, content-addressed result cache** — one small JSON file
  per (config, input, day), keyed on the :class:`~repro.delegation.
  inference.InferenceConfig` fields that affect steps (i)–(iv) plus
  fingerprints of the input stream and the as2org dataset.  Re-running
  with an unchanged configuration is a pure cache read; ablation
  sweeps only recompute the days whose parameters actually changed
  (in particular, sweeping the consistency rule (v) never invalidates
  the per-day cache, because (v) runs after the fan-in);
- **fan-in** in the parent: per-day results are merged in date order
  into one :class:`~repro.delegation.inference.InferenceResult`, and
  extension (v) is applied exactly once, so the output is
  byte-identical to the sequential
  :meth:`~repro.delegation.inference.DelegationInference.infer_range`.

Worker failures (including hard crashes that break the pool) surface
as :class:`~repro.errors.ReproError` instead of a hang or a raw
``BrokenProcessPool``.
"""

from __future__ import annotations

import concurrent.futures
import datetime
import hashlib
import json
import logging
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.asorg.as2org import As2OrgDataset
from repro.bgp.stream import RouteStream, date_range
from repro.delegation.consistency import fill_gaps
from repro.delegation.inference import (
    DelegationInference,
    InferenceConfig,
    InferenceResult,
    record_pipeline_counters,
)
from repro.delegation.io import key_from_json, key_to_json
from repro.delegation.model import DailyDelegations
from repro.errors import ReproError
from repro.obs.metrics import NULL, MetricsRegistry

logger = logging.getLogger(__name__)

#: Bump when the cache payload layout changes: old entries become
#: misses instead of being misread.
CACHE_SCHEMA = 1

#: Target number of chunks per worker — small enough to amortize task
#: dispatch, large enough to keep the pool busy when days vary in cost.
_CHUNKS_PER_WORKER = 4

#: A picklable zero-argument callable building the worker's stream.
StreamFactory = Callable[[], RouteStream]


@dataclass(frozen=True)
class WorldStreamFactory:
    """Build a :class:`RouteStream` from a scenario, in any process.

    The scenario config is a small frozen dataclass, so shipping the
    factory to a worker costs a few hundred bytes; the worker then
    regenerates its own deterministic world (topology, propagation,
    announcement source) exactly once and serves every day of its
    shard from it.
    """

    scenario: object  # repro.simulation.scenario.ScenarioConfig

    def __call__(self) -> RouteStream:
        from repro.simulation import World

        return World(self.scenario).stream()

    def fingerprint(self) -> str:
        """Input identity for the cache key.

        ``repr`` of a frozen dataclass is deterministic across
        processes (unlike ``hash``) and covers every generation
        parameter, including the seed.
        """
        text = f"world:{self.scenario!r}"
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ArchiveStreamFactory:
    """Build an archive-backed :class:`RouteStream` in any process.

    ``system_factory`` must itself be picklable and rebuild the
    :class:`~repro.bgp.collector.CollectorSystem` describing the
    monitor population (needed for the visibility denominator).
    """

    archive_dir: str
    system_factory: Callable[[], object]

    def __call__(self) -> RouteStream:
        return RouteStream(
            self.system_factory(), archive_dir=self.archive_dir
        )

    def fingerprint(self) -> str:
        """Hash of the archive's file names and sizes.

        Cheap (no content read) but catches added/removed days and
        rewritten files of different length; byte-level edits that
        preserve the size are considered the same input.
        """
        base = pathlib.Path(self.archive_dir)
        digest = hashlib.sha256(b"archive:")
        for path in sorted(base.rglob("*.jsonl")):
            stat = path.stat()
            entry = f"{path.relative_to(base)}:{stat.st_size}"
            digest.update(entry.encode("utf-8"))
        return digest.hexdigest()


@dataclass(frozen=True)
class RunnerStats:
    """What one :func:`run_inference` call actually did."""

    jobs: int
    days_total: int
    days_from_cache: int
    days_computed: int
    elapsed_seconds: float
    cache_dir: Optional[str] = None

    @property
    def cache_hit_rate(self) -> float:
        if self.days_total == 0:
            return 0.0
        return self.days_from_cache / self.days_total


# -- cache ----------------------------------------------------------------


def _cache_key(
    config: InferenceConfig,
    date: datetime.date,
    input_fingerprint: str,
    as2org_fingerprint: Optional[str],
) -> str:
    """Content address of one day's steps (i)–(iv) output.

    Deliberately excludes ``consistency_rule``: extension (v) is
    applied after the fan-in, so sweeping (M, N) reuses every per-day
    entry.  The as2org fingerprint only participates when extension
    (iv) is on — toggling datasets cannot invalidate runs that never
    consulted them.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "date": date.isoformat(),
        "visibility_threshold": repr(config.visibility_threshold),
        "drop_non_unique_origins": config.drop_non_unique_origins,
        "same_org_filter": config.same_org_filter,
        "sanitize": config.sanitize,
        "input": input_fingerprint,
        "as2org": as2org_fingerprint if config.same_org_filter else None,
    }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _cache_path(cache_dir: pathlib.Path, key: str) -> pathlib.Path:
    # Two-level fan-out keeps directories small on multi-year sweeps.
    return cache_dir / key[:2] / f"{key}.json"


def _cache_read(path: pathlib.Path) -> Optional[dict]:
    """Load a payload, treating missing/corrupt entries as misses."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError):
        logger.warning("discarding unreadable cache entry %s", path)
        return None
    if not isinstance(payload, dict) or "delegations" not in payload:
        logger.warning("discarding malformed cache entry %s", path)
        return None
    return payload


def _cache_write(path: pathlib.Path, payload: dict) -> None:
    """Atomic write: concurrent runs never observe torn entries."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
    os.replace(tmp, path)


# -- per-day computation (shared by workers and the in-process path) ------


def _compute_day_payload(
    stream: RouteStream,
    inference: DelegationInference,
    total_monitors: int,
    date: datetime.date,
) -> dict:
    """Steps (i)–(iv) for one day, as a JSON-safe payload.

    The payload doubles as the cache file format: sorted delegation
    keys plus the bookkeeping counters the sequential path accumulates.
    """
    scratch = InferenceResult(
        daily=DailyDelegations(), config=inference.config
    )
    delegations = inference.infer_day_from_pairs(
        stream.pairs_on(date), total_monitors, date, scratch
    )
    return {
        "schema": CACHE_SCHEMA,
        "date": date.isoformat(),
        "delegations": sorted(key_to_json(d.key()) for d in delegations),
        "counters": {
            "pairs_seen": scratch.pairs_seen,
            "pairs_dropped_visibility": scratch.pairs_dropped_visibility,
            "pairs_dropped_origin": scratch.pairs_dropped_origin,
            "delegations_dropped_same_org":
                scratch.delegations_dropped_same_org,
            "bogon_prefix": scratch.sanitize_stats.bogon_prefix,
        },
    }


# -- worker side ----------------------------------------------------------

_WORKER_STATE: dict = {}


def _init_worker(
    factory: StreamFactory,
    config: InferenceConfig,
    as2org: Optional[As2OrgDataset],
    instrument: bool = False,
    trace: bool = False,
    profile: bool = False,
) -> None:
    """Pool initializer: runs once per worker process.

    The factory and the (potentially large) as2org dataset are
    transferred exactly once here; the stream itself is built lazily on
    the first chunk so that pool start-up stays cheap.  When
    ``instrument`` is set, each chunk records into a fresh
    :class:`MetricsRegistry` that is shipped back with its payloads
    and merged in the parent (registries are picklable by design);
    ``trace`` upgrades it to a :class:`~repro.obs.trace.
    TracingRegistry` on a per-worker lane, ``profile`` adds
    ``tracemalloc`` peak gauges.
    """
    _WORKER_STATE.clear()
    _WORKER_STATE["factory"] = factory
    _WORKER_STATE["config"] = config
    _WORKER_STATE["as2org"] = as2org
    _WORKER_STATE["instrument"] = instrument
    _WORKER_STATE["trace"] = trace
    _WORKER_STATE["profile"] = profile


def _worker_registry() -> MetricsRegistry:
    """A fresh per-chunk registry matching the parent's capabilities.

    Tracing workers record onto their own lane (``worker-<pid>``), so
    the merged timeline shows which process ran which days; the lane
    is stable for the worker's lifetime while each chunk still ships
    an independent registry back for the order-insensitive fan-in.
    """
    if _WORKER_STATE.get("trace"):
        from repro.obs.trace import TracingRegistry

        registry: MetricsRegistry = TracingRegistry(
            lane=f"worker-{os.getpid()}"
        )
    else:
        registry = MetricsRegistry()
    if _WORKER_STATE.get("profile"):
        registry.enable_memory_profile()
    return registry


def _worker_run_chunk(
    dates: Sequence[datetime.date],
) -> Tuple[List[dict], Optional[MetricsRegistry]]:
    """Execute steps (i)–(iv) for one shard of days.

    Returns the per-day payloads plus the shard's metrics registry
    (``None`` when the run is uninstrumented).
    """
    stream = _WORKER_STATE.get("stream")
    if stream is None:
        stream = _WORKER_STATE["factory"]()
        _WORKER_STATE["stream"] = stream
        _WORKER_STATE["inference"] = DelegationInference(
            _WORKER_STATE["config"], _WORKER_STATE["as2org"]
        )
        _WORKER_STATE["total_monitors"] = stream.monitor_count()
    inference = _WORKER_STATE["inference"]
    total_monitors = _WORKER_STATE["total_monitors"]
    if not _WORKER_STATE.get("instrument"):
        return [
            _compute_day_payload(stream, inference, total_monitors, date)
            for date in dates
        ], None
    registry = _worker_registry()
    if hasattr(stream, "set_metrics"):
        stream.set_metrics(registry)
    payloads = []
    for date in dates:
        # A span (not a bare observe) so the same per-day timing also
        # lands on the trace timeline and in the profile gauges; the
        # worker's span stack is empty, so the timer keeps its
        # historical name.
        with registry.span("runner.compute.day"):
            payloads.append(_compute_day_payload(
                stream, inference, total_monitors, date
            ))
    registry.inc("runner.chunks")
    return payloads, registry


# -- parent side ----------------------------------------------------------


def _chunk(items: Sequence, size: int) -> List[List]:
    return [list(items[i:i + size]) for i in range(0, len(items), size)]


def run_inference(
    stream_factory: StreamFactory,
    start: datetime.date,
    end: datetime.date,
    config: Optional[InferenceConfig] = None,
    *,
    as2org: Optional[As2OrgDataset] = None,
    step_days: int = 1,
    jobs: Optional[int] = None,
    cache_dir: Optional[Union[str, pathlib.Path]] = None,
    metrics: MetricsRegistry = NULL,
) -> InferenceResult:
    """Run the full pipeline over ``[start, end)``, in parallel.

    ``stream_factory`` must be a zero-argument callable returning the
    :class:`RouteStream` to read (e.g. :class:`WorldStreamFactory`);
    with ``jobs > 1`` it must be picklable, and with ``cache_dir`` set
    it must additionally expose a ``fingerprint()`` identifying the
    input data.  ``jobs=None`` uses ``os.cpu_count()``.

    ``metrics`` (when not the no-op default) receives nested stage
    spans (``runner.cache_probe`` / ``runner.compute`` /
    ``runner.fan_in`` / ``runner.consistency``), cache hit/miss
    counters, per-day compute timings (fanned back in from the worker
    registries), and the per-filter attrition counters shared with the
    sequential path.

    Returns an :class:`InferenceResult` byte-identical (in its
    ``daily`` delegations) to the sequential
    :meth:`DelegationInference.infer_range`, with ``runner_stats``
    describing the fan-out and cache behaviour.
    """
    began = time.perf_counter()
    config = config or InferenceConfig()
    if config.same_org_filter and as2org is None:
        raise ReproError("same_org_filter requires an as2org dataset")

    dates = list(date_range(start, end, step_days))
    resolved_jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    if resolved_jobs < 1:
        raise ReproError("jobs must be at least 1")

    cache_base: Optional[pathlib.Path] = None
    input_fp = as2org_fp = None
    if cache_dir is not None:
        fingerprint = getattr(stream_factory, "fingerprint", None)
        if fingerprint is None:
            raise ReproError(
                "caching requires a stream factory with a fingerprint() "
                "identifying its input data"
            )
        cache_base = pathlib.Path(cache_dir)
        input_fp = fingerprint()
        if config.same_org_filter:
            assert as2org is not None
            as2org_fp = as2org.fingerprint()

    metrics.inc("runner.days_total", len(dates))
    metrics.set_gauge("runner.jobs", resolved_jobs)

    # Phase 1: resolve cache hits.
    payload_by_date: Dict[datetime.date, dict] = {}
    missing: List[datetime.date] = []
    if cache_base is not None:
        with metrics.span("runner.cache_probe"):
            for date in dates:
                key = _cache_key(config, date, input_fp, as2org_fp)
                payload = _cache_read(_cache_path(cache_base, key))
                if payload is None:
                    missing.append(date)
                else:
                    payload_by_date[date] = payload
        metrics.inc("runner.cache.hits", len(dates) - len(missing))
        metrics.inc("runner.cache.misses", len(missing))
    else:
        missing = list(dates)

    # Phase 2: compute the misses — fanned out or in-process.
    computed: List[dict] = []
    with metrics.span("runner.compute"):
        if missing:
            if resolved_jobs > 1 and len(missing) > 1:
                computed = _compute_parallel(
                    stream_factory, config, as2org, missing,
                    resolved_jobs, metrics,
                )
            else:
                stream = stream_factory()
                if metrics.enabled and hasattr(stream, "set_metrics"):
                    stream.set_metrics(metrics)
                inference = DelegationInference(config, as2org)
                total_monitors = stream.monitor_count()
                for date in missing:
                    with metrics.span("day"):
                        computed.append(_compute_day_payload(
                            stream, inference, total_monitors, date
                        ))
    with metrics.span("runner.cache_write"):
        for payload in computed:
            date = datetime.date.fromisoformat(payload["date"])
            payload_by_date[date] = payload
            if cache_base is not None:
                key = _cache_key(config, date, input_fp, as2org_fp)
                _cache_write(_cache_path(cache_base, key), payload)

    # Phase 3: fan-in, in date order, then extension (v) exactly once.
    # Consecutive days share almost all delegations, so prefixes are
    # interned: each distinct prefix string is parsed once and the
    # same IPv4Prefix object is reused across the whole window.
    interned: Dict[str, object] = {}

    def _decode(raw: list) -> tuple:
        text, delegator, delegatee = raw
        prefix = interned.get(text)
        if prefix is None:
            prefix = key_from_json(raw)[0]
            interned[text] = prefix
        return (prefix, delegator, delegatee)

    result = InferenceResult(daily=DailyDelegations(), config=config)
    delegations_total = 0
    with metrics.span("runner.fan_in"):
        for date in dates:
            payload = payload_by_date[date]
            result.observation_dates.append(date)
            counters = payload.get("counters", {})
            result.pairs_seen += counters.get("pairs_seen", 0)
            result.pairs_dropped_visibility += counters.get(
                "pairs_dropped_visibility", 0
            )
            result.pairs_dropped_origin += counters.get(
                "pairs_dropped_origin", 0
            )
            result.delegations_dropped_same_org += counters.get(
                "delegations_dropped_same_org", 0
            )
            result.sanitize_stats.bogon_prefix += counters.get(
                "bogon_prefix", 0
            )
            delegations_total += len(payload["delegations"])
            result.daily.record(
                date, (_decode(raw) for raw in payload["delegations"])
            )
    if config.consistency_rule is not None:
        with metrics.span("runner.consistency"):
            result.daily = fill_gaps(
                result.daily, config.consistency_rule,
                result.observation_dates, metrics=metrics,
            )
    record_pipeline_counters(metrics, result, delegations_total)

    result.runner_stats = RunnerStats(
        jobs=resolved_jobs,
        days_total=len(dates),
        days_from_cache=len(dates) - len(missing),
        days_computed=len(missing),
        elapsed_seconds=time.perf_counter() - began,
        cache_dir=str(cache_base) if cache_base is not None else None,
    )
    metrics.observe("runner", result.runner_stats.elapsed_seconds)
    logger.info(
        "runner: %d days (%d cached, %d computed) with %d jobs in %.2fs",
        len(dates), len(dates) - len(missing), len(missing),
        resolved_jobs, result.runner_stats.elapsed_seconds,
    )
    return result


def _compute_parallel(
    stream_factory: StreamFactory,
    config: InferenceConfig,
    as2org: Optional[As2OrgDataset],
    missing: Sequence[datetime.date],
    jobs: int,
    metrics: MetricsRegistry = NULL,
) -> List[dict]:
    """Fan the missing days out over a process pool.

    With an enabled ``metrics`` registry, every worker chunk returns
    its own registry alongside its payloads; they are merged here, so
    per-day timings and stream counters survive the fan-in.
    """
    workers = min(jobs, len(missing))
    chunk_size = max(
        1, -(-len(missing) // (workers * _CHUNKS_PER_WORKER))
    )
    chunks = _chunk(missing, chunk_size)
    payloads: List[dict] = []
    executor = concurrent.futures.ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(
            stream_factory, config, as2org, metrics.enabled,
            # Workers mirror the parent's capabilities: a tracing
            # parent gets per-lane worker traces, a profiling parent
            # gets worker-side peak gauges (max-merged at fan-in).
            getattr(metrics, "trace", None) is not None,
            metrics.memory_profiling,
        ),
    )
    try:
        futures = [
            executor.submit(_worker_run_chunk, chunk) for chunk in chunks
        ]
        for future in futures:
            try:
                chunk_payloads, worker_registry = future.result()
            except ReproError:
                raise
            except Exception as exc:
                raise ReproError(
                    "delegation-inference worker failed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            payloads.extend(chunk_payloads)
            if worker_registry is not None:
                metrics.merge(worker_registry)
                metrics.inc("runner.worker_registries_merged")
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
    return payloads
